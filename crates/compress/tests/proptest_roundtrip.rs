//! Property tests: compression must be lossless on arbitrary inputs.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let c = dude_compress::compress(&data);
        let d = dude_compress::decompress(&c).unwrap();
        prop_assert_eq!(d, data);
    }

    #[test]
    fn roundtrip_skewed_words(words in proptest::collection::vec(0u64..32, 0..1024)) {
        // Word streams drawn from a small alphabet — redo-log-like input.
        let data: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let c = dude_compress::compress(&data);
        prop_assert_eq!(dude_compress::decompress(&c).unwrap(), data);
    }

    #[test]
    fn decompress_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Must return an error or some bytes, never panic.
        let _ = dude_compress::decompress(&data);
    }

    #[test]
    fn truncation_never_panics(data in proptest::collection::vec(any::<u8>(), 1..1024), cut_ppm in 0u32..1_000_000) {
        let c = dude_compress::compress(&data);
        let cut = (c.len() as u64 * u64::from(cut_ppm) / 1_000_000) as usize;
        let _ = dude_compress::decompress(&c[..cut]);
    }
}
