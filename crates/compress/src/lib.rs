//! An LZ77 block compressor — the reproduction's stand-in for lz4.
//!
//! §3.3 of the paper compresses combined redo logs with lz4 before flushing
//! them to NVM, reporting a stable ~69 % compression ratio on its skewed
//! YCSB logs. Redo logs compress well because log entries are
//! `(address, value)` word pairs whose high bytes repeat heavily.
//!
//! The format mirrors lz4's block format in spirit:
//!
//! * a varint header with the decompressed length,
//! * a stream of *sequences*: a token byte holding a 4-bit literal length
//!   and a 4-bit match length (value 15 = "read extension bytes"), the
//!   literal bytes, then a 2-byte little-endian match offset,
//! * a final literals-only sequence.
//!
//! Matching is greedy over a 4-byte hash table, like lz4's fast mode.
//!
//! Why an in-tree compressor stands in for lz4 is covered in
//! `DESIGN.md §Substitutions`; where compression sits in the Persist stage
//! (combined groups only) in `DESIGN.md §Pipeline`.
//!
//! # Example
//!
//! ```
//! let log: Vec<u8> = (0..1000u64).flat_map(|i| (i % 7).to_le_bytes()).collect();
//! let packed = dude_compress::compress(&log);
//! assert!(packed.len() < log.len() / 2);
//! assert_eq!(dude_compress::decompress(&packed)?, log);
//! # Ok::<(), dude_compress::DecompressError>(())
//! ```

/// Minimum match length worth encoding (shorter matches cost more than
/// literals).
const MIN_MATCH: usize = 4;
/// Maximum look-back distance (2-byte offsets).
const MAX_OFFSET: usize = 65535;
/// Hash table size for 4-byte prefixes.
const HASH_BITS: u32 = 14;

/// Error returned when decompressing malformed input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecompressError {
    /// The input ended before the encoded stream was complete.
    Truncated,
    /// A match referred to data before the start of the output.
    BadOffset,
    /// The header length did not match the decoded stream.
    LengthMismatch,
}

impl core::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecompressError::Truncated => f.write_str("compressed stream truncated"),
            DecompressError::BadOffset => f.write_str("match offset out of range"),
            DecompressError::LengthMismatch => f.write_str("decoded length mismatch"),
        }
    }
}

impl std::error::Error for DecompressError {}

fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    ((v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) & ((1 << HASH_BITS) - 1)) as usize
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(input: &[u8], pos: &mut usize) -> Result<u64, DecompressError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *input.get(*pos).ok_or(DecompressError::Truncated)?;
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(DecompressError::Truncated);
        }
    }
}

/// Writes a length field: a 4-bit nibble plus 255-run extension bytes.
fn push_len(out: &mut Vec<u8>, mut extra: usize) {
    while extra >= 255 {
        out.push(255);
        extra -= 255;
    }
    out.push(extra as u8);
}

fn read_len(input: &[u8], pos: &mut usize, nibble: usize) -> Result<usize, DecompressError> {
    let mut len = nibble;
    if nibble == 15 {
        loop {
            let byte = *input.get(*pos).ok_or(DecompressError::Truncated)?;
            *pos += 1;
            len += byte as usize;
            if byte != 255 {
                break;
            }
        }
    }
    Ok(len)
}

/// Compresses `input` into a self-describing block.
///
/// Worst-case expansion on incompressible data is bounded (one token per
/// 14-literal run plus the header).
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    push_varint(&mut out, input.len() as u64);
    if input.is_empty() {
        return out;
    }
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut pos = 0usize;
    let mut literal_start = 0usize;

    while pos + MIN_MATCH <= input.len() {
        let h = hash4(&input[pos..]);
        let candidate = table[h];
        table[h] = pos;
        let matched = candidate != usize::MAX
            && pos - candidate <= MAX_OFFSET
            && input[candidate..candidate + MIN_MATCH] == input[pos..pos + MIN_MATCH];
        if !matched {
            pos += 1;
            continue;
        }
        // Extend the match as far as possible.
        let mut len = MIN_MATCH;
        while pos + len < input.len() && input[candidate + len] == input[pos + len] {
            len += 1;
        }
        emit_sequence(
            &mut out,
            &input[literal_start..pos],
            Some((pos - candidate, len)),
        );
        // Seed the table inside the match so later data can reference it.
        let end = pos + len;
        let mut p = pos + 1;
        while p + MIN_MATCH <= input.len() && p < end {
            table[hash4(&input[p..])] = p;
            p += 2; // stride 2: cheaper, nearly as effective
        }
        pos = end;
        literal_start = end;
    }
    emit_sequence(&mut out, &input[literal_start..], None);
    out
}

fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], m: Option<(usize, usize)>) {
    let lit_nibble = literals.len().min(15);
    let (offset, mlen) = match m {
        Some((o, l)) => (o, l),
        None => {
            if literals.is_empty() {
                return; // nothing to encode
            }
            (0, MIN_MATCH) // offset 0 marks "literals only"
        }
    };
    let match_nibble = (mlen - MIN_MATCH).min(15);
    out.push(((lit_nibble as u8) << 4) | match_nibble as u8);
    if lit_nibble == 15 {
        push_len(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
    out.extend_from_slice(&(offset as u16).to_le_bytes());
    if offset != 0 && match_nibble == 15 {
        push_len(out, mlen - MIN_MATCH - 15);
    }
}

/// Decompresses a block produced by [`compress`].
///
/// # Errors
///
/// Returns a [`DecompressError`] if the stream is truncated, a match offset
/// is invalid, or the decoded length disagrees with the header.
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, DecompressError> {
    let mut pos = 0usize;
    let expected = read_varint(input, &mut pos)? as usize;
    // Cap the preallocation: `expected` is untrusted until the stream is
    // fully decoded (a corrupt header must not trigger a giant allocation).
    let mut out = Vec::with_capacity(expected.min(1 << 20));
    while pos < input.len() {
        if out.len() > expected {
            return Err(DecompressError::LengthMismatch);
        }
        let token = input[pos];
        pos += 1;
        let lit_len = read_len(input, &mut pos, (token >> 4) as usize)?;
        if pos + lit_len > input.len() || out.len() + lit_len > expected {
            return Err(DecompressError::Truncated);
        }
        out.extend_from_slice(&input[pos..pos + lit_len]);
        pos += lit_len;
        if pos + 2 > input.len() {
            return Err(DecompressError::Truncated);
        }
        let offset = u16::from_le_bytes([input[pos], input[pos + 1]]) as usize;
        pos += 2;
        if offset == 0 {
            continue; // literals-only terminator sequence
        }
        let mlen = read_len(input, &mut pos, (token & 0x0f) as usize)? + MIN_MATCH;
        if offset > out.len() {
            return Err(DecompressError::BadOffset);
        }
        if out.len() + mlen > expected {
            return Err(DecompressError::LengthMismatch);
        }
        let start = out.len() - offset;
        // Byte-by-byte copy: overlapping matches (offset < len) replicate.
        for i in 0..mlen {
            let b = out[start + i];
            out.push(b);
        }
    }
    if out.len() != expected {
        return Err(DecompressError::LengthMismatch);
    }
    Ok(out)
}

/// Compression ratio as "fraction saved": `1 - compressed/original`.
/// Returns 0.0 for empty input.
pub fn savings(original: usize, compressed: usize) -> f64 {
    if original == 0 {
        return 0.0;
    }
    1.0 - compressed as f64 / original as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).expect("roundtrip decompress");
        assert_eq!(d, data);
    }

    #[test]
    fn empty_input() {
        roundtrip(&[]);
        assert_eq!(compress(&[]).len(), 1);
    }

    #[test]
    fn short_literals() {
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"abcdefg");
    }

    #[test]
    fn repetitive_data_compresses() {
        let data = vec![7u8; 10_000];
        let c = compress(&data);
        assert!(c.len() < 100, "run-length-ish data: got {}", c.len());
        roundtrip(&data);
    }

    #[test]
    fn redo_log_shape_compresses_well() {
        // (addr, value) pairs with repeating high bytes — the workload from
        // Figure 3.
        let mut log = Vec::new();
        for i in 0..4096u64 {
            log.extend_from_slice(&(0x1000_0000 + (i % 97) * 8).to_le_bytes());
            log.extend_from_slice(&(i % 13).to_le_bytes());
        }
        let c = compress(&log);
        assert!(
            savings(log.len(), c.len()) > 0.6,
            "expected >60% savings, got {:.2}",
            savings(log.len(), c.len())
        );
        roundtrip(&log);
    }

    #[test]
    fn incompressible_data_roundtrips_with_bounded_expansion() {
        // Pseudo-random bytes.
        let mut x = 0x12345678u64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        let c = compress(&data);
        assert!(c.len() < data.len() + data.len() / 8 + 16);
        roundtrip(&data);
    }

    #[test]
    fn overlapping_match_replication() {
        // "abcabcabc..." forces offset < match length.
        let data: Vec<u8> = b"abc".iter().copied().cycle().take(1000).collect();
        roundtrip(&data);
        let c = compress(&data);
        assert!(c.len() < 50);
    }

    #[test]
    fn long_literal_runs_use_extension_bytes() {
        // 300 distinct-ish bytes then a repeat to force a >15 literal run.
        let mut data: Vec<u8> = (0..300u32).map(|i| (i * 7 + i / 13) as u8).collect();
        data.extend_from_slice(&data.clone());
        roundtrip(&data);
    }

    #[test]
    fn long_match_runs_use_extension_bytes() {
        let mut data = vec![0u8; 8];
        data.extend(std::iter::repeat_n(0xabu8, 5000));
        roundtrip(&data);
    }

    #[test]
    fn truncated_stream_detected() {
        let data = vec![1u8; 100];
        let c = compress(&data);
        for cut in 1..c.len() {
            // Every strict prefix must fail, never panic.
            let r = decompress(&c[..cut]);
            assert!(r.is_err() || r.unwrap() != data || cut == c.len());
        }
    }

    #[test]
    fn bad_offset_detected() {
        // Handcraft: header len=4, token lit=0 match=0, offset=9 (> output).
        let mut bad = Vec::new();
        push_varint(&mut bad, 4);
        bad.push(0x00);
        bad.extend_from_slice(&9u16.to_le_bytes());
        assert_eq!(decompress(&bad), Err(DecompressError::BadOffset));
    }

    #[test]
    fn length_mismatch_detected() {
        let data = b"hello world hello world".to_vec();
        let mut c = compress(&data);
        // Corrupt the header length.
        c[0] = c[0].wrapping_add(1);
        assert!(decompress(&c).is_err());
    }

    #[test]
    fn savings_helper() {
        assert_eq!(savings(0, 0), 0.0);
        assert!((savings(100, 31) - 0.69).abs() < 1e-9);
    }
}
