//! An emulated restricted hardware transactional memory (RTM-like).
//!
//! §4.2 of the paper shows DudeTM running on Intel RTM with one minor
//! hardware change: the HTM must *ignore conflicts on the transaction-ID
//! counter*, because incrementing a shared counter inside a stock HTM
//! transaction aborts every concurrent transaction. The paper evaluates this
//! by generating IDs with atomic operations outside conflict tracking
//! (§5.7); this emulator does exactly the same thing.
//!
//! The emulation models the properties of RTM that matter for Table 4:
//!
//! * **cache-line-granularity conflict detection** (64-byte lines), eager
//!   ("requester loses": touching a line a peer has locked aborts you);
//! * **bounded capacity** — a transaction whose write set exceeds the
//!   configured line budget takes a *capacity abort* and goes straight to
//!   the fallback path, which is why the paper cannot run TPC-C on Haswell
//!   RTM (footnote 7);
//! * **global-lock fallback** after `max_retries` conflict aborts, with
//!   lock subscription so speculative transactions abort when the fallback
//!   is taken;
//! * **no per-access bookkeeping beyond the line sets** — the reason HTM
//!   beats STM by up to 1.7× in Table 4.
//!
//! # Example
//!
//! ```
//! use dude_htm::{Htm, HtmConfig};
//! use dude_stm::{NoHooks, VecMemory, WordMemory};
//!
//! let htm = Htm::new(HtmConfig::default());
//! let mem = VecMemory::new(1024);
//! let mut thread = htm.register();
//! thread.run(&mem, &mut NoHooks, |tx| {
//!     let v = tx.read(0)?;
//!     tx.write(0, v + 1)
//! });
//! assert_eq!(mem.load(0), 1);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use dude_stm::{GlobalClock, TmAccess, TxHooks, WordMemory};
use dude_txapi::{CommitInfo, TxAbort, TxId, TxResult, TxnOutcome};
use parking_lot::RwLock;

/// Bytes per cache line (RTM conflict-detection granularity).
pub const LINE_BYTES: u64 = 64;

/// Configuration of the emulated HTM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HtmConfig {
    /// log2 of the line-ownership table size.
    pub line_table_bits: u32,
    /// Maximum distinct cache lines a transaction may write (L1-like write
    /// capacity; Haswell's is ~512 lines of L1D).
    pub max_write_lines: usize,
    /// Maximum distinct cache lines a transaction may read.
    pub max_read_lines: usize,
    /// Conflict aborts tolerated before falling back to the global lock
    /// (the paper uses five, §5.7).
    pub max_retries: u32,
}

impl Default for HtmConfig {
    fn default() -> Self {
        HtmConfig {
            line_table_bits: 18,
            max_write_lines: 512,
            max_read_lines: 4096,
            max_retries: 5,
        }
    }
}

impl HtmConfig {
    /// A tiny configuration for tests (forces capacity aborts early).
    pub fn tiny() -> Self {
        HtmConfig {
            line_table_bits: 6,
            max_write_lines: 4,
            max_read_lines: 16,
            max_retries: 2,
        }
    }
}

/// Aggregate HTM statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HtmStatsSnapshot {
    /// Transactions committed speculatively (the HTM fast path).
    pub htm_commits: u64,
    /// Conflict aborts.
    pub conflicts: u64,
    /// Capacity aborts (write or read set exceeded the line budget).
    pub capacity_aborts: u64,
    /// Transactions committed under the global-lock fallback.
    pub fallback_commits: u64,
}

#[derive(Debug, Default)]
struct HtmStats {
    htm_commits: AtomicU64,
    conflicts: AtomicU64,
    capacity_aborts: AtomicU64,
    fallback_commits: AtomicU64,
}

// Line-ownership word encoding (same scheme as the STM's versioned locks).
#[inline]
fn is_locked(w: u64) -> bool {
    w & 1 == 1
}
#[inline]
fn version_of(w: u64) -> u64 {
    w >> 1
}
#[inline]
fn versioned(v: u64) -> u64 {
    v << 1
}
#[inline]
fn locked_by(owner: u64) -> u64 {
    (owner << 1) | 1
}
#[inline]
fn owner_of(w: u64) -> u64 {
    w >> 1
}

/// The emulated HTM instance.
#[derive(Debug)]
pub struct Htm {
    clock: GlobalClock,
    lines: Box<[AtomicU64]>,
    mask: u64,
    /// Fallback lock word: generation counter, odd = held. Speculative
    /// transactions subscribe to it and abort when it changes.
    fallback: AtomicU64,
    /// Commit gate: speculative publishes take it shared; the fallback path
    /// takes it exclusive so it never races an in-flight publish.
    commit_gate: RwLock<()>,
    config: HtmConfig,
    stats: HtmStats,
    next_owner: AtomicU64,
}

impl Htm {
    /// Creates an emulated HTM with the given configuration.
    pub fn new(config: HtmConfig) -> Self {
        Self::with_initial_clock(config, 0)
    }

    /// Creates an HTM whose commit timestamps continue from `start` (used
    /// after recovery so transaction IDs stay globally unique).
    pub fn with_initial_clock(config: HtmConfig, start: u64) -> Self {
        let n = 1usize << config.line_table_bits;
        Htm {
            clock: GlobalClock::starting_at(start),
            lines: (0..n).map(|_| AtomicU64::new(0)).collect(),
            mask: (n - 1) as u64,
            fallback: AtomicU64::new(0),
            commit_gate: RwLock::new(()),
            config,
            stats: HtmStats::default(),
            next_owner: AtomicU64::new(1),
        }
    }

    /// Registers the calling thread.
    pub fn register(&self) -> HtmThread<'_> {
        HtmThread {
            htm: self,
            owner: self.next_owner.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// The global version clock (commit timestamps = DudeTM transaction IDs).
    pub fn clock(&self) -> &GlobalClock {
        &self.clock
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> HtmStatsSnapshot {
        HtmStatsSnapshot {
            htm_commits: self.stats.htm_commits.load(Ordering::Relaxed),
            conflicts: self.stats.conflicts.load(Ordering::Relaxed),
            capacity_aborts: self.stats.capacity_aborts.load(Ordering::Relaxed),
            fallback_commits: self.stats.fallback_commits.load(Ordering::Relaxed),
        }
    }
}

/// Why a speculative attempt aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbortKind {
    Conflict,
    Capacity,
}

/// Bounded exponential spin, then yield — lets the conflicting transaction
/// finish before the retry (essential on few-core hosts; real RTM software
/// uses the same pattern in its abort handler).
fn backoff(attempt: u32) {
    #[cfg(feature = "sim")]
    if dude_sim::on_sim_task() {
        // Spinning would monopolize the virtual-scheduler token; park as
        // an event waiter so the conflicting transaction can run.
        dude_sim::block(dude_sim::YieldKind::Backoff);
        return;
    }
    if attempt <= 3 {
        for _ in 0..(1u32 << attempt.min(10)) {
            std::hint::spin_loop();
        }
    } else {
        std::thread::yield_now();
    }
}

/// Releases the processor while waiting on the fallback-lock word (a raw
/// atomic): parks on the virtual scheduler under sim, yields natively
/// otherwise.
fn fallback_wait() {
    #[cfg(feature = "sim")]
    if dude_sim::on_sim_task() {
        dude_sim::block(dude_sim::YieldKind::Backoff);
        return;
    }
    std::thread::yield_now();
}

/// Per-thread HTM executor.
#[derive(Debug)]
pub struct HtmThread<'h> {
    htm: &'h Htm,
    owner: u64,
}

impl<'h> HtmThread<'h> {
    /// Runs `body` as a hardware transaction, retrying on conflicts and
    /// falling back to the global lock after repeated conflicts or a
    /// capacity abort — the paper's five-retries-then-lock policy (§5.7).
    pub fn run<M, H, R>(
        &mut self,
        mem: &M,
        hooks: &mut H,
        mut body: impl FnMut(&mut HtmTx<'_, M, H>) -> TxResult<R>,
    ) -> TxnOutcome<R>
    where
        M: WordMemory + ?Sized,
        H: TxHooks,
    {
        let mut retries = 0u32;
        loop {
            // Subscribe to the fallback lock: wait while it is held.
            let fb = self.htm.fallback.load(Ordering::Acquire);
            if fb & 1 == 1 {
                fallback_wait();
                continue;
            }
            let mut tx = HtmTx::begin(self.htm, mem, hooks, self.owner, fb);
            match body(&mut tx) {
                Ok(value) => match tx.commit() {
                    Ok(tid) => {
                        tx.hooks.on_commit(tid);
                        self.htm.stats.htm_commits.fetch_add(1, Ordering::Relaxed);
                        return TxnOutcome::Committed {
                            value,
                            info: CommitInfo { tid, retries },
                        };
                    }
                    Err(kind) => {
                        let wasted = tx.wasted.take();
                        tx.rollback();
                        tx.hooks.on_abort(wasted);
                        retries += 1;
                        if self.note_abort(kind, retries) {
                            return self.run_fallback(mem, hooks, &mut body, retries);
                        }
                        backoff(retries);
                    }
                },
                Err(TxAbort::User) => {
                    tx.rollback();
                    tx.hooks.on_abort(None);
                    return TxnOutcome::Aborted;
                }
                Err(TxAbort::Conflict) => {
                    let kind = tx.abort_kind.take().unwrap_or(AbortKind::Conflict);
                    tx.rollback();
                    tx.hooks.on_abort(None);
                    retries += 1;
                    if self.note_abort(kind, retries) {
                        return self.run_fallback(mem, hooks, &mut body, retries);
                    }
                    backoff(retries);
                }
            }
        }
    }

    /// Records an abort; returns `true` if the fallback path should run.
    fn note_abort(&self, kind: AbortKind, retries: u32) -> bool {
        match kind {
            AbortKind::Capacity => {
                self.htm
                    .stats
                    .capacity_aborts
                    .fetch_add(1, Ordering::Relaxed);
                true // capacity aborts never succeed by retrying
            }
            AbortKind::Conflict => {
                self.htm.stats.conflicts.fetch_add(1, Ordering::Relaxed);
                retries > self.htm.config.max_retries
            }
        }
    }

    /// The non-speculative global-lock path.
    fn run_fallback<M, H, R>(
        &mut self,
        mem: &M,
        hooks: &mut H,
        body: &mut impl FnMut(&mut HtmTx<'_, M, H>) -> TxResult<R>,
        retries: u32,
    ) -> TxnOutcome<R>
    where
        M: WordMemory + ?Sized,
        H: TxHooks,
    {
        // Acquire the fallback lock (generation counter goes odd).
        loop {
            let fb = self.htm.fallback.load(Ordering::Acquire);
            if fb & 1 == 0
                && self
                    .htm
                    .fallback
                    .compare_exchange(fb, fb + 1, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                break;
            }
            fallback_wait();
        }
        // Exclude in-flight speculative publishes, then run alone.
        let gate = self.htm.commit_gate.write();
        let mut tx = HtmTx::begin_fallback(self.htm, mem, hooks, self.owner);
        let result = body(&mut tx);
        let outcome = match result {
            Ok(value) => {
                let tid = tx.commit_fallback();
                tx.hooks.on_commit(tid);
                self.htm
                    .stats
                    .fallback_commits
                    .fetch_add(1, Ordering::Relaxed);
                TxnOutcome::Committed {
                    value,
                    info: CommitInfo { tid, retries },
                }
            }
            Err(_) => {
                // Only user aborts reach here (fallback cannot conflict).
                tx.rollback();
                tx.hooks.on_abort(None);
                TxnOutcome::Aborted
            }
        };
        drop(gate);
        // Release (generation goes even again).
        self.htm.fallback.fetch_add(1, Ordering::AcqRel);
        outcome
    }
}

/// An in-flight emulated hardware transaction.
#[derive(Debug)]
pub struct HtmTx<'t, M: WordMemory + ?Sized, H: TxHooks> {
    htm: &'t Htm,
    mem: &'t M,
    hooks: &'t mut H,
    owner: u64,
    /// Fallback-lock generation observed at begin (subscription).
    fallback_snapshot: u64,
    /// Speculative write buffer (addr → value), L1-modified-line stand-in.
    writes: HashMap<u64, u64>,
    /// Distinct lines written, with the previous ownership word.
    written_lines: Vec<(usize, u64)>,
    /// Distinct lines read, with the version observed.
    read_lines: Vec<(usize, u64)>,
    /// Undo list for the fallback path (in-place writes).
    fallback_undo: Option<Vec<(u64, u64)>>,
    abort_kind: Option<AbortKind>,
    wasted: Option<TxId>,
}

impl<'t, M: WordMemory + ?Sized, H: TxHooks> HtmTx<'t, M, H> {
    fn begin(htm: &'t Htm, mem: &'t M, hooks: &'t mut H, owner: u64, fb: u64) -> Self {
        HtmTx {
            htm,
            mem,
            hooks,
            owner,
            fallback_snapshot: fb,
            writes: HashMap::new(),
            written_lines: Vec::new(),
            read_lines: Vec::new(),
            fallback_undo: None,
            abort_kind: None,
            wasted: None,
        }
    }

    fn begin_fallback(htm: &'t Htm, mem: &'t M, hooks: &'t mut H, owner: u64) -> Self {
        HtmTx {
            htm,
            mem,
            hooks,
            owner,
            fallback_snapshot: 0,
            writes: HashMap::new(),
            written_lines: Vec::new(),
            read_lines: Vec::new(),
            fallback_undo: Some(Vec::new()),
            abort_kind: None,
            wasted: None,
        }
    }

    fn line_index(&self, addr: u64) -> usize {
        let line = addr / LINE_BYTES;
        ((line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) & self.htm.mask) as usize
    }

    fn conflict(&mut self, kind: AbortKind) -> TxAbort {
        self.abort_kind = Some(kind);
        TxAbort::Conflict
    }

    fn check_fallback(&mut self) -> TxResult<()> {
        if self.htm.fallback.load(Ordering::Acquire) != self.fallback_snapshot {
            return Err(self.conflict(AbortKind::Conflict));
        }
        Ok(())
    }

    /// Transactionally reads the word at byte address `addr`.
    ///
    /// # Errors
    ///
    /// [`TxAbort::Conflict`] on a line conflict, capacity overflow, or
    /// fallback-lock acquisition by a peer.
    pub fn read(&mut self, addr: u64) -> TxResult<u64> {
        if self.fallback_undo.is_some() {
            return Ok(self.mem.load(addr));
        }
        self.check_fallback()?;
        if let Some(&v) = self.writes.get(&addr) {
            return Ok(v);
        }
        let idx = self.line_index(addr);
        let w = self.htm.lines[idx].load(Ordering::Acquire);
        if is_locked(w) {
            if owner_of(w) != self.owner {
                return Err(self.conflict(AbortKind::Conflict));
            }
            return Ok(self.mem.load(addr));
        }
        if !self.read_lines.iter().any(|&(i, _)| i == idx) {
            if self.read_lines.len() >= self.htm.config.max_read_lines {
                return Err(self.conflict(AbortKind::Capacity));
            }
            self.read_lines.push((idx, version_of(w)));
        }
        Ok(self.mem.load(addr))
    }

    /// Transactionally writes `val` to byte address `addr` (buffered until
    /// commit, like a speculatively modified cache line).
    ///
    /// # Errors
    ///
    /// [`TxAbort::Conflict`] on a line conflict, capacity overflow, or
    /// fallback-lock acquisition by a peer.
    pub fn write(&mut self, addr: u64, val: u64) -> TxResult<()> {
        if let Some(undo) = &mut self.fallback_undo {
            undo.push((addr, self.mem.load(addr)));
            self.mem.store(addr, val);
            self.hooks.on_write(addr, val);
            return Ok(());
        }
        self.check_fallback()?;
        let idx = self.line_index(addr);
        let slot = &self.htm.lines[idx];
        let w = slot.load(Ordering::Acquire);
        if is_locked(w) {
            if owner_of(w) != self.owner {
                return Err(self.conflict(AbortKind::Conflict));
            }
        } else {
            if self.written_lines.len() >= self.htm.config.max_write_lines {
                return Err(self.conflict(AbortKind::Capacity));
            }
            if slot
                .compare_exchange(
                    w,
                    locked_by(self.owner),
                    Ordering::Acquire,
                    Ordering::Relaxed,
                )
                .is_err()
            {
                return Err(self.conflict(AbortKind::Conflict));
            }
            self.written_lines.push((idx, w));
        }
        self.writes.insert(addr, val);
        self.hooks.on_write(addr, val);
        Ok(())
    }

    fn validate_reads(&self) -> Result<(), AbortKind> {
        for &(idx, ver) in &self.read_lines {
            let w = self.htm.lines[idx].load(Ordering::Acquire);
            let current = if is_locked(w) {
                if owner_of(w) != self.owner {
                    return Err(AbortKind::Conflict);
                }
                let prev = self
                    .written_lines
                    .iter()
                    .find(|&&(i, _)| i == idx)
                    .expect("line locked by self must be recorded")
                    .1;
                version_of(prev)
            } else {
                version_of(w)
            };
            if current != ver {
                return Err(AbortKind::Conflict);
            }
        }
        Ok(())
    }

    fn commit(&mut self) -> Result<Option<TxId>, AbortKind> {
        if self.writes.is_empty() {
            // Read-only: the snapshot must still be intact.
            self.validate_reads()?;
            if self.htm.fallback.load(Ordering::Acquire) != self.fallback_snapshot {
                return Err(AbortKind::Conflict);
            }
            return Ok(None);
        }
        let gate = self.htm.commit_gate.read();
        if self.htm.fallback.load(Ordering::Acquire) != self.fallback_snapshot {
            return Err(AbortKind::Conflict);
        }
        // The ID counter lives outside conflict detection — the paper's
        // proposed hardware change (§4.2), emulated per §5.7.
        let tid = self.htm.clock.tick();
        if let Err(k) = self.validate_reads() {
            self.wasted = Some(tid);
            return Err(k);
        }
        for (&addr, &val) in &self.writes {
            self.mem.store(addr, val);
        }
        for (idx, _) in self.written_lines.drain(..) {
            self.htm.lines[idx].store(versioned(tid), Ordering::Release);
        }
        drop(gate);
        self.writes.clear();
        Ok(Some(tid))
    }

    fn commit_fallback(&mut self) -> Option<TxId> {
        if self.fallback_undo.as_ref().is_some_and(|u| u.is_empty()) {
            return None;
        }
        Some(self.htm.clock.tick())
    }

    fn rollback(&mut self) {
        if let Some(undo) = &mut self.fallback_undo {
            for (addr, old) in undo.drain(..).rev() {
                self.mem.store(addr, old);
            }
            return;
        }
        self.writes.clear();
        for (idx, prev) in self.written_lines.drain(..) {
            self.htm.lines[idx].store(prev, Ordering::Release);
        }
    }
}

impl<M: WordMemory + ?Sized, H: TxHooks> TmAccess for HtmTx<'_, M, H> {
    fn tm_read(&mut self, addr: u64) -> TxResult<u64> {
        self.read(addr)
    }

    fn tm_write(&mut self, addr: u64, val: u64) -> TxResult<()> {
        self.write(addr, val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dude_stm::{NoHooks, VecMemory};
    use std::sync::Arc;

    #[test]
    fn single_thread_read_write_commit() {
        let htm = Htm::new(HtmConfig::default());
        let mem = VecMemory::new(1024);
        let mut t = htm.register();
        let out = t.run(&mem, &mut NoHooks, |tx| {
            let v = tx.read(0)?;
            tx.write(0, v + 5)?;
            tx.read(0)
        });
        assert_eq!(out.expect_committed(), 5);
        assert_eq!(mem.load(0), 5);
        assert_eq!(htm.stats().htm_commits, 1);
    }

    #[test]
    fn writes_buffered_until_commit() {
        let htm = Htm::new(HtmConfig::default());
        let mem = VecMemory::new(1024);
        let mut t = htm.register();
        t.run(&mem, &mut NoHooks, |tx| {
            tx.write(0, 9)?;
            assert_eq!(mem.load(0), 0, "speculative write must stay buffered");
            Ok(())
        })
        .expect_committed();
        assert_eq!(mem.load(0), 9);
    }

    #[test]
    fn capacity_abort_falls_back_and_commits() {
        let htm = Htm::new(HtmConfig::tiny()); // 4-line write budget
        let mem = VecMemory::new(1 << 16);
        let mut t = htm.register();
        // Write 32 widely spread words → exceeds 4 lines → fallback.
        let out = t.run(&mem, &mut NoHooks, |tx| {
            for i in 0..32u64 {
                tx.write(i * 512, i)?;
            }
            Ok(())
        });
        assert!(out.is_committed());
        for i in 0..32u64 {
            assert_eq!(mem.load(i * 512), i);
        }
        let s = htm.stats();
        assert_eq!(s.capacity_aborts, 1);
        assert_eq!(s.fallback_commits, 1);
        assert_eq!(s.htm_commits, 0);
    }

    #[test]
    fn user_abort_rolls_back_speculation() {
        let htm = Htm::new(HtmConfig::default());
        let mem = VecMemory::new(1024);
        let mut t = htm.register();
        let out = t.run(&mem, &mut NoHooks, |tx| {
            tx.write(0, 1)?;
            Err::<(), _>(TxAbort::User)
        });
        assert_eq!(out, TxnOutcome::Aborted);
        assert_eq!(mem.load(0), 0);
    }

    #[test]
    fn user_abort_in_fallback_rolls_back_in_place() {
        let htm = Htm::new(HtmConfig::tiny());
        let mem = VecMemory::new(1 << 16);
        let mut t = htm.register();
        let out = t.run(&mem, &mut NoHooks, |tx| {
            for i in 0..32u64 {
                tx.write(i * 512, 7)?; // forces fallback via capacity
            }
            Err::<(), _>(TxAbort::User)
        });
        assert_eq!(out, TxnOutcome::Aborted);
        for i in 0..32u64 {
            assert_eq!(mem.load(i * 512), 0);
        }
    }

    #[test]
    fn concurrent_counter_is_exact() {
        let htm = Arc::new(Htm::new(HtmConfig::default()));
        let mem = Arc::new(VecMemory::new(1024));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let htm = Arc::clone(&htm);
            let mem = Arc::clone(&mem);
            handles.push(std::thread::spawn(move || {
                let mut t = htm.register();
                for _ in 0..500 {
                    t.run(&*mem, &mut NoHooks, |tx| {
                        let v = tx.read(0)?;
                        tx.write(0, v + 1)
                    })
                    .expect_committed();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(mem.load(0), 2000);
    }

    #[test]
    fn tids_unique_and_dense() {
        let htm = Htm::new(HtmConfig::default());
        let mem = VecMemory::new(1024);
        let mut t = htm.register();
        let mut tids = Vec::new();
        for i in 0..10u64 {
            let out = t.run(&mem, &mut NoHooks, |tx| tx.write(0, i));
            tids.push(out.info().unwrap().tid.unwrap());
        }
        assert_eq!(tids, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn read_only_commit_has_no_tid() {
        let htm = Htm::new(HtmConfig::default());
        let mem = VecMemory::new(1024);
        let mut t = htm.register();
        let out = t.run(&mem, &mut NoHooks, |tx| tx.read(0));
        assert_eq!(out.info().unwrap().tid, None);
    }

    #[test]
    fn line_conflict_between_threads_is_resolved() {
        // Two threads hammering words on the same cache line must still
        // produce an exact sum.
        let htm = Arc::new(Htm::new(HtmConfig::default()));
        let mem = Arc::new(VecMemory::new(1024));
        let mut handles = Vec::new();
        for t in 0..2u64 {
            let htm = Arc::clone(&htm);
            let mem = Arc::clone(&mem);
            handles.push(std::thread::spawn(move || {
                let mut th = htm.register();
                for _ in 0..500 {
                    th.run(&*mem, &mut NoHooks, |tx| {
                        let addr = t * 8; // same 64-byte line
                        let v = tx.read(addr)?;
                        tx.write(addr, v + 1)
                    })
                    .expect_committed();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(mem.load(0) + mem.load(8), 1000);
    }

    #[test]
    fn hooks_fire_on_speculative_and_fallback_paths() {
        #[derive(Default)]
        struct Rec {
            writes: usize,
            commits: usize,
            aborts: usize,
        }
        impl TxHooks for Rec {
            fn on_write(&mut self, _a: u64, _v: u64) {
                self.writes += 1;
            }
            fn on_commit(&mut self, _t: Option<TxId>) {
                self.commits += 1;
            }
            fn on_abort(&mut self, _w: Option<TxId>) {
                self.aborts += 1;
            }
        }
        let htm = Htm::new(HtmConfig::tiny());
        let mem = VecMemory::new(1 << 16);
        let mut t = htm.register();
        let mut rec = Rec::default();
        // Capacity abort → one abort + fallback commit; writes observed on
        // both attempts.
        t.run(&mem, &mut rec, |tx| {
            for i in 0..8u64 {
                tx.write(i * 512, i)?;
            }
            Ok(())
        })
        .expect_committed();
        assert_eq!(rec.commits, 1);
        assert_eq!(rec.aborts, 1);
        assert!(rec.writes >= 8, "writes on the fallback attempt observed");
    }

    #[test]
    fn fallback_blocks_speculative_commits() {
        // While one thread holds the fallback lock inside a long
        // transaction, a speculative thread's increments must wait/abort and
        // the final count stays exact.
        let htm = Arc::new(Htm::new(HtmConfig::tiny()));
        let mem = Arc::new(VecMemory::new(1 << 16));
        let h1 = {
            let htm = Arc::clone(&htm);
            let mem = Arc::clone(&mem);
            std::thread::spawn(move || {
                let mut t = htm.register();
                // Capacity-overflowing body → runs in fallback.
                t.run(&*mem, &mut NoHooks, |tx| {
                    for i in 0..16u64 {
                        tx.write(4096 + i * 512, 1)?;
                    }
                    let v = tx.read(0)?;
                    tx.write(0, v + 100)
                })
                .expect_committed();
            })
        };
        let h2 = {
            let htm = Arc::clone(&htm);
            let mem = Arc::clone(&mem);
            std::thread::spawn(move || {
                let mut t = htm.register();
                for _ in 0..100 {
                    t.run(&*mem, &mut NoHooks, |tx| {
                        let v = tx.read(0)?;
                        tx.write(0, v + 1)
                    })
                    .expect_committed();
                }
            })
        };
        h1.join().unwrap();
        h2.join().unwrap();
        assert_eq!(mem.load(0), 200);
    }
}
