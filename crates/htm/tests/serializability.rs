//! Commit-timestamp serializability for the emulated HTM — required for
//! DudeTM's tid-ordered Reproduce step to be correct on the HTM engine
//! (§4.2), including across speculative commits and global-lock fallbacks.

use std::sync::Arc;

use dude_htm::{Htm, HtmConfig};
use dude_stm::{TxHooks, VecMemory, WordMemory};
use parking_lot::Mutex;

#[derive(Default)]
struct CaptureLog {
    staged: Vec<(u64, u64)>,
    committed: Vec<(u64, Vec<(u64, u64)>)>,
}

impl TxHooks for CaptureLog {
    fn on_write(&mut self, addr: u64, val: u64) {
        self.staged.push((addr, val));
    }
    fn on_abort(&mut self, _wasted: Option<u64>) {
        self.staged.clear();
    }
    fn on_commit(&mut self, tid: Option<u64>) {
        let writes = std::mem::take(&mut self.staged);
        if let Some(tid) = tid {
            self.committed.push((tid, writes));
        }
    }
}

fn round(seed: u64, config: HtmConfig) {
    const WORDS: u64 = 64;
    let htm = Arc::new(Htm::new(config));
    let mem = Arc::new(VecMemory::new(WORDS * 8));
    let logs = Arc::new(Mutex::new(Vec::new()));

    std::thread::scope(|s| {
        for t in 0..4u64 {
            let htm = Arc::clone(&htm);
            let mem = Arc::clone(&mem);
            let logs = Arc::clone(&logs);
            s.spawn(move || {
                let mut th = htm.register();
                let mut hooks = CaptureLog::default();
                let mut x = seed ^ (t + 1).wrapping_mul(0x1234_5678);
                for i in 0..300u64 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let a = (x >> 30) % WORDS * 8;
                    let b = (x >> 12) % WORDS * 8;
                    let marker = (t << 32) | i;
                    th.run(&*mem, &mut hooks, |tx| {
                        let va = tx.read(a)?;
                        tx.write(b, va.wrapping_add(marker))?;
                        tx.write(a, va.wrapping_add(1))
                    });
                }
                logs.lock().append(&mut hooks.committed);
            });
        }
    });

    let mut records = Arc::try_unwrap(logs).expect("sole owner").into_inner();
    records.sort_by_key(|&(tid, _)| tid);
    for w in records.windows(2) {
        assert!(w[0].0 < w[1].0, "duplicate tid {}", w[0].0);
    }
    let mut model = vec![0u64; WORDS as usize];
    for (_, writes) in &records {
        for &(addr, val) in writes {
            model[(addr / 8) as usize] = val;
        }
    }
    for i in 0..WORDS {
        assert_eq!(
            mem.load(i * 8),
            model[i as usize],
            "word {i} differs from tid-ordered replay (seed {seed})"
        );
    }
}

#[test]
fn htm_commit_order_is_a_serialization_order() {
    for seed in 0..6 {
        round(seed, HtmConfig::default());
    }
}

#[test]
fn htm_with_fallbacks_stays_serializable() {
    // Tiny capacity: many transactions overflow and take the global-lock
    // fallback path; tids must still serialize the mixed execution.
    for seed in 0..6 {
        round(seed * 7 + 3, HtmConfig::tiny());
    }
}
