//! End-to-end tests of the decoupled pipeline: Perform → Persist →
//! Reproduce, durability acknowledgement, crash recovery, log combination,
//! and paging.

use std::sync::Arc;

use dude_nvm::{Nvm, NvmConfig};
use dude_txapi::{PAddr, TxAbort, TxnSystem, TxnThread};
use dudetm::{DudeTm, DudeTmConfig, DurabilityMode, PagingMode, ShadowConfig, TraceConfig};

fn test_nvm(bytes: u64) -> Arc<Nvm> {
    Arc::new(Nvm::new(NvmConfig::for_testing(bytes)))
}

fn small_config() -> DudeTmConfig {
    DudeTmConfig {
        plog_bytes_per_thread: 1 << 18,
        max_threads: 4,
        ..DudeTmConfig::small(1 << 20)
    }
}

/// Word address of heap slot `i`.
fn slot(i: u64) -> PAddr {
    PAddr::from_word_index(i)
}

#[test]
fn committed_transactions_reach_nvm() {
    let nvm = test_nvm(8 << 20);
    let dude = DudeTm::create_stm(Arc::clone(&nvm), small_config());
    let heap = dude.heap_region();
    {
        let mut t = dude.register_thread();
        for i in 0..100u64 {
            t.run(&mut |tx| tx.write_word(slot(i), i * 10))
                .expect_committed();
        }
    }
    dude.quiesce();
    for i in 0..100u64 {
        assert_eq!(nvm.read_word(heap.start() + i * 8), i * 10);
    }
    let stats = dude.pipeline_stats();
    assert_eq!(stats.commits, 100);
    assert_eq!(stats.txns_reproduced, 100);
}

#[test]
fn durable_id_advances_and_wait_durable_works() {
    let nvm = test_nvm(8 << 20);
    let dude = DudeTm::create_stm(nvm, small_config());
    let mut t = dude.register_thread();
    let out = t.run(&mut |tx| tx.write_word(slot(0), 7));
    let tid = out.info().unwrap().tid.unwrap();
    t.wait_durable(tid);
    assert!(t.durable_watermark() >= tid);
}

#[test]
fn user_abort_leaves_no_trace() {
    let nvm = test_nvm(8 << 20);
    let dude = DudeTm::create_stm(Arc::clone(&nvm), small_config());
    let heap = dude.heap_region();
    {
        let mut t = dude.register_thread();
        t.run(&mut |tx| tx.write_word(slot(0), 1))
            .expect_committed();
        let out = t.run(&mut |tx| {
            tx.write_word(slot(0), 99)?;
            Err::<(), _>(TxAbort::User)
        });
        assert!(!out.is_committed());
        // Shadow must still hold the committed value.
        assert_eq!(t.run(&mut |tx| tx.read_word(slot(0))).expect_committed(), 1);
    }
    dude.quiesce();
    assert_eq!(nvm.read_word(heap.start()), 1);
}

#[test]
fn concurrent_transfers_conserve_money_end_to_end() {
    let nvm = test_nvm(8 << 20);
    let dude = Arc::new(DudeTm::create_stm(Arc::clone(&nvm), small_config()));
    let heap = dude.heap_region();
    const ACCOUNTS: u64 = 32;
    {
        let mut t = dude.register_thread();
        t.run(&mut |tx| {
            for i in 0..ACCOUNTS {
                tx.write_word(slot(i), 100)?;
            }
            Ok(())
        })
        .expect_committed();
    }
    std::thread::scope(|s| {
        for seed0 in 0..3u64 {
            let dude = Arc::clone(&dude);
            s.spawn(move || {
                let mut t = dude.register_thread();
                let mut seed = seed0 + 1;
                for _ in 0..400 {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let a = (seed >> 33) % ACCOUNTS;
                    let b = (seed >> 13) % ACCOUNTS;
                    if a == b {
                        continue;
                    }
                    t.run(&mut |tx| {
                        let va = tx.read_word(slot(a))?;
                        if va == 0 {
                            return Err(TxAbort::User);
                        }
                        tx.write_word(slot(a), va - 1)?;
                        let vb = tx.read_word(slot(b))?;
                        tx.write_word(slot(b), vb + 1)
                    });
                }
            });
        }
    });
    dude.quiesce();
    let total: u64 = (0..ACCOUNTS)
        .map(|i| nvm.read_word(heap.start() + i * 8))
        .sum();
    assert_eq!(total, ACCOUNTS * 100, "NVM image must conserve total");
}

#[test]
fn crash_before_persist_loses_nothing_acknowledged() {
    let nvm = test_nvm(8 << 20);
    let config = small_config();
    let mut durable_values = Vec::new();
    {
        let dude = DudeTm::create_stm(Arc::clone(&nvm), config);
        let mut t = dude.register_thread();
        for i in 0..50u64 {
            let out = t.run(&mut |tx| tx.write_word(slot(i), i + 1));
            let tid = out.info().unwrap().tid.unwrap();
            t.wait_durable(tid);
            durable_values.push((i, i + 1));
        }
        drop(t);
        // Crash with the pipeline mid-flight (no quiesce, no clean drop):
        // simulate by crashing the device *now*.
        nvm.crash();
        // Tear down the runtime afterwards; its final checkpoint writes are
        // post-crash and harmless for this test's purposes — recovery below
        // uses a fresh copy of the device state? No: we recover in-place,
        // so drop must not be allowed to keep flushing. We therefore leak
        // the runtime instead of dropping it.
        std::mem::forget(dude);
    }
    let (dude2, report) = DudeTm::recover_stm(Arc::clone(&nvm), config).unwrap();
    assert!(report.last_tid >= 50, "all acknowledged txns recovered");
    let heap = dude2.heap_region();
    for (i, v) in durable_values {
        assert_eq!(
            nvm.read_word(heap.start() + i * 8),
            v,
            "acknowledged write to slot {i} lost"
        );
    }
}

#[test]
fn recovery_discards_unpersisted_tail_consistently() {
    let nvm = test_nvm(8 << 20);
    let config = small_config();
    {
        let dude = DudeTm::create_stm(Arc::clone(&nvm), config);
        let mut t = dude.register_thread();
        // Transaction writing two slots atomically, many times.
        for i in 0..200u64 {
            t.run(&mut |tx| {
                tx.write_word(slot(0), i)?;
                tx.write_word(slot(1), i)
            })
            .expect_committed();
        }
        drop(t);
        nvm.crash();
        std::mem::forget(dude);
    }
    let (dude2, _) = DudeTm::recover_stm(Arc::clone(&nvm), config).unwrap();
    let heap = dude2.heap_region();
    // Atomicity across the crash: both slots hold the same value.
    let a = nvm.read_word(heap.start());
    let b = nvm.read_word(heap.start() + 8);
    assert_eq!(a, b, "crash broke transaction atomicity: {a} vs {b}");
}

#[test]
fn recovered_runtime_continues_transaction_ids() {
    let nvm = test_nvm(8 << 20);
    let config = small_config();
    let last;
    {
        let dude = DudeTm::create_stm(Arc::clone(&nvm), config);
        let mut t = dude.register_thread();
        for i in 0..10u64 {
            t.run(&mut |tx| tx.write_word(slot(i), 1))
                .expect_committed();
        }
        drop(t);
        dude.quiesce();
        last = dude.reproduced_id();
        // Clean shutdown (Drop drains the pipeline and checkpoints).
    }
    let (dude2, report) = DudeTm::recover_stm(Arc::clone(&nvm), config).unwrap();
    assert_eq!(report.checkpoint, last, "clean shutdown checkpointed all");
    assert_eq!(report.replayed, 0);
    let mut t = dude2.register_thread();
    let out = t.run(&mut |tx| tx.write_word(slot(0), 2));
    assert_eq!(out.info().unwrap().tid.unwrap(), last + 1);
}

#[test]
fn recover_unformatted_device_fails() {
    let nvm = test_nvm(8 << 20);
    let err = DudeTm::recover_stm(nvm, small_config()).unwrap_err();
    assert_eq!(err, dudetm::RecoverError::NotFormatted);
}

#[test]
fn sync_mode_is_durable_at_return() {
    let nvm = test_nvm(8 << 20);
    let config = small_config().with_durability(DurabilityMode::Sync);
    let dude = DudeTm::create_stm(Arc::clone(&nvm), config);
    let mut t = dude.register_thread();
    let out = t.run(&mut |tx| tx.write_word(slot(3), 33));
    let tid = out.info().unwrap().tid.unwrap();
    // DudeTM-Sync: durable before run() returns, no waiting.
    assert!(dude.durable_id() >= tid);
    drop(t);
    dude.quiesce();
    assert_eq!(nvm.read_word(dude.heap_region().start() + 24), 33);
}

#[test]
fn sync_mode_survives_immediate_crash() {
    let nvm = test_nvm(8 << 20);
    let config = small_config().with_durability(DurabilityMode::Sync);
    {
        let dude = DudeTm::create_stm(Arc::clone(&nvm), config);
        let mut t = dude.register_thread();
        t.run(&mut |tx| tx.write_word(slot(7), 77))
            .expect_committed();
        drop(t);
        nvm.crash();
        std::mem::forget(dude);
    }
    let (dude2, report) = DudeTm::recover_stm(Arc::clone(&nvm), config).unwrap();
    assert_eq!(report.last_tid, 1);
    assert_eq!(nvm.read_word(dude2.heap_region().start() + 56), 77);
}

#[test]
fn unbounded_mode_works() {
    let nvm = test_nvm(8 << 20);
    let config = small_config().with_durability(DurabilityMode::AsyncUnbounded);
    let dude = DudeTm::create_stm(Arc::clone(&nvm), config);
    assert_eq!(TxnSystem::name(&dude), "DudeTM-Inf");
    {
        let mut t = dude.register_thread();
        for i in 0..500u64 {
            t.run(&mut |tx| tx.write_word(slot(i % 64), i))
                .expect_committed();
        }
    }
    dude.quiesce();
    assert_eq!(dude.pipeline_stats().txns_reproduced, 500);
}

#[test]
fn grouped_persist_combines_and_reproduces_correctly() {
    let nvm = test_nvm(8 << 20);
    let config = small_config().with_grouping(10, false);
    let dude = DudeTm::create_stm(Arc::clone(&nvm), config);
    let heap = dude.heap_region();
    {
        let mut t = dude.register_thread();
        // 100 transactions all hammering the same 4 slots: combination
        // should crush the entry count.
        for i in 0..100u64 {
            t.run(&mut |tx| tx.write_word(slot(i % 4), i))
                .expect_committed();
        }
    }
    dude.quiesce();
    // Final values: the last write to each slot wins (tid order).
    for s in 0..4u64 {
        let expect = (0..100u64).filter(|i| i % 4 == s).max().unwrap();
        assert_eq!(nvm.read_word(heap.start() + s * 8), expect);
    }
    let stats = dude.pipeline_stats();
    assert!(stats.groups_persisted >= 10);
    assert!(
        stats.combine_savings() > 0.5,
        "expected >50% entries saved, got {:.2}",
        stats.combine_savings()
    );
}

#[test]
fn grouped_and_compressed_survives_crash() {
    let nvm = test_nvm(8 << 20);
    let config = small_config().with_grouping(8, true);
    {
        let dude = DudeTm::create_stm(Arc::clone(&nvm), config);
        let mut t = dude.register_thread();
        for i in 0..64u64 {
            let out = t.run(&mut |tx| tx.write_word(slot(i), i + 1));
            let tid = out.info().unwrap().tid.unwrap();
            t.wait_durable(tid);
        }
        drop(t);
        nvm.crash();
        std::mem::forget(dude);
    }
    let (dude2, report) = DudeTm::recover_stm(Arc::clone(&nvm), config).unwrap();
    assert_eq!(report.last_tid, 64);
    let heap = dude2.heap_region();
    for i in 0..64u64 {
        assert_eq!(nvm.read_word(heap.start() + i * 8), i + 1);
    }
}

#[test]
fn paged_shadow_end_to_end() {
    for mode in [PagingMode::Software, PagingMode::Hardware] {
        let nvm = test_nvm(8 << 20);
        // 1 MiB heap = 256 pages, but only 8 shadow frames.
        let config = small_config().with_shadow(ShadowConfig::Paged { frames: 8, mode });
        let dude = DudeTm::create_stm(Arc::clone(&nvm), config);
        let heap = dude.heap_region();
        {
            let mut t = dude.register_thread();
            // Write one word on each of 64 pages: forces heavy swapping.
            for page in 0..64u64 {
                let addr = PAddr::new(page * dudetm::PAGE_BYTES);
                t.run(&mut |tx| tx.write_word(addr, page + 1))
                    .expect_committed();
            }
            // Read them all back (re-faults evicted pages; values must come
            // back via NVM after reproduction).
            for page in 0..64u64 {
                let addr = PAddr::new(page * dudetm::PAGE_BYTES);
                let v = t.run(&mut |tx| tx.read_word(addr)).expect_committed();
                assert_eq!(v, page + 1, "page {page} mode {mode:?}");
            }
        }
        dude.quiesce();
        for page in 0..64u64 {
            assert_eq!(
                nvm.read_word(heap.start() + page * dudetm::PAGE_BYTES),
                page + 1
            );
        }
        let s = dude.shadow_stats();
        assert!(s.swap_ins >= 64, "mode {mode:?}: {s:?}");
        assert!(s.swap_outs > 0);
    }
}

#[test]
fn htm_engine_end_to_end() {
    let nvm = test_nvm(8 << 20);
    let dude = DudeTm::create_htm(Arc::clone(&nvm), small_config());
    let heap = dude.heap_region();
    {
        let mut t = dude.register_thread();
        for i in 0..50u64 {
            t.run(&mut |tx| {
                let v = tx.read_word(slot(0))?;
                tx.write_word(slot(0), v + i)
            })
            .expect_committed();
        }
    }
    dude.quiesce();
    assert_eq!(nvm.read_word(heap.start()), (0..50u64).sum());
}

#[test]
fn htm_crash_recovery() {
    let nvm = test_nvm(8 << 20);
    let config = small_config();
    {
        let dude = DudeTm::create_htm(Arc::clone(&nvm), config);
        let mut t = dude.register_thread();
        for i in 0..20u64 {
            let out = t.run(&mut |tx| tx.write_word(slot(i), i));
            let tid = out.info().unwrap().tid.unwrap();
            t.wait_durable(tid);
        }
        drop(t);
        nvm.crash();
        std::mem::forget(dude);
    }
    let (dude2, report) = DudeTm::recover_htm(Arc::clone(&nvm), config).unwrap();
    assert_eq!(report.last_tid, 20);
    let heap = dude2.heap_region();
    for i in 0..20u64 {
        assert_eq!(nvm.read_word(heap.start() + i * 8), i);
    }
}

#[test]
fn multi_thread_multi_persist_pipeline() {
    let nvm = test_nvm(8 << 20);
    let config = DudeTmConfig {
        persist_threads: 2,
        ..small_config()
    };
    let dude = Arc::new(DudeTm::create_stm(Arc::clone(&nvm), config));
    std::thread::scope(|s| {
        for t0 in 0..4u64 {
            let dude = Arc::clone(&dude);
            s.spawn(move || {
                let mut t = dude.register_thread();
                for i in 0..250u64 {
                    t.run(&mut |tx| tx.write_word(slot(t0 * 64 + (i % 64)), i))
                        .expect_committed();
                }
            });
        }
    });
    dude.quiesce();
    assert_eq!(dude.pipeline_stats().txns_reproduced, 1000);
    assert_eq!(dude.durable_id(), 1000);
}

#[test]
fn stats_snapshot_watermarks_and_occupancy() {
    let nvm = test_nvm(8 << 20);
    let dude = DudeTm::create_stm(Arc::clone(&nvm), small_config());
    {
        let mut t = dude.register_thread();
        for i in 0..100u64 {
            t.run(&mut |tx| tx.write_word(slot(i % 16), i))
                .expect_committed();
        }
    }
    dude.quiesce();
    let snap = dude.stats_snapshot();
    // After quiesce the three watermarks coincide at the last commit.
    assert_eq!(snap.committed, 100);
    assert_eq!(snap.durable, 100);
    assert_eq!(snap.reproduced, 100);
    assert_eq!(snap.persist_lag(), 0);
    assert_eq!(snap.reproduce_lag(), 0);
    // Stage counters ride along in the same snapshot.
    assert_eq!(snap.counters.commits, 100);
    assert_eq!(snap.counters.txns_reproduced, 100);
    // One occupancy gauge per log ring; everything reproduced under a
    // small checkpoint cadence means at most the un-checkpointed tail
    // remains, never more than the rings can hold.
    assert_eq!(snap.ring_used_words.len(), small_config().max_threads);
    assert!(snap.ring_words_total() <= small_config().plog_bytes_per_thread / 8 * 4);
    let line = snap.summary();
    assert!(line.contains("committed=100"), "{line}");
}

/// Starvation/livelock regression for the Persist parked-record path
/// (`try_stage_record` giving the record back when the NVM log ring is
/// full, and the drain loop retrying it each sweep).
///
/// The adversarial setup: the smallest legal per-thread log ring (4 KiB),
/// a checkpoint cadence so large it never fires on count — so Reproduce
/// recycles spans only through its idle-checkpoint fallback, approximating
/// a stalled Reproduce stage — and a 4-deep bounded Perform→Persist
/// buffer, so a wedged Persist propagates backpressure into `t.run()`.
/// Each worker pushes enough 8-word transactions to wrap its ring dozens
/// of times. The liveness chain under test: ring full → record parked →
/// Perform blocks on the bounded channel → pipeline goes quiescent →
/// Reproduce's idle checkpoint releases covered spans → the parked record
/// restages on the next Persist sweep. A livelock or lost parked record
/// shows up as this test hanging (or the final heap/image counts coming
/// up short); the stall-counter assertion proves the full-ring path
/// actually ran rather than the test passing vacuously.
/// Shared body for the native test and its fixed-seed sim twin: runs the
/// full-ring workload, asserts every deterministic invariant (commit and
/// replay counts, final heap image), and returns the ring-full stall
/// count — the one schedule-dependent observable — for the caller to
/// judge. Workers spawn through `dude_nvm::thread` so the same code runs
/// on OS threads natively and as virtual-scheduler tasks under sim.
fn full_ring_body(threads: u64, txns: u64) -> u64 {
    const WORDS_PER_TXN: u64 = 8;
    let nvm = test_nvm(8 << 20);
    let config = DudeTmConfig {
        plog_bytes_per_thread: 4096,
        checkpoint_every: u64::MAX / 2,
        durability: DurabilityMode::Async { buffer_txns: 4 },
        ..small_config()
    }
    .with_trace(TraceConfig::enabled(1024));
    let dude = Arc::new(DudeTm::create_stm(Arc::clone(&nvm), config));
    let heap = dude.heap_region();
    let mut handles = Vec::new();
    for t0 in 0..threads {
        let dude = Arc::clone(&dude);
        handles.push(dude_nvm::thread::spawn_named(
            &format!("ring-writer-{t0}"),
            move || {
                let mut t = dude.register_thread();
                let mut last = None;
                for i in 0..txns {
                    let out = t.run(&mut |tx| {
                        for w in 0..WORDS_PER_TXN {
                            tx.write_word(slot(t0 * WORDS_PER_TXN + w), i + w)?;
                        }
                        Ok(())
                    });
                    last = out.info().unwrap().tid;
                }
                // Durability must stay reachable even with the ring at
                // capacity; a starved parked record would hang us here.
                t.wait_durable(last.unwrap());
            },
        ));
    }
    for h in handles {
        h.join().expect("ring writer panicked");
    }
    dude.quiesce();
    let snap = dude.stats_snapshot();
    assert_eq!(snap.counters.commits, threads * txns);
    assert_eq!(snap.counters.txns_reproduced, threads * txns);
    // Every thread's final transaction reached the heap image.
    for t0 in 0..threads {
        for w in 0..WORDS_PER_TXN {
            assert_eq!(
                nvm.read_word(heap.start() + (t0 * WORDS_PER_TXN + w) * 8),
                txns - 1 + w
            );
        }
    }
    snap.stalls.persist_ring_full
}

/// The liveness chain under test: ring full → record parked → Perform
/// blocks on the bounded channel → pipeline goes quiescent → Reproduce's
/// idle checkpoint releases covered spans → the parked record restages on
/// the next Persist sweep. A livelock or lost parked record shows up as
/// this test hanging (or the final heap/image counts coming up short).
///
/// Whether the ring *observably* fills depends on how the OS schedules
/// Persist against Reproduce, so the stall probe tolerates a bounded
/// number of quiet runs instead of flaking on a loaded machine; the
/// deterministic invariants inside `full_ring_body` are asserted on every
/// attempt, and the sim twin below pins the stall itself under a fixed
/// virtual schedule.
#[test]
fn full_ring_parks_records_without_losing_progress() {
    for _ in 0..3 {
        if full_ring_body(2, 400) > 0 {
            return;
        }
        eprintln!("ring never filled this run; retrying under fresh scheduling");
    }
    panic!("ring never filled in 3 runs — the parked path was not exercised");
}

/// Sim twin: the same body under the virtual scheduler, where the seed
/// fixes the schedule and the ring-full stall is a deterministic fact of
/// it, not a race we hope to win.
#[cfg(feature = "sim")]
#[test]
fn full_ring_parks_records_without_losing_progress_sim() {
    let seed = std::env::var("DUDE_SIM_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(7);
    let report = dude_sim::run(dude_sim::SimConfig::from_seed(seed), move || {
        full_ring_body(2, 400)
    });
    if let Some(p) = report.panic {
        eprintln!("DUDE_SIM_SEED={seed}");
        panic!("sim run failed under seed {seed}: {p}");
    }
    let stalls = report.result.expect("no panic implies a result");
    assert!(
        stalls > 0,
        "ring never filled under the seed-{seed} schedule (DUDE_SIM_SEED={seed})"
    );
}

#[test]
fn bounds_violation_panics() {
    let nvm = test_nvm(8 << 20);
    let dude = DudeTm::create_stm(nvm, small_config());
    let mut t = dude.register_thread();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        t.run(&mut |tx| tx.read_word(PAddr::new(1 << 20)))
    }));
    assert!(result.is_err(), "out-of-heap access must panic");
}
