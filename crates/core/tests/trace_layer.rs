//! Deterministic tests of the observability layer: that enabling it
//! records what the pipeline actually did, and that disabling it leaves
//! the pipeline's observable behavior untouched.

use std::sync::Arc;

use dude_nvm::{Nvm, NvmConfig};
use dude_txapi::{PAddr, TxnSystem, TxnThread};
use dudetm::{DudeTm, DudeTmConfig, DurabilityMode, PipelineSnapshot, TraceConfig};

fn test_nvm(bytes: u64) -> Arc<Nvm> {
    Arc::new(Nvm::new(NvmConfig::for_testing(bytes)))
}

fn config(trace: TraceConfig) -> DudeTmConfig {
    DudeTmConfig {
        plog_bytes_per_thread: 1 << 18,
        max_threads: 4,
        trace,
        ..DudeTmConfig::small(1 << 20)
    }
}

/// Runs a fixed single-thread workload and returns the final snapshot plus
/// a copy of the heap words it wrote.
fn run_workload(cfg: DudeTmConfig) -> (PipelineSnapshot, Vec<u64>, Arc<Nvm>) {
    let nvm = test_nvm(8 << 20);
    let dude = DudeTm::create_stm(Arc::clone(&nvm), cfg);
    let heap = dude.heap_region();
    {
        let mut t = dude.register_thread();
        for i in 0..200u64 {
            t.run(&mut |tx| {
                tx.write_word(PAddr::from_word_index(i % 64), i)?;
                tx.write_word(PAddr::from_word_index(64 + i % 32), i * 3)
            })
            .expect_committed();
        }
    }
    dude.quiesce();
    let snap = dude.stats_snapshot();
    let words = (0..96)
        .map(|i| nvm.read_word(heap.start() + i * 8))
        .collect();
    drop(dude);
    (snap, words, nvm)
}

/// The zero-overhead contract, tested at the observable level: with
/// tracing disabled, the pipeline's snapshot and the final heap image are
/// identical to an enabled run of the same deterministic workload — i.e.
/// recording changes nothing the application can see. (The `checkpoints`
/// counter is timing-dependent — idle ticks checkpoint opportunistically —
/// so it is normalized out, as are the stall counters the disabled run by
/// definition keeps at zero.)
#[test]
fn disabled_trace_is_behavior_identical_to_enabled() {
    let (mut snap_off, heap_off, _) = run_workload(config(TraceConfig::disabled()));
    let (mut snap_on, heap_on, _) = run_workload(config(TraceConfig::enabled(4096)));
    assert_eq!(heap_off, heap_on, "heap image must not depend on tracing");
    snap_off.counters.checkpoints = 0;
    snap_on.counters.checkpoints = 0;
    snap_on.stalls = Default::default();
    // Histogram counts are what tracing records — the disabled run keeps
    // them empty by contract, so they are not part of the equality.
    snap_off.histograms.clear();
    snap_on.histograms.clear();
    assert_eq!(
        snap_off, snap_on,
        "PipelineSnapshot must not depend on tracing"
    );
}

/// Sim twin of the zero-overhead contract: both runs execute under the
/// virtual clock (tracing timestamps come from `monotonic_ns`, which the
/// scheduler owns), so the comparison is reproducible — a divergence
/// replays exactly with the printed seed rather than vanishing on rerun.
#[cfg(feature = "sim")]
#[test]
fn disabled_trace_is_behavior_identical_to_enabled_sim() {
    let seed = std::env::var("DUDE_SIM_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(7);
    let mut results = Vec::new();
    for trace in [TraceConfig::disabled(), TraceConfig::enabled(4096)] {
        let report = dude_sim::run(dude_sim::SimConfig::from_seed(seed), move || {
            run_workload(config(trace))
        });
        if let Some(p) = report.panic {
            eprintln!("DUDE_SIM_SEED={seed}");
            panic!("sim run failed under seed {seed}: {p}");
        }
        let (snap, heap, _nvm) = report.result.expect("no panic implies a result");
        results.push((snap, heap));
    }
    let (mut snap_off, heap_off) = results.remove(0);
    let (mut snap_on, heap_on) = results.remove(0);
    assert_eq!(
        heap_off, heap_on,
        "heap image must not depend on tracing (DUDE_SIM_SEED={seed})"
    );
    // Tracing adds virtual-clock yield points, so the two schedules are
    // not step-identical; normalize the schedule-dependent counters, as
    // the native test does.
    snap_off.counters.checkpoints = 0;
    snap_on.counters.checkpoints = 0;
    snap_off.stalls = Default::default();
    snap_on.stalls = Default::default();
    snap_off.histograms.clear();
    snap_on.histograms.clear();
    assert_eq!(
        snap_off, snap_on,
        "PipelineSnapshot must not depend on tracing (DUDE_SIM_SEED={seed})"
    );
}

#[test]
fn disabled_trace_records_and_counts_nothing() {
    let nvm = test_nvm(8 << 20);
    let dude = DudeTm::create_stm(nvm, config(TraceConfig::disabled()));
    {
        let mut t = dude.register_thread();
        for i in 0..50u64 {
            t.run(&mut |tx| tx.write_word(PAddr::from_word_index(i), i))
                .expect_committed();
        }
    }
    dude.quiesce();
    let trace = dude.trace();
    assert!(!trace.enabled());
    assert_eq!(trace.ring().recorded(), 0);
    assert_eq!(trace.commit_latency_ns.snapshot().count, 0);
    assert_eq!(trace.persist_barrier_ns.snapshot().count, 0);
    let stalls = dude.stats_snapshot().stalls;
    assert_eq!(stalls, Default::default());
}

/// An enabled trace sees every commit in the latency histogram, persist
/// barriers in theirs, replay applies per shard, and events in the ring.
#[test]
fn enabled_trace_records_the_pipeline() {
    let nvm = test_nvm(8 << 20);
    let dude = DudeTm::create_stm(nvm, config(TraceConfig::enabled(65536)));
    {
        let mut t = dude.register_thread();
        for i in 0..100u64 {
            t.run(&mut |tx| tx.write_word(PAddr::from_word_index(i % 64), i))
                .expect_committed();
        }
    }
    dude.quiesce();
    let trace = dude.trace();
    assert_eq!(trace.commit_latency_ns.snapshot().count, 100);
    assert!(trace.persist_barrier_ns.snapshot().count > 0);
    assert!(trace.replay_apply_ns[0].snapshot().count > 0);
    assert!(trace.ring().recorded() > 0);
    assert_eq!(trace.ring().dropped(), 0, "65536-record ring must not drop");
    // Every record decodes to a stamped event.
    let records = trace.ring().records();
    assert!(!records.is_empty());
    assert!(records.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    let json = trace.to_json();
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"commit\""));
    assert!(json.contains("\"replay_apply\""));
}

/// Sharded mode records per-shard replay histograms sized by
/// `reproduce_threads`.
#[test]
fn sharded_replay_histograms_are_per_shard() {
    let nvm = test_nvm(8 << 20);
    let cfg = config(TraceConfig::enabled(16384)).with_reproduce_threads(4);
    let dude = DudeTm::create_stm(nvm, cfg);
    {
        let mut t = dude.register_thread();
        for i in 0..200u64 {
            // Scatter writes across cache lines so every shard sees work.
            t.run(&mut |tx| tx.write_word(PAddr::from_word_index((i * 8) % 1024), i))
                .expect_committed();
        }
    }
    dude.quiesce();
    let trace = dude.trace();
    assert_eq!(trace.replay_apply_ns.len(), 4);
    let total: u64 = trace
        .replay_apply_ns
        .iter()
        .map(|h| h.snapshot().count)
        .sum();
    assert!(total > 0, "some shard must have recorded applies");
    let json = trace.to_json();
    assert!(json.contains("replay_apply_ns_shard3"), "{json}");
}

/// Shared body for the native stall test and its sim twin: a 1-txn
/// volatile buffer, 500 commits, returns the perform_log_full count. The
/// commit/replay counts it asserts are schedule-independent; whether
/// Perform observably blocked is not, so the callers judge the returned
/// stall count each in their own way.
fn tiny_buffer_body() -> u64 {
    let nvm = test_nvm(8 << 20);
    let mut cfg = config(TraceConfig::enabled(4096));
    cfg.durability = DurabilityMode::Async { buffer_txns: 1 };
    let dude = DudeTm::create_stm(nvm, cfg);
    {
        let mut t = dude.register_thread();
        for i in 0..500u64 {
            t.run(&mut |tx| tx.write_word(PAddr::from_word_index(i % 128), i))
                .expect_committed();
        }
    }
    dude.quiesce();
    let snap = dude.stats_snapshot();
    assert_eq!(snap.counters.commits, 500);
    assert_eq!(snap.counters.txns_reproduced, 500);
    snap.stalls.perform_log_full
}

/// Perform blocking on a tiny bounded volatile log shows up as the
/// perform_log_full stall (Finding 2's "rarely blocks" made measurable).
/// On the native scheduler a sufficiently fast Persist thread can drain
/// the 1-txn buffer between every commit, so the probe tolerates a
/// bounded number of stall-free runs instead of flaking; the sim twin
/// below asserts the stall outright under a fixed virtual schedule.
#[test]
fn tiny_buffer_counts_perform_log_full_stalls() {
    for _ in 0..3 {
        if tiny_buffer_body() > 0 {
            return;
        }
        eprintln!("no perform_log_full stall this run; retrying");
    }
    panic!("a 1-txn buffer never observably blocked Perform in 3 runs");
}

/// Sim twin: under the virtual scheduler the schedule is a function of
/// the seed, so the stall either deterministically happens or the seed is
/// wrong — no retries, no tolerance.
#[cfg(feature = "sim")]
#[test]
fn tiny_buffer_counts_perform_log_full_stalls_sim() {
    let seed = std::env::var("DUDE_SIM_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(7);
    let report = dude_sim::run(dude_sim::SimConfig::from_seed(seed), tiny_buffer_body);
    if let Some(p) = report.panic {
        eprintln!("DUDE_SIM_SEED={seed}");
        panic!("sim run failed under seed {seed}: {p}");
    }
    let stalls = report.result.expect("no panic implies a result");
    assert!(
        stalls > 0,
        "1-txn buffer never blocked Perform under the seed-{seed} schedule \
         (DUDE_SIM_SEED={seed})"
    );
}

/// The summary line always carries the four stall counters, and the trace
/// accessor works across engine types (API-surface check).
#[test]
fn summary_and_accessor_surface_the_layer() {
    let nvm = test_nvm(8 << 20);
    let dude = DudeTm::create_stm(nvm, config(TraceConfig::enabled(1024)));
    {
        let mut t = dude.register_thread();
        t.run(&mut |tx| tx.write_word(PAddr::from_word_index(0), 1))
            .expect_committed();
    }
    dude.quiesce();
    let line = dude.stats_snapshot().summary();
    for key in ["log-full=", "ring-full=", "starved=", "ckpt-wait="] {
        assert!(line.contains(key), "summary missing {key}: {line}");
    }
    assert!(dude.trace().config().enabled);
}
