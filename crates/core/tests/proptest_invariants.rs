//! Property tests on the core building blocks.

use proptest::prelude::*;

use dudetm::log::{combine, parse_record, serialize_commit, serialize_group, LogRecord};
use dudetm::{shard_of, split_writes, ReproduceFrontier, SequenceTracker, SHARD_GRAIN_BYTES};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// SequenceTracker's watermark always equals the naive model: the
    /// largest D with all of 1..=D marked.
    #[test]
    fn seqtracker_matches_model(ids in proptest::collection::vec(1u64..200, 1..100)) {
        let mut unique = ids.clone();
        unique.sort_unstable();
        unique.dedup();
        let tracker = SequenceTracker::new();
        let mut marked = std::collections::HashSet::new();
        for &id in &unique {
            tracker.mark(id);
            marked.insert(id);
            let model = (1..).take_while(|d| marked.contains(d)).count() as u64;
            prop_assert_eq!(tracker.watermark(), model);
        }
    }

    /// Commit records roundtrip through the persistent format for
    /// arbitrary write sets.
    #[test]
    fn commit_record_roundtrip(
        tid in 1u64..u64::MAX,
        writes in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..64),
    ) {
        let mut buf = Vec::new();
        serialize_commit(tid, &writes, &mut buf);
        let rec = parse_record(&buf).expect("own serialization parses");
        prop_assert_eq!(rec.first_tid, tid);
        prop_assert_eq!(rec.writes, writes);
        prop_assert_eq!(rec.words, buf.len());
    }

    /// Group records roundtrip with and without compression.
    #[test]
    fn group_record_roundtrip(
        first in 1u64..1000,
        span in 0u64..50,
        writes in proptest::collection::vec((0u64..4096, 0u64..16), 0..128),
        compress in any::<bool>(),
    ) {
        let mut buf = Vec::new();
        serialize_group(first, first + span, &writes, compress, &mut buf);
        let rec = parse_record(&buf).expect("group parses");
        prop_assert_eq!((rec.first_tid, rec.last_tid), (first, first + span));
        prop_assert_eq!(rec.writes, writes);
    }

    /// Single-bit corruption of any serialized record is always detected.
    #[test]
    fn record_corruption_detected(
        writes in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..16),
        word in 0usize..64,
        bit in 0u32..64,
    ) {
        let mut buf = Vec::new();
        serialize_commit(7, &writes, &mut buf);
        let word = word % buf.len();
        buf[word] ^= 1u64 << bit;
        // Either it fails to parse, or (astronomically unlikely) it parses
        // into something different — it must never parse back identical.
        if let Some(rec) = parse_record(&buf) {
            prop_assert!(rec.first_tid != 7 || rec.writes != writes);
        }
    }

    /// Replaying a combined group produces exactly the same memory state as
    /// replaying the underlying transactions one by one in ID order.
    #[test]
    fn combination_preserves_replay_semantics(
        txns in proptest::collection::vec(
            proptest::collection::vec((0u64..32, any::<u64>()), 0..8),
            1..20,
        ),
    ) {
        let records: Vec<LogRecord> = txns
            .iter()
            .enumerate()
            .map(|(i, writes)| LogRecord::Commit {
                tid: i as u64 + 1,
                writes: writes.clone(),
            })
            .collect();
        // Sequential replay.
        let mut seq = std::collections::HashMap::new();
        for rec in &records {
            for &(addr, val) in rec.writes() {
                seq.insert(addr, val);
            }
        }
        // Combined replay.
        let mut comb = std::collections::HashMap::new();
        for (addr, val) in combine(&records) {
            comb.insert(addr, val);
        }
        prop_assert_eq!(seq, comb);
    }

    /// The shard router's partition invariant: for an arbitrary write set
    /// and shard count, every address lands in exactly one shard (the one
    /// `shard_of` names), nothing is lost or duplicated, and per-shard
    /// write order is the original order restricted to that shard — so
    /// per-address replay order is preserved.
    #[test]
    fn split_writes_partitions_without_cross_shard_aliasing(
        writes in proptest::collection::vec((0u64..(1 << 20), any::<u64>()), 0..128),
        shards in 1usize..17,
    ) {
        let parts = split_writes(&writes, shards);
        prop_assert_eq!(parts.len(), shards);
        let total: usize = parts.iter().map(Vec::len).sum();
        prop_assert_eq!(total, writes.len());
        for (s, part) in parts.iter().enumerate() {
            // Every write is in the shard `shard_of` names — therefore no
            // address can appear in two shards.
            for &(addr, _) in part {
                prop_assert_eq!(shard_of(addr, shards), s);
            }
            // Order within the shard is the original order filtered.
            let filtered: Vec<(u64, u64)> = writes
                .iter()
                .copied()
                .filter(|&(a, _)| shard_of(a, shards) == s)
                .collect();
            prop_assert_eq!(part.clone(), filtered);
        }
        // Addresses on one cache line always share a shard: a line is
        // never split across workers.
        for &(addr, _) in &writes {
            let line = addr / SHARD_GRAIN_BYTES * SHARD_GRAIN_BYTES;
            prop_assert_eq!(shard_of(line, shards), shard_of(addr, shards));
        }
    }

    /// The frontier invariant: after an arbitrary interleaving of per-shard
    /// publishes, the minimum never exceeds any shard's completed TID, and
    /// it equals the model minimum exactly.
    #[test]
    fn frontier_min_never_exceeds_any_shard(
        shards in 1usize..9,
        start in 0u64..1000,
        publishes in proptest::collection::vec((0usize..8, 1u64..50), 0..64),
    ) {
        let frontier = ReproduceFrontier::new(shards, start);
        let mut model = vec![start; shards];
        for &(shard, advance) in &publishes {
            let shard = shard % shards;
            // Frontiers are monotonic: publish a TID at or above the
            // shard's current one, as the router's dense dispatch does.
            let tid = model[shard] + advance;
            frontier.publish(shard, tid);
            model[shard] = tid;
            let min = frontier.min_completed();
            for (s, &completed) in model.iter().enumerate() {
                prop_assert!(
                    min <= completed,
                    "min {} exceeds shard {}'s completed TID {}",
                    min, s, completed
                );
                prop_assert_eq!(frontier.completed(s), completed);
            }
            prop_assert_eq!(min, *model.iter().min().expect("non-empty"));
        }
    }
}
