//! Property tests for the metrics layer's math: histogram quantiles
//! against an exact nearest-rank oracle, and the Prometheus exposition's
//! structural invariants under arbitrary histogram contents.

use proptest::prelude::*;

use dudetm::trace::bucket_bounds;
use dudetm::{validate_exposition, LatencyHistogram, MetricsBuilder, MetricsConfig};

/// `(lo, hi)` of the power-of-two bucket holding `v` — the oracle's view
/// of the resolution the histogram quantizes to.
fn bounds_of(v: u64) -> (u64, u64) {
    for b in 0..=64 {
        let (lo, hi) = bucket_bounds(b);
        if (lo..=hi).contains(&v) {
            return (lo, hi);
        }
    }
    unreachable!("every u64 lands in some bucket");
}

/// Exact nearest-rank quantile over the raw values (the definition the
/// histogram approximates): the smallest value with at least
/// `ceil(q * n)` values at or below it.
fn exact_nearest_rank(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The histogram quantile brackets the exact nearest-rank value: never
    /// below it, and never past the upper bound of its power-of-two bucket
    /// (clamped to the true maximum). This pins the estimator to its
    /// documented resolution for any value distribution and any quantile.
    #[test]
    fn quantile_brackets_the_nearest_rank_oracle(
        values in proptest::collection::vec(any::<u64>(), 1..200),
        q_millis in 1u32..1001,
    ) {
        let q = f64::from(q_millis) / 1000.0;
        let hist = LatencyHistogram::default();
        for &v in &values {
            hist.record(v);
        }
        let snap = hist.snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let exact = exact_nearest_rank(&sorted, q);
        let max = *sorted.last().expect("non-empty");
        let estimate = snap.quantile(q);
        prop_assert!(
            estimate >= exact,
            "quantile({q}) = {estimate} underestimates exact {exact}"
        );
        prop_assert!(
            estimate <= bounds_of(exact).1.min(max),
            "quantile({q}) = {estimate} overshoots bucket {:?} of exact {exact} (max {max})",
            bounds_of(exact)
        );
    }

    /// Quantiles are monotone in `q`, and the extremes behave: any
    /// quantile is at most the recorded maximum, and the top quantile
    /// reaches the maximum's bucket.
    #[test]
    fn quantiles_are_monotone_and_bounded(
        values in proptest::collection::vec(0u64..1_000_000, 1..100),
    ) {
        let hist = LatencyHistogram::default();
        for &v in &values {
            hist.record(v);
        }
        let snap = hist.snapshot();
        let max = *values.iter().max().expect("non-empty");
        let mut prev = 0u64;
        for q_millis in [10u32, 250, 500, 750, 900, 950, 990, 1000] {
            let est = snap.quantile(f64::from(q_millis) / 1000.0);
            prop_assert!(est >= prev, "quantile must be monotone in q");
            prop_assert!(est <= max, "quantile {est} exceeds max {max}");
            prev = est;
        }
        prop_assert_eq!(snap.quantile(1.0), max, "p100 is the exact maximum");
    }

    /// Any histogram, rendered into the exposition, satisfies the
    /// Prometheus structural invariants the validator checks: cumulative
    /// buckets, `+Inf == _count`, declared families — including histograms
    /// holding extreme values (bucket 64) and empty ones.
    #[test]
    fn exposition_validates_for_arbitrary_histograms(
        values in proptest::collection::vec(any::<u64>(), 0..60),
        total in any::<u64>(),
    ) {
        let hist = std::sync::Arc::new(LatencyHistogram::default());
        for &v in &values {
            hist.record(v);
        }
        let counter = dudetm::Counter::default();
        counter.store(total, std::sync::atomic::Ordering::Relaxed);
        let mut builder = MetricsBuilder::new(MetricsConfig::disabled());
        builder.counter("ops", "operations", &counter);
        builder.histogram("latency_ns", "latency", None, &hist);
        builder.histogram(
            "latency_ns",
            "latency",
            Some(("shard", "1".to_string())),
            &hist,
        );
        let registry = builder.build();
        let text = registry.render_prometheus();
        prop_assert!(
            validate_exposition(&text).is_ok(),
            "invalid exposition:\n{}",
            text
        );
        prop_assert!(text.contains(&format!("dudetm_ops_total {total}")));
        let inf_line = format!("dudetm_latency_ns_bucket{{le=\"+Inf\"}} {}", values.len());
        prop_assert!(text.contains(&inf_line), "missing {}:\n{}", inf_line, text);
    }
}
