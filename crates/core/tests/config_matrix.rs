//! Exhaustive `DudeTmConfig` validation matrix.
//!
//! Three layers of coverage:
//!
//! 1. every [`ConfigError`] variant is produced by a config invalid in
//!    exactly that one way, with the right payload values;
//! 2. the documented precedence (field order, then combination order) is
//!    pinned by a ladder that starts from an everything-wrong config and
//!    fixes one knob at a time, watching the reported error walk down the
//!    chain;
//! 3. a full cross-product over the interesting axis values is checked
//!    against an independent reimplementation of the rules, so any future
//!    drift between `try_validate` and its documentation shows up as a
//!    counterexample, printed with the offending combination.

use dudetm::{ConfigError, DudeTmConfig, DurabilityMode};

const SYNC: DurabilityMode = DurabilityMode::Sync;
const ASYNC1: DurabilityMode = DurabilityMode::Async { buffer_txns: 1 };
const ASYNC0: DurabilityMode = DurabilityMode::Async { buffer_txns: 0 };

fn base() -> DudeTmConfig {
    DudeTmConfig::small(1 << 20)
}

// -- Layer 1: each variant, each boundary -----------------------------------

#[test]
fn heap_bytes_zero_and_unaligned_rejected() {
    for bad in [0u64, 1, 4095, 4097, 8191] {
        let c = DudeTmConfig {
            heap_bytes: bad,
            ..base()
        };
        assert_eq!(
            c.try_validate(),
            Err(ConfigError::HeapBytes { heap_bytes: bad })
        );
    }
    for good in [4096u64, 8192, 1 << 20] {
        DudeTmConfig {
            heap_bytes: good,
            ..base()
        }
        .try_validate()
        .expect("page-multiple heap sizes are valid");
    }
}

#[test]
fn plog_below_minimum_rejected() {
    for bad in [0u64, 8, 4095] {
        let c = DudeTmConfig {
            plog_bytes_per_thread: bad,
            ..base()
        };
        assert_eq!(
            c.try_validate(),
            Err(ConfigError::PlogTooSmall {
                plog_bytes_per_thread: bad
            })
        );
    }
    DudeTmConfig {
        plog_bytes_per_thread: 4096,
        ..base()
    }
    .try_validate()
    .expect("exactly 4 KiB is the smallest valid ring");
}

#[test]
fn max_threads_out_of_range_rejected() {
    for bad in [0usize, 257, 1000] {
        let c = DudeTmConfig {
            max_threads: bad,
            ..base()
        };
        assert_eq!(
            c.try_validate(),
            Err(ConfigError::MaxThreads { max_threads: bad })
        );
    }
    for good in [1usize, 256] {
        DudeTmConfig {
            max_threads: good,
            ..base()
        }
        .try_validate()
        .expect("range ends are inclusive");
    }
}

#[test]
fn zero_persist_threads_rejected() {
    let c = DudeTmConfig {
        persist_threads: 0,
        ..base()
    };
    assert_eq!(c.try_validate(), Err(ConfigError::NoPersistThreads));
}

#[test]
fn zero_persist_group_rejected() {
    let c = DudeTmConfig {
        persist_group: 0,
        ..base()
    };
    assert_eq!(c.try_validate(), Err(ConfigError::NoPersistGroup));
}

#[test]
fn zero_checkpoint_cadence_rejected() {
    let c = DudeTmConfig {
        checkpoint_every: 0,
        ..base()
    };
    assert_eq!(c.try_validate(), Err(ConfigError::NoCheckpointCadence));
    DudeTmConfig {
        checkpoint_every: 1,
        ..base()
    }
    .try_validate()
    .expect("checkpointing every transaction is valid");
}

#[test]
fn reproduce_threads_out_of_range_rejected() {
    for bad in [0usize, 65, 128] {
        let c = DudeTmConfig {
            reproduce_threads: bad,
            ..base()
        };
        assert_eq!(
            c.try_validate(),
            Err(ConfigError::ReproduceThreads {
                reproduce_threads: bad
            })
        );
    }
    DudeTmConfig {
        reproduce_threads: 64,
        ..base()
    }
    .try_validate()
    .expect("64 shards is the inclusive maximum");
}

#[test]
fn compression_without_grouping_rejected() {
    let c = base().with_grouping(1, true);
    assert_eq!(
        c.try_validate(),
        Err(ConfigError::CompressionWithoutGrouping)
    );
    base()
        .with_grouping(2, true)
        .try_validate()
        .expect("compression is valid on any real group size");
}

#[test]
fn grouping_with_sync_rejected() {
    let c = base().with_durability(SYNC).with_grouping(8, false);
    assert_eq!(c.try_validate(), Err(ConfigError::GroupingWithSync));
    base()
        .with_durability(SYNC)
        .try_validate()
        .expect("sync without grouping is valid");
}

#[test]
fn zero_flush_workers_rejected() {
    let c = DudeTmConfig {
        persist_flush_workers: 0,
        ..base()
    };
    assert_eq!(c.try_validate(), Err(ConfigError::NoFlushWorkers));
}

#[test]
fn flush_workers_beyond_max_threads_rejected() {
    let c = DudeTmConfig {
        max_threads: 4,
        persist_flush_workers: 5,
        persist_group: 8,
        ..base()
    };
    assert_eq!(
        c.try_validate(),
        Err(ConfigError::FlushWorkersExceedMaxThreads {
            persist_flush_workers: 5,
            max_threads: 4,
        })
    );
    DudeTmConfig {
        max_threads: 4,
        persist_flush_workers: 4,
        persist_group: 8,
        ..base()
    }
    .try_validate()
    .expect("one flush worker per ring is the inclusive cap");
}

#[test]
fn flush_workers_without_grouping_rejected() {
    let c = base().with_flush_workers(2);
    assert_eq!(
        c.try_validate(),
        Err(ConfigError::FlushWorkersWithoutGrouping {
            persist_flush_workers: 2
        })
    );
    base()
        .with_grouping(8, false)
        .with_flush_workers(2)
        .try_validate()
        .expect("flush workers on the grouped path are valid");
}

#[test]
fn empty_async_buffer_rejected() {
    let c = base().with_durability(ASYNC0);
    assert_eq!(c.try_validate(), Err(ConfigError::EmptyAsyncBuffer));
    base()
        .with_durability(ASYNC1)
        .try_validate()
        .expect("a one-transaction buffer is the smallest valid Async");
}

// -- Layer 2: precedence ladder ---------------------------------------------

/// Starts from a config wrong in every way at once and repairs one field
/// per step; the reported error must walk the documented field-then-
/// combination order, never skipping ahead.
#[test]
fn first_error_wins_in_documented_order() {
    let mut c = DudeTmConfig {
        heap_bytes: 1,
        plog_bytes_per_thread: 1,
        max_threads: 0,
        persist_threads: 0,
        persist_group: 0,
        checkpoint_every: 0,
        reproduce_threads: 0,
        compress_groups: true,
        persist_flush_workers: 0,
        ..base()
    }
    .with_durability(ASYNC0);
    assert_eq!(
        c.try_validate(),
        Err(ConfigError::HeapBytes { heap_bytes: 1 })
    );
    c.heap_bytes = 4096;
    assert_eq!(
        c.try_validate(),
        Err(ConfigError::PlogTooSmall {
            plog_bytes_per_thread: 1
        })
    );
    c.plog_bytes_per_thread = 4096;
    assert_eq!(
        c.try_validate(),
        Err(ConfigError::MaxThreads { max_threads: 0 })
    );
    c.max_threads = 2;
    assert_eq!(c.try_validate(), Err(ConfigError::NoPersistThreads));
    c.persist_threads = 1;
    assert_eq!(c.try_validate(), Err(ConfigError::NoPersistGroup));
    c.persist_group = 1;
    assert_eq!(c.try_validate(), Err(ConfigError::NoCheckpointCadence));
    c.checkpoint_every = 1;
    assert_eq!(
        c.try_validate(),
        Err(ConfigError::ReproduceThreads {
            reproduce_threads: 0
        })
    );
    c.reproduce_threads = 1;
    // Combination checks begin: compression against the group size of 1.
    assert_eq!(
        c.try_validate(),
        Err(ConfigError::CompressionWithoutGrouping)
    );
    c.persist_group = 8;
    c.durability = SYNC;
    assert_eq!(c.try_validate(), Err(ConfigError::GroupingWithSync));
    c.durability = ASYNC0;
    assert_eq!(c.try_validate(), Err(ConfigError::NoFlushWorkers));
    c.persist_flush_workers = 3;
    assert_eq!(
        c.try_validate(),
        Err(ConfigError::FlushWorkersExceedMaxThreads {
            persist_flush_workers: 3,
            max_threads: 2,
        })
    );
    c.max_threads = 8;
    // FlushWorkersWithoutGrouping sits after the cap check: shrink the
    // group back to 1 (and drop compression) to expose it.
    c.persist_group = 1;
    c.compress_groups = false;
    assert_eq!(
        c.try_validate(),
        Err(ConfigError::FlushWorkersWithoutGrouping {
            persist_flush_workers: 3
        })
    );
    c.persist_group = 8;
    assert_eq!(c.try_validate(), Err(ConfigError::EmptyAsyncBuffer));
    c.durability = ASYNC1;
    c.try_validate().expect("fully repaired config is valid");
}

// -- Layer 3: cross-product against an independent model --------------------

/// The validation rules, restated independently of `try_validate`'s
/// control flow. Returns whether the combination is valid.
fn model_is_valid(c: &DudeTmConfig) -> bool {
    c.heap_bytes > 0
        && c.heap_bytes % 4096 == 0
        && c.plog_bytes_per_thread >= 4096
        && (1..=256).contains(&c.max_threads)
        && c.persist_threads >= 1
        && c.persist_group >= 1
        && c.checkpoint_every >= 1
        && (1..=64).contains(&c.reproduce_threads)
        && !(c.compress_groups && c.persist_group == 1)
        && !(c.persist_group > 1 && c.durability == SYNC)
        && c.persist_flush_workers >= 1
        && c.persist_flush_workers <= c.max_threads
        && !(c.persist_flush_workers > 1 && c.persist_group == 1)
        && c.durability != ASYNC0
}

/// Every combination of the interesting axis values — 4 durability modes
/// × group sizes × flush workers × compression × reproduce threads ×
/// persist threads (2304 configs) — agrees with the model, and every
/// valid corner actually constructs.
#[test]
fn full_axis_cross_product_matches_model() {
    let durabilities = [SYNC, ASYNC0, ASYNC1, DurabilityMode::AsyncUnbounded];
    let groups = [0usize, 1, 2, 8];
    let flush_workers = [0usize, 1, 2, 9];
    let reproduce = [0usize, 1, 4, 64];
    let persist = [0usize, 1, 2];
    let mut valid = 0u32;
    let mut invalid = 0u32;
    for &durability in &durabilities {
        for &persist_group in &groups {
            for &persist_flush_workers in &flush_workers {
                for &compress_groups in &[false, true] {
                    for &reproduce_threads in &reproduce {
                        for &persist_threads in &persist {
                            let c = DudeTmConfig {
                                durability,
                                persist_group,
                                persist_flush_workers,
                                compress_groups,
                                reproduce_threads,
                                persist_threads,
                                ..base()
                            };
                            let got = c.try_validate();
                            let want = model_is_valid(&c);
                            assert_eq!(
                                got.is_ok(),
                                want,
                                "model disagreement (validator said {got:?}) for \
                                 durability={durability:?} group={persist_group} \
                                 fw={persist_flush_workers} compress={compress_groups} \
                                 rt={reproduce_threads} pt={persist_threads}"
                            );
                            if want {
                                valid += 1;
                            } else {
                                invalid += 1;
                            }
                        }
                    }
                }
            }
        }
    }
    // The matrix must exercise both sides substantially, or the model
    // check is vacuous.
    assert!(valid >= 100, "only {valid} valid corners explored");
    assert!(invalid >= 100, "only {invalid} invalid corners explored");
}

/// The panicking `validate` front door reports the same first error.
#[test]
#[should_panic(expected = "persist_flush_workers")]
fn validate_panics_with_typed_message() {
    base().with_flush_workers(0).validate();
}
