//! Regression tests for `recover_device` edge cases: per-transaction
//! discard accounting, group records straddling the checkpoint, ambiguous
//! logs, and the post-recovery log wipe.
//!
//! The tests format a device through the runtime, then craft log records
//! directly in the persistent log regions (using the public serializers)
//! to reach on-medium states a live pipeline produces only under crash
//! timing.

use std::sync::Arc;

use dude_nvm::{Nvm, NvmConfig};
use dude_txapi::{PAddr, TxnSystem, TxnThread};
use dudetm::{log, recover_device, scan_region, DudeTm, DudeTmConfig, NvmLayout};

/// Byte offset of the reproduced-ID checkpoint inside the metadata region
/// (on-NVM format v1: word 2).
const META_REPRODUCED_OFF: u64 = 2 * 8;

fn test_nvm() -> Arc<Nvm> {
    Arc::new(Nvm::new(NvmConfig::for_testing(1 << 16)))
}

fn tiny_config() -> DudeTmConfig {
    DudeTmConfig {
        plog_bytes_per_thread: 4096,
        max_threads: 2,
        ..DudeTmConfig::small(4096)
    }
}

/// Formats the device (clean shutdown, checkpoint 0) and returns its layout.
fn formatted(nvm: &Arc<Nvm>, config: DudeTmConfig) -> NvmLayout {
    drop(DudeTm::create_stm(Arc::clone(nvm), config));
    let (layout, report) = recover_device(nvm, &config).expect("clean device recovers");
    assert_eq!(report.replayed, 0);
    layout
}

/// Persists a serialized record at the start of log region `ring`.
fn plant_record(nvm: &Nvm, layout: &NvmLayout, ring: usize, words: &[u64]) {
    let off = layout.plogs[ring].start();
    nvm.write_words(off, words);
    nvm.persist(off, words.len() as u64 * 8);
}

#[test]
fn discarded_counts_transactions_not_records() {
    let nvm = test_nvm();
    let config = tiny_config();
    let layout = formatted(&nvm, config);
    let mut buf = Vec::new();
    // Tid 1 is intact; tid 2 never became durable; the group 3..=5 sits
    // beyond the gap and must be discarded — as THREE transactions.
    log::serialize_commit(1, &[(0, 11)], &mut buf);
    plant_record(&nvm, &layout, 0, &buf);
    log::serialize_group(3, 5, &[(8, 33)], false, &mut buf);
    plant_record(&nvm, &layout, 1, &buf);

    let (_, report) = recover_device(&nvm, &config).expect("recover");
    assert_eq!(report.replayed, 1);
    assert_eq!(report.last_tid, 1);
    assert_eq!(report.discarded, 3, "a discarded group is 3 transactions");
    assert_eq!(nvm.read_word(layout.heap.start()), 11);
    assert_eq!(
        nvm.read_word(layout.heap.start() + 8),
        0,
        "discarded write applied"
    );
}

#[test]
fn group_straddling_checkpoint_replays_idempotently() {
    let nvm = test_nvm();
    let config = tiny_config();
    let layout = formatted(&nvm, config);
    // A group covering tids 1..=4 is durable, the heap reflects replay up
    // to tid 2, and the durable checkpoint reads 2 — the record straddles
    // it (1 <= 2 < 4). Its combined writes carry final values for the
    // whole group, so recovery must replay it in full, not drop it.
    let mut buf = Vec::new();
    log::serialize_group(1, 4, &[(0, 44), (8, 40)], false, &mut buf);
    plant_record(&nvm, &layout, 0, &buf);
    nvm.write_word(layout.heap.start(), 22); // partial state as of tid 2
    nvm.persist(layout.heap.start(), 8);
    nvm.write_word(layout.meta.start() + META_REPRODUCED_OFF, 2);
    nvm.persist(layout.meta.start() + META_REPRODUCED_OFF, 8);

    let (_, report) = recover_device(&nvm, &config).expect("recover");
    assert_eq!(report.checkpoint, 2);
    assert_eq!(report.last_tid, 4);
    assert_eq!(report.replayed, 2, "only tids 3..=4 are new");
    assert_eq!(report.discarded, 0);
    assert_eq!(nvm.read_word(layout.heap.start()), 44);
    assert_eq!(nvm.read_word(layout.heap.start() + 8), 40);
}

/// Parallel flush workers round-robin consecutive groups across one ring
/// per worker and fence them out of order, so a crash can leave the dense
/// group sequence with a hole: a worker's flush never completed while a
/// *later* group on another ring is already durable. Recovery must stitch
/// the cross-ring sequence back into dense TID order, cut it at the gap,
/// and discard the durable group beyond it whole.
#[test]
fn round_robin_groups_across_rings_recover_to_contiguous_prefix() {
    let nvm = test_nvm();
    let config = DudeTmConfig {
        max_threads: 4,
        ..tiny_config()
    };
    let layout = formatted(&nvm, config);
    let mut buf = Vec::new();
    // Worker w owns ring w; group seq s lands on ring s % 4. Groups of 3:
    // seq 0 → ring 0 (tids 1..=3), seq 1 → ring 1 (4..=6), seq 2 → ring 2
    // (7..=9, flush never completed), seq 3 → ring 3 (10..=12, durable).
    log::serialize_group(1, 3, &[(0, 3)], false, &mut buf);
    plant_record(&nvm, &layout, 0, &buf);
    log::serialize_group(4, 6, &[(0, 6), (8, 6)], true, &mut buf);
    plant_record(&nvm, &layout, 1, &buf);
    log::serialize_group(10, 12, &[(0, 12), (16, 12)], false, &mut buf);
    plant_record(&nvm, &layout, 3, &buf);

    let (_, report) = recover_device(&nvm, &config).expect("recover");
    assert_eq!(report.last_tid, 6, "prefix must end at the seq-2 gap");
    assert_eq!(report.replayed, 6);
    assert_eq!(report.discarded, 3, "beyond-gap group discarded as 3 txns");
    assert_eq!(nvm.read_word(layout.heap.start()), 6);
    assert_eq!(nvm.read_word(layout.heap.start() + 8), 6);
    assert_eq!(
        nvm.read_word(layout.heap.start() + 16),
        0,
        "write from beyond the gap applied"
    );
}

#[test]
#[should_panic(expected = "ambiguous log")]
fn two_straddling_records_are_rejected() {
    let nvm = test_nvm();
    let config = tiny_config();
    let layout = formatted(&nvm, config);
    // Both records straddle checkpoint 2 and disagree about history; no
    // winner can be picked safely.
    let mut buf = Vec::new();
    log::serialize_group(1, 4, &[(0, 1)], false, &mut buf);
    plant_record(&nvm, &layout, 0, &buf);
    log::serialize_group(2, 5, &[(0, 2)], false, &mut buf);
    plant_record(&nvm, &layout, 1, &buf);
    nvm.write_word(layout.meta.start() + META_REPRODUCED_OFF, 2);
    nvm.persist(layout.meta.start() + META_REPRODUCED_OFF, 8);
    let _ = recover_device(&nvm, &config);
}

/// A log span is released only after the covering checkpoint's fence, but
/// "released" is a ring-pointer move — the record's bytes stay intact
/// until the ring wraps over them. If the transactions between that
/// record and the checkpoint were recycled *and* overwritten, recovery
/// sees an intact record wholly below the checkpoint with no successors
/// left to re-overwrite its writes. Replaying it would regress the heap
/// to a stale value; recovery must skip it.
#[test]
fn stale_released_record_below_checkpoint_is_not_replayed() {
    let nvm = test_nvm();
    let config = tiny_config();
    let layout = formatted(&nvm, config);
    // Stale survivor: tid 3 once wrote 333 to heap word 0...
    let mut buf = Vec::new();
    log::serialize_commit(3, &[(0, 333)], &mut buf);
    plant_record(&nvm, &layout, 0, &buf);
    // ...but the durable state has moved on: some later transaction (whose
    // record was recycled and overwritten) left 999 there, and the durable
    // checkpoint covers tids through 9.
    nvm.write_word(layout.heap.start(), 999);
    nvm.persist(layout.heap.start(), 8);
    nvm.write_word(layout.meta.start() + META_REPRODUCED_OFF, 9);
    nvm.persist(layout.meta.start() + META_REPRODUCED_OFF, 8);

    let (_, report) = recover_device(&nvm, &config).expect("recover");
    assert_eq!(report.checkpoint, 9);
    assert_eq!(report.last_tid, 9, "stale record must not extend history");
    assert_eq!(report.replayed, 0);
    assert_eq!(
        report.discarded, 0,
        "below-checkpoint records are not a lost tail"
    );
    assert_eq!(report.stale_skipped, 1);
    assert_eq!(
        nvm.read_word(layout.heap.start()),
        999,
        "stale tid-3 write regressed the heap"
    );
}

/// The complementary case: a sub-checkpoint record that is *adjacent* to
/// the checkpoint's run is covered-but-unreleased state (or a released
/// span whose successors all survive) and must still be replayed — the
/// idempotent-redo repair for torn checkpoint windows.
#[test]
fn sub_checkpoint_record_in_checkpoint_run_still_replays() {
    let nvm = test_nvm();
    let config = tiny_config();
    let layout = formatted(&nvm, config);
    let mut buf = Vec::new();
    // Tids 2 and 3 intact, checkpoint 3: run [2..=3] spans the checkpoint.
    log::serialize_commit(2, &[(0, 22)], &mut buf);
    plant_record(&nvm, &layout, 0, &buf);
    log::serialize_commit(3, &[(8, 33)], &mut buf);
    plant_record(&nvm, &layout, 1, &buf);
    nvm.write_word(layout.meta.start() + META_REPRODUCED_OFF, 3);
    nvm.persist(layout.meta.start() + META_REPRODUCED_OFF, 8);

    let (_, report) = recover_device(&nvm, &config).expect("recover");
    assert_eq!(report.last_tid, 3);
    assert_eq!(report.replayed, 0, "both tids already under the checkpoint");
    assert_eq!(report.stale_skipped, 0);
    assert_eq!(nvm.read_word(layout.heap.start()), 22, "torn-window repair");
    assert_eq!(nvm.read_word(layout.heap.start() + 8), 33);
}

/// Concurrent Perform threads waste transaction IDs when commit-time
/// validation fails after the clock tick; the owner persists an abort
/// marker so the global ID sequence stays dense on the medium. Recovery
/// must treat the marker as a member of the run — it bridges the commits
/// on either side into one contiguous history.
#[test]
fn abort_marker_bridges_commits_into_one_run() {
    let nvm = test_nvm();
    let config = tiny_config();
    let layout = formatted(&nvm, config);
    let mut buf = Vec::new();
    // Thread 0 committed tids 1 and 3; the intervening tid 2 was wasted by
    // a validation failure on thread 1, which logged an abort marker.
    log::serialize_commit(1, &[(0, 11)], &mut buf);
    let mut words = buf.clone();
    log::serialize_commit(3, &[(8, 33)], &mut buf);
    words.extend_from_slice(&buf);
    plant_record(&nvm, &layout, 0, &words);
    log::serialize_abort(2, &mut buf);
    plant_record(&nvm, &layout, 1, &buf);

    let (_, report) = recover_device(&nvm, &config).expect("recover");
    assert_eq!(report.last_tid, 3);
    assert_eq!(
        report.replayed, 3,
        "abort markers count as replayed history"
    );
    assert_eq!(report.discarded, 0, "tid 3 is reachable through the marker");
    assert_eq!(nvm.read_word(layout.heap.start()), 11);
    assert_eq!(nvm.read_word(layout.heap.start() + 8), 33);
}

/// The contrast case for the test above: if the abort marker for the
/// wasted tid never became durable, the commit beyond it is unreachable
/// and must be discarded — recovering it would publish a transaction whose
/// durable predecessor set is incomplete.
#[test]
fn commit_beyond_missing_abort_marker_is_discarded() {
    let nvm = test_nvm();
    let config = tiny_config();
    let layout = formatted(&nvm, config);
    let mut buf = Vec::new();
    log::serialize_commit(1, &[(0, 11)], &mut buf);
    plant_record(&nvm, &layout, 0, &buf);
    log::serialize_commit(3, &[(8, 33)], &mut buf);
    plant_record(&nvm, &layout, 1, &buf);

    let (_, report) = recover_device(&nvm, &config).expect("recover");
    assert_eq!(report.last_tid, 1);
    assert_eq!(report.replayed, 1);
    assert_eq!(report.discarded, 1);
    assert_eq!(nvm.read_word(layout.heap.start()), 11);
    assert_eq!(
        nvm.read_word(layout.heap.start() + 8),
        0,
        "unreachable tid-3 write leaked into the heap"
    );
}

#[test]
fn recovery_wipes_stale_log_records() {
    let nvm = test_nvm();
    let config = tiny_config();
    {
        let dude = DudeTm::create_stm(Arc::clone(&nvm), config);
        let mut t = dude.register_thread();
        for i in 0..20u64 {
            let out = t.run(&mut |tx| tx.write_word(PAddr::from_word_index(i % 8), i));
            let tid = out.info().unwrap().tid.unwrap();
            t.wait_durable(tid);
        }
        drop(t);
        nvm.crash();
        std::mem::forget(dude);
    }
    let (layout, first) = recover_device(&nvm, &config).expect("first recovery");
    assert_eq!(first.last_tid, 20);
    // The wipe leaves no scannable record behind: a transaction ID re-used
    // by the restarted runtime can never alias a stale record in a later
    // crash.
    for &region in &layout.plogs {
        assert!(
            scan_region(&nvm, region).is_empty(),
            "stale records survived recovery"
        );
    }
    // The wipe is durable: crash again immediately and recover.
    nvm.crash();
    let (_, second) = recover_device(&nvm, &config).expect("second recovery");
    assert_eq!(second.checkpoint, first.last_tid);
    assert_eq!(second.replayed, 0);
    assert_eq!(second.discarded, 0);
}
