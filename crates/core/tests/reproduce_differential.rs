//! Differential replay oracle for the sharded Reproduce stage.
//!
//! The serial Reproduce worker (`reproduce_threads = 1`) is the reference
//! implementation: it replays the committed sequence in dense
//! transaction-ID order, so after a full drain the persistent heap image
//! *is* the semantics. Sharded replay (N = 2, 4, 8) reorders work across
//! shards and interleaves fences arbitrarily, but because every address
//! maps to exactly one shard it must converge to the byte-identical image.
//!
//! Each workload runs on a single Perform thread with a fixed seed, so
//! the committed sequence — and therefore the reference image — is the
//! same in every run; only the Reproduce configuration varies. Small log
//! rings and a short checkpoint cadence force span recycling mid-run, so
//! the frontier-keyed checkpoint path is exercised, not just the drain.
//!
//! `DUDE_DIFF_SEEDS` (comma-separated u64s) adds extra seeds — CI runs
//! three more on top of the built-in ones.

use std::sync::Arc;

use dude_nvm::{Nvm, NvmConfig};
use dude_txapi::{PAddr, TxnSystem, TxnThread};
use dudetm::{DudeTm, DudeTmConfig, DurabilityMode};

const HEAP_BYTES: u64 = 1 << 16;
const HEAP_WORDS: u64 = HEAP_BYTES / 8;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn config(reproduce_threads: usize) -> DudeTmConfig {
    DudeTmConfig {
        max_threads: 2,
        // Small rings + short cadence: recycling must happen mid-run.
        plog_bytes_per_thread: 4096,
        checkpoint_every: 4,
        ..DudeTmConfig::small(HEAP_BYTES)
    }
    .with_durability(DurabilityMode::Async { buffer_txns: 64 })
    .with_reproduce_threads(reproduce_threads)
}

/// Grouped-Persist config: groups of 8, `flush_workers` parallel flush
/// workers (1 = the serial grouped reference), each owning one of the
/// `max_threads` log rings.
fn grouped_config(flush_workers: usize, compress: bool) -> DudeTmConfig {
    DudeTmConfig {
        max_threads: 4,
        plog_bytes_per_thread: 4096,
        checkpoint_every: 4,
        ..DudeTmConfig::small(HEAP_BYTES)
    }
    .with_durability(DurabilityMode::Async { buffer_txns: 64 })
    .with_grouping(8, compress)
    .with_flush_workers(flush_workers)
}

fn lcg(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x >> 11
}

/// Runs `workload` to a clean shutdown under `cfg` and returns the
/// drained persistent heap image.
fn heap_image_cfg(cfg: DudeTmConfig, seed: u64, workload: fn(&mut Runner, u64)) -> Vec<u64> {
    let nvm = Arc::new(Nvm::new(NvmConfig::for_testing(1 << 18)));
    let dude = DudeTm::create_stm(Arc::clone(&nvm), cfg);
    let heap = dude.heap_region();
    {
        let mut t = dude.register_thread();
        workload(&mut t, seed);
    }
    // Drop drains the pipeline and takes the final checkpoint.
    drop(dude);
    (0..HEAP_WORDS)
        .map(|w| nvm.read_word(heap.start() + w * 8))
        .collect()
}

/// Runs `workload` to a clean shutdown under the given Reproduce config
/// and returns the drained persistent heap image.
fn heap_image(reproduce_threads: usize, seed: u64, workload: fn(&mut Runner, u64)) -> Vec<u64> {
    heap_image_cfg(config(reproduce_threads), seed, workload)
}

type Runner<'a> = dudetm::DtmThread<'a, dude_stm::Stm>;

/// Bank: random transfers between 64 accounts — dense, conflicting
/// addresses, money conserved.
fn bank(t: &mut Runner, seed: u64) {
    const ACCOUNTS: u64 = 64;
    t.run(&mut |tx| {
        for i in 0..ACCOUNTS {
            tx.write_word(PAddr::from_word_index(i), 1000)?;
        }
        Ok(())
    })
    .expect_committed();
    let mut x = seed;
    for _ in 0..200 {
        let a = lcg(&mut x) % ACCOUNTS;
        let b = lcg(&mut x) % ACCOUNTS;
        if a == b {
            continue;
        }
        t.run(&mut |tx| {
            let va = tx.read_word(PAddr::from_word_index(a))?;
            tx.write_word(PAddr::from_word_index(a), va.wrapping_sub(3))?;
            let vb = tx.read_word(PAddr::from_word_index(b))?;
            tx.write_word(PAddr::from_word_index(b), vb.wrapping_add(3))
        })
        .expect_committed();
    }
}

/// KV: hashed put/overwrite/delete over a slot table — scattered
/// addresses, repeated overwrites of hot keys.
fn kv(t: &mut Runner, seed: u64) {
    const SLOTS: u64 = 1024;
    let slot =
        |k: u64| PAddr::from_word_index(64 + (k.wrapping_mul(0x9E37_79B9_7F4A_7C15) % SLOTS) * 2);
    let mut x = seed;
    for op in 0..250 {
        let k = lcg(&mut x) % 96; // hot key space: plenty of overwrites
        let v = lcg(&mut x);
        let s = slot(k);
        t.run(&mut |tx| {
            if op % 7 == 6 {
                // Delete: clear slot and tombstone.
                tx.write_word(s, 0)?;
                tx.write_word(PAddr::new(s.offset() + 8), u64::MAX)
            } else {
                tx.write_word(s, k + 1)?;
                tx.write_word(PAddr::new(s.offset() + 8), v)
            }
        })
        .expect_committed();
    }
}

/// BTree-like: fixed-arity nodes of 16 words; inserts touch a root
/// counter, an interior node, and a leaf — multi-word structural writes
/// spanning several cache lines per transaction.
fn btree_like(t: &mut Runner, seed: u64) {
    const NODE_WORDS: u64 = 16;
    const NODES: u64 = 128;
    let root = PAddr::from_word_index(0);
    let node_word = |n: u64, w: u64| PAddr::from_word_index(8 + n * NODE_WORDS + w);
    let mut x = seed;
    for _ in 0..200 {
        let key = lcg(&mut x) % 4096;
        let interior = key % 16;
        let leaf = 16 + key % (NODES - 16);
        t.run(&mut |tx| {
            let count = tx.read_word(root)?;
            tx.write_word(root, count + 1)?;
            // Interior: bump occupancy, record the routed key.
            let occ = tx.read_word(node_word(interior, 0))?;
            tx.write_word(node_word(interior, 0), occ + 1)?;
            tx.write_word(node_word(interior, 1 + key % (NODE_WORDS - 1)), key)?;
            // Leaf: key/value pair plus a version word.
            let slot = 1 + key % ((NODE_WORDS - 1) / 2);
            tx.write_word(node_word(leaf, slot * 2 - 1), key)?;
            tx.write_word(node_word(leaf, slot * 2), count)?;
            tx.write_word(node_word(leaf, 0), count)
        })
        .expect_committed();
    }
}

fn assert_differential(name: &str, workload: fn(&mut Runner, u64), seed: u64) {
    let reference = heap_image(1, seed, workload);
    assert!(
        reference.iter().any(|&w| w != 0),
        "{name}: workload left no trace in the heap"
    );
    for &n in &SHARD_COUNTS[1..] {
        let image = heap_image(n, seed, workload);
        assert_eq!(
            image, reference,
            "{name} seed {seed:#x}: sharded replay (N={n}) diverged from serial"
        );
    }
}

fn extra_seeds() -> Vec<u64> {
    std::env::var("DUDE_DIFF_SEEDS")
        .map(|s| {
            s.split(',')
                .filter(|t| !t.trim().is_empty())
                .map(|t| t.trim().parse().expect("DUDE_DIFF_SEEDS: u64 list"))
                .collect()
        })
        .unwrap_or_default()
}

#[test]
fn bank_images_identical_across_shard_counts() {
    assert_differential("bank", bank, 0xB01D_FACE);
    for seed in extra_seeds() {
        assert_differential("bank", bank, seed);
    }
}

#[test]
fn kv_images_identical_across_shard_counts() {
    assert_differential("kv", kv, 0x0FF1_CE);
    for seed in extra_seeds() {
        assert_differential("kv", kv, seed);
    }
}

#[test]
fn btree_images_identical_across_shard_counts() {
    assert_differential("btree", btree_like, 0x5EED_BEEF);
    for seed in extra_seeds() {
        assert_differential("btree", btree_like, seed);
    }
}

/// Differential oracle for the parallel grouped Persist stage: the same
/// single-Perform-thread workload must produce a byte-identical drained
/// heap whether groups are flushed by the serial grouped worker
/// (`persist_flush_workers = 1`) or fanned out to 2 or 4 parallel flush
/// workers — and identical to the ungrouped serial reference too. Byte
/// determinism is what makes this meaningful: `combine_sorted` gives every
/// worker the same serialized group body, and in-order publication keeps
/// the replay sequence dense, so no flush schedule can leak into the heap.
#[test]
fn grouped_images_identical_across_flush_worker_counts() {
    for workload in [
        ("bank", bank as fn(&mut Runner, u64), 0xB01D_FACEu64),
        ("kv", kv, 0x0FF1_CE),
    ] {
        let (name, f, seed) = workload;
        let reference = heap_image(1, seed, f);
        for compress in [false, true] {
            for fw in [1usize, 2, 4] {
                let image = heap_image_cfg(grouped_config(fw, compress), seed, f);
                assert_eq!(
                    image, reference,
                    "{name} seed {seed:#x}: grouped persist (fw={fw}, lz={compress}) \
                     diverged from the serial ungrouped reference"
                );
            }
        }
    }
}

/// The oracle also holds through a crashless restart: recover each image
/// and make sure the recovered runtime agrees on the reproduced history.
#[test]
fn sharded_drain_is_recoverable() {
    let nvm = Arc::new(Nvm::new(NvmConfig::for_testing(1 << 18)));
    let dude = DudeTm::create_stm(Arc::clone(&nvm), config(4));
    {
        let mut t = dude.register_thread();
        bank(&mut t, 0xB01D_FACE);
    }
    let committed = dude.stats_snapshot().committed;
    drop(dude);
    let (dude2, report) = DudeTm::recover_stm(Arc::clone(&nvm), config(4)).expect("recovery");
    assert_eq!(
        report.last_tid, committed,
        "clean shutdown checkpointed everything"
    );
    assert_eq!(report.replayed, 0);
    drop(dude2);
}
