//! Behavioral tests of the continuous-metrics layer: the disabled fast
//! path changes nothing observable, the sampled frame series reconciles
//! exactly with the final pipeline snapshot, the summary covers every
//! registered metric, and recovery progress flows through the telemetry
//! handles.

use std::sync::Arc;
use std::time::Duration;

use dude_nvm::{Nvm, NvmConfig};
use dude_txapi::{PAddr, TxnSystem, TxnThread};
use dudetm::{
    log, recover_device, recover_device_observed, DudeTm, DudeTmConfig, MetricKind, MetricsConfig,
    PipelineSnapshot, RecoveryPhase, RecoveryTelemetry,
};

fn test_nvm(bytes: u64) -> Arc<Nvm> {
    Arc::new(Nvm::new(NvmConfig::for_testing(bytes)))
}

fn config(metrics: MetricsConfig) -> DudeTmConfig {
    DudeTmConfig {
        plog_bytes_per_thread: 1 << 18,
        max_threads: 4,
        metrics,
        ..DudeTmConfig::small(1 << 20)
    }
}

/// Runs a fixed single-thread workload and returns the final snapshot plus
/// a copy of the heap words it wrote (the trace-layer behavior-equality
/// fixture, reused against the metrics switch).
fn run_workload(cfg: DudeTmConfig) -> (PipelineSnapshot, Vec<u64>, u64) {
    let nvm = test_nvm(8 << 20);
    let dude = DudeTm::create_stm(Arc::clone(&nvm), cfg);
    let heap = dude.heap_region();
    {
        let mut t = dude.register_thread();
        for i in 0..200u64 {
            t.run(&mut |tx| {
                tx.write_word(PAddr::from_word_index(i % 64), i)?;
                tx.write_word(PAddr::from_word_index(64 + i % 32), i * 3)
            })
            .expect_committed();
        }
    }
    dude.quiesce();
    dude.sample_metrics_now(); // no-op when disabled; guarantees >=1 frame
    let snap = dude.stats_snapshot();
    let frames = dude.metrics().frames_recorded();
    let words = (0..96)
        .map(|i| nvm.read_word(heap.start() + i * 8))
        .collect();
    drop(dude);
    (snap, words, frames)
}

/// The disabled fast path at the observable level: with metrics disabled
/// (the default), the pipeline's snapshot and the final heap image are
/// identical to a run with a 1 ms sampler attached — i.e. continuous
/// sampling changes nothing the application (or the differential replay
/// oracle, which compares heap bytes) can see. Timing-dependent counters
/// are normalized as in the trace-layer twin of this test.
#[test]
fn disabled_metrics_is_behavior_identical_to_enabled() {
    let (mut snap_off, heap_off, frames_off) = run_workload(config(MetricsConfig::disabled()));
    let (mut snap_on, heap_on, frames_on) =
        run_workload(config(MetricsConfig::sampling(Duration::from_millis(1))));
    assert_eq!(heap_off, heap_on, "heap image must not depend on metrics");
    assert_eq!(frames_off, 0, "disabled metrics must record no frames");
    assert!(frames_on > 0, "enabled sampler must have captured frames");
    snap_off.counters.checkpoints = 0;
    snap_on.counters.checkpoints = 0;
    snap_off.stalls = Default::default();
    snap_on.stalls = Default::default();
    assert_eq!(
        snap_off, snap_on,
        "PipelineSnapshot must not depend on metrics"
    );
}

/// Sim twin: both runs execute under the virtual clock (the sampler's
/// `recv_timeout` cadence comes from the scheduler), so a divergence
/// replays exactly with the printed seed.
#[cfg(feature = "sim")]
#[test]
fn disabled_metrics_is_behavior_identical_to_enabled_sim() {
    let seed = std::env::var("DUDE_SIM_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(7);
    let mut results = Vec::new();
    for metrics in [
        MetricsConfig::disabled(),
        MetricsConfig::sampling(Duration::from_millis(1)),
    ] {
        let report = dude_sim::run(dude_sim::SimConfig::from_seed(seed), move || {
            run_workload(config(metrics))
        });
        if let Some(p) = report.panic {
            eprintln!("DUDE_SIM_SEED={seed}");
            panic!("sim run failed under seed {seed}: {p}");
        }
        results.push(report.result.expect("no panic implies a result"));
    }
    let (mut snap_off, heap_off, frames_off) = results.remove(0);
    let (mut snap_on, heap_on, frames_on) = results.remove(0);
    assert_eq!(
        heap_off, heap_on,
        "heap image must not depend on metrics (DUDE_SIM_SEED={seed})"
    );
    assert_eq!(frames_off, 0);
    assert!(
        frames_on > 0,
        "virtual-clock sampler must fire (seed {seed})"
    );
    snap_off.counters.checkpoints = 0;
    snap_on.counters.checkpoints = 0;
    snap_off.stalls = Default::default();
    snap_on.stalls = Default::default();
    assert_eq!(
        snap_off, snap_on,
        "PipelineSnapshot must not depend on metrics (DUDE_SIM_SEED={seed})"
    );
}

/// Disabled metrics spawn no sampler and make the explicit sampling entry
/// point a no-op — the frame ring stays empty forever.
#[test]
fn disabled_metrics_records_no_frames() {
    let nvm = test_nvm(8 << 20);
    let dude = DudeTm::create_stm(nvm, config(MetricsConfig::disabled()));
    {
        let mut t = dude.register_thread();
        for i in 0..50u64 {
            t.run(&mut |tx| tx.write_word(PAddr::from_word_index(i), i))
                .expect_committed();
        }
    }
    dude.quiesce();
    dude.sample_metrics_now();
    let reg = dude.metrics();
    assert!(!reg.enabled());
    assert_eq!(reg.frames_recorded(), 0);
    assert!(reg.frames().is_empty());
    assert!(reg.latest_frame().is_none());
    // The registry itself still works — names resolve and counters read.
    assert_eq!(reg.counter_value("commits"), Some(50));
}

/// The acceptance reconciliation: a seeded 4-thread workload sampled at
/// 10 ms produces a frame series whose final cumulative counters equal
/// the final `PipelineSnapshot` exactly — same commits, persisted
/// records/groups, replayed transactions, logged bytes, and watermarks.
/// (`checkpoints` is excluded: post-quiesce idle ticks may still add
/// opportunistic checkpoints between the two reads.)
#[test]
fn four_thread_frames_reconcile_with_final_snapshot() {
    let nvm = test_nvm(8 << 20);
    let dude = DudeTm::create_stm(
        nvm,
        config(MetricsConfig::sampling(Duration::from_millis(10))),
    );
    std::thread::scope(|s| {
        let dude = &dude;
        for t in 0..4u64 {
            s.spawn(move || {
                let mut th = dude.register_thread();
                for i in 0..300u64 {
                    let slot = (t * 301 + i * 7) % 2048;
                    th.run(&mut |tx| tx.write_word(PAddr::from_word_index(slot), t * 1000 + i))
                        .expect_committed();
                }
            });
        }
    });
    dude.quiesce();
    dude.sample_metrics_now();
    let frame = dude.metrics().latest_frame().expect("final frame");
    let snap = dude.stats_snapshot();
    assert!(dude.metrics().frames_recorded() >= 1);
    let c = &snap.counters;
    assert_eq!(frame.commits, c.commits);
    assert_eq!(frame.commits, 1200, "4 threads x 300 committed txns");
    assert_eq!(frame.abort_markers, c.abort_markers);
    assert_eq!(frame.records_persisted, c.records_persisted);
    assert_eq!(frame.entries_logged, c.entries_logged);
    assert_eq!(frame.groups_persisted, c.groups_persisted);
    assert_eq!(frame.entries_before_combine, c.entries_before_combine);
    assert_eq!(frame.entries_after_combine, c.entries_after_combine);
    assert_eq!(frame.group_bytes_raw, c.group_bytes_raw);
    assert_eq!(frame.group_bytes_stored, c.group_bytes_stored);
    assert_eq!(frame.txns_reproduced, c.txns_reproduced);
    assert_eq!(frame.log_bytes_flushed, c.log_bytes_flushed);
    assert!(frame.log_bytes_flushed > 0, "flushed bytes must be counted");
    assert_eq!(frame.committed, snap.committed);
    assert_eq!(frame.durable, snap.durable);
    assert_eq!(frame.reproduced, snap.reproduced);
    assert_eq!(frame.persist_lag, 0, "quiesced pipeline has no lag");
    assert_eq!(frame.reproduce_lag, 0);
}

/// Satellite contract: every metric the registry exposes is visible in
/// `PipelineSnapshot::summary()` under a known token — adding a metric
/// without teaching the summary (or this map) about it fails here.
/// Recovery-scoped metrics are exempt: they describe `recover_device`,
/// not the live pipeline the summary prints.
#[test]
fn summary_lists_every_registered_metric() {
    let nvm = test_nvm(8 << 20);
    let cfg = config(MetricsConfig::disabled()).with_reproduce_threads(2);
    let dude = DudeTm::create_stm(nvm, cfg);
    {
        let mut t = dude.register_thread();
        for i in 0..40u64 {
            t.run(&mut |tx| tx.write_word(PAddr::from_word_index(i * 8), i))
                .expect_committed();
        }
    }
    dude.quiesce();
    let summary = dude.stats_snapshot().summary();
    for (name, kind) in dude.metrics().catalog() {
        if name.starts_with("recovery_") {
            continue;
        }
        let token = match name.as_str() {
            "committed_tid" => "committed=".to_string(),
            "durable_tid" => "durable=".to_string(),
            "reproduced_tid" => "reproduced=".to_string(),
            "persist_lag" | "reproduce_lag" => "(lag ".to_string(),
            "ring_used_words" => "ring-words=".to_string(),
            "frontier_min" => "frontier-min=".to_string(),
            "frontier_skew" => "frontier-skew=".to_string(),
            "stall_perform_log_full" => "log-full=".to_string(),
            "stall_persist_ring_full" => "ring-full=".to_string(),
            "stall_persist_seq_wait" => "seq-wait=".to_string(),
            "stall_reproduce_starved" => "starved=".to_string(),
            "stall_checkpoint_wait" => "ckpt-wait=".to_string(),
            _ if kind == MetricKind::Histogram => format!("hist[{name} "),
            other => format!("{other}="),
        };
        assert!(
            summary.contains(&token),
            "metric '{name}' has no token '{token}' in summary:\n{summary}"
        );
    }
}

/// Recovery observability: scanning, replaying, discarding, and wiping a
/// crafted crashed device all land in the telemetry counters, and the
/// phase gauge finishes at `Done`.
#[test]
fn recovery_telemetry_reports_scan_replay_wipe() {
    let nvm = Arc::new(Nvm::new(NvmConfig::for_testing(1 << 16)));
    let cfg = DudeTmConfig {
        plog_bytes_per_thread: 4096,
        max_threads: 2,
        ..DudeTmConfig::small(4096)
    };
    // Format via a throwaway runtime, then plant records directly: tid 1
    // intact and replayable; tids 3..=4 beyond the durable gap
    // (discarded, two transactions).
    drop(DudeTm::create_stm(Arc::clone(&nvm), cfg));
    let (layout, clean) = recover_device(&nvm, &cfg).expect("clean device recovers");
    assert_eq!(clean.replayed, 0);
    let mut buf = Vec::new();
    log::serialize_commit(1, &[(0, 11), (8, 22)], &mut buf);
    nvm.write_words(layout.plogs[0].start(), &buf);
    nvm.persist(layout.plogs[0].start(), buf.len() as u64 * 8);
    log::serialize_group(3, 4, &[(16, 33)], false, &mut buf);
    nvm.write_words(layout.plogs[1].start(), &buf);
    nvm.persist(layout.plogs[1].start(), buf.len() as u64 * 8);

    let telemetry = RecoveryTelemetry::default();
    let (_, report) =
        recover_device_observed(&nvm, &cfg, &telemetry).expect("crafted device recovers");
    assert_eq!(report.replayed, 1);
    assert_eq!(report.discarded, 2);
    let get = |c: &dudetm::Counter| c.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(telemetry.phase.get(), RecoveryPhase::Done.as_u64());
    assert_eq!(get(&telemetry.records_scanned), 2, "one record per ring");
    assert_eq!(
        get(&telemetry.bytes_scanned),
        2 * 4096,
        "both log regions scanned in full"
    );
    assert_eq!(get(&telemetry.txns_replayed), 1);
    assert_eq!(get(&telemetry.bytes_replayed), 16, "two replayed words");
    assert_eq!(get(&telemetry.records_discarded), 2);
    assert_eq!(get(&telemetry.stale_skipped), 0);
    assert!(
        get(&telemetry.bytes_wiped) >= 16,
        "planted records must be wiped"
    );
}
