//! The metrics export surfaces: Prometheus text exposition (golden names
//! + validator), the blocking scrape endpoint, and the JSONL frame
//! stream's round-trip law. This is the test target the CI
//! `metrics-smoke` job runs.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use dude_nvm::{Nvm, NvmConfig};
use dude_txapi::{PAddr, TxnSystem, TxnThread};
use dudetm::{
    validate_exposition, DudeTm, DudeTmConfig, MetricsConfig, MetricsFrame, MetricsServer,
    TraceConfig,
};

fn test_nvm() -> Arc<Nvm> {
    Arc::new(Nvm::new(NvmConfig::for_testing(8 << 20)))
}

/// A runtime with metrics AND tracing on, after a deterministic workload —
/// tracing populates the histograms so the exposition carries non-zero
/// bucket data.
fn observed_runtime() -> DudeTm<dude_stm::Stm> {
    let cfg = DudeTmConfig {
        plog_bytes_per_thread: 1 << 18,
        max_threads: 4,
        trace: TraceConfig::enabled(4096),
        metrics: MetricsConfig::sampling(Duration::from_millis(5)),
        ..DudeTmConfig::small(1 << 20)
    }
    .with_reproduce_threads(2);
    let dude = DudeTm::create_stm(test_nvm(), cfg);
    {
        let mut t = dude.register_thread();
        for i in 0..150u64 {
            t.run(&mut |tx| {
                tx.write_word(PAddr::from_word_index((i * 8) % 512), i)?;
                tx.write_word(PAddr::from_word_index(512 + i % 16), i * 7)
            })
            .expect_committed();
        }
    }
    dude.quiesce();
    dude.sample_metrics_now();
    dude
}

/// Golden exposition: the stable names CI dashboards scrape for, rendered
/// with real pipeline data and accepted by the format validator.
#[test]
fn prometheus_exposition_is_valid_and_carries_the_catalog() {
    let dude = observed_runtime();
    let text = dude.metrics().render_prometheus();
    validate_exposition(&text).expect("renderer output must self-validate");

    // Counters: full-name TYPE declaration plus a concrete sample.
    assert!(
        text.contains("# TYPE dudetm_commits_total counter"),
        "{text}"
    );
    assert!(text.contains("\ndudetm_commits_total 150\n"), "{text}");
    assert!(text.contains("# TYPE dudetm_log_bytes_flushed_total counter"));
    assert!(text.contains("# TYPE dudetm_stall_persist_seq_wait_total counter"));
    assert!(text.contains("# TYPE dudetm_recovery_txns_replayed_total counter"));
    // Gauges: plain names; the drained pipeline shows zero lag.
    assert!(text.contains("# TYPE dudetm_persist_lag gauge"));
    assert!(text.contains("\ndudetm_persist_lag 0\n"), "{text}");
    assert!(text.contains("# TYPE dudetm_committed_tid gauge"));
    assert!(text.contains("\ndudetm_committed_tid 150\n"), "{text}");
    assert!(text.contains("# TYPE dudetm_recovery_phase gauge"));
    // Histograms: family declaration, cumulative buckets, sum/count.
    assert!(text.contains("# TYPE dudetm_commit_latency_ns histogram"));
    assert!(text.contains("dudetm_commit_latency_ns_bucket{le=\"+Inf\"} 150"));
    assert!(text.contains("dudetm_commit_latency_ns_count 150"));
    assert!(text.contains("dudetm_commit_latency_ns_sum"));
    // Labeled histograms: one family, one series per shard/worker.
    assert!(text.contains("dudetm_replay_apply_ns_bucket{shard=\"0\",le=\""));
    assert!(text.contains("dudetm_replay_apply_ns_bucket{shard=\"1\",le=\""));
    assert!(text.contains("dudetm_replay_apply_ns_count{shard=\"0\"}"));
    assert_eq!(
        text.matches("# TYPE dudetm_replay_apply_ns histogram")
            .count(),
        1,
        "labeled series share one family declaration"
    );
}

/// The validator is load-bearing for CI: it must reject the failure
/// shapes a broken renderer would produce.
#[test]
fn validator_rejects_broken_expositions() {
    let undeclared = "dudetm_commits_total 5\n";
    assert!(
        validate_exposition(undeclared).is_err(),
        "undeclared family"
    );
    let non_cumulative = "# TYPE h histogram\n\
         h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n\
         h_sum 9\nh_count 5\n";
    assert!(
        validate_exposition(non_cumulative).is_err(),
        "buckets must be cumulative"
    );
    let count_mismatch = "# TYPE h histogram\n\
         h_bucket{le=\"+Inf\"} 4\nh_sum 9\nh_count 5\n";
    assert!(
        validate_exposition(count_mismatch).is_err(),
        "+Inf must equal count"
    );
    assert!(validate_exposition("").is_err(), "empty exposition");
}

/// End-to-end scrape: a real TCP GET against [`MetricsServer`] returns a
/// 200 with a valid exposition; any other path 404s; drop shuts the
/// listener down.
#[test]
fn metrics_server_serves_a_valid_scrape() {
    let dude = observed_runtime();
    let server = MetricsServer::start(Arc::clone(dude.metrics()), "127.0.0.1:0")
        .expect("ephemeral bind succeeds");
    let addr = server.local_addr();

    let scrape = |path: &str| -> String {
        let mut stream = TcpStream::connect(addr).expect("connect to scrape endpoint");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).expect("read response");
        resp
    };

    let ok = scrape("/metrics");
    assert!(ok.starts_with("HTTP/1.1 200 OK"), "{ok}");
    assert!(ok.contains("text/plain; version=0.0.4"), "{ok}");
    let body = ok.split("\r\n\r\n").nth(1).expect("response has a body");
    validate_exposition(body).expect("scraped body must validate");
    assert!(body.contains("dudetm_commits_total 150"), "{body}");

    let missing = scrape("/nope");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

    drop(server);
    // The listener is gone: a fresh connection must fail or yield nothing.
    if let Ok(mut stream) = TcpStream::connect(addr) {
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let _ = write!(stream, "GET /metrics HTTP/1.1\r\n\r\n");
        let mut buf = String::new();
        let n = stream.read_to_string(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "dropped server must not answer: {buf}");
    }
}

/// JSONL round-trip law: every line `to_jsonl` emits parses back via
/// `from_json_line` into a frame that re-serializes to the identical
/// line — so `--metrics-out` files and `dude-top --replay` agree exactly.
#[test]
fn jsonl_frames_round_trip_exactly() {
    let dude = observed_runtime();
    dude.sample_metrics_now(); // at least two frames in the ring
    let frames = dude.metrics().frames();
    assert!(frames.len() >= 2);
    let jsonl = dude.metrics().to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), frames.len());
    for (line, original) in lines.iter().zip(&frames) {
        let parsed = MetricsFrame::from_json_line(line).expect("every emitted line parses");
        assert_eq!(parsed.to_json_line(), *line, "re-serialization is stable");
        assert_eq!(parsed.commits, original.commits);
        assert_eq!(parsed.ts_ns, original.ts_ns);
        assert_eq!(parsed.stalls, original.stalls);
    }
    // Frames are a time series: seq and ts_ns advance monotonically.
    for pair in frames.windows(2) {
        assert_eq!(pair[1].seq, pair[0].seq + 1);
        assert!(pair[1].ts_ns >= pair[0].ts_ns);
    }
    // Malformed lines are rejected, not mis-parsed.
    assert!(MetricsFrame::from_json_line("").is_none());
    assert!(MetricsFrame::from_json_line("{\"seq\":1}").is_none());
    assert!(MetricsFrame::from_json_line("not json").is_none());
}
