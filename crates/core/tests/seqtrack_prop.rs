//! Property tests for the sequence-reorder primitives (`seqtrack`).
//!
//! `OrderedCompletions` is the gate between out-of-order parallel flush
//! and in-order durability publication, so its contract is stated here as
//! properties over *arbitrary completion permutations*, not hand-picked
//! interleavings: whatever order workers complete in, emission is the
//! identity sequence; a gap stalls everything above it and filling the
//! gap drains the parked run in one step.

use proptest::prelude::*;

use dudetm::{OrderedCompletions, SequenceTracker};

/// Decodes `entropy` into a permutation of `0..n` (Fisher–Yates driven by
/// the raw words, so the proptest shim needs no shuffle strategy).
fn permutation(n: usize, entropy: &[u64]) -> Vec<u64> {
    let mut perm: Vec<u64> = (0..n as u64).collect();
    for i in (1..n).rev() {
        let r = entropy[i % entropy.len().max(1)] as usize % (i + 1);
        perm.swap(i, r);
    }
    perm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Completing `0..n` in any order emits exactly `0..n`, in order, with
    /// every item delivered under its own sequence number, and leaves
    /// nothing parked.
    #[test]
    fn any_permutation_emits_dense_in_order(
        n in 1usize..64,
        entropy in proptest::collection::vec(any::<u64>(), 1..16),
    ) {
        let perm = permutation(n, &entropy);
        let oc = OrderedCompletions::starting_at(0);
        let mut emitted = Vec::new();
        for &seq in &perm {
            oc.complete(seq, seq, |s, item| emitted.push((s, item)));
            // Emission never runs ahead of the completed contiguous prefix.
            prop_assert!(emitted.len() <= n);
        }
        let expect: Vec<(u64, u64)> = (0..n as u64).map(|s| (s, s)).collect();
        prop_assert_eq!(emitted, expect);
        prop_assert_eq!(oc.next_pending(), n as u64);
        prop_assert_eq!(oc.parked_len(), 0);
    }

    /// The same property holds from a recovered (non-zero) starting
    /// sequence number.
    #[test]
    fn offset_start_emits_dense_in_order(
        start in 1u64..1_000_000,
        n in 1usize..48,
        entropy in proptest::collection::vec(any::<u64>(), 1..16),
    ) {
        let perm = permutation(n, &entropy);
        let oc = OrderedCompletions::starting_at(start);
        let mut emitted = Vec::new();
        for &seq in &perm {
            oc.complete(start + seq, seq, |s, _| emitted.push(s));
        }
        let expect: Vec<u64> = (start..start + n as u64).collect();
        prop_assert_eq!(emitted, expect);
        prop_assert_eq!(oc.next_pending(), start + n as u64);
    }

    /// Holding back one sequence number stalls emission exactly at the
    /// gap — everything above parks — and completing it drains the whole
    /// parked run in that single call.
    #[test]
    fn gap_stalls_then_drains(
        n in 2usize..64,
        gap_pick in any::<u64>(),
        entropy in proptest::collection::vec(any::<u64>(), 1..16),
    ) {
        let gap = gap_pick as usize % n;
        let perm = permutation(n, &entropy);
        let oc = OrderedCompletions::starting_at(0);
        let mut emitted = Vec::new();
        for &seq in perm.iter().filter(|&&s| s != gap as u64) {
            oc.complete(seq, (), |s, ()| emitted.push(s));
        }
        // Emitted: exactly the run below the gap. Parked: everything above.
        let below: Vec<u64> = (0..gap as u64).collect();
        prop_assert_eq!(&emitted, &below);
        prop_assert_eq!(oc.next_pending(), gap as u64);
        prop_assert_eq!(oc.parked_len(), n - 1 - gap);
        // Filling the gap releases the rest, still in order.
        oc.complete(gap as u64, (), |s, ()| emitted.push(s));
        let all: Vec<u64> = (0..n as u64).collect();
        prop_assert_eq!(&emitted, &all);
        prop_assert_eq!(oc.next_pending(), n as u64);
        prop_assert_eq!(oc.parked_len(), 0);
    }

    /// `SequenceTracker::starting_at` behaves like a fresh tracker shifted
    /// by `start`: the watermark matches the naive largest-complete-prefix
    /// model for any completion permutation of `start+1..=start+n`.
    #[test]
    fn tracker_offset_start_matches_model(
        start in 0u64..1_000_000,
        n in 1usize..64,
        entropy in proptest::collection::vec(any::<u64>(), 1..16),
    ) {
        let perm = permutation(n, &entropy);
        let tracker = SequenceTracker::starting_at(start);
        let mut done = std::collections::HashSet::new();
        for &p in &perm {
            tracker.mark(start + 1 + p);
            done.insert(start + 1 + p);
            let model = (start + 1..).take_while(|id| done.contains(id)).count() as u64;
            prop_assert_eq!(tracker.watermark(), start + model);
            prop_assert_eq!(tracker.pending_len(), done.len() - model as usize);
        }
        prop_assert_eq!(tracker.watermark(), start + n as u64);
    }
}
