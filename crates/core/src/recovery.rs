//! Crash recovery (§3.5).
//!
//! Recovery scans the persistent log regions, collects every intact record,
//! and replays **the one contiguous run of transaction IDs that spans the
//! durable reproduced-ID checkpoint**, in increasing ID order. Records
//! above the run's end sit beyond an ID gap: the missing transaction's log
//! never became durable, so they — and everything after them, which could
//! causally depend on the gap — are discarded. Transactions whose
//! durability was acknowledged can never be part of the discarded tail,
//! because acknowledgement requires the durable ID to cover them, which
//! requires every smaller ID to be persisted.
//!
//! Within the chosen run, records at or below the checkpoint are replayed
//! too (idempotent redo): a torn crash can persist the checkpoint word
//! while losing a flushed-but-unfenced data line it claims to cover, and
//! the covering records are provably still intact because log spans are
//! recycled only after the covering checkpoint's fence completes. Intact
//! records *detached* from the checkpoint's run on the low side are a
//! different matter: they are released-but-not-yet-overwritten spans from
//! an earlier recycling cycle, whose successors are gone. Replaying one
//! would regress the heap to a stale value with no later record left to
//! repair it, so they are skipped (`stale_skipped`). The run containing
//! the checkpoint is unique: records never overlap, so two qualifying runs
//! would be adjacent and would have merged.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use dude_nvm::Nvm;

use crate::config::DudeTmConfig;
use crate::metrics::{RecoveryPhase, RecoveryTelemetry};
use crate::plog::scan_region;
use crate::runtime::{
    NvmLayout, META_MAGIC, META_MAGIC_WORD, META_REPRODUCED, META_THREADS, META_VERSION,
    META_VERSION_WORD,
};

/// Outcome of [`recover_device`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Reproduced-ID checkpoint found on the device.
    pub checkpoint: u64,
    /// Last transaction ID after replay (the new clock origin).
    pub last_tid: u64,
    /// Transactions replayed from the logs (including abort markers).
    pub replayed: u64,
    /// Intact log records that were discarded because they sat beyond the
    /// first ID gap (persisted but never acknowledged durable).
    pub discarded: u64,
    /// Stale records skipped: intact but wholly below the checkpoint and
    /// detached from its run — released log spans not yet overwritten,
    /// whose replay would regress the heap.
    pub stale_skipped: u64,
    /// Wall time spent scanning the log regions for intact records, in
    /// nanoseconds. With `scan_ns + replay_ns + wipe_ns` this breaks down
    /// where recovery time goes — scan is proportional to log-region size,
    /// replay to surviving records, wipe to dirty log words.
    pub scan_ns: u64,
    /// Wall time spent replaying the checkpoint's run into the heap image
    /// (including the checkpoint advance fence), in nanoseconds.
    pub replay_ns: u64,
    /// Wall time spent wiping the dead log records, in nanoseconds.
    pub wipe_ns: u64,
}

/// Errors returned by [`recover_device`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoverError {
    /// The device does not carry DudeTM's metadata magic.
    NotFormatted,
    /// The on-device format version is unsupported.
    BadVersion(u64),
    /// The device was formatted with a different `max_threads`, so the log
    /// layout does not match.
    LayoutMismatch {
        /// Thread count recorded on the device.
        on_device: u64,
        /// Thread count in the supplied configuration.
        configured: u64,
    },
}

impl core::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RecoverError::NotFormatted => f.write_str("device is not a DudeTM volume"),
            RecoverError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            RecoverError::LayoutMismatch {
                on_device,
                configured,
            } => write!(
                f,
                "device formatted for {on_device} threads, configured for {configured}"
            ),
        }
    }
}

impl std::error::Error for RecoverError {}

/// Replays persistent logs into the heap image and durably advances the
/// checkpoint. Returns the layout and report; [`crate::DudeTm`] constructors
/// call this before starting the pipeline.
///
/// # Errors
///
/// See [`RecoverError`].
pub fn recover_device(
    nvm: &Arc<Nvm>,
    config: &DudeTmConfig,
) -> Result<(NvmLayout, RecoveryReport), RecoverError> {
    recover_device_observed(nvm, config, &RecoveryTelemetry::default())
}

/// As [`recover_device`], reporting phase progress through `telemetry`
/// while it runs: the phase gauge steps scan → replay → wipe → done, and
/// the `recovery_*` counters advance as records are scanned, replayed,
/// discarded, skipped, and wiped — so a long recovery is observable
/// mid-flight. [`DudeTm::recover_stm`](crate::DudeTm::recover_stm) /
/// [`DudeTm::recover_htm`](crate::DudeTm::recover_htm) pass the same
/// handles into the restarted runtime's metrics registry.
///
/// # Errors
///
/// See [`RecoverError`].
pub fn recover_device_observed(
    nvm: &Arc<Nvm>,
    config: &DudeTmConfig,
    telemetry: &RecoveryTelemetry,
) -> Result<(NvmLayout, RecoveryReport), RecoverError> {
    config.validate();
    let layout = NvmLayout::compute(nvm.size_bytes(), config);
    if nvm.read_word(layout.meta.start() + META_MAGIC_WORD * 8) != META_MAGIC {
        return Err(RecoverError::NotFormatted);
    }
    let version = nvm.read_word(layout.meta.start() + META_VERSION_WORD * 8);
    if version != META_VERSION {
        return Err(RecoverError::BadVersion(version));
    }
    let on_device = nvm.read_word(layout.meta.start() + META_THREADS * 8);
    if on_device != config.max_threads as u64 {
        return Err(RecoverError::LayoutMismatch {
            on_device,
            configured: config.max_threads as u64,
        });
    }
    let checkpoint = nvm.read_word(layout.meta.start() + META_REPRODUCED * 8);

    // Collect every intact record from every log ring, in transaction-ID
    // order.
    telemetry.set_phase(RecoveryPhase::Scan);
    let scan_start = dude_nvm::monotonic_ns();
    let mut records = Vec::new();
    for &region in &layout.plogs {
        let found = scan_region(nvm, region);
        telemetry
            .records_scanned
            .fetch_add(found.len() as u64, Ordering::Relaxed);
        telemetry
            .bytes_scanned
            .fetch_add(region.len(), Ordering::Relaxed);
        records.extend(found);
    }
    records.sort_by_key(|rec| rec.first_tid);
    let scan_ns = dude_nvm::monotonic_ns().saturating_sub(scan_start);
    // Overlapping ranges would both claim some ID; there is no way to pick
    // a winner, so reject loudly rather than replay an arbitrary history.
    for pair in records.windows(2) {
        assert!(
            pair[0].last_tid < pair[1].first_tid,
            "recovery: records {}..={} and {}..={} overlap — ambiguous log",
            pair[0].first_tid,
            pair[0].last_tid,
            pair[1].first_tid,
            pair[1].last_tid
        );
    }

    // Group the records into contiguous TID runs (a record straddling a
    // boundary keeps its run going: `first_tid <= run_end + 1`) and find
    // the run spanning the checkpoint, i.e. reaching back to at most
    // `checkpoint + 1` and forward to at least `checkpoint`. Uniqueness:
    // two qualifying runs would be adjacent (the later one must start at
    // or below `checkpoint + 1`, at most one past the earlier one's end)
    // and so would have merged into one.
    //
    // Replay only that run, in ID order — idempotent redo: on real
    // hardware, flushed lines can drain in any order before the fence, so
    // a crash inside the checkpoint's `CLWB`/`SFENCE` window can persist
    // the checkpoint word while tearing a data line it claims to cover
    // (the emulator's torn-cache-line crash reproduces this); replaying
    // the run's sub-checkpoint records repairs any such hole because each
    // record carries final values for its ID range. Runs entirely below
    // the checkpoint are stale recycled spans and must NOT be replayed;
    // runs entirely above it sit beyond an ID gap and are discarded.
    let mut runs: Vec<Vec<crate::log::ParsedRecord>> = Vec::new();
    for rec in records {
        match runs.last_mut() {
            Some(run) if rec.first_tid <= run.last().expect("non-empty run").last_tid + 1 => {
                run.push(rec);
            }
            _ => runs.push(vec![rec]),
        }
    }
    telemetry.set_phase(RecoveryPhase::Replay);
    let replay_start = dude_nvm::monotonic_ns();
    let mut last_tid = checkpoint;
    let mut replayed = 0u64;
    let mut discarded = 0u64;
    let mut stale_skipped = 0u64;
    for run in runs {
        let first = run.first().expect("non-empty run").first_tid;
        let last = run.last().expect("non-empty run").last_tid;
        if last < checkpoint {
            stale_skipped += run.len() as u64;
            telemetry
                .stale_skipped
                .fetch_add(run.len() as u64, Ordering::Relaxed);
        } else if first > checkpoint + 1 {
            // Beyond the gap; each discarded record may cover a group.
            let dropped = run
                .iter()
                .map(|rec| rec.last_tid - rec.first_tid + 1)
                .sum::<u64>();
            discarded += dropped;
            telemetry
                .records_discarded
                .fetch_add(dropped, Ordering::Relaxed);
        } else {
            for rec in &run {
                for &(addr, val) in &rec.writes {
                    let off = layout.heap.start() + addr;
                    nvm.write_word(off, val);
                    nvm.flush(off, 8);
                }
                telemetry
                    .bytes_replayed
                    .fetch_add(8 * rec.writes.len() as u64, Ordering::Relaxed);
            }
            // Count only IDs not already covered by the checkpoint.
            replayed = last - checkpoint;
            last_tid = last;
            telemetry
                .txns_replayed
                .fetch_add(replayed, Ordering::Relaxed);
        }
    }
    nvm.write_word(layout.meta.start() + META_REPRODUCED * 8, last_tid);
    nvm.flush(layout.meta.start() + META_REPRODUCED * 8, 8);
    nvm.fence();
    let replay_ns = dude_nvm::monotonic_ns().saturating_sub(replay_start);
    telemetry.set_phase(RecoveryPhase::Wipe);
    let wipe_start = dude_nvm::monotonic_ns();

    // Wipe the log regions. Every surviving record is now at or below the
    // durable checkpoint, i.e. dead — but physically present. The restarted
    // runtime re-uses transaction IDs starting at `last_tid + 1`, so a
    // *later* crash would let these stale records alias freshly-logged IDs
    // and corrupt that recovery. Ordering matters: the checkpoint fence
    // above happens first, so a crash mid-wipe leaves only records the
    // checkpoint already filters out (or half-zeroed ones whose checksums
    // no longer verify).
    for &region in &layout.plogs {
        let mut off = region.start();
        while off < region.end() {
            if nvm.read_word(off) != 0 {
                nvm.write_word(off, 0);
                nvm.flush(off, 8);
                telemetry.bytes_wiped.fetch_add(8, Ordering::Relaxed);
            }
            off += 8;
        }
    }
    nvm.fence();
    let wipe_ns = dude_nvm::monotonic_ns().saturating_sub(wipe_start);
    telemetry.set_phase(RecoveryPhase::Done);

    let report = RecoveryReport {
        checkpoint,
        last_tid,
        replayed,
        discarded,
        stale_skipped,
        scan_ns,
        replay_ns,
        wipe_ns,
    };
    Ok((layout, report))
}
