//! Crash recovery (§3.5).
//!
//! Recovery scans the persistent log regions, collects every intact record
//! with a transaction ID above the durable reproduced-ID checkpoint, and
//! replays them **in increasing ID order until the first gap**. A gap means
//! the missing transaction's log never became durable; it — and everything
//! after it, which could causally depend on it — is discarded. Transactions
//! whose durability was acknowledged can never be part of the discarded
//! tail, because acknowledgement requires the durable ID to cover them,
//! which requires every smaller ID to be persisted.

use std::collections::HashMap;
use std::sync::Arc;

use dude_nvm::Nvm;

use crate::config::DudeTmConfig;
use crate::plog::scan_region;
use crate::runtime::{
    NvmLayout, META_MAGIC, META_MAGIC_WORD, META_REPRODUCED, META_THREADS, META_VERSION,
    META_VERSION_WORD,
};

/// Outcome of [`recover_device`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Reproduced-ID checkpoint found on the device.
    pub checkpoint: u64,
    /// Last transaction ID after replay (the new clock origin).
    pub last_tid: u64,
    /// Transactions replayed from the logs (including abort markers).
    pub replayed: u64,
    /// Intact log records that were discarded because they sat beyond the
    /// first ID gap (persisted but never acknowledged durable).
    pub discarded: u64,
}

/// Errors returned by [`recover_device`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoverError {
    /// The device does not carry DudeTM's metadata magic.
    NotFormatted,
    /// The on-device format version is unsupported.
    BadVersion(u64),
    /// The device was formatted with a different `max_threads`, so the log
    /// layout does not match.
    LayoutMismatch {
        /// Thread count recorded on the device.
        on_device: u64,
        /// Thread count in the supplied configuration.
        configured: u64,
    },
}

impl core::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RecoverError::NotFormatted => f.write_str("device is not a DudeTM volume"),
            RecoverError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            RecoverError::LayoutMismatch {
                on_device,
                configured,
            } => write!(
                f,
                "device formatted for {on_device} threads, configured for {configured}"
            ),
        }
    }
}

impl std::error::Error for RecoverError {}

/// Replays persistent logs into the heap image and durably advances the
/// checkpoint. Returns the layout and report; [`crate::DudeTm`] constructors
/// call this before starting the pipeline.
///
/// # Errors
///
/// See [`RecoverError`].
pub fn recover_device(
    nvm: &Arc<Nvm>,
    config: &DudeTmConfig,
) -> Result<(NvmLayout, RecoveryReport), RecoverError> {
    config.validate();
    let layout = NvmLayout::compute(nvm.size_bytes(), config);
    if nvm.read_word(layout.meta.start() + META_MAGIC_WORD * 8) != META_MAGIC {
        return Err(RecoverError::NotFormatted);
    }
    let version = nvm.read_word(layout.meta.start() + META_VERSION_WORD * 8);
    if version != META_VERSION {
        return Err(RecoverError::BadVersion(version));
    }
    let on_device = nvm.read_word(layout.meta.start() + META_THREADS * 8);
    if on_device != config.max_threads as u64 {
        return Err(RecoverError::LayoutMismatch {
            on_device,
            configured: config.max_threads as u64,
        });
    }
    let checkpoint = nvm.read_word(layout.meta.start() + META_REPRODUCED * 8);

    // Collect intact records beyond the checkpoint from every log ring.
    let mut records = HashMap::new();
    for &region in &layout.plogs {
        for rec in scan_region(nvm, region) {
            if rec.first_tid > checkpoint {
                records.insert(rec.first_tid, rec);
            }
        }
    }

    // Replay the dense prefix.
    let mut expected = checkpoint + 1;
    let mut replayed = 0u64;
    while let Some(rec) = records.remove(&expected) {
        for &(addr, val) in &rec.writes {
            let off = layout.heap.start() + addr;
            nvm.write_word(off, val);
            nvm.flush(off, 8);
        }
        replayed += rec.last_tid - rec.first_tid + 1;
        expected = rec.last_tid + 1;
    }
    let last_tid = expected - 1;
    nvm.write_word(layout.meta.start() + META_REPRODUCED * 8, last_tid);
    nvm.flush(layout.meta.start() + META_REPRODUCED * 8, 8);
    nvm.fence();

    let report = RecoveryReport {
        checkpoint,
        last_tid,
        replayed,
        discarded: records.len() as u64,
    };
    Ok((layout, report))
}
