//! Continuous telemetry: the metrics registry, time-series sampler frames,
//! Prometheus text exposition, and the optional scrape server.
//!
//! PR 4's observability layer ([`crate::trace`]) is post-mortem: histograms
//! and stall counters you read after the run. This module turns the same
//! instrumentation into a *continuous* surface (see `DESIGN.md
//! §Observability` for the full catalog):
//!
//! * [`Counter`] / [`Gauge`] — cheap cloneable handles over relaxed
//!   atomics. The pipeline's hot-path counters ([`crate::PipelineStats`],
//!   [`crate::trace::StallCounters`]) are built from these, so the registry
//!   shares the very cells the pipeline increments — registration adds no
//!   write on any hot path.
//! * [`MetricsRegistry`] — named handles to every counter, gauge, and
//!   [`LatencyHistogram`] of one runtime instance, plus a bounded ring of
//!   sampled [`MetricsFrame`]s. The handle table is immutable after
//!   [`MetricsBuilder::build`], so reads are lock-free; only the cold
//!   frame ring (written once per `sample_interval`) takes a mutex.
//! * [`MetricsFrame`] — one sampler tick: cumulative stage counters,
//!   watermark/lag gauges, stall counters, and rates derived from the
//!   previous frame. Exported as JSON lines, parsed back by
//!   [`MetricsFrame::from_json_line`] (the `dude-top` replay path).
//! * [`MetricsRegistry::render_prometheus`] — standard text exposition
//!   (version 0.0.4): counters as `_total`, gauges plain, histograms as
//!   cumulative `_bucket`/`_sum`/`_count`. [`validate_exposition`] is the
//!   matching format checker used by tests and CI.
//! * [`MetricsServer`] — a std-only blocking HTTP listener serving
//!   `GET /metrics`. Native builds only by design: it blocks OS threads on
//!   `accept(2)`, which the sim scheduler cannot preempt, so it is never
//!   spawned through the `dude_nvm::thread` facade.
//! * [`RecoveryTelemetry`] — phase gauge and progress counters that
//!   [`crate::recover_device`] variants update while scanning, replaying,
//!   and wiping, registered under `recovery_*` names.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::trace::{bucket_bounds, HistogramSnapshot, LatencyHistogram, StallSnapshot};

/// A cloneable handle to a monotonically increasing relaxed counter.
///
/// Mirrors the `AtomicU64` calls the pipeline already makes
/// (`fetch_add`/`load`/`store`), so swapping a raw atomic for a `Counter`
/// changes no call site — it only makes the cell shareable with the
/// registry.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh zero counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n`, returning the previous value.
    #[inline]
    pub fn fetch_add(&self, n: u64, order: Ordering) -> u64 {
        self.0.fetch_add(n, order)
    }

    /// Reads the current value.
    #[inline]
    #[must_use]
    pub fn load(&self, order: Ordering) -> u64 {
        self.0.load(order)
    }

    /// Overwrites the value (test setup; counters are otherwise add-only).
    #[inline]
    pub fn store(&self, v: u64, order: Ordering) {
        self.0.store(v, order);
    }

    /// Relaxed read shorthand.
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        self.load(Ordering::Relaxed)
    }
}

/// A cloneable handle to a last-value gauge (relaxed `u64`).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh zero gauge.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Reads the value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Raises the gauge to `v` if `v` is larger (used for the committed-TID
    /// high-water mark, which many Perform threads race to advance).
    #[inline]
    pub fn fetch_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }
}

/// Configuration of the continuous-telemetry layer (a field of
/// [`crate::DudeTmConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsConfig {
    /// Master switch. When `false` (the default) no sampler thread is
    /// spawned, no frame is captured, and the pipeline's hot paths pay one
    /// branch per instrumentation point.
    pub enabled: bool,
    /// Sampler cadence. Under `--features sim` this is virtual time on the
    /// simulated clock, so sampled schedules stay deterministic.
    pub sample_interval: Duration,
    /// Bounded capacity of the frame ring; the oldest frames are dropped
    /// once it fills.
    pub frame_capacity: usize,
}

impl MetricsConfig {
    /// Default capacity of the frame ring (about 40 s of history at the
    /// 10 ms cadence CI uses).
    pub const DEFAULT_FRAME_CAPACITY: usize = 4096;

    /// Telemetry off — the default. The sampler is not spawned and the
    /// pipeline's observable behavior is identical to a build without the
    /// layer (verified by `tests/metrics_layer.rs`).
    #[must_use]
    pub fn disabled() -> Self {
        MetricsConfig {
            enabled: false,
            sample_interval: Duration::from_millis(10),
            frame_capacity: 0,
        }
    }

    /// Telemetry on, sampling a frame every `sample_interval` into a ring
    /// of [`MetricsConfig::DEFAULT_FRAME_CAPACITY`] frames.
    ///
    /// # Panics
    ///
    /// Panics if `sample_interval` is zero.
    #[must_use]
    pub fn sampling(sample_interval: Duration) -> Self {
        assert!(
            !sample_interval.is_zero(),
            "an enabled sampler needs a nonzero interval"
        );
        MetricsConfig {
            enabled: true,
            sample_interval,
            frame_capacity: Self::DEFAULT_FRAME_CAPACITY,
        }
    }

    /// Replaces the frame-ring capacity.
    ///
    /// # Panics
    ///
    /// Panics if telemetry is enabled and `frame_capacity` is zero.
    #[must_use]
    pub fn with_frame_capacity(mut self, frame_capacity: usize) -> Self {
        assert!(
            !self.enabled || frame_capacity > 0,
            "an enabled sampler needs frame capacity"
        );
        self.frame_capacity = frame_capacity;
        self
    }
}

impl Default for MetricsConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// What kind of metric a registry entry is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing counter (`_total` in the exposition).
    Counter,
    /// Last-value gauge.
    Gauge,
    /// Log-scale latency/size histogram (cumulative buckets in the
    /// exposition).
    Histogram,
}

#[derive(Debug)]
enum MetricSource {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Arc<LatencyHistogram>),
}

#[derive(Debug)]
struct Entry {
    name: &'static str,
    help: &'static str,
    label: Option<(&'static str, String)>,
    source: MetricSource,
}

impl Entry {
    fn full_name(&self) -> String {
        match &self.label {
            Some((k, v)) => format!("{}{{{}=\"{}\"}}", self.name, k, v),
            None => self.name.to_string(),
        }
    }

    fn kind(&self) -> MetricKind {
        match self.source {
            MetricSource::Counter(_) => MetricKind::Counter,
            MetricSource::Gauge(_) => MetricKind::Gauge,
            MetricSource::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// Builds a [`MetricsRegistry`]; entries are fixed once built, which is
/// what makes registry reads lock-free.
#[derive(Debug)]
pub struct MetricsBuilder {
    config: MetricsConfig,
    entries: Vec<Entry>,
}

impl MetricsBuilder {
    /// Starts an empty registry with the given configuration.
    #[must_use]
    pub fn new(config: MetricsConfig) -> Self {
        MetricsBuilder {
            config,
            entries: Vec::new(),
        }
    }

    fn push(&mut self, entry: Entry) {
        let full = entry.full_name();
        assert!(
            self.entries.iter().all(|e| e.full_name() != full),
            "duplicate metric registration: {full}"
        );
        self.entries.push(entry);
    }

    /// Registers a counter handle under `name`.
    pub fn counter(&mut self, name: &'static str, help: &'static str, c: &Counter) {
        self.push(Entry {
            name,
            help,
            label: None,
            source: MetricSource::Counter(c.clone()),
        });
    }

    /// Registers a gauge handle under `name`.
    pub fn gauge(&mut self, name: &'static str, help: &'static str, g: &Gauge) {
        self.push(Entry {
            name,
            help,
            label: None,
            source: MetricSource::Gauge(g.clone()),
        });
    }

    /// Registers a histogram under `name`, optionally with one
    /// `label="value"` pair (per-shard / per-worker instances share a name
    /// and differ by label).
    pub fn histogram(
        &mut self,
        name: &'static str,
        help: &'static str,
        label: Option<(&'static str, String)>,
        h: &Arc<LatencyHistogram>,
    ) {
        self.push(Entry {
            name,
            help,
            label,
            source: MetricSource::Histogram(Arc::clone(h)),
        });
    }

    /// Freezes the entry table.
    #[must_use]
    pub fn build(self) -> MetricsRegistry {
        MetricsRegistry {
            config: self.config,
            entries: self.entries,
            frames: Mutex::new(VecDeque::new()),
            frames_recorded: AtomicU64::new(0),
        }
    }
}

/// Named handles to every metric of one runtime instance plus the bounded
/// ring of sampled [`MetricsFrame`]s. Obtain via
/// [`DudeTm::metrics`](crate::DudeTm::metrics).
#[derive(Debug)]
pub struct MetricsRegistry {
    config: MetricsConfig,
    entries: Vec<Entry>,
    frames: Mutex<VecDeque<MetricsFrame>>,
    frames_recorded: AtomicU64,
}

impl MetricsRegistry {
    /// The configuration the registry was built with.
    #[must_use]
    pub fn config(&self) -> MetricsConfig {
        self.config
    }

    /// Whether continuous sampling is on.
    #[inline]
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// Full names of every registered metric (labels rendered inline, e.g.
    /// `replay_apply_ns{shard="0"}`), in registration order.
    #[must_use]
    pub fn metric_names(&self) -> Vec<String> {
        self.entries.iter().map(Entry::full_name).collect()
    }

    /// `(full_name, kind)` for every registered metric, in registration
    /// order — the machine-readable catalog the summary-completeness test
    /// walks.
    #[must_use]
    pub fn catalog(&self) -> Vec<(String, MetricKind)> {
        self.entries
            .iter()
            .map(|e| (e.full_name(), e.kind()))
            .collect()
    }

    /// Current value of the counter registered as `name`.
    #[must_use]
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|e| match &e.source {
            MetricSource::Counter(c) if e.name == name => Some(c.get()),
            _ => None,
        })
    }

    /// Current value of the gauge registered as `name`.
    #[must_use]
    pub fn gauge_value(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|e| match &e.source {
            MetricSource::Gauge(g) if e.name == name => Some(g.get()),
            _ => None,
        })
    }

    /// Snapshot of the histogram whose *full* name (label included) is
    /// `full_name`.
    #[must_use]
    pub fn histogram_snapshot(&self, full_name: &str) -> Option<HistogramSnapshot> {
        self.entries.iter().find_map(|e| match &e.source {
            MetricSource::Histogram(h) if e.full_name() == full_name => Some(h.snapshot()),
            _ => None,
        })
    }

    /// Appends a sampled frame, dropping the oldest once the ring holds
    /// `frame_capacity` frames.
    pub fn push_frame(&self, frame: MetricsFrame) {
        let cap = self.config.frame_capacity.max(1);
        let mut frames = self.frames.lock();
        if frames.len() == cap {
            frames.pop_front();
        }
        frames.push_back(frame);
        self.frames_recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// All frames currently held, oldest first.
    #[must_use]
    pub fn frames(&self) -> Vec<MetricsFrame> {
        self.frames.lock().iter().cloned().collect()
    }

    /// The most recent frame, if any.
    #[must_use]
    pub fn latest_frame(&self) -> Option<MetricsFrame> {
        self.frames.lock().back().cloned()
    }

    /// Total frames ever captured (including ones the bounded ring has
    /// since dropped).
    #[must_use]
    pub fn frames_recorded(&self) -> u64 {
        self.frames_recorded.load(Ordering::Relaxed)
    }

    /// The held frames as JSON lines (one frame per line, oldest first,
    /// trailing newline when non-empty) — the `--metrics-out` format.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let frames = self.frames.lock();
        let mut out = String::new();
        for f in frames.iter() {
            out.push_str(&f.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Renders every registered metric in the Prometheus text exposition
    /// format (version 0.0.4): `# HELP`/`# TYPE` per family, counters with
    /// a `_total` suffix, gauges plain, histograms as cumulative
    /// `_bucket{le="..."}` lines (one per power-of-two bucket bound, then
    /// `+Inf`) plus `_sum` and `_count`. All names carry the `dudetm_`
    /// prefix. The output passes [`validate_exposition`].
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        let mut seen: Vec<&str> = Vec::new();
        for e in &self.entries {
            let first = !seen.contains(&e.name);
            if first {
                seen.push(e.name);
            }
            match &e.source {
                MetricSource::Counter(c) => {
                    if first {
                        out.push_str(&format!("# HELP dudetm_{}_total {}\n", e.name, e.help));
                        out.push_str(&format!("# TYPE dudetm_{}_total counter\n", e.name));
                    }
                    out.push_str(&format!("dudetm_{}_total {}\n", e.name, c.get()));
                }
                MetricSource::Gauge(g) => {
                    if first {
                        out.push_str(&format!("# HELP dudetm_{} {}\n", e.name, e.help));
                        out.push_str(&format!("# TYPE dudetm_{} gauge\n", e.name));
                    }
                    out.push_str(&format!("dudetm_{} {}\n", e.name, g.get()));
                }
                MetricSource::Histogram(h) => {
                    if first {
                        out.push_str(&format!("# HELP dudetm_{} {}\n", e.name, e.help));
                        out.push_str(&format!("# TYPE dudetm_{} histogram\n", e.name));
                    }
                    let snap = h.snapshot();
                    let label_prefix = match &e.label {
                        Some((k, v)) => format!("{k}=\"{v}\","),
                        None => String::new(),
                    };
                    let mut cum = 0u64;
                    for (b, &n) in snap.buckets.iter().enumerate() {
                        cum += n;
                        if b < snap.buckets.len() - 1 {
                            out.push_str(&format!(
                                "dudetm_{}_bucket{{{}le=\"{}\"}} {}\n",
                                e.name,
                                label_prefix,
                                bucket_bounds(b).1,
                                cum
                            ));
                        } else {
                            out.push_str(&format!(
                                "dudetm_{}_bucket{{{}le=\"+Inf\"}} {}\n",
                                e.name, label_prefix, cum
                            ));
                        }
                    }
                    let suffix = match &e.label {
                        Some((k, v)) => format!("{{{k}=\"{v}\"}}"),
                        None => String::new(),
                    };
                    out.push_str(&format!("dudetm_{}_sum{} {}\n", e.name, suffix, snap.sum));
                    out.push_str(&format!(
                        "dudetm_{}_count{} {}\n",
                        e.name, suffix, snap.count
                    ));
                }
            }
        }
        out
    }
}

/// One sampler tick: cumulative stage counters, watermark and lag gauges,
/// stall counters, and rates derived against the previous frame. Captured
/// every `sample_interval` by the background sampler (or on demand via
/// [`DudeTm::sample_metrics_now`](crate::DudeTm::sample_metrics_now));
/// a final frame is captured after the pipeline drains at shutdown, so the
/// last frame of a run reconciles exactly with the final
/// [`crate::PipelineSnapshot`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsFrame {
    /// Frame index within the run (0-based, monotonically increasing).
    pub seq: u64,
    /// Capture timestamp: nanoseconds on the [`dude_nvm::monotonic_ns`]
    /// clock (virtual time under `--features sim`).
    pub ts_ns: u64,
    /// Nanoseconds since the previous frame (or since the clock epoch for
    /// the first frame).
    pub dt_ns: u64,
    /// Cumulative committed update transactions.
    pub commits: u64,
    /// Cumulative abort markers.
    pub abort_markers: u64,
    /// Cumulative individual records persisted (ungrouped/sync modes).
    pub records_persisted: u64,
    /// Cumulative redo-log entries through the Persist step.
    pub entries_logged: u64,
    /// Cumulative groups persisted (grouped mode).
    pub groups_persisted: u64,
    /// Cumulative log entries entering combination.
    pub entries_before_combine: u64,
    /// Cumulative log entries surviving combination.
    pub entries_after_combine: u64,
    /// Cumulative group payload bytes before compression.
    pub group_bytes_raw: u64,
    /// Cumulative group payload bytes stored.
    pub group_bytes_stored: u64,
    /// Cumulative transactions replayed by Reproduce.
    pub txns_reproduced: u64,
    /// Cumulative durable checkpoints.
    pub checkpoints: u64,
    /// Cumulative bytes appended to the persistent log rings (record
    /// framing included).
    pub log_bytes_flushed: u64,
    /// Committed-TID high-water mark (the Perform frontier).
    pub committed: u64,
    /// Durable watermark `D`.
    pub durable: u64,
    /// Reproduced watermark.
    pub reproduced: u64,
    /// `committed - durable` (Perform → Persist lag).
    pub persist_lag: u64,
    /// `durable - reproduced` (Persist → Reproduce lag).
    pub reproduce_lag: u64,
    /// Occupied words across all persistent log rings.
    pub ring_used_words: u64,
    /// Minimum per-shard completed TID (the Reproduce frontier).
    pub frontier_min: u64,
    /// Spread between the fastest and slowest Reproduce shard.
    pub frontier_skew: u64,
    /// Cumulative stall counters (deltas between consecutive frames give
    /// the per-interval stall activity).
    pub stalls: StallSnapshot,
    /// Commits per second over `dt_ns`.
    pub commit_rate: f64,
    /// Persisted units (groups + individual records) per second.
    pub persist_rate: f64,
    /// Replayed transactions per second.
    pub replay_rate: f64,
    /// Log bytes flushed per second.
    pub flush_bytes_rate: f64,
}

impl MetricsFrame {
    /// Fills `seq`, `dt_ns`, and the four rate fields from the previous
    /// frame (pass `None` for the first frame of a run).
    #[must_use]
    pub fn with_rates_from(mut self, prev: Option<&MetricsFrame>) -> MetricsFrame {
        let (prev_ts, prev_commits, prev_persisted, prev_replayed, prev_bytes, prev_seq) =
            match prev {
                Some(p) => (
                    p.ts_ns,
                    p.commits,
                    p.groups_persisted + p.records_persisted,
                    p.txns_reproduced,
                    p.log_bytes_flushed,
                    Some(p.seq),
                ),
                None => (0, 0, 0, 0, 0, None),
            };
        self.seq = prev_seq.map_or(0, |s| s + 1);
        self.dt_ns = self.ts_ns.saturating_sub(prev_ts);
        let scale = if self.dt_ns == 0 {
            0.0
        } else {
            1e9 / self.dt_ns as f64
        };
        let persisted = self.groups_persisted + self.records_persisted;
        self.commit_rate = self.commits.saturating_sub(prev_commits) as f64 * scale;
        self.persist_rate = persisted.saturating_sub(prev_persisted) as f64 * scale;
        self.replay_rate = self.txns_reproduced.saturating_sub(prev_replayed) as f64 * scale;
        self.flush_bytes_rate = self.log_bytes_flushed.saturating_sub(prev_bytes) as f64 * scale;
        self
    }

    /// Serializes the frame as one flat JSON object (no newline). Stable
    /// key set and order; rates printed with three decimals.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"seq\":{},\"ts_ns\":{},\"dt_ns\":{},\"commits\":{},\"abort_markers\":{},\
             \"records_persisted\":{},\"entries_logged\":{},\"groups_persisted\":{},\
             \"entries_before_combine\":{},\"entries_after_combine\":{},\
             \"group_bytes_raw\":{},\"group_bytes_stored\":{},\"txns_reproduced\":{},\
             \"checkpoints\":{},\"log_bytes_flushed\":{},\"committed\":{},\"durable\":{},\
             \"reproduced\":{},\"persist_lag\":{},\"reproduce_lag\":{},\
             \"ring_used_words\":{},\"frontier_min\":{},\"frontier_skew\":{},\
             \"stall_perform_log_full\":{},\"stall_persist_ring_full\":{},\
             \"stall_persist_seq_wait\":{},\"stall_reproduce_starved\":{},\
             \"stall_checkpoint_wait\":{},\"commit_rate\":{:.3},\"persist_rate\":{:.3},\
             \"replay_rate\":{:.3},\"flush_bytes_rate\":{:.3}}}",
            self.seq,
            self.ts_ns,
            self.dt_ns,
            self.commits,
            self.abort_markers,
            self.records_persisted,
            self.entries_logged,
            self.groups_persisted,
            self.entries_before_combine,
            self.entries_after_combine,
            self.group_bytes_raw,
            self.group_bytes_stored,
            self.txns_reproduced,
            self.checkpoints,
            self.log_bytes_flushed,
            self.committed,
            self.durable,
            self.reproduced,
            self.persist_lag,
            self.reproduce_lag,
            self.ring_used_words,
            self.frontier_min,
            self.frontier_skew,
            self.stalls.perform_log_full,
            self.stalls.persist_ring_full,
            self.stalls.persist_seq_wait,
            self.stalls.reproduce_starved,
            self.stalls.checkpoint_wait,
            self.commit_rate,
            self.persist_rate,
            self.replay_rate,
            self.flush_bytes_rate,
        )
    }

    /// Parses one [`MetricsFrame::to_json_line`] line back into a frame.
    /// Returns `None` on a malformed line or a missing integer key (the
    /// rate keys default to 0 when absent, for forward compatibility).
    #[must_use]
    pub fn from_json_line(line: &str) -> Option<MetricsFrame> {
        let line = line.trim();
        if !line.starts_with('{') || !line.ends_with('}') {
            return None;
        }
        let u = |key: &str| -> Option<u64> { json_number(line, key)?.parse().ok() };
        let f = |key: &str| -> f64 {
            json_number(line, key)
                .and_then(|s| s.parse().ok())
                .unwrap_or(0.0)
        };
        Some(MetricsFrame {
            seq: u("seq")?,
            ts_ns: u("ts_ns")?,
            dt_ns: u("dt_ns")?,
            commits: u("commits")?,
            abort_markers: u("abort_markers")?,
            records_persisted: u("records_persisted")?,
            entries_logged: u("entries_logged")?,
            groups_persisted: u("groups_persisted")?,
            entries_before_combine: u("entries_before_combine")?,
            entries_after_combine: u("entries_after_combine")?,
            group_bytes_raw: u("group_bytes_raw")?,
            group_bytes_stored: u("group_bytes_stored")?,
            txns_reproduced: u("txns_reproduced")?,
            checkpoints: u("checkpoints")?,
            log_bytes_flushed: u("log_bytes_flushed")?,
            committed: u("committed")?,
            durable: u("durable")?,
            reproduced: u("reproduced")?,
            persist_lag: u("persist_lag")?,
            reproduce_lag: u("reproduce_lag")?,
            ring_used_words: u("ring_used_words")?,
            frontier_min: u("frontier_min")?,
            frontier_skew: u("frontier_skew")?,
            stalls: StallSnapshot {
                perform_log_full: u("stall_perform_log_full")?,
                persist_ring_full: u("stall_persist_ring_full")?,
                persist_seq_wait: u("stall_persist_seq_wait")?,
                reproduce_starved: u("stall_reproduce_starved")?,
                checkpoint_wait: u("stall_checkpoint_wait")?,
            },
            commit_rate: f("commit_rate"),
            persist_rate: f("persist_rate"),
            replay_rate: f("replay_rate"),
            flush_bytes_rate: f("flush_bytes_rate"),
        })
    }
}

/// Extracts the raw numeric token after `"key":` in a flat JSON object.
fn json_number<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    let token = rest[..end].trim();
    if token.is_empty() {
        None
    } else {
        Some(token)
    }
}

/// Checks `text` against the Prometheus text exposition format (version
/// 0.0.4) as [`MetricsRegistry::render_prometheus`] produces it: every
/// sample's family must be declared by a preceding `# TYPE` line, values
/// must parse as numbers, histogram buckets must be cumulative
/// (non-decreasing in declaration order) and agree with `_count` at
/// `+Inf`.
///
/// # Errors
///
/// A human-readable description of the first violation found.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    let mut types: Vec<(String, String)> = Vec::new(); // (family, type)
                                                       // (family, labels-without-le) -> (last cumulative, +Inf value)
    let mut hist_cum: Vec<(String, u64, Option<u64>)> = Vec::new();
    let mut hist_count: Vec<(String, u64)> = Vec::new();
    let type_of = |types: &[(String, String)], fam: &str| -> Option<String> {
        types.iter().find(|(f, _)| f == fam).map(|(_, t)| t.clone())
    };
    let mut samples = 0usize;
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let fam = it.next().ok_or(format!("line {ln}: bare # TYPE"))?;
            let ty = it.next().ok_or(format!("line {ln}: # TYPE without type"))?;
            if !matches!(ty, "counter" | "gauge" | "histogram") {
                return Err(format!("line {ln}: unknown type '{ty}'"));
            }
            if type_of(&types, fam).is_some() {
                return Err(format!("line {ln}: duplicate # TYPE for '{fam}'"));
            }
            types.push((fam.to_string(), ty.to_string()));
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        // Sample line: name[{labels}] value
        let (name_labels, value) = line
            .rsplit_once(' ')
            .ok_or(format!("line {ln}: no value: '{line}'"))?;
        let v: f64 = value
            .parse()
            .map_err(|_| format!("line {ln}: bad value '{value}'"))?;
        let (name, labels) = match name_labels.split_once('{') {
            Some((n, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or(format!("line {ln}: unterminated labels: '{line}'"))?;
                (n, labels)
            }
            None => (name_labels, ""),
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            || name.chars().next().is_some_and(|c| c.is_ascii_digit())
        {
            return Err(format!("line {ln}: invalid metric name '{name}'"));
        }
        samples += 1;
        // Histogram component names resolve to the family they belong to.
        let (family, component) = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| {
                name.strip_suffix(suf).and_then(|fam| {
                    (type_of(&types, fam).as_deref() == Some("histogram"))
                        .then(|| (fam.to_string(), *suf))
                })
            })
            .unwrap_or((name.to_string(), ""));
        let Some(ty) = type_of(&types, &family) else {
            return Err(format!("line {ln}: sample '{name}' has no # TYPE"));
        };
        if ty == "histogram" && component.is_empty() {
            return Err(format!(
                "line {ln}: bare sample '{name}' for histogram family"
            ));
        }
        if ty != "histogram" && v < 0.0 && ty == "counter" {
            return Err(format!("line {ln}: negative counter '{name}'"));
        }
        if component == "_bucket" {
            let mut le = None;
            let mut key_labels = String::new();
            for pair in labels.split(',').filter(|p| !p.is_empty()) {
                let (k, val) = pair
                    .split_once('=')
                    .ok_or(format!("line {ln}: bad label '{pair}'"))?;
                let val = val.trim_matches('"');
                if k == "le" {
                    le = Some(val.to_string());
                } else {
                    key_labels.push_str(pair);
                }
            }
            let le = le.ok_or(format!("line {ln}: bucket without le label"))?;
            let cum = v as u64;
            let key = format!("{family}{{{key_labels}}}");
            match hist_cum.iter_mut().find(|(k, _, _)| *k == key) {
                Some((_, last, inf)) => {
                    if cum < *last {
                        return Err(format!(
                            "line {ln}: bucket counts of '{key}' not cumulative \
                             ({cum} after {last})"
                        ));
                    }
                    *last = cum;
                    if le == "+Inf" {
                        *inf = Some(cum);
                    }
                }
                None => {
                    hist_cum.push((key, cum, (le == "+Inf").then_some(cum)));
                }
            }
        } else if component == "_count" {
            let key_labels = labels
                .split(',')
                .filter(|p| !p.is_empty() && !p.starts_with("le="))
                .collect::<String>();
            hist_count.push((format!("{family}{{{key_labels}}}"), v as u64));
        }
    }
    if samples == 0 {
        return Err("no samples in exposition".to_string());
    }
    for (key, _, inf) in &hist_cum {
        let inf = inf.ok_or(format!("histogram '{key}' has no +Inf bucket"))?;
        match hist_count.iter().find(|(k, _)| k == key) {
            Some((_, count)) if *count != inf => {
                return Err(format!(
                    "histogram '{key}': +Inf bucket {inf} != count {count}"
                ));
            }
            Some(_) => {}
            None => return Err(format!("histogram '{key}' has no _count sample")),
        }
    }
    Ok(())
}

/// A tiny std-only blocking HTTP listener serving the registry's
/// Prometheus exposition at `GET /metrics`.
///
/// Runs on a plain [`std::thread`] (never the `dude_nvm::thread` facade):
/// it blocks on `accept(2)`, which a cooperative sim task must not do, so
/// the server is a native-only convenience and is not part of the
/// deterministic surface. Dropping the server shuts it down (the drop
/// self-connects to unblock `accept` and joins the thread).
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `bind` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serves
    /// `registry`'s exposition until dropped.
    ///
    /// # Errors
    ///
    /// The bind/spawn [`std::io::Error`].
    pub fn start(registry: Arc<MetricsRegistry>, bind: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown2 = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name("dude-metrics-http".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shutdown2.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(mut stream) = stream {
                        let _ = serve_one(&mut stream, &registry);
                    }
                }
            })?;
        Ok(MetricsServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with an ephemeral port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Unblock accept(2) with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_one(stream: &mut TcpStream, registry: &MetricsRegistry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 1024];
    let mut req = Vec::new();
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        req.extend_from_slice(&buf[..n]);
        if req.windows(4).any(|w| w == b"\r\n\r\n") || req.len() > 8192 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&req);
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = if method == "GET" && path == "/metrics" {
        ("200 OK", registry.render_prometheus())
    } else {
        ("404 Not Found", "not found\n".to_string())
    };
    let resp = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; \
         charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(resp.as_bytes())
}

/// Recovery phase reported through [`RecoveryTelemetry::phase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPhase {
    /// Not recovering.
    Idle,
    /// Scanning the log regions for intact records.
    Scan,
    /// Replaying the checkpoint's run into the heap image.
    Replay,
    /// Wiping dead log records.
    Wipe,
    /// Recovery complete.
    Done,
}

impl RecoveryPhase {
    /// The gauge encoding (0 = idle … 4 = done).
    #[must_use]
    pub fn as_u64(self) -> u64 {
        match self {
            RecoveryPhase::Idle => 0,
            RecoveryPhase::Scan => 1,
            RecoveryPhase::Replay => 2,
            RecoveryPhase::Wipe => 3,
            RecoveryPhase::Done => 4,
        }
    }
}

/// Phase gauge and progress counters updated by
/// [`crate::recover_device_observed`] while a recovery runs, so a long
/// recovery is observable instead of silent. The recovery entry points on
/// [`crate::DudeTm`] pass the same handles into the restarted runtime's
/// registry (under `recovery_*` names), so a post-recovery scrape shows
/// what the recovery did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryTelemetry {
    /// Current [`RecoveryPhase`] (see [`RecoveryPhase::as_u64`]).
    pub phase: Gauge,
    /// Intact log records found by the scan.
    pub records_scanned: Counter,
    /// Log-region bytes scanned.
    pub bytes_scanned: Counter,
    /// Transaction IDs replayed into the heap image.
    pub txns_replayed: Counter,
    /// Heap bytes written by replay.
    pub bytes_replayed: Counter,
    /// Intact records discarded beyond the first ID gap.
    pub records_discarded: Counter,
    /// Stale detached records skipped.
    pub stale_skipped: Counter,
    /// Log bytes wiped after replay.
    pub bytes_wiped: Counter,
}

impl RecoveryTelemetry {
    /// Sets the phase gauge.
    pub fn set_phase(&self, phase: RecoveryPhase) {
        self.phase.set(phase.as_u64());
    }
}

/// Live watermark/lag gauges of one runtime instance. The committed-TID
/// gauge is advanced by the Perform hot path (one `fetch_max` per commit,
/// behind the metrics-enabled branch); the rest are refreshed by the
/// sampler from the pipeline's authoritative sources at every tick.
#[derive(Debug, Clone, Default)]
pub struct PipelineGauges {
    /// Committed-TID high-water mark.
    pub committed_tid: Gauge,
    /// Durable watermark `D`.
    pub durable_tid: Gauge,
    /// Reproduced watermark.
    pub reproduced_tid: Gauge,
    /// `committed - durable`.
    pub persist_lag: Gauge,
    /// `durable - reproduced`.
    pub reproduce_lag: Gauge,
    /// Occupied words across all log rings.
    pub ring_used_words: Gauge,
    /// Minimum per-shard completed TID.
    pub frontier_min: Gauge,
    /// Fastest-to-slowest shard spread.
    pub frontier_skew: Gauge,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_handles_share_cells() {
        let c = Counter::new();
        let c2 = c.clone();
        c.fetch_add(3, Ordering::Relaxed);
        c2.fetch_add(4, Ordering::Relaxed);
        assert_eq!(c.get(), 7);
        let g = Gauge::new();
        let g2 = g.clone();
        g.set(5);
        g2.fetch_max(3); // lower: no effect
        assert_eq!(g.get(), 5);
        g2.fetch_max(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn frame_json_round_trips() {
        let frame = MetricsFrame {
            ts_ns: 1_000_000,
            commits: 42,
            groups_persisted: 5,
            records_persisted: 1,
            txns_reproduced: 40,
            log_bytes_flushed: 4096,
            committed: 42,
            durable: 41,
            reproduced: 40,
            persist_lag: 1,
            reproduce_lag: 1,
            stalls: StallSnapshot {
                perform_log_full: 2,
                ..Default::default()
            },
            ..Default::default()
        }
        .with_rates_from(None);
        assert_eq!(frame.seq, 0);
        assert_eq!(frame.dt_ns, 1_000_000);
        // 42 commits over 1 ms = 42k/s.
        assert!((frame.commit_rate - 42_000.0).abs() < 1e-6);
        let line = frame.to_json_line();
        let parsed = MetricsFrame::from_json_line(&line).expect("parses");
        assert_eq!(parsed, frame);
        assert!(MetricsFrame::from_json_line("{\"seq\":1}").is_none());
        assert!(MetricsFrame::from_json_line("not json").is_none());
    }

    #[test]
    fn rates_derive_from_previous_frame() {
        let first = MetricsFrame {
            ts_ns: 1_000_000,
            commits: 100,
            records_persisted: 100,
            txns_reproduced: 90,
            log_bytes_flushed: 1000,
            ..Default::default()
        }
        .with_rates_from(None);
        let second = MetricsFrame {
            ts_ns: 2_000_000,
            commits: 150,
            records_persisted: 140,
            txns_reproduced: 130,
            log_bytes_flushed: 3000,
            ..Default::default()
        }
        .with_rates_from(Some(&first));
        assert_eq!(second.seq, 1);
        assert_eq!(second.dt_ns, 1_000_000);
        assert!((second.commit_rate - 50_000.0).abs() < 1e-6);
        assert!((second.persist_rate - 40_000.0).abs() < 1e-6);
        assert!((second.replay_rate - 40_000.0).abs() < 1e-6);
        assert!((second.flush_bytes_rate - 2_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn frame_ring_is_bounded() {
        let reg = MetricsBuilder::new(
            MetricsConfig::sampling(Duration::from_millis(1)).with_frame_capacity(3),
        )
        .build();
        for i in 0..5u64 {
            reg.push_frame(MetricsFrame {
                seq: i,
                ..Default::default()
            });
        }
        let frames = reg.frames();
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0].seq, 2);
        assert_eq!(reg.frames_recorded(), 5);
        assert_eq!(reg.latest_frame().expect("latest").seq, 4);
    }

    #[test]
    fn registry_lookup_by_name() {
        let c = Counter::new();
        c.fetch_add(7, Ordering::Relaxed);
        let g = Gauge::new();
        g.set(11);
        let h = Arc::new(LatencyHistogram::new());
        h.record(100);
        let mut b = MetricsBuilder::new(MetricsConfig::disabled());
        b.counter("commits", "committed transactions", &c);
        b.gauge("durable_tid", "durable watermark", &g);
        b.histogram(
            "replay_apply_ns",
            "replay apply time",
            Some(("shard", "0".to_string())),
            &h,
        );
        let reg = b.build();
        assert_eq!(reg.counter_value("commits"), Some(7));
        assert_eq!(reg.gauge_value("durable_tid"), Some(11));
        assert_eq!(reg.counter_value("durable_tid"), None);
        let snap = reg
            .histogram_snapshot("replay_apply_ns{shard=\"0\"}")
            .expect("histogram");
        assert_eq!(snap.count, 1);
        assert_eq!(
            reg.metric_names(),
            vec!["commits", "durable_tid", "replay_apply_ns{shard=\"0\"}"]
        );
        assert_eq!(reg.catalog()[0].1, MetricKind::Counter);
        assert_eq!(reg.catalog()[2].1, MetricKind::Histogram);
    }

    #[test]
    #[should_panic(expected = "duplicate metric registration")]
    fn duplicate_registration_rejected() {
        let c = Counter::new();
        let mut b = MetricsBuilder::new(MetricsConfig::disabled());
        b.counter("commits", "x", &c);
        b.counter("commits", "y", &c);
    }

    #[test]
    fn prometheus_render_passes_validator() {
        let c = Counter::new();
        c.fetch_add(5, Ordering::Relaxed);
        let g = Gauge::new();
        g.set(3);
        let h0 = Arc::new(LatencyHistogram::new());
        let h1 = Arc::new(LatencyHistogram::new());
        for v in [0u64, 1, 100, 100_000] {
            h0.record(v);
        }
        h1.record(7);
        let mut b = MetricsBuilder::new(MetricsConfig::disabled());
        b.counter("commits", "committed transactions", &c);
        b.gauge("persist_lag", "commit-to-durable lag", &g);
        b.histogram(
            "replay_apply_ns",
            "replay apply time",
            Some(("shard", "0".to_string())),
            &h0,
        );
        b.histogram(
            "replay_apply_ns",
            "replay apply time",
            Some(("shard", "1".to_string())),
            &h1,
        );
        let text = b.build().render_prometheus();
        validate_exposition(&text).expect("render passes own validator");
        assert!(
            text.contains("# TYPE dudetm_commits_total counter"),
            "{text}"
        );
        assert!(text.contains("dudetm_commits_total 5"), "{text}");
        assert!(text.contains("# TYPE dudetm_persist_lag gauge"), "{text}");
        assert!(text.contains("dudetm_persist_lag 3"), "{text}");
        assert!(
            text.contains("dudetm_replay_apply_ns_bucket{shard=\"0\",le=\"+Inf\"} 4"),
            "{text}"
        );
        assert!(
            text.contains("dudetm_replay_apply_ns_count{shard=\"1\"} 1"),
            "{text}"
        );
        // TYPE emitted once per family even with two labeled instances.
        assert_eq!(text.matches("# TYPE dudetm_replay_apply_ns ").count(), 1);
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        assert!(validate_exposition("").is_err());
        assert!(validate_exposition("dudetm_x_total 1\n").is_err()); // no TYPE
        let no_monotone = "# TYPE h histogram\n\
             h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 9\nh_count 3\n";
        assert!(validate_exposition(no_monotone).is_err());
        let count_mismatch = "# TYPE h histogram\n\
             h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 9\nh_count 5\n";
        assert!(validate_exposition(count_mismatch).is_err());
        let bad_value = "# TYPE c_total counter\nc_total x\n";
        assert!(validate_exposition(bad_value).is_err());
        let ok = "# TYPE c_total counter\nc_total 1\n";
        assert!(validate_exposition(ok).is_ok());
    }

    #[test]
    fn metrics_server_serves_exposition() {
        let c = Counter::new();
        c.fetch_add(9, Ordering::Relaxed);
        let mut b = MetricsBuilder::new(MetricsConfig::disabled());
        b.counter("commits", "committed transactions", &c);
        let reg = Arc::new(b.build());
        let server = MetricsServer::start(Arc::clone(&reg), "127.0.0.1:0").expect("bind");
        let addr = server.local_addr();

        let fetch = |path: &str| -> String {
            let mut s = TcpStream::connect(addr).expect("connect");
            write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").expect("request");
            let mut resp = String::new();
            s.read_to_string(&mut resp).expect("response");
            resp
        };
        let resp = fetch("/metrics");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        let body = resp.split("\r\n\r\n").nth(1).expect("body");
        validate_exposition(body).expect("served exposition validates");
        assert!(body.contains("dudetm_commits_total 9"), "{body}");
        let missing = fetch("/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        drop(server); // shuts down and joins without hanging
    }

    #[test]
    fn recovery_phase_encoding() {
        let t = RecoveryTelemetry::default();
        assert_eq!(t.phase.get(), 0);
        t.set_phase(RecoveryPhase::Replay);
        assert_eq!(t.phase.get(), RecoveryPhase::Replay.as_u64());
        assert_eq!(RecoveryPhase::Done.as_u64(), 4);
    }

    #[test]
    #[should_panic(expected = "nonzero interval")]
    fn zero_sample_interval_rejected() {
        let _ = MetricsConfig::sampling(Duration::from_secs(0));
    }

    #[test]
    fn disabled_config_is_default() {
        assert_eq!(MetricsConfig::default(), MetricsConfig::disabled());
        assert!(!MetricsConfig::disabled().enabled);
        assert!(MetricsConfig::sampling(Duration::from_millis(10)).enabled);
    }
}
