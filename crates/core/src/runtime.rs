//! The DudeTM runtime: layout, registration, the `dtm*` API, and pipeline
//! wiring.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, unbounded, RecvTimeoutError, Sender};
use dude_nvm::{Nvm, Region};
use dude_txapi::{PAddr, TxAbort, TxResult, Txn, TxnOutcome, TxnSystem, TxnThread};
use parking_lot::Mutex;

use crate::check::CommitHistory;
use crate::config::{DudeTmConfig, DurabilityMode};
use crate::engine::{EngineThread, TmEngine};
use crate::frontier::ReproduceFrontier;
use crate::log::{serialize_abort, serialize_commit, LogRecord};
use crate::metrics::{
    MetricsBuilder, MetricsFrame, MetricsRegistry, PipelineGauges, RecoveryTelemetry,
};
use crate::pipeline::{
    persist_flush_worker, persist_sequencer, persist_worker, reproduce_router,
    reproduce_shard_worker, reproduce_worker, Batch, GroupPublisher, GroupWork, ShardWork,
};
use crate::plog::PlogRing;
use crate::seqtrack::SequenceTracker;
use crate::shadow::ShadowMem;
use crate::stats::{PipelineSnapshot, PipelineStats, PipelineStatsSnapshot};
use crate::trace::{Stage, Trace, TraceEventKind};

/// Magic number identifying a formatted DudeTM device.
pub(crate) const META_MAGIC: u64 = 0xD00D_E7A6_0001_CAFE;
/// On-NVM format version.
pub(crate) const META_VERSION: u64 = 1;
/// Metadata word indices.
pub(crate) const META_MAGIC_WORD: u64 = 0;
pub(crate) const META_VERSION_WORD: u64 = 1;
pub(crate) const META_REPRODUCED: u64 = 2;
pub(crate) const META_THREADS: u64 = 3;
const META_WORDS: u64 = 8;

/// NVM layout: metadata, per-thread persistent log rings, heap.
#[derive(Debug, Clone)]
pub struct NvmLayout {
    /// Runtime metadata block (magic, version, reproduced-ID checkpoint).
    pub meta: Region,
    /// One persistent redo-log ring per Perform thread.
    pub plogs: Vec<Region>,
    /// The persistent heap the application addresses with `PAddr`.
    pub heap: Region,
}

impl NvmLayout {
    pub(crate) fn compute(nvm_bytes: u64, config: &DudeTmConfig) -> NvmLayout {
        let mut off = 0u64;
        let meta = Region::new(off, META_WORDS * 8);
        off += META_WORDS * 8;
        let mut plogs = Vec::with_capacity(config.max_threads);
        for _ in 0..config.max_threads {
            plogs.push(Region::new(off, config.plog_bytes_per_thread));
            off += config.plog_bytes_per_thread;
        }
        // Page-align the heap.
        off = off.next_multiple_of(4096);
        let heap = Region::new(off, config.heap_bytes);
        assert!(
            heap.end() <= nvm_bytes,
            "NVM device too small: need {} bytes (meta + {} log rings + heap), have {}",
            heap.end(),
            config.max_threads,
            nvm_bytes
        );
        NvmLayout { meta, plogs, heap }
    }
}

/// State shared between the API threads and the pipeline workers.
#[derive(Debug)]
pub struct Shared {
    pub(crate) nvm: Arc<Nvm>,
    pub(crate) config: DudeTmConfig,
    pub(crate) meta: Region,
    pub(crate) heap: Region,
    pub(crate) rings: Vec<Arc<PlogRing>>,
    pub(crate) tracker: SequenceTracker,
    pub(crate) reproduced: Arc<AtomicU64>,
    pub(crate) frontier: Arc<ReproduceFrontier>,
    pub(crate) stats: PipelineStats,
    pub(crate) trace: Trace,
    pub(crate) metrics: Arc<MetricsRegistry>,
    pub(crate) gauges: PipelineGauges,
}

/// Where a thread's committed redo logs go.
#[derive(Debug)]
enum Sink {
    /// Asynchronous pipeline: hand the record to a Persist thread.
    Channel(Sender<LogRecord>),
    /// DudeTM-Sync: persist inline, then forward to Reproduce.
    Sync {
        ring_idx: usize,
        batches: Sender<Batch>,
    },
}

/// [`dude_stm::TxHooks`] implementation realizing Algorithm 2: `dtmWrite`
/// appends to the thread-local volatile log, `dtmEnd` seals it with the
/// commit timestamp, `dtmAbort` discards it (emitting an abort marker if a
/// timestamp was wasted).
#[derive(Debug)]
pub struct RedoHooks {
    staged: Vec<(u64, u64)>,
    sink: Sink,
    shared: Arc<Shared>,
    shadow: Arc<ShadowMem>,
    /// Commit-history recorder for the durable-linearizability checker
    /// (`None` unless [`DudeTm::attach_history`] was called before this
    /// thread registered).
    history: Option<Arc<CommitHistory>>,
    buf: Vec<u64>,
    /// Payload bytes of the last committed transaction (8 × its writes),
    /// captured for the Perform-stage commit trace event.
    last_commit_bytes: u64,
}

impl RedoHooks {
    fn send_sync_record(&mut self, rec: LogRecord) {
        let Sink::Sync { ring_idx, batches } = &self.sink else {
            unreachable!("send_sync_record on async sink")
        };
        let tid = rec.tid();
        let writes = match rec {
            LogRecord::Commit { writes, .. } => {
                serialize_commit(tid, &writes, &mut self.buf);
                writes
            }
            LogRecord::Abort { .. } => {
                serialize_abort(tid, &mut self.buf);
                Vec::new()
            }
        };
        let span = self.shared.rings[*ring_idx].append(&self.buf);
        self.shared
            .stats
            .records_persisted
            .fetch_add(1, Ordering::Relaxed);
        self.shared
            .stats
            .log_bytes_flushed
            .fetch_add(span.words * 8, Ordering::Relaxed);
        self.shared
            .stats
            .entries_logged
            .fetch_add(writes.len() as u64, Ordering::Relaxed);
        self.shared.tracker.mark(tid);
        let _ = batches.send(Batch {
            first_tid: tid,
            last_tid: tid,
            writes,
            spans: vec![(*ring_idx, span)],
        });
    }
}

impl dude_stm::TxHooks for RedoHooks {
    fn on_write(&mut self, addr: u64, val: u64) {
        self.staged.push((addr, val));
    }

    fn on_commit(&mut self, tid: Option<u64>) {
        let Some(tid) = tid else {
            debug_assert!(self.staged.is_empty(), "read-only commit with writes");
            self.staged.clear();
            return;
        };
        self.shared.stats.commits.fetch_add(1, Ordering::Relaxed);
        // Sole per-commit metrics cost: one branch when sampling is off.
        if self.shared.metrics.enabled() {
            self.shared.gauges.committed_tid.fetch_max(tid);
        }
        if let Some(h) = &self.history {
            h.record(tid, false, &self.staged);
        }
        // Touching IDs must be set while the written pages are still pinned
        // by the running view (§4.3).
        self.shadow.note_commit(tid, &self.staged);
        self.last_commit_bytes = 8 * self.staged.len() as u64;
        let writes = std::mem::take(&mut self.staged);
        match &self.sink {
            Sink::Channel(tx) => {
                // A full bounded buffer blocks here — the Perform-side
                // backpressure of §3.2. With tracing on, count the stall
                // before blocking so the layer can tell "Perform waited on
                // Persist" from "Perform ran free".
                if self.shared.trace.enabled() {
                    match tx.try_send(LogRecord::Commit { tid, writes }) {
                        Ok(()) => {}
                        Err(crossbeam::channel::TrySendError::Full(rec)) => {
                            self.shared
                                .trace
                                .stalls
                                .perform_log_full
                                .fetch_add(1, Ordering::Relaxed);
                            let _ = tx.send(rec);
                        }
                        Err(crossbeam::channel::TrySendError::Disconnected(_)) => {}
                    }
                } else {
                    let _ = tx.send(LogRecord::Commit { tid, writes });
                }
            }
            Sink::Sync { .. } => self.send_sync_record(LogRecord::Commit { tid, writes }),
        }
    }

    fn on_abort(&mut self, wasted_tid: Option<u64>) {
        self.staged.clear();
        let Some(tid) = wasted_tid else { return };
        // A wasted TID is part of the commit order: record the abort marker
        // so the history stays dense and the prefix oracle can account for
        // the hole the marker fills.
        if let Some(h) = &self.history {
            h.record(tid, true, &[]);
        }
        self.shared
            .stats
            .abort_markers
            .fetch_add(1, Ordering::Relaxed);
        // A wasted TID still advances the commit clock.
        if self.shared.metrics.enabled() {
            self.shared.gauges.committed_tid.fetch_max(tid);
        }
        match &self.sink {
            Sink::Channel(tx) => {
                let _ = tx.send(LogRecord::Abort { tid });
            }
            Sink::Sync { .. } => self.send_sync_record(LogRecord::Abort { tid }),
        }
    }
}

/// A durable, decoupled transaction runtime (the paper's system).
///
/// Generic over the TM engine `E` — [`dude_stm::Stm`] or
/// [`dude_htm::Htm`] — reflecting the paper's out-of-the-box-TM design.
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct DudeTm<E: TmEngine> {
    engine: E,
    shadow: Arc<ShadowMem>,
    shared: Arc<Shared>,
    /// Per-slot volatile-log senders (async modes).
    record_senders: Vec<Sender<LogRecord>>,
    /// Producer side of the persist→reproduce channel (cloned by sync-mode
    /// threads; dropped at shutdown).
    batch_sender: Mutex<Option<Sender<Batch>>>,
    /// Optional commit-history recorder handed to newly registered threads
    /// (see [`DudeTm::attach_history`]).
    history: Mutex<Option<Arc<CommitHistory>>>,
    next_slot: AtomicUsize,
    workers: Mutex<Vec<dude_nvm::thread::JoinHandle<()>>>,
    /// Stop signal + handle for the metrics sampler (`None` when metrics
    /// are disabled, or after shutdown).
    sampler: Mutex<Option<(Sender<()>, dude_nvm::thread::JoinHandle<()>)>>,
    name: &'static str,
}

impl<E: TmEngine> DudeTm<E> {
    /// Formats `nvm` and starts a fresh runtime with the given engine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the device is too small.
    pub fn create_with(nvm: Arc<Nvm>, config: DudeTmConfig, engine: E) -> Self {
        config.validate();
        let layout = NvmLayout::compute(nvm.size_bytes(), &config);
        // Wipe the log regions: a re-formatted device may still carry intact
        // records from a previous generation, and recovery (which trusts any
        // record it can checksum) must never see them alias this generation's
        // transaction IDs after a crash.
        for &region in &layout.plogs {
            let mut off = region.start();
            while off < region.end() {
                if nvm.read_word(off) != 0 {
                    nvm.write_word(off, 0);
                    nvm.flush(off, 8);
                }
                off += 8;
            }
        }
        nvm.fence();
        // Format the metadata block.
        nvm.write_word(layout.meta.start() + META_MAGIC_WORD * 8, META_MAGIC);
        nvm.write_word(layout.meta.start() + META_VERSION_WORD * 8, META_VERSION);
        nvm.write_word(layout.meta.start() + META_REPRODUCED * 8, 0);
        nvm.write_word(
            layout.meta.start() + META_THREADS * 8,
            config.max_threads as u64,
        );
        nvm.persist(layout.meta.start(), META_WORDS * 8);
        Self::start(nvm, config, engine, layout, 0, RecoveryTelemetry::default())
    }

    /// Starts a runtime over an already-recovered device. `start_tid` is the
    /// last reproduced transaction ID (see [`crate::recover_device`]).
    /// `recovery` carries the telemetry handles the recovery pass (if any)
    /// already incremented, so the registry exposes its final counts.
    pub(crate) fn start(
        nvm: Arc<Nvm>,
        config: DudeTmConfig,
        engine: E,
        layout: NvmLayout,
        start_tid: u64,
        recovery: RecoveryTelemetry,
    ) -> Self {
        let rings: Vec<Arc<PlogRing>> = layout
            .plogs
            .iter()
            .map(|&r| Arc::new(PlogRing::new(Arc::clone(&nvm), r)))
            .collect();
        let reproduced = Arc::new(AtomicU64::new(start_tid));
        let stats = PipelineStats::default();
        let trace = Trace::new(
            config.trace,
            config.reproduce_threads,
            config.persist_flush_workers,
        );
        let gauges = PipelineGauges::default();
        gauges.committed_tid.set(start_tid);
        gauges.durable_tid.set(start_tid);
        gauges.reproduced_tid.set(start_tid);
        let metrics = Arc::new(build_registry(&config, &stats, &trace, &gauges, &recovery));
        let shared = Arc::new(Shared {
            nvm: Arc::clone(&nvm),
            config,
            meta: layout.meta,
            heap: layout.heap,
            rings,
            tracker: SequenceTracker::starting_at(start_tid),
            reproduced: Arc::clone(&reproduced),
            frontier: Arc::new(ReproduceFrontier::new(config.reproduce_threads, start_tid)),
            stats,
            trace,
            metrics,
            gauges,
        });
        let shadow = Arc::new(ShadowMem::new(
            config.shadow,
            config.heap_bytes,
            Arc::clone(&nvm),
            layout.heap,
            reproduced,
        ));
        shadow.populate_from_nvm(&nvm, layout.heap);

        let (batch_tx, batch_rx) = unbounded::<Batch>();
        let mut workers = Vec::new();
        let mut record_senders = Vec::new();

        match config.durability {
            DurabilityMode::Sync => {}
            DurabilityMode::Async { .. } | DurabilityMode::AsyncUnbounded => {
                let cap = match config.durability {
                    DurabilityMode::Async { buffer_txns } => Some(buffer_txns),
                    _ => None,
                };
                let mut receivers = Vec::new();
                for _ in 0..config.max_threads {
                    let (tx, rx) = match cap {
                        Some(c) => bounded(c),
                        None => unbounded(),
                    };
                    record_senders.push(tx);
                    receivers.push(rx);
                }
                if config.persist_group > 1 {
                    // Sequencer + N flush workers + in-order publisher (see
                    // `pipeline`). Each worker owns ring `w`; validation
                    // capped persist_flush_workers at max_threads = #rings.
                    let n = config.persist_flush_workers;
                    let publisher =
                        Arc::new(GroupPublisher::new(Arc::clone(&shared), batch_tx.clone()));
                    let mut worker_txs = Vec::with_capacity(n);
                    for w in 0..n {
                        let (tx, rx) = unbounded::<GroupWork>();
                        worker_txs.push(tx);
                        let shared2 = Arc::clone(&shared);
                        let publisher2 = Arc::clone(&publisher);
                        let compress = config.compress_groups;
                        workers.push(dude_nvm::thread::spawn_named(
                            &format!("dude-persist-flush-{w}"),
                            move || persist_flush_worker(shared2, w, rx, publisher2, compress),
                        ));
                    }
                    let shared2 = Arc::clone(&shared);
                    let inputs = receivers.into_iter().enumerate().collect();
                    let group = config.persist_group;
                    workers.push(dude_nvm::thread::spawn_named(
                        "dude-persist-seq",
                        move || persist_sequencer(shared2, inputs, worker_txs, group),
                    ));
                } else {
                    // Partition the per-thread channels across persist
                    // threads round-robin.
                    let n = config.persist_threads.min(config.max_threads);
                    let mut parts: Vec<Vec<(usize, crossbeam::channel::Receiver<LogRecord>)>> =
                        (0..n).map(|_| Vec::new()).collect();
                    for (i, rx) in receivers.into_iter().enumerate() {
                        parts[i % n].push((i, rx));
                    }
                    for (w, inputs) in parts.into_iter().enumerate() {
                        let shared2 = Arc::clone(&shared);
                        let out = batch_tx.clone();
                        workers.push(dude_nvm::thread::spawn_named(
                            &format!("dude-persist-{w}"),
                            move || persist_worker(shared2, inputs, out),
                        ));
                    }
                }
            }
        }
        if config.reproduce_threads > 1 {
            let mut shard_txs = Vec::with_capacity(config.reproduce_threads);
            for s in 0..config.reproduce_threads {
                let (tx, rx) = unbounded::<ShardWork>();
                shard_txs.push(tx);
                let shared2 = Arc::clone(&shared);
                workers.push(dude_nvm::thread::spawn_named(
                    &format!("dude-reproduce-shard-{s}"),
                    move || reproduce_shard_worker(shared2, s, rx),
                ));
            }
            let shared2 = Arc::clone(&shared);
            workers.push(dude_nvm::thread::spawn_named("dude-reproduce", move || {
                reproduce_router(shared2, batch_rx, shard_txs)
            }));
        } else {
            let shared2 = Arc::clone(&shared);
            workers.push(dude_nvm::thread::spawn_named("dude-reproduce", move || {
                reproduce_worker(shared2, batch_rx)
            }));
        }

        // Continuous sampler: one frame per interval into the registry's
        // bounded ring. Runs through the `dude_nvm::thread` facade so it is
        // a deterministic task (with a virtual clock) under `--features
        // sim`; the stop channel doubles as the shutdown signal and the
        // worker captures one final frame on the way out so the series
        // always ends at the drained state.
        let sampler = if config.metrics.enabled {
            let (stop_tx, stop_rx) = bounded::<()>(1);
            let shared2 = Arc::clone(&shared);
            let interval = config.metrics.sample_interval.max(Duration::from_millis(1));
            let handle = dude_nvm::thread::spawn_named("dude-metrics", move || loop {
                match stop_rx.recv_timeout(interval) {
                    Err(RecvTimeoutError::Timeout) => sample_now(&shared2),
                    Ok(()) | Err(RecvTimeoutError::Disconnected) => {
                        sample_now(&shared2);
                        break;
                    }
                }
            });
            Some((stop_tx, handle))
        } else {
            None
        };

        DudeTm {
            engine,
            shadow,
            shared,
            record_senders,
            batch_sender: Mutex::new(Some(batch_tx)),
            history: Mutex::new(None),
            next_slot: AtomicUsize::new(0),
            workers: Mutex::new(workers),
            sampler: Mutex::new(sampler),
            name: match config.durability {
                DurabilityMode::Async { .. } => "DudeTM",
                DurabilityMode::AsyncUnbounded => "DudeTM-Inf",
                DurabilityMode::Sync => "DudeTM-Sync",
            },
        }
    }

    /// The underlying emulated NVM device.
    pub fn nvm(&self) -> &Arc<Nvm> {
        &self.shared.nvm
    }

    /// The TM engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// The heap region of the device (for building application layouts).
    pub fn heap_region(&self) -> Region {
        self.shared.heap
    }

    /// The global durable transaction ID: every transaction with an ID at or
    /// below this is persistent (§3.3).
    pub fn durable_id(&self) -> u64 {
        self.shared.tracker.watermark()
    }

    /// The reproduced ID: every transaction at or below this has been
    /// applied to the persistent heap image.
    pub fn reproduced_id(&self) -> u64 {
        self.shared.reproduced.load(Ordering::Acquire)
    }

    /// Pipeline statistics.
    pub fn pipeline_stats(&self) -> PipelineStatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// The observability layer: event ring, stage-latency histograms, and
    /// stall counters (see [`crate::trace`]). Always present; records
    /// nothing unless [`DudeTmConfig::trace`] enables it.
    pub fn trace(&self) -> &Trace {
        &self.shared.trace
    }

    /// The metrics registry: named handles to every counter, gauge, and
    /// histogram of this runtime plus the sampled time series (see
    /// [`crate::metrics`]). Always present; the background sampler only
    /// runs when [`DudeTmConfig::metrics`] enables it.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.shared.metrics
    }

    /// Captures one [`MetricsFrame`] immediately, outside the sampler's
    /// cadence. No-op when metrics are disabled. Call after
    /// [`DudeTm::quiesce`] to make the series end on exact final values.
    pub fn sample_metrics_now(&self) {
        if self.shared.metrics.enabled() {
            sample_now(&self.shared);
        }
    }

    /// Point-in-time view of the whole pipeline: the per-stage counters
    /// plus the committed/durable/reproduced watermarks and per-ring log
    /// occupancy. The watermarks are sampled independently (racily) — use
    /// after [`DudeTm::quiesce`] for exact values, or live to observe lag.
    pub fn stats_snapshot(&self) -> PipelineSnapshot {
        let trace = &self.shared.trace;
        let mut histograms = vec![
            (
                "commit_latency_ns".to_string(),
                trace.commit_latency_ns.snapshot(),
            ),
            (
                "persist_barrier_ns".to_string(),
                trace.persist_barrier_ns.snapshot(),
            ),
            (
                "group_flush_bytes".to_string(),
                trace.group_flush_bytes.snapshot(),
            ),
        ];
        for (s, h) in trace.replay_apply_ns.iter().enumerate() {
            histograms.push((format!("replay_apply_ns{{shard=\"{s}\"}}"), h.snapshot()));
        }
        for (w, h) in trace.flush_worker_ns.iter().enumerate() {
            histograms.push((format!("flush_worker_ns{{worker=\"{w}\"}}"), h.snapshot()));
        }
        PipelineSnapshot {
            counters: self.shared.stats.snapshot(),
            committed: self.engine.clock_now(),
            durable: self.durable_id(),
            reproduced: self.reproduced_id(),
            ring_used_words: self.shared.rings.iter().map(|r| r.used_words()).collect(),
            shard_completed: self.shared.frontier.snapshot_completed(),
            shard_words_applied: self.shared.frontier.snapshot_words_applied(),
            stalls: self.shared.trace.stalls.snapshot(),
            histograms,
        }
    }

    /// Shadow paging statistics.
    pub fn shadow_stats(&self) -> crate::shadow::ShadowStats {
        self.shadow.stats()
    }

    /// Attaches a commit-history recorder: every transaction committed (or
    /// TID-wasting abort) by threads registered *after* this call is
    /// recorded into `history` for the durable-linearizability checker
    /// ([`crate::check`]). Threads registered before the call keep running
    /// unrecorded — attach before [`DudeTm::register_thread`] for a
    /// complete history.
    pub fn attach_history(&self, history: Arc<CommitHistory>) {
        *self.history.lock() = Some(history);
    }

    /// Blocks until every transaction committed so far is both durable and
    /// reproduced. Call only when no transactions are concurrently
    /// committing.
    pub fn quiesce(&self) {
        let target = self.engine.clock_now();
        while self.durable_id() < target || self.reproduced_id() < target {
            dude_nvm::thread::yield_now();
        }
    }

    /// Drains and stops the pipeline, performing a final checkpoint.
    ///
    /// Dropping the runtime does this automatically; `shutdown` exists for
    /// callers that want the drain to happen at a deterministic point. All
    /// [`DtmThread`]s must be dropped first (enforced by the borrow
    /// checker, since they borrow the runtime).
    pub fn shutdown(&mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        // Disconnect perform→persist channels.
        self.record_senders.clear();
        // Disconnect our copy of the persist→reproduce sender (persist
        // workers hold clones until they exit).
        *self.batch_sender.lock() = None;
        for handle in self.workers.lock().drain(..) {
            let _ = handle.join();
        }
        // Stop the sampler only after the pipeline workers have drained:
        // its shutdown frame then reconciles exactly with the final
        // snapshot instead of racing the last checkpoint.
        if let Some((stop, handle)) = self.sampler.lock().take() {
            let _ = stop.send(());
            drop(stop);
            let _ = handle.join();
        }
    }
}

impl<E: TmEngine> Drop for DudeTm<E> {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Builds the runtime's metrics registry: every pipeline counter, lag
/// gauge, stage histogram, and recovery-telemetry handle under its stable
/// exposition name. The registry shares the live cells — registration
/// copies `Arc`s, never values — so reads always see current state.
fn build_registry(
    config: &DudeTmConfig,
    stats: &PipelineStats,
    trace: &Trace,
    gauges: &PipelineGauges,
    recovery: &RecoveryTelemetry,
) -> MetricsRegistry {
    let mut b = MetricsBuilder::new(config.metrics);
    b.counter(
        "commits",
        "transactions committed by Perform",
        &stats.commits,
    );
    b.counter(
        "abort_markers",
        "wasted-TID abort markers logged",
        &stats.abort_markers,
    );
    b.counter(
        "records_persisted",
        "redo-log records made durable",
        &stats.records_persisted,
    );
    b.counter(
        "entries_logged",
        "write entries staged into redo logs",
        &stats.entries_logged,
    );
    b.counter(
        "groups_persisted",
        "persist groups flushed",
        &stats.groups_persisted,
    );
    b.counter(
        "entries_before_combine",
        "group entries before write combining",
        &stats.entries_before_combine,
    );
    b.counter(
        "entries_after_combine",
        "group entries after write combining",
        &stats.entries_after_combine,
    );
    b.counter(
        "group_bytes_raw",
        "group payload bytes before compression",
        &stats.group_bytes_raw,
    );
    b.counter(
        "group_bytes_stored",
        "group payload bytes stored in log rings",
        &stats.group_bytes_stored,
    );
    b.counter(
        "txns_reproduced",
        "transactions replayed onto the heap image",
        &stats.txns_reproduced,
    );
    b.counter(
        "checkpoints",
        "reproduced-ID checkpoints persisted",
        &stats.checkpoints,
    );
    b.counter(
        "log_bytes_flushed",
        "bytes written into persistent log rings",
        &stats.log_bytes_flushed,
    );
    b.counter(
        "stall_perform_log_full",
        "Perform blocked on a full volatile-log buffer",
        &trace.stalls.perform_log_full,
    );
    b.counter(
        "stall_persist_ring_full",
        "Persist blocked on a full persistent log ring",
        &trace.stalls.persist_ring_full,
    );
    b.counter(
        "stall_persist_seq_wait",
        "flushed groups waited for in-order publication",
        &trace.stalls.persist_seq_wait,
    );
    b.counter(
        "stall_reproduce_starved",
        "Reproduce timed out waiting for durable batches",
        &trace.stalls.reproduce_starved,
    );
    b.counter(
        "stall_checkpoint_wait",
        "checkpoints waited for lagging shards",
        &trace.stalls.checkpoint_wait,
    );
    b.gauge(
        "committed_tid",
        "highest transaction ID committed",
        &gauges.committed_tid,
    );
    b.gauge(
        "durable_tid",
        "durable watermark (every TID at or below is persistent)",
        &gauges.durable_tid,
    );
    b.gauge(
        "reproduced_tid",
        "reproduced watermark (applied to the heap image)",
        &gauges.reproduced_tid,
    );
    b.gauge(
        "persist_lag",
        "committed minus durable TIDs",
        &gauges.persist_lag,
    );
    b.gauge(
        "reproduce_lag",
        "durable minus reproduced TIDs",
        &gauges.reproduce_lag,
    );
    b.gauge(
        "ring_used_words",
        "total occupied words across persistent log rings",
        &gauges.ring_used_words,
    );
    b.gauge(
        "frontier_min",
        "lowest per-shard reproduce frontier",
        &gauges.frontier_min,
    );
    b.gauge(
        "frontier_skew",
        "spread between fastest and slowest reproduce shard",
        &gauges.frontier_skew,
    );
    b.histogram(
        "commit_latency_ns",
        "Perform-side commit latency",
        None,
        &trace.commit_latency_ns,
    );
    b.histogram(
        "persist_barrier_ns",
        "Persist flush+fence barrier latency",
        None,
        &trace.persist_barrier_ns,
    );
    b.histogram(
        "group_flush_bytes",
        "bytes flushed per persist group",
        None,
        &trace.group_flush_bytes,
    );
    for (s, h) in trace.replay_apply_ns.iter().enumerate() {
        b.histogram(
            "replay_apply_ns",
            "Reproduce apply latency per shard",
            Some(("shard", s.to_string())),
            h,
        );
    }
    for (w, h) in trace.flush_worker_ns.iter().enumerate() {
        b.histogram(
            "flush_worker_ns",
            "group flush latency per persist flush worker",
            Some(("worker", w.to_string())),
            h,
        );
    }
    b.gauge(
        "recovery_phase",
        "recovery phase (0 idle, 1 scan, 2 replay, 3 wipe, 4 done)",
        &recovery.phase,
    );
    b.counter(
        "recovery_records_scanned",
        "intact log records found while scanning",
        &recovery.records_scanned,
    );
    b.counter(
        "recovery_bytes_scanned",
        "log-region bytes scanned during recovery",
        &recovery.bytes_scanned,
    );
    b.counter(
        "recovery_txns_replayed",
        "transactions replayed during recovery",
        &recovery.txns_replayed,
    );
    b.counter(
        "recovery_bytes_replayed",
        "heap bytes rewritten by recovery replay",
        &recovery.bytes_replayed,
    );
    b.counter(
        "recovery_records_discarded",
        "records discarded beyond the durable gap",
        &recovery.records_discarded,
    );
    b.counter(
        "recovery_stale_skipped",
        "stale recycled records skipped during recovery",
        &recovery.stale_skipped,
    );
    b.counter(
        "recovery_bytes_wiped",
        "dead log bytes wiped during recovery",
        &recovery.bytes_wiped,
    );
    b.build()
}

/// Captures one frame of the whole pipeline: per-stage cumulative
/// counters, the three watermarks, lag and occupancy gauges (refreshed as
/// a side effect so the Prometheus exposition matches the frame), and
/// stall counts. Rates are derived against the previous frame in the
/// ring.
fn sample_now(shared: &Shared) {
    let counters = shared.stats.snapshot();
    let committed = shared.gauges.committed_tid.get();
    let durable = shared.tracker.watermark();
    let reproduced = shared.reproduced.load(Ordering::Acquire);
    let ring_used_words: u64 = shared.rings.iter().map(|r| r.used_words()).sum();
    let completed = shared.frontier.snapshot_completed();
    let frontier_min = completed.iter().copied().min().unwrap_or(reproduced);
    let frontier_max = completed.iter().copied().max().unwrap_or(reproduced);
    let frontier_skew = frontier_max - frontier_min;
    let persist_lag = committed.saturating_sub(durable);
    let reproduce_lag = durable.saturating_sub(reproduced);
    let g = &shared.gauges;
    g.durable_tid.set(durable);
    g.reproduced_tid.set(reproduced);
    g.persist_lag.set(persist_lag);
    g.reproduce_lag.set(reproduce_lag);
    g.ring_used_words.set(ring_used_words);
    g.frontier_min.set(frontier_min);
    g.frontier_skew.set(frontier_skew);
    let frame = MetricsFrame {
        ts_ns: dude_nvm::monotonic_ns(),
        commits: counters.commits,
        abort_markers: counters.abort_markers,
        records_persisted: counters.records_persisted,
        entries_logged: counters.entries_logged,
        groups_persisted: counters.groups_persisted,
        entries_before_combine: counters.entries_before_combine,
        entries_after_combine: counters.entries_after_combine,
        group_bytes_raw: counters.group_bytes_raw,
        group_bytes_stored: counters.group_bytes_stored,
        txns_reproduced: counters.txns_reproduced,
        checkpoints: counters.checkpoints,
        log_bytes_flushed: counters.log_bytes_flushed,
        committed,
        durable,
        reproduced,
        persist_lag,
        reproduce_lag,
        ring_used_words,
        frontier_min,
        frontier_skew,
        stalls: shared.trace.stalls.snapshot(),
        ..MetricsFrame::default()
    }
    .with_rates_from(shared.metrics.latest_frame().as_ref());
    shared.metrics.push_frame(frame);
}

impl<E: TmEngine> TxnSystem for DudeTm<E> {
    type Thread<'a>
        = DtmThread<'a, E>
    where
        Self: 'a;

    fn register_thread(&self) -> DtmThread<'_, E> {
        let slot = self.next_slot.fetch_add(1, Ordering::Relaxed);
        assert!(
            slot < self.shared.config.max_threads,
            "more threads registered than DudeTmConfig::max_threads ({})",
            self.shared.config.max_threads
        );
        let sink = match self.shared.config.durability {
            DurabilityMode::Sync => Sink::Sync {
                ring_idx: slot,
                batches: self
                    .batch_sender
                    .lock()
                    .as_ref()
                    .expect("runtime is shut down")
                    .clone(),
            },
            _ => Sink::Channel(self.record_senders[slot].clone()),
        };
        DtmThread {
            dude: self,
            engine_thread: self.engine.engine_thread(),
            hooks: RedoHooks {
                staged: Vec::new(),
                sink,
                shared: Arc::clone(&self.shared),
                shadow: Arc::clone(&self.shadow),
                history: self.history.lock().clone(),
                buf: Vec::new(),
                last_commit_bytes: 0,
            },
        }
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn heap_words(&self) -> u64 {
        self.shared.config.heap_bytes / 8
    }

    fn quiesce(&self) {
        DudeTm::quiesce(self);
    }
}

/// A registered Perform thread (the paper's `dtmBegin`/`dtmEnd` scope).
pub struct DtmThread<'d, E: TmEngine> {
    dude: &'d DudeTm<E>,
    engine_thread: Box<dyn EngineThread + 'd>,
    hooks: RedoHooks,
}

impl<E: TmEngine> std::fmt::Debug for DtmThread<'_, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DtmThread").finish_non_exhaustive()
    }
}

impl<'d, E: TmEngine> DtmThread<'d, E> {
    /// Runs a durable transaction; see [`TxnThread::run`].
    pub fn run_txn<T>(
        &mut self,
        body: &mut dyn FnMut(&mut dyn Txn) -> TxResult<T>,
    ) -> TxnOutcome<T> {
        let heap_bytes = self.dude.shared.config.heap_bytes;
        let trace = &self.dude.shared.trace;
        // Commit latency is wall time from first attempt to commit
        // acknowledgement on this thread — retried aborts of the same
        // transaction are inside the window, exactly what the application
        // experiences. Clock reads are skipped entirely when tracing is off.
        let start_ns = if trace.enabled() {
            dude_nvm::monotonic_ns()
        } else {
            0
        };
        let view = self.dude.shadow.view();
        let mut slot: Option<T> = None;
        let outcome = self
            .engine_thread
            .run_txn(&view, &mut self.hooks, &mut |acc| {
                let mut tx = DtmTx {
                    inner: acc,
                    heap_bytes,
                };
                slot = Some(body(&mut tx)?);
                Ok(())
            });
        match outcome {
            TxnOutcome::Committed { info, .. } => {
                if trace.enabled() {
                    let dur = dude_nvm::monotonic_ns().saturating_sub(start_ns);
                    trace.commit_latency_ns.record(dur);
                    trace.event(
                        Stage::Perform,
                        TraceEventKind::Commit,
                        info.tid.unwrap_or(0),
                        self.hooks.last_commit_bytes,
                        dur,
                    );
                }
                TxnOutcome::Committed {
                    value: slot
                        .take()
                        .expect("committed body must have produced a value"),
                    info,
                }
            }
            TxnOutcome::Aborted => TxnOutcome::Aborted,
        }
    }
}

impl<E: TmEngine> TxnThread for DtmThread<'_, E> {
    fn run<T>(&mut self, body: &mut dyn FnMut(&mut dyn Txn) -> TxResult<T>) -> TxnOutcome<T> {
        self.run_txn(body)
    }

    fn wait_durable(&mut self, tid: u64) {
        while self.dude.durable_id() < tid {
            dude_nvm::thread::yield_now();
        }
    }

    fn durable_watermark(&self) -> u64 {
        self.dude.durable_id()
    }
}

/// The in-transaction handle: bounds-checked, word-aligned access to the
/// persistent heap through the TM (paper's `dtmRead`/`dtmWrite`).
pub struct DtmTx<'x> {
    inner: &'x mut dyn dude_stm::TmAccess,
    heap_bytes: u64,
}

impl std::fmt::Debug for DtmTx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DtmTx")
            .field("heap_bytes", &self.heap_bytes)
            .finish()
    }
}

impl DtmTx<'_> {
    #[inline]
    fn check(&self, addr: PAddr) {
        assert!(
            addr.is_word_aligned(),
            "transactional access must be word-aligned: {addr}"
        );
        assert!(
            addr.offset() + 8 <= self.heap_bytes,
            "address {addr} beyond heap of {} bytes",
            self.heap_bytes
        );
    }
}

impl Txn for DtmTx<'_> {
    fn read_word(&mut self, addr: PAddr) -> TxResult<u64> {
        self.check(addr);
        self.inner.tm_read(addr.offset())
    }

    fn write_word(&mut self, addr: PAddr, val: u64) -> TxResult<()> {
        self.check(addr);
        self.inner.tm_write(addr.offset(), val)
    }
}

/// Convenience: user aborts (paper's `dtmAbort`).
pub fn dtm_abort<T>() -> TxResult<T> {
    Err(TxAbort::User)
}
