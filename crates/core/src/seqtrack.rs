//! Dense-sequence watermark tracking (the global *durable ID*).
//!
//! Persist threads flush redo logs out of order (§3.3), so "transaction
//! `t` is durable" does not mean "all transactions before `t` are durable".
//! The paper defines the *durable ID* as the largest `D` such that every
//! transaction with ID ≤ `D` has been persisted. [`SequenceTracker`] computes
//! exactly that: threads `mark` IDs as they complete, and `watermark` is the
//! length of the completed prefix.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Tracks completion of a dense ID sequence `1, 2, 3, …` and exposes the
/// completed-prefix watermark.
///
/// # Example
///
/// ```
/// use dudetm::SequenceTracker;
///
/// let t = SequenceTracker::new();
/// t.mark(2);
/// assert_eq!(t.watermark(), 0); // 1 missing
/// t.mark(1);
/// assert_eq!(t.watermark(), 2);
/// ```
#[derive(Debug, Default)]
pub struct SequenceTracker {
    /// Largest `D` with all of `1..=D` marked.
    watermark: AtomicU64,
    /// Marked IDs above the watermark (min-heap via `Reverse`).
    pending: Mutex<BinaryHeap<std::cmp::Reverse<u64>>>,
}

impl SequenceTracker {
    /// Creates a tracker with an empty sequence (watermark 0).
    pub fn new() -> Self {
        Self::starting_at(0)
    }

    /// Creates a tracker whose prefix `1..=start` is already complete
    /// (used after recovery, where `start` is the last recovered ID).
    pub fn starting_at(start: u64) -> Self {
        SequenceTracker {
            watermark: AtomicU64::new(start),
            pending: Mutex::new(BinaryHeap::new()),
        }
    }

    /// Marks `id` as complete and advances the watermark over any newly
    /// contiguous prefix.
    ///
    /// # Panics
    ///
    /// Panics if `id` was already at or below the watermark (double mark).
    pub fn mark(&self, id: u64) {
        let mut pending = self.pending.lock();
        let mut wm = self.watermark.load(Ordering::Acquire);
        assert!(id > wm, "id {id} marked twice (watermark {wm})");
        pending.push(std::cmp::Reverse(id));
        while pending
            .peek()
            .is_some_and(|&std::cmp::Reverse(next)| next == wm + 1)
        {
            pending.pop();
            wm += 1;
        }
        self.watermark.store(wm, Ordering::Release);
    }

    /// Marks the whole inclusive range `lo..=hi` as complete.
    pub fn mark_range(&self, lo: u64, hi: u64) {
        for id in lo..=hi {
            self.mark(id);
        }
    }

    /// Largest `D` such that every ID in `1..=D` has been marked.
    #[inline]
    pub fn watermark(&self) -> u64 {
        self.watermark.load(Ordering::Acquire)
    }

    /// Number of IDs marked out of order (above the watermark), for
    /// diagnostics.
    pub fn pending_len(&self) -> usize {
        self.pending.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn in_order_marks_advance_immediately() {
        let t = SequenceTracker::new();
        for i in 1..=10 {
            t.mark(i);
            assert_eq!(t.watermark(), i);
        }
        assert_eq!(t.pending_len(), 0);
    }

    #[test]
    fn out_of_order_marks_wait_for_gap() {
        let t = SequenceTracker::new();
        t.mark(3);
        t.mark(2);
        assert_eq!(t.watermark(), 0);
        assert_eq!(t.pending_len(), 2);
        t.mark(1);
        assert_eq!(t.watermark(), 3);
        assert_eq!(t.pending_len(), 0);
    }

    #[test]
    fn starting_at_seeds_prefix() {
        let t = SequenceTracker::starting_at(100);
        assert_eq!(t.watermark(), 100);
        t.mark(101);
        assert_eq!(t.watermark(), 101);
    }

    #[test]
    fn mark_range_completes_block() {
        let t = SequenceTracker::new();
        t.mark_range(2, 5);
        assert_eq!(t.watermark(), 0);
        t.mark(1);
        assert_eq!(t.watermark(), 5);
    }

    #[test]
    #[should_panic(expected = "marked twice")]
    fn double_mark_panics() {
        let t = SequenceTracker::new();
        t.mark(1);
        t.mark(1);
    }

    #[test]
    fn concurrent_marks_reach_full_watermark() {
        let t = Arc::new(SequenceTracker::new());
        let n = 4000u64;
        let mut handles = Vec::new();
        for part in 0..4u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                // Interleaved stripes: thread p marks p+1, p+5, p+9, …
                let mut id = part + 1;
                while id <= n {
                    t.mark(id);
                    id += 4;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.watermark(), n);
        assert_eq!(t.pending_len(), 0);
    }
}
