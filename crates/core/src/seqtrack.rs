//! Dense-sequence watermark tracking (the global *durable ID*).
//!
//! Persist threads flush redo logs out of order (§3.3), so "transaction
//! `t` is durable" does not mean "all transactions before `t` are durable".
//! The paper defines the *durable ID* as the largest `D` such that every
//! transaction with ID ≤ `D` has been persisted. [`SequenceTracker`] computes
//! exactly that: threads `mark` IDs as they complete, and `watermark` is the
//! length of the completed prefix.
//!
//! [`OrderedCompletions`] is the sibling primitive for the parallel grouped
//! Persist stage: flush workers complete group sequence numbers out of
//! order, and the reorderer runs an emission callback strictly in sequence
//! order — out-of-order *flush*, in-order durable *publication*.

use std::collections::{BTreeMap, BinaryHeap};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Tracks completion of a dense ID sequence `1, 2, 3, …` and exposes the
/// completed-prefix watermark.
///
/// # Example
///
/// ```
/// use dudetm::SequenceTracker;
///
/// let t = SequenceTracker::new();
/// t.mark(2);
/// assert_eq!(t.watermark(), 0); // 1 missing
/// t.mark(1);
/// assert_eq!(t.watermark(), 2);
/// ```
#[derive(Debug, Default)]
pub struct SequenceTracker {
    /// Largest `D` with all of `1..=D` marked.
    watermark: AtomicU64,
    /// Marked IDs above the watermark (min-heap via `Reverse`).
    pending: Mutex<BinaryHeap<std::cmp::Reverse<u64>>>,
}

impl SequenceTracker {
    /// Creates a tracker with an empty sequence (watermark 0).
    pub fn new() -> Self {
        Self::starting_at(0)
    }

    /// Creates a tracker whose prefix `1..=start` is already complete
    /// (used after recovery, where `start` is the last recovered ID).
    pub fn starting_at(start: u64) -> Self {
        SequenceTracker {
            watermark: AtomicU64::new(start),
            pending: Mutex::new(BinaryHeap::new()),
        }
    }

    /// Marks `id` as complete and advances the watermark over any newly
    /// contiguous prefix.
    ///
    /// # Panics
    ///
    /// Panics if `id` was already at or below the watermark (double mark).
    pub fn mark(&self, id: u64) {
        let mut pending = self.pending.lock();
        let mut wm = self.watermark.load(Ordering::Acquire);
        assert!(id > wm, "id {id} marked twice (watermark {wm})");
        pending.push(std::cmp::Reverse(id));
        while pending
            .peek()
            .is_some_and(|&std::cmp::Reverse(next)| next == wm + 1)
        {
            pending.pop();
            wm += 1;
        }
        self.watermark.store(wm, Ordering::Release);
    }

    /// Marks the whole inclusive range `lo..=hi` as complete.
    pub fn mark_range(&self, lo: u64, hi: u64) {
        for id in lo..=hi {
            self.mark(id);
        }
    }

    /// Largest `D` such that every ID in `1..=D` has been marked.
    #[inline]
    pub fn watermark(&self) -> u64 {
        self.watermark.load(Ordering::Acquire)
    }

    /// Number of IDs marked out of order (above the watermark), for
    /// diagnostics.
    pub fn pending_len(&self) -> usize {
        self.pending.lock().len()
    }
}

/// Reorders out-of-order completions of a dense sequence `0, 1, 2, …` into
/// strictly in-order emission.
///
/// Parallel flush workers finish groups out of order, but durability may
/// only be *published* in order (the durable watermark and the batches
/// handed to Reproduce must advance over a contiguous prefix — see
/// `DESIGN.md §Pipeline`). Workers call [`OrderedCompletions::complete`]
/// with their sequence number; the emission callback runs for the newly
/// contiguous prefix, **while the internal lock is held**, so emissions are
/// totally ordered across threads: no later item can be emitted before an
/// earlier one, even by another worker racing in.
///
/// # Example
///
/// ```
/// use dudetm::OrderedCompletions;
///
/// let oc = OrderedCompletions::starting_at(0);
/// let mut seen = Vec::new();
/// oc.complete(1, "b", |_, item| seen.push(item));
/// assert!(seen.is_empty()); // 0 still missing
/// oc.complete(0, "a", |_, item| seen.push(item));
/// assert_eq!(seen, ["a", "b"]);
/// ```
#[derive(Debug)]
pub struct OrderedCompletions<T> {
    inner: Mutex<CompletionState<T>>,
}

#[derive(Debug)]
struct CompletionState<T> {
    /// The next sequence number eligible for emission.
    next: u64,
    /// Completed items above `next`, keyed by sequence number.
    parked: BTreeMap<u64, T>,
}

impl<T> OrderedCompletions<T> {
    /// Creates a reorderer whose first emitted sequence number is `first`.
    #[must_use]
    pub fn starting_at(first: u64) -> Self {
        OrderedCompletions {
            inner: Mutex::new(CompletionState {
                next: first,
                parked: BTreeMap::new(),
            }),
        }
    }

    /// Marks `seq` complete. If `seq` is the next expected number, `emit`
    /// is called for it and every directly following parked item, in
    /// sequence order; otherwise the item is parked until the gap fills.
    ///
    /// `emit` runs under the internal lock: keep it short (hand off, don't
    /// compute), and never call back into this reorderer from inside it.
    ///
    /// # Panics
    ///
    /// Panics if `seq` was already completed (below `next` or parked).
    pub fn complete(&self, seq: u64, item: T, mut emit: impl FnMut(u64, T)) {
        let mut guard = self.inner.lock();
        let state = &mut *guard;
        assert!(
            seq >= state.next,
            "sequence {seq} completed twice (next expected {})",
            state.next
        );
        if seq != state.next {
            let clash = state.parked.insert(seq, item);
            assert!(clash.is_none(), "sequence {seq} completed twice (parked)");
            return;
        }
        emit(seq, item);
        state.next = seq + 1;
        while let Some(entry) = state.parked.first_entry() {
            if *entry.key() != state.next {
                break;
            }
            let (s, it) = entry.remove_entry();
            emit(s, it);
            state.next = s + 1;
        }
    }

    /// The next sequence number awaiting emission.
    #[must_use]
    pub fn next_pending(&self) -> u64 {
        self.inner.lock().next
    }

    /// Number of items parked above the emission point (diagnostics).
    #[must_use]
    pub fn parked_len(&self) -> usize {
        self.inner.lock().parked.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn in_order_marks_advance_immediately() {
        let t = SequenceTracker::new();
        for i in 1..=10 {
            t.mark(i);
            assert_eq!(t.watermark(), i);
        }
        assert_eq!(t.pending_len(), 0);
    }

    #[test]
    fn out_of_order_marks_wait_for_gap() {
        let t = SequenceTracker::new();
        t.mark(3);
        t.mark(2);
        assert_eq!(t.watermark(), 0);
        assert_eq!(t.pending_len(), 2);
        t.mark(1);
        assert_eq!(t.watermark(), 3);
        assert_eq!(t.pending_len(), 0);
    }

    #[test]
    fn starting_at_seeds_prefix() {
        let t = SequenceTracker::starting_at(100);
        assert_eq!(t.watermark(), 100);
        t.mark(101);
        assert_eq!(t.watermark(), 101);
    }

    #[test]
    fn mark_range_completes_block() {
        let t = SequenceTracker::new();
        t.mark_range(2, 5);
        assert_eq!(t.watermark(), 0);
        t.mark(1);
        assert_eq!(t.watermark(), 5);
    }

    #[test]
    #[should_panic(expected = "marked twice")]
    fn double_mark_panics() {
        let t = SequenceTracker::new();
        t.mark(1);
        t.mark(1);
    }

    #[test]
    fn concurrent_marks_reach_full_watermark() {
        let t = Arc::new(SequenceTracker::new());
        let n = 4000u64;
        let mut handles = Vec::new();
        for part in 0..4u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                // Interleaved stripes: thread p marks p+1, p+5, p+9, …
                let mut id = part + 1;
                while id <= n {
                    t.mark(id);
                    id += 4;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.watermark(), n);
        assert_eq!(t.pending_len(), 0);
    }

    #[test]
    fn ordered_completions_emit_in_order() {
        let oc = OrderedCompletions::starting_at(0);
        let mut seen = Vec::new();
        oc.complete(2, 'c', |s, i| seen.push((s, i)));
        oc.complete(1, 'b', |s, i| seen.push((s, i)));
        assert!(seen.is_empty());
        assert_eq!(oc.parked_len(), 2);
        oc.complete(0, 'a', |s, i| seen.push((s, i)));
        assert_eq!(seen, vec![(0, 'a'), (1, 'b'), (2, 'c')]);
        assert_eq!(oc.parked_len(), 0);
        assert_eq!(oc.next_pending(), 3);
        oc.complete(3, 'd', |s, i| seen.push((s, i)));
        assert_eq!(seen.last(), Some(&(3, 'd')));
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn ordered_completions_double_complete_panics() {
        let oc = OrderedCompletions::starting_at(0);
        oc.complete(0, (), |_, _| {});
        oc.complete(0, (), |_, _| {});
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn ordered_completions_double_park_panics() {
        let oc = OrderedCompletions::starting_at(0);
        oc.complete(5, (), |_, _| {});
        oc.complete(5, (), |_, _| {});
    }

    #[test]
    fn ordered_completions_concurrent_emission_is_totally_ordered() {
        // 4 workers complete an interleaved stripe each; the emission log
        // (appended under the reorderer's lock) must be exactly 0..n.
        let oc = Arc::new(OrderedCompletions::starting_at(0));
        let log = Arc::new(Mutex::new(Vec::new()));
        let n = 4000u64;
        let mut handles = Vec::new();
        for part in 0..4u64 {
            let oc = Arc::clone(&oc);
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                let mut seq = part;
                while seq < n {
                    oc.complete(seq, seq, |_, item| log.lock().push(item));
                    seq += 4;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let log = log.lock();
        assert_eq!(*log, (0..n).collect::<Vec<_>>());
        assert_eq!(oc.next_pending(), n);
    }
}
