//! The shared, cross-transaction shadow memory (§3.1, §4.3).
//!
//! The shadow memory is a volatile DRAM mirror of the persistent heap.
//! Transactions execute entirely on it; the persistent image is only ever
//! modified by the Reproduce step replaying redo logs. Two configurations:
//!
//! * [`ShadowConfig::Identity`] — shadow size equals heap size and the
//!   mapping is a constant offset (the paper's simple case).
//! * [`ShadowConfig::Paged`] — the shadow is smaller than the heap and
//!   pages are swapped on demand. An evicted page is **discarded, not
//!   written back** (its committed updates live in redo logs); to make that
//!   safe, each page carries a *touching ID* — the last transaction that
//!   wrote it — and a page may only be swapped in once the Reproduce step
//!   has caught up to its touching ID (§4.3).
//!
//! Two paging cost models are provided, mirroring §5.5:
//!
//! * [`PagingMode::Software`] — every access walks the shared page table
//!   (an extra shared load per access); pages are pinned with per-page
//!   reference counts, so eviction is fine-grained.
//! * [`PagingMode::Hardware`] — Dune/TLB-style: after the first touch a
//!   per-transaction view caches the translation ("TLB"), so repeat
//!   accesses skip the shared walk; the price is that every eviction stalls
//!   the world (TLB shootdown), modeled by a global RwLock plus a
//!   configurable stall.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use dude_nvm::{Nvm, Region};
use dude_stm::{VecMemory, WordMemory};
use parking_lot::{Mutex, RwLock};

/// Bytes per shadow page.
pub const PAGE_BYTES: u64 = 4096;
const PAGE_WORDS: usize = (PAGE_BYTES / 8) as usize;
const NO_FRAME: u32 = u32::MAX;

/// Shadow-memory configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShadowConfig {
    /// Shadow size == heap size; constant-offset mapping, no paging.
    Identity,
    /// Demand paging with `frames` resident pages.
    Paged {
        /// Number of 4 KiB frames of shadow DRAM.
        frames: usize,
        /// Translation/eviction cost model.
        mode: PagingMode,
    },
}

/// Paging cost model (§5.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PagingMode {
    /// Page-table walk on every access; per-page pins; no global stalls.
    Software,
    /// TLB-cached translation per transaction; evictions stall the world
    /// (TLB shootdown).
    Hardware,
}

/// Paging statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShadowStats {
    /// Pages loaded from NVM into the shadow.
    pub swap_ins: u64,
    /// Pages discarded to free a frame.
    pub swap_outs: u64,
    /// Swap-ins that had to wait for Reproduce to catch up to the page's
    /// touching ID.
    pub touch_waits: u64,
}

/// The shadow memory, in either identity or paged configuration.
#[derive(Debug)]
pub enum ShadowMem {
    /// Flat mirror of the whole heap.
    Identity(VecMemory),
    /// Demand-paged mirror.
    Paged(PagedShadow),
}

impl ShadowMem {
    /// Builds a shadow for a heap of `heap_bytes`, backed by `heap_region`
    /// of `nvm`, gated by the Reproduce progress counter `reproduced`.
    pub fn new(
        config: ShadowConfig,
        heap_bytes: u64,
        nvm: Arc<Nvm>,
        heap_region: Region,
        reproduced: Arc<AtomicU64>,
    ) -> Self {
        match config {
            ShadowConfig::Identity => ShadowMem::Identity(VecMemory::new(heap_bytes)),
            ShadowConfig::Paged { frames, mode } => ShadowMem::Paged(PagedShadow::new(
                frames,
                heap_bytes,
                nvm,
                heap_region,
                reproduced,
                mode,
            )),
        }
    }

    /// Loads the shadow from the persistent image (after recovery).
    ///
    /// Identity shadows copy eagerly; paged shadows load on demand.
    pub fn populate_from_nvm(&self, nvm: &Nvm, heap_region: Region) {
        if let ShadowMem::Identity(mem) = self {
            let words = heap_region.len() / 8;
            for i in 0..words {
                let v = nvm.read_word(heap_region.start() + i * 8);
                if v != 0 {
                    mem.store(i * 8, v);
                }
            }
        }
    }

    /// Creates a per-transaction access view. Pins taken by the view are
    /// released when it is dropped.
    pub fn view(&self) -> ShadowView<'_> {
        match self {
            ShadowMem::Identity(mem) => ShadowView::Identity(mem),
            ShadowMem::Paged(p) => ShadowView::Paged(PagedView {
                shadow: p,
                pinned: RefCell::new(Vec::new()),
            }),
        }
    }

    /// Records that transaction `tid` wrote `writes`, updating page
    /// touching IDs (§4.3). No-op for identity shadows.
    pub fn note_commit(&self, tid: u64, writes: &[(u64, u64)]) {
        if let ShadowMem::Paged(p) = self {
            let mut last_page = u64::MAX;
            for &(addr, _) in writes {
                let page = addr / PAGE_BYTES;
                if page != last_page {
                    p.pages[page as usize]
                        .touching
                        .fetch_max(tid, Ordering::Release);
                    last_page = page;
                }
            }
        }
    }

    /// Paging statistics (zero for identity shadows).
    pub fn stats(&self) -> ShadowStats {
        match self {
            ShadowMem::Identity(_) => ShadowStats::default(),
            ShadowMem::Paged(p) => ShadowStats {
                swap_ins: p.swap_ins.load(Ordering::Relaxed),
                swap_outs: p.swap_outs.load(Ordering::Relaxed),
                touch_waits: p.touch_waits.load(Ordering::Relaxed),
            },
        }
    }
}

/// Per-page metadata.
#[derive(Debug)]
struct PageEntry {
    /// Resident frame index, or [`NO_FRAME`].
    frame: AtomicU32,
    /// Transactions currently pinning the page.
    refcount: AtomicU32,
    /// ID of the last transaction that wrote the page.
    touching: AtomicU64,
    /// Serializes fault/evict transitions for this page.
    lock: Mutex<()>,
}

/// The demand-paged shadow memory.
#[derive(Debug)]
pub struct PagedShadow {
    nvm: Arc<Nvm>,
    heap_region: Region,
    reproduced: Arc<AtomicU64>,
    /// Frame storage: `frames × 512` words.
    frames: Box<[AtomicU64]>,
    pages: Box<[PageEntry]>,
    free_frames: Mutex<Vec<u32>>,
    /// FIFO of resident pages (eviction candidates).
    resident: Mutex<VecDeque<u32>>,
    mode: PagingMode,
    /// Hardware mode: evictions take this exclusively (TLB shootdown).
    world: RwLock<()>,
    /// Modeled shootdown stall per eviction, in nanoseconds.
    shootdown_ns: u64,
    swap_ins: AtomicU64,
    swap_outs: AtomicU64,
    touch_waits: AtomicU64,
}

impl PagedShadow {
    fn new(
        frames: usize,
        heap_bytes: u64,
        nvm: Arc<Nvm>,
        heap_region: Region,
        reproduced: Arc<AtomicU64>,
        mode: PagingMode,
    ) -> Self {
        assert!(frames >= 2, "need at least two shadow frames");
        assert!(
            heap_bytes.is_multiple_of(PAGE_BYTES),
            "heap must be a whole number of pages"
        );
        let n_pages = (heap_bytes / PAGE_BYTES) as usize;
        PagedShadow {
            nvm,
            heap_region,
            reproduced,
            frames: (0..frames * PAGE_WORDS)
                .map(|_| AtomicU64::new(0))
                .collect(),
            pages: (0..n_pages)
                .map(|_| PageEntry {
                    frame: AtomicU32::new(NO_FRAME),
                    refcount: AtomicU32::new(0),
                    touching: AtomicU64::new(0),
                    lock: Mutex::new(()),
                })
                .collect(),
            free_frames: Mutex::new((0..frames as u32).rev().collect()),
            resident: Mutex::new(VecDeque::new()),
            mode,
            world: RwLock::new(()),
            shootdown_ns: 3000,
            swap_ins: AtomicU64::new(0),
            swap_outs: AtomicU64::new(0),
            touch_waits: AtomicU64::new(0),
        }
    }

    /// Pins `page`, faulting it in if absent. Returns its frame index.
    fn pin(&self, page: u32) -> u32 {
        let entry = &self.pages[page as usize];
        let _guard = entry.lock.lock();
        entry.refcount.fetch_add(1, Ordering::AcqRel);
        let frame = entry.frame.load(Ordering::Acquire);
        if frame != NO_FRAME {
            return frame;
        }
        let frame = self.acquire_frame(page);
        // Discard-on-evict is only safe if every committed update to this
        // page has already been reproduced into NVM (§4.3).
        let touching = entry.touching.load(Ordering::Acquire);
        if self.reproduced.load(Ordering::Acquire) < touching {
            self.touch_waits.fetch_add(1, Ordering::Relaxed);
            while self.reproduced.load(Ordering::Acquire) < touching {
                dude_nvm::thread::yield_now();
            }
        }
        let src = self.heap_region.start() + u64::from(page) * PAGE_BYTES;
        let base = frame as usize * PAGE_WORDS;
        for i in 0..PAGE_WORDS {
            let v = self.nvm.read_word(src + 8 * i as u64);
            self.frames[base + i].store(v, Ordering::Relaxed);
        }
        entry.frame.store(frame, Ordering::Release);
        self.resident.lock().push_back(page);
        self.swap_ins.fetch_add(1, Ordering::Relaxed);
        frame
    }

    fn unpin(&self, page: u32) {
        self.pages[page as usize]
            .refcount
            .fetch_sub(1, Ordering::AcqRel);
    }

    /// Finds a free frame, evicting an unpinned resident page if needed.
    /// Called with the faulting page's lock held.
    fn acquire_frame(&self, faulting_page: u32) -> u32 {
        loop {
            if let Some(f) = self.free_frames.lock().pop() {
                return f;
            }
            if let Some(f) = self.evict_one(faulting_page) {
                return f;
            }
            // Every candidate was pinned or contended; let pins drain.
            dude_nvm::thread::yield_now();
        }
    }

    fn evict_one(&self, faulting_page: u32) -> Option<u32> {
        // Hardware paging: changing a mapping requires a TLB shootdown that
        // stalls all threads (§4.3 "stall all threads and issue INVVPID").
        let _world = match self.mode {
            PagingMode::Hardware => {
                let g = self.world.write();
                spin_ns(self.shootdown_ns);
                Some(g)
            }
            PagingMode::Software => None,
        };
        let mut resident = self.resident.lock();
        for _ in 0..resident.len() {
            let page = resident.pop_front().expect("non-empty resident list");
            if page == faulting_page {
                resident.push_back(page);
                continue;
            }
            let entry = &self.pages[page as usize];
            // try_lock: the page may be mid-fault on another thread, and we
            // already hold the faulting page's lock (no ordered two-lock
            // acquisition, so never block here).
            let Some(_g) = entry.lock.try_lock() else {
                resident.push_back(page);
                continue;
            };
            if entry.refcount.load(Ordering::Acquire) != 0 {
                resident.push_back(page);
                continue;
            }
            let frame = entry.frame.load(Ordering::Acquire);
            debug_assert_ne!(frame, NO_FRAME, "resident page must have a frame");
            // Discard: committed data is in redo logs / NVM already.
            entry.frame.store(NO_FRAME, Ordering::Release);
            self.swap_outs.fetch_add(1, Ordering::Relaxed);
            return Some(frame);
        }
        None
    }

    #[inline]
    fn frame_word(&self, frame: u32, addr: u64) -> &AtomicU64 {
        let idx = frame as usize * PAGE_WORDS + ((addr % PAGE_BYTES) / 8) as usize;
        &self.frames[idx]
    }
}

/// A per-transaction view of the shadow memory.
///
/// Implements [`WordMemory`], so the TM executes directly on it. Pages
/// touched through the view stay pinned until the view is dropped.
#[derive(Debug)]
pub enum ShadowView<'a> {
    /// Identity mapping: direct flat access.
    Identity(&'a VecMemory),
    /// Paged access with pin tracking.
    Paged(PagedView<'a>),
}

/// Paged view state: the pinned set doubles as the hardware mode's "TLB"
/// (page → frame cache).
#[derive(Debug)]
pub struct PagedView<'a> {
    shadow: &'a PagedShadow,
    pinned: RefCell<Vec<(u32, u32)>>,
}

impl PagedView<'_> {
    #[inline]
    fn frame_of(&self, addr: u64) -> u32 {
        let page = (addr / PAGE_BYTES) as u32;
        let mut pinned = self.pinned.borrow_mut();
        if let Some(&(_, frame)) = pinned.iter().find(|&&(p, _)| p == page) {
            return match self.shadow.mode {
                // Hardware: a TLB hit is free — the cached translation is
                // stable because the page is pinned. Shootdowns only stall
                // threads that are *faulting* (below), which is where the
                // mapping actually changes.
                PagingMode::Hardware => frame,
                // Software: walk the shared page table every access.
                PagingMode::Software => self.shadow.pages[page as usize]
                    .frame
                    .load(Ordering::Acquire),
            };
        }
        // First touch (hardware: a TLB miss): pin and possibly fault the
        // page. Hardware-mode misses contend with in-flight shootdowns via
        // the world lock; the lock is NOT held into `pin` itself, which may
        // evict (taking it exclusively).
        if matches!(self.shadow.mode, PagingMode::Hardware) {
            drop(self.shadow.world.read());
        }
        let frame = self.shadow.pin(page);
        pinned.push((page, frame));
        frame
    }
}

impl WordMemory for ShadowView<'_> {
    #[inline]
    fn load(&self, addr: u64) -> u64 {
        match self {
            ShadowView::Identity(mem) => mem.load(addr),
            ShadowView::Paged(v) => {
                let frame = v.frame_of(addr);
                v.shadow.frame_word(frame, addr).load(Ordering::Relaxed)
            }
        }
    }

    #[inline]
    fn store(&self, addr: u64, val: u64) {
        match self {
            ShadowView::Identity(mem) => mem.store(addr, val),
            ShadowView::Paged(v) => {
                let frame = v.frame_of(addr);
                v.shadow
                    .frame_word(frame, addr)
                    .store(val, Ordering::Relaxed);
            }
        }
    }
}

impl Drop for ShadowView<'_> {
    fn drop(&mut self) {
        if let ShadowView::Paged(v) = self {
            for (page, _) in v.pinned.borrow_mut().drain(..) {
                v.shadow.unpin(page);
            }
        }
    }
}

fn spin_ns(ns: u64) {
    let start = std::time::Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dude_nvm::NvmConfig;

    fn paged(frames: usize, pages: u64, mode: PagingMode) -> (Arc<Nvm>, Arc<AtomicU64>, ShadowMem) {
        let heap_bytes = pages * PAGE_BYTES;
        let nvm = Arc::new(Nvm::new(NvmConfig::for_testing(heap_bytes)));
        let reproduced = Arc::new(AtomicU64::new(0));
        let shadow = ShadowMem::new(
            ShadowConfig::Paged { frames, mode },
            heap_bytes,
            Arc::clone(&nvm),
            Region::new(0, heap_bytes),
            Arc::clone(&reproduced),
        );
        (nvm, reproduced, shadow)
    }

    #[test]
    fn identity_roundtrip() {
        let nvm = Arc::new(Nvm::new(NvmConfig::for_testing(PAGE_BYTES)));
        let shadow = ShadowMem::new(
            ShadowConfig::Identity,
            PAGE_BYTES,
            Arc::clone(&nvm),
            Region::new(0, PAGE_BYTES),
            Arc::new(AtomicU64::new(0)),
        );
        let view = shadow.view();
        view.store(8, 42);
        assert_eq!(view.load(8), 42);
        assert_eq!(shadow.stats(), ShadowStats::default());
    }

    #[test]
    fn identity_populates_from_nvm() {
        let nvm = Arc::new(Nvm::new(NvmConfig::for_testing(PAGE_BYTES)));
        nvm.write_word(16, 99);
        let region = Region::new(0, PAGE_BYTES);
        let shadow = ShadowMem::new(
            ShadowConfig::Identity,
            PAGE_BYTES,
            Arc::clone(&nvm),
            region,
            Arc::new(AtomicU64::new(0)),
        );
        shadow.populate_from_nvm(&nvm, region);
        assert_eq!(shadow.view().load(16), 99);
    }

    #[test]
    fn paged_demand_loads_from_nvm() {
        let (nvm, _r, shadow) = paged(2, 8, PagingMode::Software);
        nvm.write_word(3 * PAGE_BYTES + 8, 7);
        let view = shadow.view();
        assert_eq!(view.load(3 * PAGE_BYTES + 8), 7);
        assert_eq!(shadow.stats().swap_ins, 1);
    }

    #[test]
    fn paged_eviction_discards_and_reloads() {
        let (nvm, _r, shadow) = paged(2, 8, PagingMode::Software);
        nvm.write_word(0, 1);
        nvm.write_word(PAGE_BYTES, 2);
        nvm.write_word(2 * PAGE_BYTES, 3);
        {
            let v = shadow.view();
            assert_eq!(v.load(0), 1);
        }
        {
            let v = shadow.view();
            assert_eq!(v.load(PAGE_BYTES), 2);
        }
        {
            // Third page forces an eviction (2 frames).
            let v = shadow.view();
            assert_eq!(v.load(2 * PAGE_BYTES), 3);
        }
        let s = shadow.stats();
        assert_eq!(s.swap_ins, 3);
        assert_eq!(s.swap_outs, 1);
        // The evicted page reloads fine.
        let v = shadow.view();
        assert_eq!(v.load(0), 1);
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let (_nvm, _r, shadow) = paged(2, 8, PagingMode::Software);
        let v1 = shadow.view();
        v1.store(0, 10); // pin page 0
        v1.store(PAGE_BYTES, 20); // pin page 1: both frames used
                                  // While v1 lives, its dirty (un-reproduced) data must stay.
        assert_eq!(v1.load(0), 10);
        assert_eq!(v1.load(PAGE_BYTES), 20);
        drop(v1);
        // Now a third page can evict one of them.
        let v2 = shadow.view();
        let _ = v2.load(2 * PAGE_BYTES);
        assert_eq!(shadow.stats().swap_outs, 1);
    }

    #[test]
    fn swap_in_waits_for_reproduce_touching_id() {
        let (nvm, reproduced, shadow) = paged(2, 8, PagingMode::Software);
        // Commit tid 5 wrote page 0, then page 0 was evicted.
        {
            let v = shadow.view();
            v.store(0, 55);
        }
        shadow.note_commit(5, &[(0, 55)]);
        {
            // Evict page 0 by touching pages 1 and 2.
            let v = shadow.view();
            let _ = v.load(PAGE_BYTES);
            drop(v);
            let v = shadow.view();
            let _ = v.load(2 * PAGE_BYTES);
        }
        assert!(shadow.stats().swap_outs >= 1);
        // Reproduce catches up on another thread after a delay, writing the
        // reproduced value into NVM.
        let handle = {
            let nvm = Arc::clone(&nvm);
            let reproduced = Arc::clone(&reproduced);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                nvm.write_word(0, 55);
                reproduced.store(5, Ordering::Release);
            })
        };
        let start = std::time::Instant::now();
        let v = shadow.view();
        // Must block until reproduced >= 5 and then see the NVM value.
        assert_eq!(v.load(0), 55);
        assert!(start.elapsed() >= std::time::Duration::from_millis(15));
        assert_eq!(shadow.stats().touch_waits, 1);
        handle.join().unwrap();
    }

    #[test]
    fn hardware_mode_same_semantics() {
        let (nvm, _r, shadow) = paged(2, 8, PagingMode::Hardware);
        nvm.write_word(2 * PAGE_BYTES, 3);
        {
            let v = shadow.view();
            v.store(0, 1);
            assert_eq!(v.load(0), 1);
        }
        {
            let v = shadow.view();
            let _ = v.load(PAGE_BYTES);
        }
        {
            let v = shadow.view();
            assert_eq!(v.load(2 * PAGE_BYTES), 3);
        }
        assert_eq!(shadow.stats().swap_outs, 1);
    }

    #[test]
    fn note_commit_updates_touching_monotonically() {
        let (_nvm, _r, shadow) = paged(2, 8, PagingMode::Software);
        shadow.note_commit(5, &[(0, 1), (8, 2)]);
        shadow.note_commit(3, &[(16, 1)]); // lower tid must not regress
        if let ShadowMem::Paged(p) = &shadow {
            assert_eq!(p.pages[0].touching.load(Ordering::Relaxed), 5);
        } else {
            unreachable!()
        }
    }

    #[test]
    fn concurrent_paged_access_is_exact() {
        use dude_stm::WordMemory as _;
        // Each of 4 threads pins up to 2 pages at once; frames must exceed
        // the worst-case simultaneous pin count (8) or faulting livelocks.
        let (_nvm, _r, shadow) = paged(12, 16, PagingMode::Software);
        let shadow = Arc::new(shadow);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let shadow = Arc::clone(&shadow);
            handles.push(std::thread::spawn(move || {
                // Each thread owns one word on its own page; hammer it while
                // other threads force evictions of unpinned pages.
                for i in 0..200u64 {
                    let view = shadow.view();
                    let addr = t * PAGE_BYTES;
                    let v = view.load(addr);
                    view.store(addr, v + 1);
                    // Touch a rotating page to create pressure.
                    let other = ((t + i) % 16) * PAGE_BYTES + 64;
                    let _ = view.load(other);
                    drop(view);
                    if i % 50 == 0 {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Counters can be clobbered by eviction (values never reproduced in
        // this raw test) — but only if the page was evicted while unpinned,
        // in which case the counter resets to the NVM value 0. So each
        // counter is ≤ 200 and the shadow machinery never deadlocked or
        // corrupted frames (the real invariant here).
        let view = shadow.view();
        for t in 0..4u64 {
            assert!(view.load(t * PAGE_BYTES) <= 200);
        }
    }
}
