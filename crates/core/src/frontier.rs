//! Conflict-aware sharding of the Reproduce stage: the address→shard
//! router and the per-shard completed-TID frontier.
//!
//! The serial Reproduce step replays batches strictly in global
//! transaction-ID order, so under write-heavy load it caps the pipeline's
//! drain rate. Sharding splits the persistent heap's address space into
//! `N` disjoint shards at cache-line granularity ([`shard_of`]); each
//! durable batch's writes are partitioned by shard ([`split_writes`]) and
//! replayed by `N` workers concurrently. Correctness rests on two
//! invariants:
//!
//! 1. **Partition** — every heap address belongs to exactly one shard, so
//!    per-address write order equals the global TID order restricted to
//!    that shard's channel. Replays never race on a word.
//! 2. **Frontier** — the durable `reproduced` watermark is the *minimum*
//!    completed TID across shards ([`ReproduceFrontier::min_completed`]).
//!    Checkpointing and log recycling key off that minimum, so a shard
//!    running ahead can never let a log record be recycled before every
//!    shard has applied (and fenced) the transactions it covers.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sharding granule in bytes. One cache line: replay locality within a
/// granule, and a line is never split across shard workers (so per-line
/// flushes stay single-writer).
pub const SHARD_GRAIN_BYTES: u64 = 64;

/// Maps a heap offset to its reproduce shard. Total and deterministic:
/// every address belongs to exactly one shard for a given `shards` count.
#[inline]
#[must_use]
pub fn shard_of(addr: u64, shards: usize) -> usize {
    debug_assert!(shards >= 1);
    ((addr / SHARD_GRAIN_BYTES) % shards as u64) as usize
}

/// Partitions a replay write-set by shard, preserving each shard's
/// relative write order. The concatenation of the returned vectors is a
/// permutation of `writes`, and shard `s` holds exactly the writes with
/// `shard_of(addr, shards) == s` — the partition invariant the sharded
/// Reproduce stage relies on (verified by proptest).
#[must_use]
pub fn split_writes(writes: &[(u64, u64)], shards: usize) -> Vec<Vec<(u64, u64)>> {
    let mut parts: Vec<Vec<(u64, u64)>> = (0..shards).map(|_| Vec::new()).collect();
    for &(addr, val) in writes {
        parts[shard_of(addr, shards)].push((addr, val));
    }
    parts
}

/// Avoid false sharing between per-shard counters that different workers
/// update on every batch.
#[repr(align(64))]
#[derive(Debug)]
struct PaddedU64(AtomicU64);

/// The per-shard Reproduce progress frontier.
///
/// Each shard worker publishes the last transaction ID whose writes it has
/// applied *and made durable* (flushed and fenced) to its slot; the global
/// reproduced watermark is the minimum over all slots. With one shard this
/// degenerates to the serial reproduced counter.
#[derive(Debug)]
pub struct ReproduceFrontier {
    completed: Vec<PaddedU64>,
    words_applied: Vec<PaddedU64>,
}

impl ReproduceFrontier {
    /// Creates a frontier for `shards` workers, all starting at
    /// `start_tid` (the last transaction ID already reproduced — 0 on a
    /// fresh device, the recovery report's `last_tid` after a restart).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn new(shards: usize, start_tid: u64) -> Self {
        assert!(shards >= 1, "a frontier needs at least one shard");
        ReproduceFrontier {
            completed: (0..shards)
                .map(|_| PaddedU64(AtomicU64::new(start_tid)))
                .collect(),
            words_applied: (0..shards).map(|_| PaddedU64(AtomicU64::new(0))).collect(),
        }
    }

    /// Number of shards tracked.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.completed.len()
    }

    /// Publishes shard `shard`'s completed TID. The caller must have made
    /// every heap write for transactions at or below `tid` in this shard
    /// durable (flushed *and* fenced) first — the frontier is what the
    /// checkpoint trusts.
    ///
    /// # Panics
    ///
    /// Debug-panics if `tid` moves the shard backwards (frontiers are
    /// monotonic).
    pub fn publish(&self, shard: usize, tid: u64) {
        debug_assert!(
            self.completed[shard].0.load(Ordering::Relaxed) <= tid,
            "shard {shard} frontier moved backwards"
        );
        self.completed[shard].0.store(tid, Ordering::Release);
    }

    /// Shard `shard`'s completed TID.
    #[must_use]
    pub fn completed(&self, shard: usize) -> u64 {
        self.completed[shard].0.load(Ordering::Acquire)
    }

    /// The global frontier: the minimum completed TID across shards. Every
    /// transaction at or below it has been applied by *every* shard, so it
    /// is the only value safe to checkpoint.
    #[must_use]
    pub fn min_completed(&self) -> u64 {
        self.completed
            .iter()
            .map(|c| c.0.load(Ordering::Acquire))
            .min()
            .expect("at least one shard")
    }

    /// Point-in-time copy of every shard's completed TID.
    #[must_use]
    pub fn snapshot_completed(&self) -> Vec<u64> {
        self.completed
            .iter()
            .map(|c| c.0.load(Ordering::Acquire))
            .collect()
    }

    /// Adds `words` to shard `shard`'s applied-word counter (stats).
    pub fn note_applied(&self, shard: usize, words: u64) {
        self.words_applied[shard]
            .0
            .fetch_add(words, Ordering::Relaxed);
    }

    /// Point-in-time copy of every shard's applied-word counter.
    #[must_use]
    pub fn snapshot_words_applied(&self) -> Vec<u64> {
        self.words_applied
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_total_and_stable() {
        for shards in 1..=8 {
            for addr in (0..4096u64).step_by(8) {
                let s = shard_of(addr, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(addr, shards), "deterministic");
            }
        }
    }

    #[test]
    fn addresses_on_one_line_share_a_shard() {
        for shards in 1..=8 {
            let line = 7 * SHARD_GRAIN_BYTES;
            let s = shard_of(line, shards);
            for w in 0..8 {
                assert_eq!(shard_of(line + w * 8, shards), s);
            }
        }
    }

    #[test]
    fn split_preserves_every_write_exactly_once() {
        let writes: Vec<(u64, u64)> = (0..200u64).map(|i| (i * 24, i)).collect();
        let parts = split_writes(&writes, 4);
        assert_eq!(parts.len(), 4);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, writes.len());
        for (s, part) in parts.iter().enumerate() {
            for &(addr, _) in part {
                assert_eq!(shard_of(addr, 4), s);
            }
        }
    }

    #[test]
    fn split_preserves_per_shard_order() {
        // Two writes to the same address must stay ordered within a shard.
        let writes = vec![(64, 1), (128, 2), (64, 3), (128, 4)];
        let parts = split_writes(&writes, 2);
        for part in &parts {
            let same_addr: Vec<u64> = part.iter().filter(|w| w.0 == 64).map(|w| w.1).collect();
            if !same_addr.is_empty() {
                assert_eq!(same_addr, vec![1, 3]);
            }
        }
    }

    #[test]
    fn frontier_min_tracks_slowest_shard() {
        let f = ReproduceFrontier::new(3, 5);
        assert_eq!(f.min_completed(), 5);
        f.publish(0, 10);
        f.publish(2, 8);
        assert_eq!(f.min_completed(), 5, "shard 1 still at start");
        f.publish(1, 9);
        assert_eq!(f.min_completed(), 8);
        assert_eq!(f.snapshot_completed(), vec![10, 9, 8]);
    }

    #[test]
    fn applied_words_accumulate_per_shard() {
        let f = ReproduceFrontier::new(2, 0);
        f.note_applied(0, 7);
        f.note_applied(0, 3);
        f.note_applied(1, 1);
        assert_eq!(f.snapshot_words_applied(), vec![10, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ReproduceFrontier::new(0, 0);
    }
}
