//! Pipeline statistics and the pipeline-lag observability surface.
//!
//! Aggregate counters and watermarks live here; the richer per-event layer
//! (histograms, stall counters, the trace ring) lives in [`crate::trace`]
//! and its snapshot rides along in [`PipelineSnapshot::stalls`] and
//! [`PipelineSnapshot::histograms`]. See `DESIGN.md §Observability`.

use crate::metrics::Counter;
use crate::trace::{HistogramSnapshot, StallSnapshot};

/// Relaxed counters shared by the pipeline stages. The fields are
/// [`Counter`] handles, so the metrics registry shares the very cells the
/// stages increment — no double accounting, no extra hot-path write.
#[derive(Debug, Default)]
pub struct PipelineStats {
    pub(crate) commits: Counter,
    pub(crate) abort_markers: Counter,
    pub(crate) records_persisted: Counter,
    pub(crate) entries_logged: Counter,
    pub(crate) groups_persisted: Counter,
    pub(crate) entries_before_combine: Counter,
    pub(crate) entries_after_combine: Counter,
    pub(crate) group_bytes_raw: Counter,
    pub(crate) group_bytes_stored: Counter,
    pub(crate) txns_reproduced: Counter,
    pub(crate) checkpoints: Counter,
    pub(crate) log_bytes_flushed: Counter,
}

/// Point-in-time copy of [`PipelineStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineStatsSnapshot {
    /// Committed update transactions that entered the pipeline.
    pub commits: u64,
    /// Abort markers written to fill wasted-ID holes.
    pub abort_markers: u64,
    /// Individual records persisted (non-grouped mode).
    pub records_persisted: u64,
    /// Redo-log entries (one per transactional write) that reached the
    /// Persist step — the paper's "# writes" statistic (Table 1).
    pub entries_logged: u64,
    /// Groups persisted (combination mode).
    pub groups_persisted: u64,
    /// Log entries entering combination.
    pub entries_before_combine: u64,
    /// Log entries remaining after combination.
    pub entries_after_combine: u64,
    /// Group payload bytes before compression.
    pub group_bytes_raw: u64,
    /// Group payload bytes actually stored.
    pub group_bytes_stored: u64,
    /// Transactions replayed into NVM by Reproduce.
    pub txns_reproduced: u64,
    /// Durable checkpoints written by Reproduce.
    pub checkpoints: u64,
    /// Bytes appended to the persistent log rings (record framing
    /// included) — the flushed-log volume the `bytes flushed/s` telemetry
    /// rate derives from.
    pub log_bytes_flushed: u64,
}

impl PipelineStats {
    /// Takes a point-in-time copy.
    pub fn snapshot(&self) -> PipelineStatsSnapshot {
        PipelineStatsSnapshot {
            commits: self.commits.get(),
            abort_markers: self.abort_markers.get(),
            records_persisted: self.records_persisted.get(),
            entries_logged: self.entries_logged.get(),
            groups_persisted: self.groups_persisted.get(),
            entries_before_combine: self.entries_before_combine.get(),
            entries_after_combine: self.entries_after_combine.get(),
            group_bytes_raw: self.group_bytes_raw.get(),
            group_bytes_stored: self.group_bytes_stored.get(),
            txns_reproduced: self.txns_reproduced.get(),
            checkpoints: self.checkpoints.get(),
            log_bytes_flushed: self.log_bytes_flushed.get(),
        }
    }
}

impl PipelineStatsSnapshot {
    /// Counter deltas since an earlier snapshot (used to separate the
    /// measurement phase from the load phase).
    #[must_use]
    pub fn delta(&self, earlier: &PipelineStatsSnapshot) -> PipelineStatsSnapshot {
        PipelineStatsSnapshot {
            commits: self.commits - earlier.commits,
            abort_markers: self.abort_markers - earlier.abort_markers,
            records_persisted: self.records_persisted - earlier.records_persisted,
            entries_logged: self.entries_logged - earlier.entries_logged,
            groups_persisted: self.groups_persisted - earlier.groups_persisted,
            entries_before_combine: self.entries_before_combine - earlier.entries_before_combine,
            entries_after_combine: self.entries_after_combine - earlier.entries_after_combine,
            group_bytes_raw: self.group_bytes_raw - earlier.group_bytes_raw,
            group_bytes_stored: self.group_bytes_stored - earlier.group_bytes_stored,
            txns_reproduced: self.txns_reproduced - earlier.txns_reproduced,
            checkpoints: self.checkpoints - earlier.checkpoints,
            log_bytes_flushed: self.log_bytes_flushed - earlier.log_bytes_flushed,
        }
    }

    /// Fraction of log entries eliminated by combination (Figure 3's
    /// "saved NVM writes" series), 0.0 if nothing was combined.
    pub fn combine_savings(&self) -> f64 {
        if self.entries_before_combine == 0 {
            return 0.0;
        }
        1.0 - self.entries_after_combine as f64 / self.entries_before_combine as f64
    }

    /// Fraction of group payload bytes eliminated by compression.
    pub fn compression_savings(&self) -> f64 {
        if self.group_bytes_raw == 0 {
            return 0.0;
        }
        1.0 - self.group_bytes_stored as f64 / self.group_bytes_raw as f64
    }

    /// Named `(counter, value)` pairs in declaration order — the stable
    /// machine-readable export the `dude-bench` runner embeds in its
    /// `BENCH_<spec>.json` records. Keys match the field names (and the
    /// metrics-registry counter names).
    #[must_use]
    pub fn export(&self) -> [(&'static str, u64); 12] {
        [
            ("commits", self.commits),
            ("abort_markers", self.abort_markers),
            ("records_persisted", self.records_persisted),
            ("entries_logged", self.entries_logged),
            ("groups_persisted", self.groups_persisted),
            ("entries_before_combine", self.entries_before_combine),
            ("entries_after_combine", self.entries_after_combine),
            ("group_bytes_raw", self.group_bytes_raw),
            ("group_bytes_stored", self.group_bytes_stored),
            ("txns_reproduced", self.txns_reproduced),
            ("checkpoints", self.checkpoints),
            ("log_bytes_flushed", self.log_bytes_flushed),
        ]
    }
}

/// Point-in-time view of the whole decoupled pipeline: the cumulative
/// per-stage counters plus the three watermarks that define stage lag and
/// the occupancy of each persistent log ring.
///
/// The watermarks order as `reproduced <= durable <= committed`; the gaps
/// between them are how far Persist and Reproduce trail Perform (§3.2's
/// asynchrony made observable). Obtain via
/// [`DudeTm::stats_snapshot`](crate::DudeTm::stats_snapshot).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PipelineSnapshot {
    /// Cumulative per-stage counters.
    pub counters: PipelineStatsSnapshot,
    /// Highest transaction ID the TM commit clock has handed out — the
    /// Perform stage's frontier.
    pub committed: u64,
    /// The durable watermark: every TID at or below it is persistent.
    pub durable: u64,
    /// The reproduced watermark: every TID at or below it is applied to
    /// the persistent heap image.
    pub reproduced: u64,
    /// Occupied words in each per-thread persistent log ring — the log
    /// space Reproduce has not yet recycled.
    pub ring_used_words: Vec<u64>,
    /// Per-shard completed-TID frontier of the Reproduce stage (one entry
    /// with `reproduce_threads = 1`; the serial worker mirrors its progress
    /// into slot 0). `reproduced` equals the minimum of these.
    pub shard_completed: Vec<u64>,
    /// Heap words applied by each Reproduce shard — how evenly the shard
    /// router spread the replay work.
    pub shard_words_applied: Vec<u64>,
    /// Stall counters from the observability layer (all zero when tracing
    /// is disabled — stall accounting is gated with the rest of the layer
    /// so the disabled pipeline takes no extra atomics).
    pub stalls: StallSnapshot,
    /// Every stage histogram, as `(name, snapshot)` in registry order —
    /// the three fixed histograms, then `replay_apply_ns{shard="s"}` per
    /// Reproduce shard, then `flush_worker_ns{worker="w"}` per grouped
    /// flush worker. Present (with zero counts) even when tracing is
    /// disabled, so [`PipelineSnapshot::summary`] always names the full
    /// catalog.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl PipelineSnapshot {
    /// Transactions committed but not yet durable (Perform → Persist lag).
    pub fn persist_lag(&self) -> u64 {
        self.committed.saturating_sub(self.durable)
    }

    /// Transactions durable but not yet reproduced (Persist → Reproduce
    /// lag); bounded log space forces this to stay finite.
    pub fn reproduce_lag(&self) -> u64 {
        self.durable.saturating_sub(self.reproduced)
    }

    /// Total occupied words across all log rings.
    pub fn ring_words_total(&self) -> u64 {
        self.ring_used_words.iter().sum()
    }

    /// The minimum per-shard completed TID — the Reproduce frontier the
    /// checkpoint keys off. 0 if no shard data was sampled.
    pub fn frontier_min(&self) -> u64 {
        self.shard_completed.iter().copied().min().unwrap_or(0)
    }

    /// Spread between the fastest and slowest Reproduce shard (0 when
    /// serial or perfectly balanced): large skew means one shard gates the
    /// watermark and log recycling.
    pub fn frontier_skew(&self) -> u64 {
        let max = self.shard_completed.iter().copied().max().unwrap_or(0);
        max - self.frontier_min()
    }

    /// Human-readable summary (bench-report friendly). Multi-line: the
    /// watermark/lag line, every stage counter (the same names as
    /// [`PipelineStatsSnapshot::export`] and the metrics registry), the
    /// shard frontier when sharded, all five stall counters, and one line
    /// per stage histogram — the summary names every pipeline metric the
    /// registry carries (asserted by `tests/metrics_layer.rs`).
    pub fn summary(&self) -> String {
        let c = &self.counters;
        let mut line = format!(
            "committed={} durable={} (lag {}) reproduced={} (lag {}) ring-words={}",
            self.committed,
            self.durable,
            self.persist_lag(),
            self.reproduced,
            self.reproduce_lag(),
            self.ring_words_total(),
        );
        line.push_str(&format!(
            "\ncounters[commits={} abort_markers={} records_persisted={} \
             entries_logged={} groups_persisted={} entries_before_combine={} \
             entries_after_combine={} group_bytes_raw={} group_bytes_stored={} \
             txns_reproduced={} checkpoints={} log_bytes_flushed={}]",
            c.commits,
            c.abort_markers,
            c.records_persisted,
            c.entries_logged,
            c.groups_persisted,
            c.entries_before_combine,
            c.entries_after_combine,
            c.group_bytes_raw,
            c.group_bytes_stored,
            c.txns_reproduced,
            c.checkpoints,
            c.log_bytes_flushed,
        ));
        if self.shard_completed.len() > 1 {
            line.push_str(&format!(
                " shards={} frontier-min={} frontier-skew={}",
                self.shard_completed.len(),
                self.frontier_min(),
                self.frontier_skew()
            ));
        }
        line.push_str(&format!(
            " stalls[log-full={} ring-full={} seq-wait={} starved={} ckpt-wait={}]",
            self.stalls.perform_log_full,
            self.stalls.persist_ring_full,
            self.stalls.persist_seq_wait,
            self.stalls.reproduce_starved,
            self.stalls.checkpoint_wait,
        ));
        for (name, h) in &self.histograms {
            line.push_str(&format!(
                "\nhist[{} count={} p50={} p95={} p99={} max={}]",
                name,
                h.count,
                h.p50(),
                h.p95(),
                h.p99(),
                h.max,
            ));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_math() {
        let s = PipelineStatsSnapshot {
            entries_before_combine: 100,
            entries_after_combine: 25,
            group_bytes_raw: 1000,
            group_bytes_stored: 310,
            ..Default::default()
        };
        assert!((s.combine_savings() - 0.75).abs() < 1e-9);
        assert!((s.compression_savings() - 0.69).abs() < 1e-9);
        assert_eq!(PipelineStatsSnapshot::default().combine_savings(), 0.0);
        assert_eq!(PipelineStatsSnapshot::default().compression_savings(), 0.0);
    }

    #[test]
    fn snapshot_copies_counters() {
        use std::sync::atomic::Ordering;
        let s = PipelineStats::default();
        s.commits.store(5, Ordering::Relaxed);
        s.txns_reproduced.store(3, Ordering::Relaxed);
        s.log_bytes_flushed.store(64, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.commits, 5);
        assert_eq!(snap.txns_reproduced, 3);
        assert_eq!(snap.log_bytes_flushed, 64);
    }

    #[test]
    fn export_names_match_fields() {
        let snap = PipelineStatsSnapshot {
            commits: 1,
            log_bytes_flushed: 2,
            ..Default::default()
        };
        let export = snap.export();
        assert_eq!(export.len(), 12);
        assert_eq!(export[0], ("commits", 1));
        assert_eq!(export[11], ("log_bytes_flushed", 2));
    }

    #[test]
    fn pipeline_snapshot_lag_math() {
        let snap = PipelineSnapshot {
            committed: 100,
            durable: 90,
            reproduced: 70,
            ring_used_words: vec![12, 0, 8],
            ..Default::default()
        };
        assert_eq!(snap.persist_lag(), 10);
        assert_eq!(snap.reproduce_lag(), 20);
        assert_eq!(snap.ring_words_total(), 20);
        let line = snap.summary();
        assert!(line.contains("committed=100"), "{line}");
        assert!(line.contains("(lag 10)"), "{line}");
        assert!(line.contains("ring-words=20"), "{line}");
    }

    #[test]
    fn summary_prints_every_export_counter() {
        let snap = PipelineSnapshot::default();
        let line = snap.summary();
        for (name, _) in snap.counters.export() {
            assert!(line.contains(&format!("{name}=")), "{name} missing: {line}");
        }
    }

    #[test]
    fn summary_prints_histogram_lines() {
        let snap = PipelineSnapshot {
            histograms: vec![
                (
                    "commit_latency_ns".to_string(),
                    HistogramSnapshot::default(),
                ),
                (
                    "flush_worker_ns{worker=\"1\"}".to_string(),
                    HistogramSnapshot {
                        buckets: vec![0; 65],
                        count: 4,
                        sum: 40,
                        max: 17,
                    },
                ),
            ],
            ..Default::default()
        };
        let line = snap.summary();
        assert!(line.contains("hist[commit_latency_ns count=0"), "{line}");
        assert!(
            line.contains("hist[flush_worker_ns{worker=\"1\"} count=4"),
            "{line}"
        );
        assert!(line.contains("max=17]"), "{line}");
    }

    #[test]
    fn frontier_math_and_shard_summary() {
        let snap = PipelineSnapshot {
            reproduced: 70,
            shard_completed: vec![75, 70, 82, 71],
            shard_words_applied: vec![100, 90, 120, 95],
            ..Default::default()
        };
        assert_eq!(snap.frontier_min(), 70);
        assert_eq!(snap.frontier_skew(), 12);
        let line = snap.summary();
        assert!(line.contains("shards=4"), "{line}");
        assert!(line.contains("frontier-min=70"), "{line}");
        assert!(line.contains("frontier-skew=12"), "{line}");
        // Serial snapshots stay terse.
        let serial = PipelineSnapshot {
            shard_completed: vec![70],
            ..Default::default()
        };
        assert!(!serial.summary().contains("shards="));
        assert_eq!(serial.frontier_skew(), 0);
    }

    #[test]
    fn summary_always_prints_all_five_stall_counters() {
        let snap = PipelineSnapshot {
            stalls: StallSnapshot {
                perform_log_full: 3,
                persist_ring_full: 1,
                persist_seq_wait: 4,
                reproduce_starved: 7,
                checkpoint_wait: 2,
            },
            ..Default::default()
        };
        let line = snap.summary();
        assert!(line.contains("log-full=3"), "{line}");
        assert!(line.contains("ring-full=1"), "{line}");
        assert!(line.contains("seq-wait=4"), "{line}");
        assert!(line.contains("starved=7"), "{line}");
        assert!(line.contains("ckpt-wait=2"), "{line}");
        // Zero stalls still print (so readers can see nothing stalled).
        let quiet = PipelineSnapshot::default().summary();
        assert!(quiet.contains("log-full=0"), "{quiet}");
    }

    #[test]
    fn pipeline_snapshot_lag_saturates() {
        // Watermarks are sampled racily; a momentarily inverted pair must
        // not wrap around.
        let snap = PipelineSnapshot {
            committed: 5,
            durable: 7,
            reproduced: 9,
            ..Default::default()
        };
        assert_eq!(snap.persist_lag(), 0);
        assert_eq!(snap.reproduce_lag(), 0);
    }
}
