//! Persistent redo-log rings (Figure 1's "persistent log region").
//!
//! Each Perform thread owns one fixed-size ring in NVM. The Persist step
//! appends checksummed records and issues exactly **one persist barrier per
//! record (or group)** — the whole point of redo logging (§2.2). Space is
//! recycled by the Reproduce step only after the covering checkpoint is
//! durable, so recovery can trust every unreleased record it finds.
//!
//! Recovery does not rely on any volatile cursor: it scans the whole region
//! probing every word for a record header and validating checksums
//! ([`scan_region`]). Released (stale) records are filtered out by the
//! reproduced-ID checkpoint, torn records fail their checksum, and live
//! records are found wherever the ring wrapped them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dude_nvm::{Nvm, Region};
use parking_lot::Mutex;

use crate::log::{is_skip, parse_record, skip_word, ParsedRecord};

/// Location of one appended record, in monotonic ring coordinates
/// (includes any wrap padding that preceded it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlogSpan {
    /// Monotonic word offset at which the span starts.
    pub start: u64,
    /// Words covered (padding + record).
    pub words: u64,
}

/// A single-writer, single-releaser persistent log ring.
#[derive(Debug)]
pub struct PlogRing {
    nvm: Arc<Nvm>,
    region: Region,
    capacity_words: u64,
    /// Monotonic count of released words.
    head: AtomicU64,
    /// Monotonic count of written words.
    tail: AtomicU64,
    /// Serializes appends (each ring has one logical writer; the lock makes
    /// that assumption safe rather than trusted).
    append_lock: Mutex<()>,
}

impl PlogRing {
    /// Creates an empty ring over `region`.
    ///
    /// # Panics
    ///
    /// Panics if the region is not word-aligned or smaller than 64 words.
    pub fn new(nvm: Arc<Nvm>, region: Region) -> Self {
        assert!(region.start().is_multiple_of(8) && region.len().is_multiple_of(8));
        let capacity_words = region.len() / 8;
        assert!(capacity_words >= 64, "plog ring too small");
        PlogRing {
            nvm,
            region,
            capacity_words,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            append_lock: Mutex::new(()),
        }
    }

    /// Ring capacity in words.
    pub fn capacity_words(&self) -> u64 {
        self.capacity_words
    }

    /// Words currently live (written but not released).
    pub fn used_words(&self) -> u64 {
        self.tail.load(Ordering::Acquire) - self.head.load(Ordering::Acquire)
    }

    /// Appends `record` and persists it with one barrier. Blocks (yielding)
    /// while the ring lacks space — the backpressure that ultimately blocks
    /// the Perform thread when logs outrun the Persist step (§3.2).
    ///
    /// # Panics
    ///
    /// Panics if the record is larger than half the ring.
    pub fn append(&self, record: &[u64]) -> PlogSpan {
        let span = self.append_unfenced(record);
        self.nvm.fence();
        span
    }

    /// Appends and flushes `record` **without** the ordering fence. The
    /// caller must fence before treating the record as durable; the Persist
    /// step uses this to batch several transactions under one barrier,
    /// which the paper explicitly permits (§3.3 "persist redo logs in a
    /// batched manner").
    ///
    /// # Panics
    ///
    /// Panics if the record is larger than half the ring.
    pub fn append_unfenced(&self, record: &[u64]) -> PlogSpan {
        loop {
            if let Some(span) = self.try_append_unfenced(record) {
                return span;
            }
            dude_nvm::thread::yield_now();
        }
    }

    /// Non-blocking [`PlogRing::append_unfenced`]: returns `None` when the
    /// ring currently lacks space. A Persist thread serving several rings
    /// must never *block* on one full ring — the blocked ring can only
    /// drain after Reproduce passes transactions that still sit in the
    /// other rings' channels, so blocking would deadlock the pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the record is larger than half the ring.
    pub fn try_append_unfenced(&self, record: &[u64]) -> Option<PlogSpan> {
        let len = record.len() as u64;
        assert!(
            len <= self.capacity_words / 2,
            "record of {len} words exceeds half the ring ({} words)",
            self.capacity_words
        );
        let _guard = self.append_lock.lock();
        let tail = self.tail.load(Ordering::Relaxed);
        let tail_mod = tail % self.capacity_words;
        let pad = if tail_mod + len > self.capacity_words {
            self.capacity_words - tail_mod
        } else {
            0
        };
        let total = pad + len;
        if tail + total - self.head.load(Ordering::Acquire) > self.capacity_words {
            return None;
        }
        if pad > 0 {
            // Tell sequential readers (none today; defensive) to wrap.
            let off = self.region.start() + tail_mod * 8;
            self.nvm.write_word(off, skip_word());
            self.nvm.flush(off, 8);
        }
        let write_mod = (tail + pad) % self.capacity_words;
        let off = self.region.start() + write_mod * 8;
        self.nvm.write_words(off, record);
        self.nvm.flush(off, len * 8);
        self.tail.store(tail + total, Ordering::Release);
        Some(PlogSpan {
            start: tail,
            words: total,
        })
    }

    /// Releases a span returned by [`PlogRing::append`]. Spans must be
    /// released in append order, and only after the reproduced-ID checkpoint
    /// covering them is durable.
    ///
    /// # Panics
    ///
    /// Panics on out-of-order release.
    pub fn release(&self, span: PlogSpan) {
        let head = self.head.load(Ordering::Relaxed);
        assert_eq!(
            head, span.start,
            "plog spans must be released in append order"
        );
        self.head.store(head + span.words, Ordering::Release);
    }
}

/// Scans a log region for checksum-valid records.
///
/// Probes every word offset for a record header; the 64-bit checksum makes
/// false positives negligible. Returns records in scan order (the caller
/// orders them by transaction ID).
pub fn scan_region(nvm: &Nvm, region: Region) -> Vec<ParsedRecord> {
    let words_len = (region.len() / 8) as usize;
    let mut words = vec![0u64; words_len];
    nvm.read_words(region.start(), &mut words);
    let mut found = Vec::new();
    for off in 0..words_len {
        if is_skip(words[off]) {
            continue;
        }
        if let Some(rec) = parse_record(&words[off..]) {
            found.push(rec);
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{serialize_abort, serialize_commit};
    use dude_nvm::NvmConfig;

    fn setup(region_words: u64) -> (Arc<Nvm>, PlogRing, Region) {
        let nvm = Arc::new(Nvm::new(NvmConfig::for_testing(region_words * 8)));
        let region = Region::new(0, region_words * 8);
        let ring = PlogRing::new(Arc::clone(&nvm), region);
        (nvm, ring, region)
    }

    #[test]
    fn append_then_scan_finds_record() {
        let (nvm, ring, region) = setup(256);
        let mut buf = Vec::new();
        serialize_commit(1, &[(8, 42)], &mut buf);
        let span = ring.append(&buf);
        assert_eq!(span.start, 0);
        assert_eq!(span.words, buf.len() as u64);
        let recs = scan_region(&nvm, region);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].first_tid, 1);
        assert_eq!(recs[0].writes, vec![(8, 42)]);
    }

    #[test]
    fn appended_records_survive_crash() {
        let (nvm, ring, region) = setup(256);
        let mut buf = Vec::new();
        serialize_commit(1, &[(8, 42)], &mut buf);
        ring.append(&buf);
        nvm.crash();
        let recs = scan_region(&nvm, region);
        assert_eq!(recs.len(), 1, "persisted record must survive crash");
    }

    #[test]
    fn unpersisted_write_does_not_survive() {
        let (nvm, _ring, region) = setup(256);
        let mut buf = Vec::new();
        serialize_commit(1, &[(8, 42)], &mut buf);
        // Write the record bytes but never flush/fence.
        nvm.write_words(region.start(), &buf);
        nvm.crash();
        assert!(scan_region(&nvm, region).is_empty());
    }

    #[test]
    fn wrap_around_with_release() {
        let (nvm, ring, region) = setup(64);
        let mut buf = Vec::new();
        let mut spans = Vec::new();
        // Each commit record with 2 writes = 3 + 4 + 1 = 8 words; ring holds 8.
        for tid in 1..=32u64 {
            serialize_commit(tid, &[(8, tid), (16, tid)], &mut buf);
            // Release the oldest span when the ring gets tight.
            while ring.used_words() + buf.len() as u64 + 8 > ring.capacity_words() {
                let s: PlogSpan = spans.remove(0);
                ring.release(s);
            }
            spans.push(ring.append(&buf));
        }
        // The most recent records are still discoverable.
        let recs = scan_region(&nvm, region);
        let max_tid = recs.iter().map(|r| r.last_tid).max().unwrap();
        assert_eq!(max_tid, 32);
        // All surviving records are contiguous at the tail of the sequence.
        let mut tids: Vec<u64> = recs.iter().map(|r| r.first_tid).collect();
        tids.sort_unstable();
        tids.dedup();
        let min_tid = tids[0];
        assert_eq!(
            tids,
            (min_tid..=32).collect::<Vec<_>>(),
            "live records must cover a contiguous tid suffix"
        );
    }

    #[test]
    #[should_panic(expected = "append order")]
    fn out_of_order_release_panics() {
        let (_nvm, ring, _region) = setup(256);
        let mut buf = Vec::new();
        serialize_abort(1, &mut buf);
        let s1 = ring.append(&buf);
        serialize_abort(2, &mut buf);
        let s2 = ring.append(&buf);
        let _ = s1;
        ring.release(s2);
    }

    #[test]
    fn scan_ignores_torn_record() {
        let (nvm, ring, region) = setup(256);
        let mut buf = Vec::new();
        serialize_commit(1, &[(8, 1)], &mut buf);
        ring.append(&buf);
        // Simulate a torn append: valid-looking header, no valid checksum,
        // never fenced.
        serialize_commit(2, &[(16, 2)], &mut buf);
        let torn = &buf[..buf.len() - 1];
        nvm.write_words(region.start() + 64 * 8, torn);
        nvm.crash();
        let recs = scan_region(&nvm, region);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].first_tid, 1);
    }

    #[test]
    fn used_words_tracks_live_data() {
        let (_nvm, ring, _region) = setup(256);
        assert_eq!(ring.used_words(), 0);
        let mut buf = Vec::new();
        serialize_abort(1, &mut buf);
        let s = ring.append(&buf);
        assert_eq!(ring.used_words(), 4);
        ring.release(s);
        assert_eq!(ring.used_words(), 0);
    }

    #[test]
    fn append_blocks_until_release() {
        // Fill the ring almost completely, then show append waits for a
        // release performed by another thread.
        let (_nvm, ring, _region) = setup(64);
        let ring = Arc::new(ring);
        let mut buf = Vec::new();
        serialize_commit(1, &[(8, 1); 13], &mut buf); // 3+26+1 = 30 words
        let s1 = ring.append(&buf);
        let mut buf2 = Vec::new();
        serialize_commit(2, &[(8, 2); 13], &mut buf2);
        let _s2 = ring.append(&buf2); // 60/64 used
        let r2 = Arc::clone(&ring);
        let releaser = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            r2.release(s1);
        });
        let mut buf3 = Vec::new();
        serialize_commit(3, &[(8, 3); 13], &mut buf3);
        let start = std::time::Instant::now();
        ring.append(&buf3); // must block until release
        assert!(start.elapsed() >= std::time::Duration::from_millis(15));
        releaser.join().unwrap();
    }
}
