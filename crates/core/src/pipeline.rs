//! The Persist and Reproduce background stages (§3.3, §3.4).
//!
//! *Persist* drains per-thread volatile redo logs, writes them to the
//! persistent log rings (one barrier per record or group), and marks
//! transaction IDs in the durable-ID tracker. Logs may be flushed **out of
//! commit order** — only Reproduce needs the global order (§3.3).
//!
//! *Reproduce* receives each persisted record's *volatile copy* through a
//! channel (the paper's "keep the redo log in the volatile region"
//! optimization — without a crash, nothing is ever read back from NVM),
//! reorders it into dense transaction-ID order, applies the writes to the
//! persistent heap, periodically checkpoints the reproduced ID, and only
//! then recycles log space.
//!
//! With `reproduce_threads > 1`, Reproduce splits into a *router* and `N`
//! *shard workers*: the router performs the dense reorder, partitions each
//! batch's writes by heap shard ([`crate::frontier`]), and fans them out;
//! each worker applies its shard's writes, fences, and publishes its
//! completed TID. The checkpoint — and therefore log recycling — keys off
//! the minimum completed TID across shards, never a single worker's
//! progress.
//!
//! With `persist_group > 1`, the Persist stage splits into a *sequencer*
//! and `persist_flush_workers` *flush workers*. The sequencer merges all
//! threads' records into dense global ID order and seals groups of
//! consecutive transactions — the precondition that keeps
//! *cross-transaction log combination* (and compression) safe (§3.3,
//! Figure 3). Sealed groups fan out round-robin to the flush workers,
//! which combine, serialize, optionally compress, write to their own log
//! ring, and fence **in parallel and out of order**. Durability is then
//! *published* strictly in order by [`GroupPublisher`]: the durable-ID
//! watermark advances and `Batch`es reach Reproduce only once a contiguous
//! prefix of groups is durable, so recovery's contiguous-run invariant and
//! `wait_durable` semantics are identical to the serial grouped worker's.

use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender, TryRecvError};

use crate::frontier::split_writes;
use crate::log::{combine_sorted, serialize_abort, serialize_commit, serialize_group, LogRecord};
use crate::plog::PlogSpan;
use crate::runtime::Shared;
use crate::seqtrack::OrderedCompletions;
use crate::trace::{Stage, TraceEventKind};

/// A persisted unit handed from Persist to Reproduce.
#[derive(Debug)]
pub(crate) struct Batch {
    pub first_tid: u64,
    pub last_tid: u64,
    /// Writes to replay (combined when grouping is on; empty for aborts).
    pub writes: Vec<(u64, u64)>,
    /// Log spans to recycle once the covering checkpoint is durable.
    pub spans: Vec<(usize, PlogSpan)>,
}

impl PartialEq for Batch {
    fn eq(&self, other: &Self) -> bool {
        self.first_tid == other.first_tid
    }
}
impl Eq for Batch {}
impl PartialOrd for Batch {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Batch {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap becomes a min-heap on first_tid.
        other.first_tid.cmp(&self.first_tid)
    }
}

/// Writes one record to `ring_idx` without fencing; returns the batch to
/// forward once the covering fence has been issued, or gives the record
/// back when the ring has no space (the caller parks it and keeps serving
/// the other rings — blocking here would deadlock the pipeline).
fn try_stage_record(
    shared: &Shared,
    ring_idx: usize,
    rec: LogRecord,
    buf: &mut Vec<u64>,
) -> Result<Batch, LogRecord> {
    let tid = rec.tid();
    match &rec {
        LogRecord::Commit { writes, .. } => serialize_commit(tid, writes, buf),
        LogRecord::Abort { .. } => serialize_abort(tid, buf),
    }
    let Some(span) = shared.rings[ring_idx].try_append_unfenced(buf) else {
        // Persist is blocked on log space Reproduce has not recycled yet —
        // the stall the bounded NVM log ring exists to make visible.
        if shared.trace.enabled() {
            shared
                .trace
                .stalls
                .persist_ring_full
                .fetch_add(1, Ordering::Relaxed);
        }
        return Err(rec);
    };
    let writes = match rec {
        LogRecord::Commit { writes, .. } => writes,
        LogRecord::Abort { .. } => Vec::new(),
    };
    shared
        .stats
        .records_persisted
        .fetch_add(1, Ordering::Relaxed);
    shared
        .stats
        .entries_logged
        .fetch_add(writes.len() as u64, Ordering::Relaxed);
    shared
        .stats
        .log_bytes_flushed
        .fetch_add(span.words * 8, Ordering::Relaxed);
    Ok(Batch {
        first_tid: tid,
        last_tid: tid,
        writes,
        spans: vec![(ring_idx, span)],
    })
}

/// The default Persist worker: drains a set of per-thread channels in any
/// order and persists each record individually.
pub(crate) fn persist_worker(
    shared: Arc<Shared>,
    inputs: Vec<(usize, Receiver<LogRecord>)>,
    out: Sender<Batch>,
) {
    dude_nvm::set_background_stage(true);
    let mut buf = Vec::new();
    let mut done = vec![false; inputs.len()];
    // Records whose ring was full — retried next sweep while the other
    // channels keep flowing (never block on one ring: deadlock).
    let mut parked: Vec<Option<LogRecord>> = (0..inputs.len()).map(|_| None).collect();
    let mut staged: Vec<Batch> = Vec::new();
    loop {
        let mut progress = false;
        for (i, (ring_idx, rx)) in inputs.iter().enumerate() {
            if let Some(rec) = parked[i].take() {
                match try_stage_record(&shared, *ring_idx, rec, &mut buf) {
                    Ok(batch) => {
                        progress = true;
                        staged.push(batch);
                    }
                    Err(rec) => {
                        parked[i] = Some(rec);
                        continue; // ring still full: keep order, skip channel
                    }
                }
            }
            if done[i] {
                continue;
            }
            // Bounded drain per sweep so one busy thread cannot starve the
            // rest.
            for _ in 0..64 {
                match rx.try_recv() {
                    Ok(rec) => match try_stage_record(&shared, *ring_idx, rec, &mut buf) {
                        Ok(batch) => {
                            progress = true;
                            staged.push(batch);
                        }
                        Err(rec) => {
                            parked[i] = Some(rec);
                            break;
                        }
                    },
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        done[i] = true;
                        break;
                    }
                }
            }
        }
        if !staged.is_empty() {
            // One ordering barrier covers the whole sweep (batched persist,
            // §3.3); its modeled cost covers all flushed bytes.
            if shared.trace.enabled() {
                let bytes: u64 = staged
                    .iter()
                    .flat_map(|b| b.spans.iter())
                    .map(|&(_, span)| span.words * 8)
                    .sum();
                let t0 = dude_nvm::monotonic_ns();
                shared.nvm.fence();
                let dur = dude_nvm::monotonic_ns().saturating_sub(t0);
                shared.trace.persist_barrier_ns.record(dur);
                let last_tid = staged.iter().map(|b| b.last_tid).max().unwrap_or(0);
                shared.trace.event(
                    Stage::Persist,
                    TraceEventKind::PersistBarrier,
                    last_tid,
                    bytes,
                    dur,
                );
            } else {
                shared.nvm.fence();
            }
            for batch in staged.drain(..) {
                shared.tracker.mark(batch.first_tid);
                // Reproduce may have exited during shutdown teardown; the
                // records are persisted regardless.
                let _ = out.send(batch);
            }
        }
        if done.iter().all(|&d| d) && parked.iter().all(|p| p.is_none()) {
            return;
        }
        if !progress {
            dude_nvm::thread::sleep(Duration::from_micros(50));
        }
    }
}

/// One sealed group of consecutive-TID records, handed from the sequencer
/// to a flush worker. `seq` is the dense group sequence number (`0, 1, 2,
/// …` per runtime instance) the in-order publisher keys on.
#[derive(Debug)]
pub(crate) struct GroupWork {
    pub seq: u64,
    pub records: Vec<LogRecord>,
}

/// In-order durable publication for the parallel grouped Persist stage.
///
/// Flush workers finish groups out of order, but two consumers require
/// order: the durable-ID watermark must advance over a contiguous TID
/// prefix (a `wait_durable(t)` that returns early on a holey prefix would
/// break durable linearizability), and recovery's contiguous-run replay
/// assumes no batch reaches Reproduce — and therefore no log span is ever
/// recycled — ahead of a gap. `publish` funnels every completed group
/// through an [`OrderedCompletions`] reorderer whose emission callback
/// (mark the tracker, forward the batch) runs under the reorderer's lock,
/// so publication is totally ordered across workers.
#[derive(Debug)]
pub(crate) struct GroupPublisher {
    shared: Arc<Shared>,
    out: Sender<Batch>,
    completions: OrderedCompletions<Batch>,
}

impl GroupPublisher {
    /// Creates a publisher emitting from group sequence number 0.
    pub(crate) fn new(shared: Arc<Shared>, out: Sender<Batch>) -> Self {
        GroupPublisher {
            shared,
            out,
            completions: OrderedCompletions::starting_at(0),
        }
    }

    /// Publishes group `seq`: parked until all earlier groups are durable,
    /// then — in sequence order — marks its TID range in the durable-ID
    /// tracker and forwards the batch to Reproduce.
    fn publish(&self, seq: u64, batch: Batch) {
        self.completions.complete(seq, batch, |_, b| {
            self.shared.tracker.mark_range(b.first_tid, b.last_tid);
            self.shared.trace.event(
                Stage::Persist,
                TraceEventKind::DurablePublish,
                b.last_tid,
                8 * b.writes.len() as u64,
                0,
            );
            // Reproduce may have exited during shutdown teardown; the
            // group is durable regardless.
            let _ = self.out.send(b);
        });
    }
}

/// The grouped-Persist sequencer: merges all per-thread channels into
/// dense global transaction-ID order, seals groups of `group` consecutive
/// transactions, and fans them out round-robin to the flush workers.
///
/// The sequencer never touches NVM, so it can never park on a full ring;
/// the hold timer below therefore always re-arms on time and a partial
/// group is dispatched at most once per quiet period (the serial worker
/// conflated sequencing with flushing, and a full ring could pin its timer
/// in the expired state). Round-robin assignment is load-bearing for span
/// recycling: worker `w` receives group sequences `w, w + N, …` and
/// appends them to *its own* ring in that order, so each ring's append
/// order equals dense TID order — exactly the order Reproduce releases
/// spans in ([`crate::plog::PlogRing::release`] panics otherwise).
pub(crate) fn persist_sequencer(
    shared: Arc<Shared>,
    inputs: Vec<(usize, Receiver<LogRecord>)>,
    worker_txs: Vec<Sender<GroupWork>>,
    group: usize,
) {
    dude_nvm::set_background_stage(true);
    let workers = worker_txs.len();
    let mut heap: BinaryHeap<std::cmp::Reverse<u64>> = BinaryHeap::new();
    let mut stash: std::collections::HashMap<u64, LogRecord> = std::collections::HashMap::new();
    let mut done = vec![false; inputs.len()];
    let mut expected = shared.tracker.watermark() + 1;
    let mut current: Vec<LogRecord> = Vec::new();
    let mut next_seq = 0u64;
    // Hold-timer arithmetic runs on the shared monotonic clock (virtual
    // under sim), not `Instant`, so the latency bound is deterministic in
    // schedule-exploration runs and unchanged natively.
    let mut last_flush = dude_nvm::monotonic_ns();
    // Dispatch a partial group after this much quiet time (latency bound).
    let max_hold_ns = Duration::from_millis(2).as_nanos() as u64;

    let dispatch = |current: &mut Vec<LogRecord>, next_seq: &mut u64| {
        if current.is_empty() {
            return;
        }
        let records = std::mem::take(current);
        let seq = *next_seq;
        *next_seq += 1;
        if shared.trace.enabled() {
            let entries: u64 = records.iter().map(|r| r.writes().len() as u64).sum();
            let last = records.last().expect("non-empty group").tid();
            shared.trace.event(
                Stage::Persist,
                TraceEventKind::GroupDispatch,
                last,
                8 * entries,
                0,
            );
        }
        // A worker only exits after draining its channel, so a send can
        // fail only during teardown-after-panic.
        let _ = worker_txs[(seq % workers as u64) as usize].send(GroupWork { seq, records });
    };

    loop {
        let mut progress = false;
        for (i, (_ring_idx, rx)) in inputs.iter().enumerate() {
            if done[i] {
                continue;
            }
            for _ in 0..64 {
                match rx.try_recv() {
                    Ok(rec) => {
                        progress = true;
                        let tid = rec.tid();
                        heap.push(std::cmp::Reverse(tid));
                        stash.insert(tid, rec);
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        done[i] = true;
                        break;
                    }
                }
            }
        }
        // Move dense-prefix records into the current group.
        while heap
            .peek()
            .is_some_and(|&std::cmp::Reverse(tid)| tid == expected)
        {
            heap.pop();
            let rec = stash.remove(&expected).expect("stashed record");
            // `last_flush` is really "when the current group started": a
            // stale value from an idle period would make the hold timer
            // expire immediately and dispatch a group of one, so restart it
            // when the group goes empty → non-empty.
            if current.is_empty() {
                last_flush = dude_nvm::monotonic_ns();
            }
            current.push(rec);
            expected += 1;
            if current.len() >= group {
                dispatch(&mut current, &mut next_seq);
                last_flush = dude_nvm::monotonic_ns();
            }
        }
        let all_done = done.iter().all(|&d| d);
        if all_done && heap.is_empty() {
            dispatch(&mut current, &mut next_seq);
            // Returning drops `worker_txs`: the flush workers drain their
            // queues and exit, and the publisher's last `Batch` sender goes
            // with them.
            return;
        }
        if !current.is_empty() && dude_nvm::monotonic_ns().saturating_sub(last_flush) > max_hold_ns
        {
            dispatch(&mut current, &mut next_seq);
            last_flush = dude_nvm::monotonic_ns();
        }
        if !progress {
            if all_done {
                // Channels are closed but the reorder heap has a gap: a
                // transaction ID was allocated and never logged. This is a
                // protocol violation upstream.
                panic!(
                    "persist(grouped): tid {expected} missing with inputs closed \
                     ({} stashed)",
                    stash.len()
                );
            }
            // Idle with records stashed beyond a TID gap: the sequencer is
            // waiting on one slow Perform thread — the grouped pipeline's
            // head-of-line stall, counted per tick like the others.
            if shared.trace.enabled() && !stash.is_empty() {
                shared
                    .trace
                    .stalls
                    .persist_seq_wait
                    .fetch_add(1, Ordering::Relaxed);
            }
            dude_nvm::thread::sleep(Duration::from_micros(50));
        }
    }
}

/// A grouped-Persist flush worker: combines, serializes, optionally
/// compresses, writes, and fences each group it receives — out of order
/// with respect to its siblings — then hands the result to the in-order
/// [`GroupPublisher`].
///
/// Worker `w` appends exclusively to `shared.rings[w]` (its channel
/// delivers group sequences in increasing order, so the ring's append
/// order is dense TID order; see [`persist_sequencer`]). A full ring
/// parks the worker with a bounded sleep per probe — counted as a
/// `persist_ring_full` stall — never a busy-spin: the space it waits for
/// appears as soon as Reproduce's idle-tick checkpoint recycles the spans
/// of already-published groups, which publication order guarantees are
/// all ahead of this one.
pub(crate) fn persist_flush_worker(
    shared: Arc<Shared>,
    worker: usize,
    rx: Receiver<GroupWork>,
    publisher: Arc<GroupPublisher>,
    compress: bool,
) {
    dude_nvm::set_background_stage(true);
    let mut buf = Vec::new();
    let ring = &shared.rings[worker];
    while let Ok(work) = rx.recv() {
        let first = work.records.first().expect("non-empty group").tid();
        let last = work.records.last().expect("non-empty group").tid();
        let before: usize = work.records.iter().map(|r| r.writes().len()).sum();
        let combined = combine_sorted(&work.records);
        let (raw, stored) = serialize_group(first, last, &combined, compress, &mut buf);
        let tracing = shared.trace.enabled();
        // The whole group-persist barrier — write + flush + fence,
        // including any wait for ring space — timed as one event.
        let t0 = if tracing { dude_nvm::monotonic_ns() } else { 0 };
        let span = loop {
            if let Some(span) = ring.try_append_unfenced(&buf) {
                break span;
            }
            if tracing {
                shared
                    .trace
                    .stalls
                    .persist_ring_full
                    .fetch_add(1, Ordering::Relaxed);
            }
            dude_nvm::thread::sleep(Duration::from_micros(50));
        };
        // Fence before the group is published durable. The sabotage gate
        // exists only in sim builds: dropping this fence is the injected
        // ordering bug the schedule fuzzer must catch (a planned crash
        // then loses a group whose durability was already announced).
        #[cfg(feature = "sim")]
        let fence_skipped = crate::sabotage::skip_group_fence();
        #[cfg(not(feature = "sim"))]
        let fence_skipped = false;
        if !fence_skipped {
            shared.nvm.fence();
        }
        if tracing {
            let dur = dude_nvm::monotonic_ns().saturating_sub(t0);
            shared.trace.persist_barrier_ns.record(dur);
            shared.trace.flush_worker_ns[worker].record(dur);
            shared.trace.group_flush_bytes.record(stored as u64);
            shared.trace.event(
                Stage::Persist,
                TraceEventKind::GroupFlush,
                last,
                stored as u64,
                dur,
            );
        }
        shared
            .stats
            .entries_logged
            .fetch_add(before as u64, Ordering::Relaxed);
        shared
            .stats
            .entries_before_combine
            .fetch_add(before as u64, Ordering::Relaxed);
        shared
            .stats
            .entries_after_combine
            .fetch_add(combined.len() as u64, Ordering::Relaxed);
        shared
            .stats
            .group_bytes_raw
            .fetch_add(raw as u64, Ordering::Relaxed);
        shared
            .stats
            .group_bytes_stored
            .fetch_add(stored as u64, Ordering::Relaxed);
        shared
            .stats
            .groups_persisted
            .fetch_add(1, Ordering::Relaxed);
        shared
            .stats
            .log_bytes_flushed
            .fetch_add(span.words * 8, Ordering::Relaxed);
        publisher.publish(
            work.seq,
            Batch {
                first_tid: first,
                last_tid: last,
                writes: combined,
                spans: vec![(worker, span)],
            },
        );
    }
}

/// The Reproduce worker (§3.4): replays batches in dense transaction-ID
/// order onto the persistent heap, checkpoints, and recycles log space.
pub(crate) fn reproduce_worker(shared: Arc<Shared>, rx: Receiver<Batch>) {
    let _bg = dude_nvm::background_stage_scope();
    let mut heap: BinaryHeap<Batch> = BinaryHeap::new();
    let mut expected = shared.reproduced.load(Ordering::Acquire) + 1;
    let mut pending_release: Vec<(usize, PlogSpan)> = Vec::new();
    let mut since_checkpoint = 0u64;
    loop {
        let mut idle = false;
        let disconnected = match rx.recv_timeout(Duration::from_millis(1)) {
            Ok(batch) => {
                heap.push(batch);
                false
            }
            Err(RecvTimeoutError::Timeout) => {
                idle = true;
                // Starved = idling with nothing even out-of-order queued:
                // replay has caught up with the Persist stage entirely.
                if shared.trace.enabled() && heap.is_empty() {
                    shared
                        .trace
                        .stalls
                        .reproduce_starved
                        .fetch_add(1, Ordering::Relaxed);
                }
                false
            }
            Err(RecvTimeoutError::Disconnected) => true,
        };
        while heap.peek().is_some_and(|b| b.first_tid == expected) {
            let batch = heap.pop().expect("peeked batch");
            let tracing = shared.trace.enabled();
            let t0 = if tracing { dude_nvm::monotonic_ns() } else { 0 };
            for &(addr, val) in &batch.writes {
                let off = shared.heap.start() + addr;
                shared.nvm.write_word(off, val);
                shared.nvm.flush(off, 8);
            }
            if tracing {
                let dur = dude_nvm::monotonic_ns().saturating_sub(t0);
                shared.trace.replay_apply_ns[0].record(dur);
                shared.trace.event(
                    Stage::Reproduce,
                    TraceEventKind::ReplayApply,
                    batch.last_tid,
                    8 * batch.writes.len() as u64,
                    dur,
                );
            }
            shared
                .stats
                .txns_reproduced
                .fetch_add(batch.last_tid - batch.first_tid + 1, Ordering::Relaxed);
            since_checkpoint += batch.last_tid - batch.first_tid + 1;
            expected = batch.last_tid + 1;
            // Volatile progress marker: gates paged-shadow swap-ins (§4.3).
            shared.reproduced.store(expected - 1, Ordering::Release);
            // Serial mode is the one-shard degenerate case: mirror progress
            // into the frontier so stats read uniformly across modes.
            shared.frontier.note_applied(0, batch.writes.len() as u64);
            shared.frontier.publish(0, expected - 1);
            pending_release.extend(batch.spans);
            if since_checkpoint >= shared.config.checkpoint_every {
                checkpoint(&shared, expected - 1, &mut pending_release);
                since_checkpoint = 0;
            }
        }
        // Idle tick with work applied but not yet checkpointed: checkpoint
        // now so the covered log spans are recycled promptly (a Persist
        // thread may be waiting for exactly that space).
        if idle && !pending_release.is_empty() {
            checkpoint(&shared, expected - 1, &mut pending_release);
            since_checkpoint = 0;
        }
        if disconnected {
            if let Some(top) = heap.peek() {
                panic!(
                    "reproduce: tid {expected} missing with pipeline closed \
                     (next available {})",
                    top.first_tid
                );
            }
            checkpoint(&shared, expected - 1, &mut pending_release);
            return;
        }
    }
}

/// One dense batch's writes for one shard. Sent to every shard worker for
/// every batch — an empty write set still advances the shard's frontier,
/// otherwise an untouched shard would pin the minimum forever.
#[derive(Debug)]
pub(crate) struct ShardWork {
    pub last_tid: u64,
    pub writes: Vec<(u64, u64)>,
}

/// The sharded-Reproduce router: performs the dense transaction-ID reorder
/// (exactly like [`reproduce_worker`]), splits each batch's writes by heap
/// shard, fans them out to the shard workers, and checkpoints at the
/// minimum completed-TID frontier.
///
/// The router itself never touches the heap; it is the only writer of the
/// checkpoint word and the only thread that recycles log spans. A span is
/// released only once the checkpoint covering its last TID — which by the
/// frontier minimum is applied *and fenced on every shard* — is durable.
pub(crate) fn reproduce_router(
    shared: Arc<Shared>,
    rx: Receiver<Batch>,
    shard_txs: Vec<Sender<ShardWork>>,
) {
    let _bg = dude_nvm::background_stage_scope();
    let shards = shard_txs.len();
    let mut heap: BinaryHeap<Batch> = BinaryHeap::new();
    let start = shared.reproduced.load(Ordering::Acquire);
    let mut expected = start + 1;
    // Spans awaiting a covering checkpoint, FIFO in dispatch (= TID) order.
    let mut pending_release: VecDeque<(u64, Vec<(usize, PlogSpan)>)> = VecDeque::new();
    let mut watermark = start;
    let mut last_checkpoint = start;
    loop {
        let mut idle = false;
        let disconnected = match rx.recv_timeout(Duration::from_millis(1)) {
            Ok(batch) => {
                heap.push(batch);
                false
            }
            Err(RecvTimeoutError::Timeout) => {
                idle = true;
                if shared.trace.enabled() && heap.is_empty() {
                    shared
                        .trace
                        .stalls
                        .reproduce_starved
                        .fetch_add(1, Ordering::Relaxed);
                }
                false
            }
            Err(RecvTimeoutError::Disconnected) => true,
        };
        while heap.peek().is_some_and(|b| b.first_tid == expected) {
            let batch = heap.pop().expect("peeked batch");
            for (s, writes) in split_writes(&batch.writes, shards).into_iter().enumerate() {
                // A worker only exits after draining its channel, so a send
                // can fail only during teardown-after-panic; the router's
                // own frontier wait below would surface that.
                let _ = shard_txs[s].send(ShardWork {
                    last_tid: batch.last_tid,
                    writes,
                });
            }
            pending_release.push_back((batch.last_tid, batch.spans));
            expected = batch.last_tid + 1;
        }
        // Publish the global watermark: the slowest shard's completed TID.
        let f = shared.frontier.min_completed();
        if f > watermark {
            shared
                .stats
                .txns_reproduced
                .fetch_add(f - watermark, Ordering::Relaxed);
            watermark = f;
            shared.reproduced.store(f, Ordering::Release);
        }
        if f - last_checkpoint >= shared.config.checkpoint_every || (idle && f > last_checkpoint) {
            let mut spans = covered_spans(&mut pending_release, f);
            checkpoint(&shared, f, &mut spans);
            last_checkpoint = f;
        }
        if disconnected {
            if let Some(top) = heap.peek() {
                panic!(
                    "reproduce(router): tid {expected} missing with pipeline \
                     closed (next available {})",
                    top.first_tid
                );
            }
            break;
        }
    }
    // Drain: close the shard channels, wait for every shard to finish all
    // dispatched work, then take the final checkpoint.
    drop(shard_txs);
    let target = expected - 1;
    let counting = shared.trace.enabled();
    while shared.frontier.min_completed() < target {
        // Each yield is one tick of the final checkpoint waiting on the
        // slowest shard — the drain-time cost of frontier skew.
        if counting {
            shared
                .trace
                .stalls
                .checkpoint_wait
                .fetch_add(1, Ordering::Relaxed);
        }
        dude_nvm::thread::yield_now();
    }
    if target > watermark {
        shared
            .stats
            .txns_reproduced
            .fetch_add(target - watermark, Ordering::Relaxed);
        shared.reproduced.store(target, Ordering::Release);
    }
    let mut spans = covered_spans(&mut pending_release, target);
    debug_assert!(pending_release.is_empty(), "spans beyond the last batch");
    checkpoint(&shared, target, &mut spans);
}

/// Pops the spans whose covering TID is at or below `frontier`.
fn covered_spans(
    pending: &mut VecDeque<(u64, Vec<(usize, PlogSpan)>)>,
    frontier: u64,
) -> Vec<(usize, PlogSpan)> {
    let mut spans = Vec::new();
    while pending.front().is_some_and(|&(tid, _)| tid <= frontier) {
        spans.extend(pending.pop_front().expect("peeked entry").1);
    }
    spans
}

/// A Reproduce shard worker: applies its shard's slice of each batch to
/// the persistent heap, fences its own flushes, and only then publishes
/// its completed TID to the frontier.
///
/// The fence-before-publish order is load-bearing: the checkpoint trusts
/// the frontier minimum without issuing flushes of its own for heap data,
/// so a TID a shard publishes must already be durable *on that shard*. One
/// fence covers a whole drained run of batches, keeping the barrier count
/// comparable to the serial worker's.
pub(crate) fn reproduce_shard_worker(shared: Arc<Shared>, shard: usize, rx: Receiver<ShardWork>) {
    let _bg = dude_nvm::background_stage_scope();
    let mut run: Vec<ShardWork> = Vec::new();
    loop {
        match rx.recv() {
            Ok(w) => run.push(w),
            Err(_) => return,
        }
        // Batch whatever else is already queued so one fence covers the
        // whole run (bounded: the frontier should not stall on a hot shard).
        while run.len() < 128 {
            match rx.try_recv() {
                Ok(w) => run.push(w),
                Err(_) => break,
            }
        }
        let mut words = 0u64;
        let tracing = shared.trace.enabled();
        let t0 = if tracing { dude_nvm::monotonic_ns() } else { 0 };
        for work in &run {
            for &(addr, val) in &work.writes {
                let off = shared.heap.start() + addr;
                shared.nvm.write_word(off, val);
                shared.nvm.flush(off, 8);
                words += 1;
            }
        }
        if words > 0 {
            // Nothing flushed ⇒ no fence: an all-empty run (aborts, or no
            // writes routed here) must not pay the barrier latency.
            shared.nvm.fence();
            shared.frontier.note_applied(shard, words);
        }
        let last = run.last().expect("run is non-empty").last_tid;
        if tracing && words > 0 {
            // Apply + fence for the whole run: what this shard's slice of
            // the replay actually cost (empty runs are pure bookkeeping and
            // would drown the histogram in zeros).
            let dur = dude_nvm::monotonic_ns().saturating_sub(t0);
            shared.trace.replay_apply_ns[shard].record(dur);
            shared.trace.event(
                Stage::Reproduce,
                TraceEventKind::ReplayApply,
                last,
                8 * words,
                dur,
            );
        }
        // The sabotage offset exists only in sim builds: publishing
        // `last + 1` is the injected off-by-one frontier bug — the min
        // frontier (and therefore the checkpoint) can then cover a TID
        // this shard never applied, which a planned crash exposes.
        #[cfg(feature = "sim")]
        let publish_tid = last + crate::sabotage::frontier_publish_offset();
        #[cfg(not(feature = "sim"))]
        let publish_tid = last;
        shared.frontier.publish(shard, publish_tid);
        run.clear();
    }
}

/// Durably records `reproduced` in the metadata region, then recycles the
/// covered log spans.
///
/// Ordering audit (the span-release-vs-durability question): the release
/// loop runs strictly after the fence returns, and `reproduced` is only
/// ever (a) the serial worker's dense replay position, whose data flushes
/// this same fence covers, or (b) the frontier minimum, whose data every
/// shard worker fenced *before* publishing. In both cases the checkpoint
/// word and all heap data it claims are durable before any span is handed
/// back for reuse. The hole this audit did find was downstream: recovery
/// replayed released-but-not-yet-overwritten records *below* the
/// checkpoint, regressing the heap (see `recovery.rs`; regression test
/// `stale_released_record_below_checkpoint_is_not_replayed`).
fn checkpoint(shared: &Shared, reproduced: u64, pending_release: &mut Vec<(usize, PlogSpan)>) {
    let off = shared.meta.start() + crate::runtime::META_REPRODUCED * 8;
    shared.nvm.write_word(off, reproduced);
    shared.nvm.flush(off, 8);
    shared.nvm.fence();
    shared.stats.checkpoints.fetch_add(1, Ordering::Relaxed);
    let released: u64 = pending_release
        .iter()
        .map(|&(_, span)| span.words * 8)
        .sum();
    for (ring_idx, span) in pending_release.drain(..) {
        shared.rings[ring_idx].release(span);
    }
    // `bytes` here is the log space the checkpoint recycled — the payoff
    // side of the checkpoint cadence trade-off.
    shared.trace.event(
        Stage::Checkpoint,
        TraceEventKind::CheckpointWrite,
        reproduced,
        released,
        0,
    );
}
