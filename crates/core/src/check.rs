//! `dude-check`: commit-order history recording and the
//! durable-linearizability oracle.
//!
//! Single-threaded crash sweeps can precompute the committed sequence and
//! compare recovered state against it. With concurrent Perform threads the
//! sequence is decided at run time — by the order commit timestamps are
//! drawn from the global clock — so checking *durable linearizability*
//! ("the recovered heap equals the replay of a contiguous TID-prefix of
//! the committed history", Izraelevitz et al.'s durable linearizability
//! specialized to DudeTM's total commit order) requires recording that
//! history as it happens.
//!
//! [`CommitHistory`] is that recorder: a lock-free append ring attached to
//! a running [`crate::DudeTm`] via [`crate::DudeTm::attach_history`]. Each
//! committed (or TID-wasting aborted) transaction claims a slot with one
//! `fetch_add` and publishes `{tid, timestamp, write set}` into it; the
//! timestamp comes from [`dude_nvm::monotonic_ns`], the same clock the
//! trace layer stamps events with, so history entries and trace records
//! can be correlated. Entries are appended in per-thread hook order, which
//! across threads is *not* TID order — the commit hook runs after the
//! committing transaction releases its write locks — so every entry
//! carries the TID drawn at assignment time and [`CommitHistory::entries`]
//! restores the global commit order by sorting. Recording costs the
//! pipeline one branch when detached and one `fetch_add` plus a `Vec`
//! clone when attached; production configurations simply never attach.
//!
//! [`check_prefix`] is the oracle: given the recorded history and the
//! recovered `last_tid`, it verifies that the history is *dense* over
//! `1..=last_tid` (every drawn TID is accounted for, as a commit or an
//! abort marker) and that every heap word any transaction ever wrote holds
//! exactly the value produced by replaying commits `1..=last_tid` — words
//! written only by transactions beyond the prefix must still hold their
//! prefix value, which catches future-leak bugs (a torn write from a
//! discarded suffix) as well as lost or misordered writes inside the
//! prefix.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// One recorded transaction: a commit with its write set, or an abort
/// marker for a wasted TID (empty write set).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryEntry {
    /// The global transaction ID drawn at commit time.
    pub tid: u64,
    /// Recording timestamp from [`dude_nvm::monotonic_ns`] — the trace
    /// clock, so history and trace events share a timeline.
    pub ts_ns: u64,
    /// `true` for an abort marker (TID drawn, validation failed).
    pub aborted: bool,
    /// The committed write set, `(heap byte offset, value)` in program
    /// order; empty for abort markers.
    pub writes: Vec<(u64, u64)>,
}

/// A lock-free, fixed-capacity append ring of [`HistoryEntry`] values.
///
/// Writers claim a slot index with a single `fetch_add` and publish the
/// entry with a per-slot [`OnceLock`] store; slots are never contended
/// (each index is claimed by exactly one writer), so publication never
/// blocks. Appends past capacity are counted in [`CommitHistory::dropped`]
/// rather than wrapping — the checker needs the *complete* history, so a
/// sweep sizes the ring generously and treats any drop as a test error.
///
/// Readers ([`CommitHistory::entries`]) must run at quiescence (after the
/// recording threads have been joined); a slot claimed but not yet
/// published is skipped and surfaces as a density violation downstream.
#[derive(Debug)]
pub struct CommitHistory {
    slots: Box<[OnceLock<HistoryEntry>]>,
    next: AtomicU64,
    dropped: AtomicU64,
}

impl CommitHistory {
    /// Creates a ring with room for `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, OnceLock::new);
        CommitHistory {
            slots: slots.into_boxed_slice(),
            next: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends one transaction. Called by the runtime's commit/abort hooks;
    /// safe from any number of threads concurrently.
    pub fn record(&self, tid: u64, aborted: bool, writes: &[(u64, u64)]) {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        let Some(slot) = self.slots.get(idx as usize) else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let set = slot.set(HistoryEntry {
            tid,
            ts_ns: dude_nvm::monotonic_ns(),
            aborted,
            writes: writes.to_vec(),
        });
        debug_assert!(set.is_ok(), "history slot {idx} claimed twice");
    }

    /// Number of entries recorded (excluding drops).
    pub fn len(&self) -> usize {
        (self.next.load(Ordering::Acquire) as usize).min(self.slots.len())
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends that found the ring full and were discarded.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Acquire)
    }

    /// Snapshots the recorded history in global commit (TID) order. Call at
    /// quiescence only; in-flight appends may be missed.
    pub fn entries(&self) -> Vec<HistoryEntry> {
        let mut out: Vec<HistoryEntry> = self
            .slots
            .iter()
            .take(self.len())
            .filter_map(|s| s.get().cloned())
            .collect();
        out.sort_by_key(|e| e.tid);
        out
    }
}

/// A durable-linearizability violation found by [`check_prefix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinearizabilityError {
    /// The history ring overflowed during the run; the oracle cannot judge
    /// an incomplete history.
    HistoryIncomplete {
        /// Entries lost to ring overflow.
        dropped: u64,
    },
    /// Two history entries claim the same TID — the global clock handed
    /// out a duplicate, or a hook fired twice.
    DuplicateTid {
        /// The doubly-claimed TID.
        tid: u64,
    },
    /// A TID inside the recovered prefix has no history entry: the clock
    /// drew it but neither a commit nor an abort marker was recorded, so
    /// the "recovered prefix" contains a transaction that never happened.
    MissingTid {
        /// The unaccounted TID.
        tid: u64,
        /// The recovered prefix bound it falls inside.
        last_tid: u64,
    },
    /// A heap word differs from the prefix replay.
    HeapMismatch {
        /// Heap byte offset of the divergent word.
        addr: u64,
        /// Value the prefix replay produces.
        expected: u64,
        /// Value actually recovered.
        found: u64,
        /// The recovered prefix bound.
        last_tid: u64,
        /// TID of the last in-prefix writer of this word (0 if the word is
        /// only written beyond the prefix — a future leak).
        writer: u64,
    },
}

impl core::fmt::Display for LinearizabilityError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LinearizabilityError::HistoryIncomplete { dropped } => {
                write!(f, "history ring overflowed: {dropped} entries dropped")
            }
            LinearizabilityError::DuplicateTid { tid } => {
                write!(f, "history records tid {tid} twice")
            }
            LinearizabilityError::MissingTid { tid, last_tid } => write!(
                f,
                "tid {tid} inside recovered prefix 1..={last_tid} has no history entry"
            ),
            LinearizabilityError::HeapMismatch {
                addr,
                expected,
                found,
                last_tid,
                writer,
            } => write!(
                f,
                "heap word at offset {addr} is {found}, but replaying prefix \
                 1..={last_tid} gives {expected} (last in-prefix writer: tid {writer})"
            ),
        }
    }
}

impl std::error::Error for LinearizabilityError {}

/// What [`check_prefix`] verified, for sweep-level reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrefixReport {
    /// Commits replayed into the model (prefix commits).
    pub replayed_commits: u64,
    /// Abort markers inside the prefix.
    pub replayed_aborts: u64,
    /// Distinct heap words compared against the model.
    pub checked_words: u64,
}

/// The durable-linearizability oracle: verifies that the recovered heap
/// equals the replay of exactly the prefix `1..=last_tid` of the recorded
/// history.
///
/// `history` is the full recorded history (any order; typically
/// [`CommitHistory::entries`]), `dropped` is [`CommitHistory::dropped`],
/// and `read_word` reads a recovered heap word by byte offset (the same
/// offsets transactions write, i.e. relative to the heap region start).
///
/// Checks, in order:
/// 1. the history is complete (no ring overflow) and duplicate-free;
/// 2. every TID in `1..=last_tid` is accounted for (density — the prefix
///    cannot contain a transaction with no recorded fate);
/// 3. every word written by *any* recorded transaction — inside the prefix
///    or beyond it — holds the prefix-replay value. Unwritten words are
///    assumed zero-initialized (fresh device), so beyond-prefix writes
///    must have left no trace.
///
/// # Errors
///
/// The first [`LinearizabilityError`] found.
pub fn check_prefix(
    history: &[HistoryEntry],
    dropped: u64,
    last_tid: u64,
    read_word: impl Fn(u64) -> u64,
) -> Result<PrefixReport, LinearizabilityError> {
    if dropped > 0 {
        return Err(LinearizabilityError::HistoryIncomplete { dropped });
    }
    let mut by_tid: Vec<&HistoryEntry> = history.iter().collect();
    by_tid.sort_by_key(|e| e.tid);
    for pair in by_tid.windows(2) {
        if pair[0].tid == pair[1].tid {
            return Err(LinearizabilityError::DuplicateTid { tid: pair[0].tid });
        }
    }
    // Density over the prefix: walk the sorted TIDs alongside 1..=last_tid.
    let mut want = 1u64;
    for e in by_tid.iter().take_while(|e| e.tid <= last_tid) {
        if e.tid != want {
            return Err(LinearizabilityError::MissingTid {
                tid: want,
                last_tid,
            });
        }
        want += 1;
    }
    if want <= last_tid {
        return Err(LinearizabilityError::MissingTid {
            tid: want,
            last_tid,
        });
    }
    // Replay the prefix into a model: last in-prefix writer wins per word.
    let mut report = PrefixReport::default();
    let mut model: std::collections::HashMap<u64, (u64, u64)> = std::collections::HashMap::new();
    let mut touched: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for e in &by_tid {
        for &(addr, val) in &e.writes {
            touched.insert(addr);
            if e.tid <= last_tid {
                model.insert(addr, (val, e.tid));
            }
        }
        if e.tid <= last_tid {
            if e.aborted {
                report.replayed_aborts += 1;
            } else {
                report.replayed_commits += 1;
            }
        }
    }
    for addr in touched {
        let (expected, writer) = model.get(&addr).copied().unwrap_or((0, 0));
        let found = read_word(addr);
        if found != expected {
            return Err(LinearizabilityError::HeapMismatch {
                addr,
                expected,
                found,
                last_tid,
                writer,
            });
        }
        report.checked_words += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn commit(tid: u64, writes: &[(u64, u64)]) -> HistoryEntry {
        HistoryEntry {
            tid,
            ts_ns: 0,
            aborted: false,
            writes: writes.to_vec(),
        }
    }

    fn abort(tid: u64) -> HistoryEntry {
        HistoryEntry {
            tid,
            ts_ns: 0,
            aborted: true,
            writes: Vec::new(),
        }
    }

    #[test]
    fn concurrent_records_land_in_tid_order() {
        let h = Arc::new(CommitHistory::new(4096));
        let base = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = Arc::clone(&h);
                let base = Arc::clone(&base);
                s.spawn(move || {
                    for _ in 0..256 {
                        let tid = base.fetch_add(1, Ordering::Relaxed) + 1;
                        h.record(tid, false, &[(8 * t, tid)]);
                    }
                });
            }
        });
        assert_eq!(h.len(), 1024);
        assert_eq!(h.dropped(), 0);
        let entries = h.entries();
        let tids: Vec<u64> = entries.iter().map(|e| e.tid).collect();
        assert_eq!(tids, (1..=1024).collect::<Vec<_>>());
    }

    #[test]
    fn overflow_counts_drops_instead_of_wrapping() {
        let h = CommitHistory::new(2);
        h.record(1, false, &[]);
        h.record(2, false, &[]);
        h.record(3, false, &[]);
        assert_eq!(h.len(), 2);
        assert_eq!(h.dropped(), 1);
        assert_eq!(
            check_prefix(&h.entries(), h.dropped(), 2, |_| 0),
            Err(LinearizabilityError::HistoryIncomplete { dropped: 1 })
        );
    }

    #[test]
    fn oracle_accepts_exact_prefix_replay() {
        let history = vec![
            commit(1, &[(0, 10), (8, 20)]),
            abort(2),
            commit(3, &[(0, 11)]),
            commit(4, &[(16, 40)]), // beyond the prefix
        ];
        let heap = |addr: u64| match addr {
            0 => 11,
            8 => 20,
            _ => 0,
        };
        let report = check_prefix(&history, 0, 3, heap).expect("valid prefix");
        assert_eq!(report.replayed_commits, 2);
        assert_eq!(report.replayed_aborts, 1);
        assert_eq!(report.checked_words, 3);
    }

    #[test]
    fn oracle_rejects_lost_prefix_write() {
        let history = vec![commit(1, &[(0, 10)])];
        assert_eq!(
            check_prefix(&history, 0, 1, |_| 0),
            Err(LinearizabilityError::HeapMismatch {
                addr: 0,
                expected: 10,
                found: 0,
                last_tid: 1,
                writer: 1,
            })
        );
    }

    #[test]
    fn oracle_rejects_future_leak() {
        // tid 2 is beyond the prefix; its write must not be visible.
        let history = vec![commit(1, &[(0, 10)]), commit(2, &[(8, 99)])];
        let heap = |addr: u64| match addr {
            0 => 10,
            8 => 99,
            _ => 0,
        };
        assert_eq!(
            check_prefix(&history, 0, 1, heap),
            Err(LinearizabilityError::HeapMismatch {
                addr: 8,
                expected: 0,
                found: 99,
                last_tid: 1,
                writer: 0,
            })
        );
    }

    #[test]
    fn oracle_rejects_tid_hole_in_prefix() {
        let history = vec![commit(1, &[]), commit(3, &[])];
        assert_eq!(
            check_prefix(&history, 0, 3, |_| 0),
            Err(LinearizabilityError::MissingTid {
                tid: 2,
                last_tid: 3
            })
        );
    }

    #[test]
    fn oracle_rejects_truncated_history() {
        // last_tid reaches past everything recorded.
        let history = vec![commit(1, &[])];
        assert_eq!(
            check_prefix(&history, 0, 2, |_| 0),
            Err(LinearizabilityError::MissingTid {
                tid: 2,
                last_tid: 2
            })
        );
    }
}
