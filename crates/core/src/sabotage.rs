//! Injectable ordering bugs for mutation-testing the schedule fuzzer.
//!
//! Only compiled under `cfg(feature = "sim")`. Each knob arms one known
//! ordering mutation in the pipeline; `tests/sim_schedules.rs` verifies
//! the seeded schedule explorer *catches* both within its default seed
//! budget — the sharpness check that keeps the fuzzer honest. The knobs
//! are process-global, so arm them only around a single-threaded test
//! harness section and disarm in a drop guard.

use std::sync::atomic::{AtomicBool, Ordering};

static SKIP_GROUP_FENCE: AtomicBool = AtomicBool::new(false);
static FRONTIER_OFF_BY_ONE: AtomicBool = AtomicBool::new(false);

/// Mutation A — dropped fence in the grouped-Persist publish path: when
/// armed, flush workers skip the `fence()` between appending a group to
/// the log ring and handing it to the in-order `GroupPublisher`. The
/// group's bytes may still sit in the device's flushed-but-unfenced
/// buffer when durability is announced, so a planned crash loses
/// transactions the durable watermark already covered.
pub fn skip_group_fence() -> bool {
    SKIP_GROUP_FENCE.load(Ordering::Relaxed)
}

/// Arms/disarms mutation A (see [`skip_group_fence`]).
pub fn set_skip_group_fence(on: bool) {
    SKIP_GROUP_FENCE.store(on, Ordering::Relaxed);
}

/// Mutation B — off-by-one frontier publish in sharded Reproduce: when
/// armed, shard workers publish `last + 1` instead of `last`, so the
/// min-completed frontier (and the checkpoint keyed off it) can cover a
/// TID whose writes were never applied or fenced. Returns the offset to
/// add to the published TID.
pub fn frontier_publish_offset() -> u64 {
    u64::from(FRONTIER_OFF_BY_ONE.load(Ordering::Relaxed))
}

/// Arms/disarms mutation B (see [`frontier_publish_offset`]).
pub fn set_frontier_off_by_one(on: bool) {
    FRONTIER_OFF_BY_ONE.store(on, Ordering::Relaxed);
}

/// RAII guard arming one mutation for a scope; disarms on drop (also on
/// panic, so a caught schedule failure cannot leak into later cases).
#[derive(Debug)]
pub struct MutationGuard {
    which: Mutation,
}

/// The injectable mutations, for [`MutationGuard::arm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Mutation A: flush workers skip the pre-publication fence.
    SkipGroupFence,
    /// Mutation B: shard workers publish an off-by-one frontier.
    FrontierOffByOne,
}

impl MutationGuard {
    /// Arms `which` until the guard drops.
    pub fn arm(which: Mutation) -> Self {
        match which {
            Mutation::SkipGroupFence => set_skip_group_fence(true),
            Mutation::FrontierOffByOne => set_frontier_off_by_one(true),
        }
        MutationGuard { which }
    }
}

impl Drop for MutationGuard {
    fn drop(&mut self) {
        match self.which {
            Mutation::SkipGroupFence => set_skip_group_fence(false),
            Mutation::FrontierOffByOne => set_frontier_off_by_one(false),
        }
    }
}
