//! Redo-log records and their persistent serialization.
//!
//! Every committed transaction produces one redo log: the ordered
//! `(address, value)` pairs it wrote plus an end mark carrying its
//! transaction ID (§3.2, Algorithm 2). A writer that aborted *after*
//! consuming a commit timestamp produces an [`LogRecord::Abort`] marker so
//! the global ID sequence stays dense and the durable ID remains computable.
//!
//! On NVM, records are word streams with a magic-tagged header and a
//! checksum trailer; recovery walks them and discards the first torn record
//! and everything after it (§3.5). Log *combination* merges the writes of a
//! group of **consecutive** transactions, keeping only the last write per
//! address (§3.3); log *compression* packs a group's payload with
//! [`dude_compress`].

use std::collections::HashMap;

use dude_txapi::TxId;

/// 32-bit record magic (high half of every header word).
const MAGIC: u64 = 0xD00D_E7A6;

/// Record kinds (low byte of the header word).
const KIND_COMMIT: u64 = 1;
const KIND_ABORT: u64 = 2;
const KIND_GROUP: u64 = 3;
const KIND_GROUP_LZ: u64 = 4;
/// A single-word marker telling readers to wrap to the ring start.
const KIND_SKIP: u64 = 15;

/// One transaction's entry in the volatile redo-log channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// A committed update transaction and its ordered writes.
    Commit {
        /// Commit timestamp (global transaction ID).
        tid: TxId,
        /// `(heap byte address, value)` pairs in program order.
        writes: Vec<(u64, u64)>,
    },
    /// A writer that consumed `tid` but failed commit validation; fills the
    /// ID hole with a durable no-op.
    Abort {
        /// The wasted commit timestamp.
        tid: TxId,
    },
}

impl LogRecord {
    /// The transaction ID this record accounts for.
    pub fn tid(&self) -> TxId {
        match self {
            LogRecord::Commit { tid, .. } | LogRecord::Abort { tid } => *tid,
        }
    }

    /// The writes this record contributes (empty for aborts).
    pub fn writes(&self) -> &[(u64, u64)] {
        match self {
            LogRecord::Commit { writes, .. } => writes,
            LogRecord::Abort { .. } => &[],
        }
    }
}

/// A record parsed back from persistent memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedRecord {
    /// First transaction ID the record covers.
    pub first_tid: TxId,
    /// Last transaction ID the record covers (== `first_tid` for
    /// single-transaction records).
    pub last_tid: TxId,
    /// The (possibly combined) writes to replay for this ID range.
    pub writes: Vec<(u64, u64)>,
    /// Words consumed by the record in the log.
    pub words: usize,
}

fn header(kind: u64) -> u64 {
    (MAGIC << 32) | kind
}

fn kind_of(word: u64) -> Option<u64> {
    (word >> 32 == MAGIC).then_some(word & 0xff)
}

fn checksum(words: &[u64]) -> u64 {
    let mut acc = 0x5EED_0FD0_0D00u64;
    for (i, w) in words.iter().enumerate() {
        acc ^= w.rotate_left((i as u32 * 13 + 7) % 63);
        acc = acc.wrapping_mul(0x100_0000_01B3);
    }
    acc
}

/// The skip marker written when a record would not fit before the ring end.
pub fn skip_word() -> u64 {
    header(KIND_SKIP)
}

/// `true` if `word` is a skip marker.
pub fn is_skip(word: u64) -> bool {
    kind_of(word) == Some(KIND_SKIP)
}

/// Serializes a commit record into `out` (clears it first).
pub fn serialize_commit(tid: TxId, writes: &[(u64, u64)], out: &mut Vec<u64>) {
    out.clear();
    out.push(header(KIND_COMMIT));
    out.push(tid);
    out.push(writes.len() as u64);
    for &(addr, val) in writes {
        out.push(addr);
        out.push(val);
    }
    out.push(checksum(out));
}

/// Serializes an abort marker into `out` (clears it first).
pub fn serialize_abort(tid: TxId, out: &mut Vec<u64>) {
    out.clear();
    out.push(header(KIND_ABORT));
    out.push(tid);
    out.push(0);
    out.push(checksum(out));
}

/// Serializes a combined group covering `first..=last` into `out`.
///
/// With `compress`, the write pairs are packed with [`dude_compress`];
/// the uncompressed encoding is used instead whenever it is smaller.
/// Returns `(payload_bytes_raw, payload_bytes_stored)` for the Figure 3
/// accounting.
pub fn serialize_group(
    first: TxId,
    last: TxId,
    writes: &[(u64, u64)],
    compress: bool,
    out: &mut Vec<u64>,
) -> (usize, usize) {
    debug_assert!(first <= last);
    let raw_bytes = writes.len() * 16;
    if compress {
        // Columnar, delta-encoded payload: address deltas first (mostly
        // tiny when the caller sorted by address), then values. Wrapping
        // arithmetic keeps the format correct for any input order.
        let mut payload = Vec::with_capacity(raw_bytes);
        let mut prev = 0u64;
        for &(addr, _) in writes {
            payload.extend_from_slice(&addr.wrapping_sub(prev).to_le_bytes());
            prev = addr;
        }
        for &(_, val) in writes {
            payload.extend_from_slice(&val.to_le_bytes());
        }
        let packed = dude_compress::compress(&payload);
        if packed.len() < raw_bytes {
            out.clear();
            out.push(header(KIND_GROUP_LZ));
            out.push(first);
            out.push(last);
            out.push(packed.len() as u64);
            for chunk in packed.chunks(8) {
                let mut w = [0u8; 8];
                w[..chunk.len()].copy_from_slice(chunk);
                out.push(u64::from_le_bytes(w));
            }
            out.push(checksum(out));
            return (raw_bytes, packed.len());
        }
    }
    out.clear();
    out.push(header(KIND_GROUP));
    out.push(first);
    out.push(last);
    out.push(writes.len() as u64);
    for &(addr, val) in writes {
        out.push(addr);
        out.push(val);
    }
    out.push(checksum(out));
    (raw_bytes, raw_bytes)
}

/// Attempts to parse one record starting at `words[0]`.
///
/// Returns `None` if the words do not form a checksum-valid record —
/// recovery treats that as the end of the intact log.
pub fn parse_record(words: &[u64]) -> Option<ParsedRecord> {
    let kind = kind_of(*words.first()?)?;
    match kind {
        KIND_COMMIT | KIND_ABORT => {
            let tid = *words.get(1)?;
            let n = *words.get(2)? as usize;
            if kind == KIND_ABORT && n != 0 {
                return None;
            }
            // Bounds before arithmetic: a corrupted count must not overflow.
            if n > words.len().saturating_sub(4) / 2 {
                return None;
            }
            let total = 3 + 2 * n + 1;
            if words.len() < total || checksum(&words[..total - 1]) != words[total - 1] {
                return None;
            }
            let mut writes = Vec::with_capacity(n);
            for i in 0..n {
                writes.push((words[3 + 2 * i], words[4 + 2 * i]));
            }
            Some(ParsedRecord {
                first_tid: tid,
                last_tid: tid,
                writes,
                words: total,
            })
        }
        KIND_GROUP => {
            let first = *words.get(1)?;
            let last = *words.get(2)?;
            let n = *words.get(3)? as usize;
            if first > last || n > words.len().saturating_sub(5) / 2 {
                return None;
            }
            let total = 4 + 2 * n + 1;
            if words.len() < total || checksum(&words[..total - 1]) != words[total - 1] {
                return None;
            }
            let mut writes = Vec::with_capacity(n);
            for i in 0..n {
                writes.push((words[4 + 2 * i], words[5 + 2 * i]));
            }
            Some(ParsedRecord {
                first_tid: first,
                last_tid: last,
                writes,
                words: total,
            })
        }
        KIND_GROUP_LZ => {
            let first = *words.get(1)?;
            let last = *words.get(2)?;
            let payload_bytes = *words.get(3)? as usize;
            if first > last || payload_bytes > words.len().saturating_sub(5) * 8 {
                return None;
            }
            let payload_words = payload_bytes.div_ceil(8);
            let total = 4 + payload_words + 1;
            if words.len() < total || checksum(&words[..total - 1]) != words[total - 1] {
                return None;
            }
            let mut bytes = Vec::with_capacity(payload_words * 8);
            for w in &words[4..4 + payload_words] {
                bytes.extend_from_slice(&w.to_le_bytes());
            }
            bytes.truncate(payload_bytes);
            let raw = dude_compress::decompress(&bytes).ok()?;
            if raw.len() % 16 != 0 {
                return None;
            }
            let n = raw.len() / 16;
            let word = |i: usize| u64::from_le_bytes(raw[i * 8..i * 8 + 8].try_into().unwrap());
            let mut writes = Vec::with_capacity(n);
            let mut addr = 0u64;
            for i in 0..n {
                addr = addr.wrapping_add(word(i));
                writes.push((addr, word(n + i)));
            }
            Some(ParsedRecord {
                first_tid: first,
                last_tid: last,
                writes,
                words: total,
            })
        }
        _ => None,
    }
}

/// Combines the writes of a group of **consecutive** transactions: later
/// writes to the same address supersede earlier ones (§3.3). Returns the
/// combined writes (arbitrary order — all addresses are distinct).
pub fn combine(records: &[LogRecord]) -> Vec<(u64, u64)> {
    let mut map: HashMap<u64, u64> = HashMap::new();
    for rec in records {
        for &(addr, val) in rec.writes() {
            map.insert(addr, val);
        }
    }
    map.into_iter().collect()
}

/// [`combine`] followed by an address sort — the grouped Persist path's
/// canonical preprocessing. The sort gives replay sequential locality,
/// lets the compressor see runs of shared high address bytes, and makes
/// the serialized group *deterministic*: every flush worker produces the
/// same bytes for the same group regardless of [`combine`]'s hash order.
pub fn combine_sorted(records: &[LogRecord]) -> Vec<(u64, u64)> {
    let mut combined = combine(records);
    combined.sort_unstable_by_key(|&(a, _)| a);
    combined
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_roundtrip() {
        let mut buf = Vec::new();
        serialize_commit(42, &[(8, 1), (16, 2)], &mut buf);
        let rec = parse_record(&buf).unwrap();
        assert_eq!(rec.first_tid, 42);
        assert_eq!(rec.last_tid, 42);
        assert_eq!(rec.writes, vec![(8, 1), (16, 2)]);
        assert_eq!(rec.words, buf.len());
    }

    #[test]
    fn abort_roundtrip() {
        let mut buf = Vec::new();
        serialize_abort(7, &mut buf);
        let rec = parse_record(&buf).unwrap();
        assert_eq!(rec.first_tid, 7);
        assert!(rec.writes.is_empty());
        assert_eq!(rec.words, 4);
    }

    #[test]
    fn empty_commit_roundtrip() {
        let mut buf = Vec::new();
        serialize_commit(1, &[], &mut buf);
        let rec = parse_record(&buf).unwrap();
        assert!(rec.writes.is_empty());
    }

    #[test]
    fn group_roundtrip_uncompressed() {
        let mut buf = Vec::new();
        let writes = vec![(8, 10), (24, 20)];
        let (raw, stored) = serialize_group(5, 9, &writes, false, &mut buf);
        assert_eq!(raw, 32);
        assert_eq!(stored, 32);
        let rec = parse_record(&buf).unwrap();
        assert_eq!((rec.first_tid, rec.last_tid), (5, 9));
        assert_eq!(rec.writes, writes);
    }

    #[test]
    fn group_roundtrip_compressed() {
        // Highly repetitive writes compress well.
        let writes: Vec<(u64, u64)> = (0..512).map(|i| (1024 + (i % 16) * 8, 7)).collect();
        let mut buf = Vec::new();
        let (raw, stored) = serialize_group(1, 512, &writes, true, &mut buf);
        assert!(stored < raw / 2, "stored {stored} raw {raw}");
        let rec = parse_record(&buf).unwrap();
        assert_eq!(rec.writes, writes);
        assert_eq!(rec.words, buf.len());
    }

    #[test]
    fn incompressible_group_falls_back_to_raw() {
        let mut x = 1u64;
        let writes: Vec<(u64, u64)> = (0..64)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x, x.rotate_left(17))
            })
            .collect();
        let mut buf = Vec::new();
        let (raw, stored) = serialize_group(1, 64, &writes, true, &mut buf);
        assert_eq!(raw, stored, "must fall back when compression loses");
        let rec = parse_record(&buf).unwrap();
        assert_eq!(rec.writes, writes);
    }

    #[test]
    fn corrupted_records_rejected() {
        let mut buf = Vec::new();
        serialize_commit(42, &[(8, 1)], &mut buf);
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x10000;
            assert!(
                parse_record(&bad).is_none(),
                "corruption at word {i} must be detected"
            );
        }
    }

    #[test]
    fn truncated_records_rejected() {
        let mut buf = Vec::new();
        serialize_commit(42, &[(8, 1), (16, 2)], &mut buf);
        for cut in 0..buf.len() {
            assert!(parse_record(&buf[..cut]).is_none());
        }
    }

    #[test]
    fn garbage_is_not_a_record() {
        assert!(parse_record(&[]).is_none());
        assert!(parse_record(&[0, 0, 0, 0]).is_none());
        assert!(parse_record(&[u64::MAX; 8]).is_none());
    }

    #[test]
    fn skip_marker_identified() {
        assert!(is_skip(skip_word()));
        assert!(!is_skip(header(KIND_COMMIT)));
        assert!(parse_record(&[skip_word()]).is_none());
    }

    #[test]
    fn combine_keeps_last_write_per_address() {
        let records = vec![
            LogRecord::Commit {
                tid: 1,
                writes: vec![(8, 1), (16, 1)],
            },
            LogRecord::Abort { tid: 2 },
            LogRecord::Commit {
                tid: 3,
                writes: vec![(8, 3)],
            },
        ];
        let mut combined = combine(&records);
        combined.sort_unstable();
        assert_eq!(combined, vec![(8, 3), (16, 1)]);
    }

    #[test]
    fn combine_sorted_is_deterministic() {
        let records = vec![
            LogRecord::Commit {
                tid: 1,
                writes: vec![(64, 1), (8, 1), (32, 1)],
            },
            LogRecord::Commit {
                tid: 2,
                writes: vec![(32, 2)],
            },
        ];
        let combined = combine_sorted(&records);
        assert_eq!(combined, vec![(8, 1), (32, 2), (64, 1)]);
        // Same input, same output — the property parallel flush workers
        // rely on for byte-identical group serialization.
        assert_eq!(combined, combine_sorted(&records));
    }

    #[test]
    fn record_accessors() {
        let c = LogRecord::Commit {
            tid: 4,
            writes: vec![(0, 9)],
        };
        assert_eq!(c.tid(), 4);
        assert_eq!(c.writes(), &[(0, 9)]);
        let a = LogRecord::Abort { tid: 5 };
        assert_eq!(a.tid(), 5);
        assert!(a.writes().is_empty());
    }
}
