//! The pluggable TM engine behind the Perform step.
//!
//! The paper's central software-architecture claim is that the TM is an
//! *out-of-the-box, stand-alone component* (§1 contribution 3): DudeTM works
//! with TinySTM unchanged and with HTM after one minor hardware tweak. The
//! runtime encodes that claim in a trait: the Perform step only ever talks
//! to [`TmEngine`] / [`EngineThread`], and both [`dude_stm::Stm`] and
//! [`dude_htm::Htm`] implement them without modification to their crates.

use dude_htm::Htm;
use dude_stm::{Stm, TmAccess, TxHooks, WordMemory};
use dude_txapi::{TxResult, TxnOutcome};

/// A transactional-memory implementation usable by the Perform step.
pub trait TmEngine: Send + Sync {
    /// Registers the calling thread with the TM.
    fn engine_thread(&self) -> Box<dyn EngineThread + '_>;

    /// Current value of the TM's global commit clock (the ID of the most
    /// recent update transaction).
    fn clock_now(&self) -> u64;

    /// Engine name for benchmark tables.
    fn engine_name(&self) -> &'static str;
}

/// Per-thread transaction executor of a [`TmEngine`].
pub trait EngineThread {
    /// Runs `body` as one transaction over `mem`, reporting writes, commits
    /// and aborts through `hooks`, retrying internally on conflicts.
    fn run_txn(
        &mut self,
        mem: &dyn WordMemory,
        hooks: &mut dyn TxHooks,
        body: &mut dyn FnMut(&mut dyn TmAccess) -> TxResult<()>,
    ) -> TxnOutcome<()>;
}

impl TmEngine for Stm {
    fn engine_thread(&self) -> Box<dyn EngineThread + '_> {
        Box::new(self.register())
    }

    fn clock_now(&self) -> u64 {
        self.clock().now()
    }

    fn engine_name(&self) -> &'static str {
        "STM"
    }
}

impl EngineThread for dude_stm::StmThread<'_> {
    fn run_txn(
        &mut self,
        mem: &dyn WordMemory,
        hooks: &mut dyn TxHooks,
        body: &mut dyn FnMut(&mut dyn TmAccess) -> TxResult<()>,
    ) -> TxnOutcome<()> {
        let mut hooks = hooks;
        self.run(mem, &mut hooks, |tx| body(tx))
    }
}

impl TmEngine for Htm {
    fn engine_thread(&self) -> Box<dyn EngineThread + '_> {
        Box::new(self.register())
    }

    fn clock_now(&self) -> u64 {
        self.clock().now()
    }

    fn engine_name(&self) -> &'static str {
        "HTM"
    }
}

impl EngineThread for dude_htm::HtmThread<'_> {
    fn run_txn(
        &mut self,
        mem: &dyn WordMemory,
        hooks: &mut dyn TxHooks,
        body: &mut dyn FnMut(&mut dyn TmAccess) -> TxResult<()>,
    ) -> TxnOutcome<()> {
        let mut hooks = hooks;
        self.run(mem, &mut hooks, |tx| body(tx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dude_stm::{NoHooks, StmConfig, VecMemory};

    fn exercise(engine: &dyn TmEngine) {
        let mem = VecMemory::new(1024);
        let mut th = engine.engine_thread();
        let mut hooks = NoHooks;
        let out = th.run_txn(&mem, &mut hooks, &mut |tx| {
            let v = tx.tm_read(0)?;
            tx.tm_write(0, v + 1)
        });
        assert!(out.is_committed());
        assert_eq!(mem.load(0), 1);
        assert_eq!(engine.clock_now(), 1);
    }

    #[test]
    fn stm_engine_through_trait_object() {
        let stm = Stm::new(StmConfig::tiny());
        exercise(&stm);
        assert_eq!(stm.engine_name(), "STM");
    }

    #[test]
    fn htm_engine_through_trait_object() {
        let htm = Htm::new(dude_htm::HtmConfig::default());
        exercise(&htm);
        assert_eq!(htm.engine_name(), "HTM");
    }
}
