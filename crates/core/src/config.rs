//! Runtime configuration.

use crate::metrics::MetricsConfig;
use crate::shadow::ShadowConfig;
use crate::trace::TraceConfig;

/// How a committed transaction reaches durability (the evaluated system
/// variants of §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityMode {
    /// The standard decoupled pipeline: redo logs flow through a bounded
    /// per-thread buffer to background Persist threads; Perform blocks only
    /// when the buffer fills ("DudeTM").
    Async {
        /// Volatile log-buffer capacity, in committed transactions per
        /// thread (the paper uses one million log *entries*).
        buffer_txns: usize,
    },
    /// As `Async` but with an unbounded buffer, so Perform never blocks
    /// ("DudeTM-Inf").
    AsyncUnbounded,
    /// Perform flushes its own redo log and waits for durability before
    /// returning ("DudeTM-Sync": the first two steps merged).
    Sync,
}

/// A [`DudeTmConfig`] consistency violation, returned by
/// [`DudeTmConfig::try_validate`].
///
/// Each variant names the offending field(s); the [`std::fmt::Display`]
/// impl carries the full explanation, including the paper-section
/// references for the pipeline-shape rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `heap_bytes` is zero or not a multiple of the 4 KiB page size.
    HeapBytes {
        /// The rejected value.
        heap_bytes: u64,
    },
    /// `plog_bytes_per_thread` is below the 4 KiB minimum.
    PlogTooSmall {
        /// The rejected value.
        plog_bytes_per_thread: u64,
    },
    /// `max_threads` is outside `1..=256`.
    MaxThreads {
        /// The rejected value.
        max_threads: usize,
    },
    /// `persist_threads` is zero.
    NoPersistThreads,
    /// `persist_group` is zero.
    NoPersistGroup,
    /// `checkpoint_every` is zero.
    NoCheckpointCadence,
    /// `reproduce_threads` is outside `1..=64`.
    ReproduceThreads {
        /// The rejected value.
        reproduce_threads: usize,
    },
    /// `compress_groups` set with `persist_group == 1` — a silent no-op.
    CompressionWithoutGrouping,
    /// `persist_group > 1` combined with [`DurabilityMode::Sync`].
    GroupingWithSync,
    /// `persist_flush_workers` is zero.
    NoFlushWorkers,
    /// `persist_flush_workers` exceeds `max_threads` (each flush worker
    /// owns one of the `max_threads` preallocated log rings).
    FlushWorkersExceedMaxThreads {
        /// The rejected `persist_flush_workers` value.
        persist_flush_workers: usize,
        /// The ring-count limit it exceeded.
        max_threads: usize,
    },
    /// `persist_flush_workers > 1` with `persist_group == 1` — a silent
    /// no-op, since parallel flushing applies to the grouped path only.
    FlushWorkersWithoutGrouping {
        /// The rejected `persist_flush_workers` value.
        persist_flush_workers: usize,
    },
    /// [`DurabilityMode::Async`] with a zero-capacity buffer.
    EmptyAsyncBuffer,
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConfigError::HeapBytes { heap_bytes } => write!(
                f,
                "heap_bytes must be a positive multiple of 4096, got {heap_bytes}"
            ),
            ConfigError::PlogTooSmall {
                plog_bytes_per_thread,
            } => write!(
                f,
                "plog_bytes_per_thread must be at least 4096, got {plog_bytes_per_thread}"
            ),
            ConfigError::MaxThreads { max_threads } => {
                write!(f, "max_threads must be in 1..=256, got {max_threads}")
            }
            ConfigError::NoPersistThreads => f.write_str("persist_threads must be at least 1"),
            ConfigError::NoPersistGroup => f.write_str("persist_group must be at least 1"),
            ConfigError::NoCheckpointCadence => f.write_str("checkpoint_every must be at least 1"),
            ConfigError::ReproduceThreads { reproduce_threads } => write!(
                f,
                "reproduce_threads must be in 1..=64, got {reproduce_threads}"
            ),
            ConfigError::CompressionWithoutGrouping => f.write_str(
                "compress_groups has no effect without log combination: \
                 compression runs on combined groups only (§3.3), so \
                 persist_group must be > 1 when compress_groups is set \
                 (got persist_group = 1)",
            ),
            ConfigError::GroupingWithSync => {
                f.write_str("log combination requires the asynchronous pipeline (§3.3)")
            }
            ConfigError::NoFlushWorkers => f.write_str("persist_flush_workers must be at least 1"),
            ConfigError::FlushWorkersExceedMaxThreads {
                persist_flush_workers,
                max_threads,
            } => write!(
                f,
                "persist_flush_workers must not exceed max_threads: each flush \
                 worker owns one of the {max_threads} preallocated log rings, \
                 got {persist_flush_workers}"
            ),
            ConfigError::FlushWorkersWithoutGrouping {
                persist_flush_workers,
            } => write!(
                f,
                "persist_flush_workers ({persist_flush_workers}) has no effect \
                 without log combination: parallel flush workers split the \
                 grouped Persist stage (§3.3), so persist_group must be > 1 \
                 when persist_flush_workers is (got persist_group = 1)"
            ),
            ConfigError::EmptyAsyncBuffer => {
                f.write_str("DurabilityMode::Async requires buffer_txns >= 1")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Configuration of a [`crate::DudeTm`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DudeTmConfig {
    /// Persistent heap size in bytes (multiple of the 4 KiB page size).
    pub heap_bytes: u64,
    /// Persistent redo-log ring size per Perform thread, in bytes.
    pub plog_bytes_per_thread: u64,
    /// Maximum number of Perform threads (log regions are preallocated).
    pub max_threads: usize,
    /// Durability variant.
    pub durability: DurabilityMode,
    /// Number of dedicated Persist threads (asynchronous modes, ungrouped
    /// path only). The paper finds one is typically enough (§3.3). With
    /// `persist_group > 1` the grouped path runs instead — one sequencer
    /// plus [`DudeTmConfig::persist_flush_workers`] flush workers — and
    /// this knob is not used.
    pub persist_threads: usize,
    /// Cross-transaction log combination: group this many *consecutive*
    /// transactions and coalesce writes to the same address before flushing
    /// (§3.3). `1` disables grouping.
    pub persist_group: usize,
    /// Number of parallel flush workers in the grouped Persist stage
    /// (`persist_group > 1`). The sequencer assembles groups of consecutive
    /// transactions and fans them out round-robin; workers serialize,
    /// optionally compress, write, and fence out of order, while durability
    /// is *published* strictly in order. Each worker owns one of the
    /// `max_threads` preallocated log rings, so the value is capped by
    /// `max_threads`. `1` reproduces the serial grouped worker.
    pub persist_flush_workers: usize,
    /// Compress grouped logs with the LZ77 codec before flushing (§3.3).
    /// Only applies when `persist_group > 1`.
    pub compress_groups: bool,
    /// Reproduce checkpoints (and recycles log space) every this many
    /// replayed transactions.
    pub checkpoint_every: u64,
    /// Number of Reproduce shard workers. `1` keeps the serial replay
    /// thread; `N > 1` partitions the heap address space into `N`
    /// cache-line-granular shards replayed concurrently, with the
    /// reproduced watermark tracked as the minimum completed-TID frontier
    /// across shards (see `frontier`).
    pub reproduce_threads: usize,
    /// Shadow-memory configuration.
    pub shadow: ShadowConfig,
    /// Observability-layer configuration (event ring, histograms, stall
    /// counters — see [`crate::trace`]). Disabled by default; when disabled
    /// the pipeline's observable behavior is identical to a build without
    /// the layer.
    pub trace: TraceConfig,
    /// Continuous-telemetry configuration (background sampler, frame ring,
    /// Prometheus exposition — see [`crate::metrics`]). Disabled by
    /// default; when disabled no sampler thread is spawned and the hot
    /// paths pay one branch.
    pub metrics: MetricsConfig,
}

impl DudeTmConfig {
    /// A small configuration for functional tests: identity shadow, modest
    /// buffers, combination off.
    pub fn small(heap_bytes: u64) -> Self {
        DudeTmConfig {
            heap_bytes,
            plog_bytes_per_thread: 1 << 20,
            max_threads: 8,
            durability: DurabilityMode::Async { buffer_txns: 1024 },
            persist_threads: 1,
            persist_group: 1,
            persist_flush_workers: 1,
            compress_groups: false,
            checkpoint_every: 16,
            reproduce_threads: 1,
            shadow: ShadowConfig::Identity,
            trace: TraceConfig::disabled(),
            metrics: MetricsConfig::disabled(),
        }
    }

    /// Switches the observability-layer configuration.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Switches the continuous-telemetry configuration.
    #[must_use]
    pub fn with_metrics(mut self, metrics: MetricsConfig) -> Self {
        self.metrics = metrics;
        self
    }

    /// Sets the number of Reproduce shard workers.
    #[must_use]
    pub fn with_reproduce_threads(mut self, threads: usize) -> Self {
        self.reproduce_threads = threads;
        self
    }

    /// Switches the durability mode.
    #[must_use]
    pub fn with_durability(mut self, mode: DurabilityMode) -> Self {
        self.durability = mode;
        self
    }

    /// Enables log combination with the given group size, optionally with
    /// compression.
    #[must_use]
    pub fn with_grouping(mut self, group: usize, compress: bool) -> Self {
        self.persist_group = group;
        self.compress_groups = compress;
        self
    }

    /// Sets the number of parallel flush workers for the grouped Persist
    /// stage (requires `persist_group > 1` when above 1).
    #[must_use]
    pub fn with_flush_workers(mut self, workers: usize) -> Self {
        self.persist_flush_workers = workers;
        self
    }

    /// Switches the shadow configuration.
    #[must_use]
    pub fn with_shadow(mut self, shadow: ShadowConfig) -> Self {
        self.shadow = shadow;
        self
    }

    /// Validates internal consistency, returning a typed error instead of
    /// panicking — the entry point for drivers (benchmarks, examples) that
    /// want to report a bad configuration rather than abort.
    ///
    /// # Errors
    ///
    /// The first [`ConfigError`] found, checked in field order and then
    /// combination order.
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        if self.heap_bytes == 0 || !self.heap_bytes.is_multiple_of(4096) {
            return Err(ConfigError::HeapBytes {
                heap_bytes: self.heap_bytes,
            });
        }
        if self.plog_bytes_per_thread < 4096 {
            return Err(ConfigError::PlogTooSmall {
                plog_bytes_per_thread: self.plog_bytes_per_thread,
            });
        }
        if !(1..=256).contains(&self.max_threads) {
            return Err(ConfigError::MaxThreads {
                max_threads: self.max_threads,
            });
        }
        if self.persist_threads == 0 {
            return Err(ConfigError::NoPersistThreads);
        }
        if self.persist_group == 0 {
            return Err(ConfigError::NoPersistGroup);
        }
        if self.checkpoint_every == 0 {
            return Err(ConfigError::NoCheckpointCadence);
        }
        if !(1..=64).contains(&self.reproduce_threads) {
            return Err(ConfigError::ReproduceThreads {
                reproduce_threads: self.reproduce_threads,
            });
        }
        // Compression only ever runs on *combined groups* (§3.3): the
        // grouped persist path serializes a whole group and then compresses
        // it. With persist_group == 1 the grouped path is never taken, so
        // compress_groups would be silently ignored — reject the no-op
        // combination instead of letting a benchmark believe it measured
        // compression.
        if self.compress_groups && self.persist_group == 1 {
            return Err(ConfigError::CompressionWithoutGrouping);
        }
        if self.persist_group > 1 && matches!(self.durability, DurabilityMode::Sync) {
            return Err(ConfigError::GroupingWithSync);
        }
        if self.persist_flush_workers == 0 {
            return Err(ConfigError::NoFlushWorkers);
        }
        // Each flush worker appends to its own preallocated log ring (so
        // per-ring span release stays in append order); there are exactly
        // `max_threads` rings.
        if self.persist_flush_workers > self.max_threads {
            return Err(ConfigError::FlushWorkersExceedMaxThreads {
                persist_flush_workers: self.persist_flush_workers,
                max_threads: self.max_threads,
            });
        }
        // Parallel flushing is a property of the grouped path (the
        // sequencer/worker split); with persist_group == 1 the ungrouped
        // path runs and the knob would be silently ignored — reject the
        // no-op combination, mirroring compress_groups above.
        if self.persist_flush_workers > 1 && self.persist_group == 1 {
            return Err(ConfigError::FlushWorkersWithoutGrouping {
                persist_flush_workers: self.persist_flush_workers,
            });
        }
        if matches!(self.durability, DurabilityMode::Async { buffer_txns: 0 }) {
            return Err(ConfigError::EmptyAsyncBuffer);
        }
        Ok(())
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] message on invalid combinations;
    /// [`DudeTmConfig::try_validate`] is the non-panicking form.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("invalid DudeTmConfig: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_is_valid() {
        DudeTmConfig::small(1 << 20).validate();
    }

    #[test]
    fn builders_compose() {
        let c = DudeTmConfig::small(1 << 20)
            .with_durability(DurabilityMode::AsyncUnbounded)
            .with_grouping(100, true);
        assert_eq!(c.durability, DurabilityMode::AsyncUnbounded);
        assert_eq!(c.persist_group, 100);
        assert!(c.compress_groups);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "asynchronous pipeline")]
    fn grouping_with_sync_rejected() {
        DudeTmConfig::small(1 << 20)
            .with_durability(DurabilityMode::Sync)
            .with_grouping(10, false)
            .validate();
    }

    #[test]
    fn grouping_with_multiple_persist_threads_is_allowed() {
        // The grouped path ignores persist_threads (the sequencer/flush-
        // worker split owns its parallelism); the combination is no longer
        // a hard error.
        let mut c = DudeTmConfig::small(1 << 20).with_grouping(8, false);
        c.persist_threads = 2;
        c.validate();
    }

    #[test]
    fn flush_workers_builder_composes() {
        let c = DudeTmConfig::small(1 << 20)
            .with_grouping(8, true)
            .with_flush_workers(4);
        assert_eq!(c.persist_flush_workers, 4);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "persist_flush_workers must be at least 1")]
    fn zero_flush_workers_rejected() {
        DudeTmConfig::small(1 << 20)
            .with_flush_workers(0)
            .validate();
    }

    #[test]
    #[should_panic(expected = "must not exceed max_threads")]
    fn flush_workers_beyond_ring_count_rejected() {
        let mut c = DudeTmConfig::small(1 << 20).with_grouping(8, false);
        c.max_threads = 2;
        c.persist_flush_workers = 3;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "has no effect without log combination")]
    fn flush_workers_without_grouping_rejected() {
        // persist_group stays 1: the ungrouped path would silently ignore
        // the knob.
        DudeTmConfig::small(1 << 20)
            .with_flush_workers(2)
            .validate();
    }

    #[test]
    fn reproduce_threads_builder_composes() {
        let c = DudeTmConfig::small(1 << 20)
            .with_reproduce_threads(4)
            .with_durability(DurabilityMode::AsyncUnbounded);
        assert_eq!(c.reproduce_threads, 4);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "reproduce_threads must be in 1..=64")]
    fn zero_reproduce_threads_rejected() {
        DudeTmConfig::small(1 << 20)
            .with_reproduce_threads(0)
            .validate();
    }

    #[test]
    #[should_panic(expected = "compress_groups has no effect without log combination")]
    fn compression_without_grouping_rejected() {
        let mut c = DudeTmConfig::small(1 << 20);
        c.compress_groups = true; // persist_group stays 1: a silent no-op
        c.validate();
    }

    #[test]
    fn trace_builder_composes() {
        let c = DudeTmConfig::small(1 << 20).with_trace(TraceConfig::enabled(4096));
        assert!(c.trace.enabled);
        assert_eq!(c.trace.ring_capacity, 4096);
        c.validate();
    }

    #[test]
    fn metrics_builder_composes() {
        let c = DudeTmConfig::small(1 << 20).with_metrics(MetricsConfig::sampling(
            std::time::Duration::from_millis(10),
        ));
        assert!(c.metrics.enabled);
        assert_eq!(
            c.metrics.sample_interval,
            std::time::Duration::from_millis(10)
        );
        c.validate();
        assert!(!DudeTmConfig::small(1 << 20).metrics.enabled);
    }

    #[test]
    #[should_panic]
    fn unaligned_heap_rejected() {
        let mut c = DudeTmConfig::small(1 << 20);
        c.heap_bytes = 1000;
        c.validate();
    }

    #[test]
    fn try_validate_accepts_valid_config() {
        assert_eq!(DudeTmConfig::small(1 << 20).try_validate(), Ok(()));
    }

    #[test]
    fn try_validate_returns_typed_errors() {
        let mut c = DudeTmConfig::small(1 << 20);
        c.heap_bytes = 1000;
        assert_eq!(
            c.try_validate(),
            Err(ConfigError::HeapBytes { heap_bytes: 1000 })
        );

        let mut c = DudeTmConfig::small(1 << 20);
        c.plog_bytes_per_thread = 8;
        assert!(matches!(
            c.try_validate(),
            Err(ConfigError::PlogTooSmall { .. })
        ));

        let c = DudeTmConfig::small(1 << 20)
            .with_durability(DurabilityMode::Sync)
            .with_grouping(8, false);
        assert_eq!(c.try_validate(), Err(ConfigError::GroupingWithSync));

        let mut c = DudeTmConfig::small(1 << 20).with_grouping(8, false);
        c.persist_flush_workers = 0;
        assert_eq!(c.try_validate(), Err(ConfigError::NoFlushWorkers));

        let mut c = DudeTmConfig::small(1 << 20).with_grouping(8, false);
        c.max_threads = 4;
        c.persist_flush_workers = 5;
        assert_eq!(
            c.try_validate(),
            Err(ConfigError::FlushWorkersExceedMaxThreads {
                persist_flush_workers: 5,
                max_threads: 4,
            })
        );

        let c = DudeTmConfig::small(1 << 20).with_flush_workers(2);
        assert_eq!(
            c.try_validate(),
            Err(ConfigError::FlushWorkersWithoutGrouping {
                persist_flush_workers: 2,
            })
        );

        let mut c = DudeTmConfig::small(1 << 20);
        c.compress_groups = true;
        assert_eq!(
            c.try_validate(),
            Err(ConfigError::CompressionWithoutGrouping)
        );

        let c =
            DudeTmConfig::small(1 << 20).with_durability(DurabilityMode::Async { buffer_txns: 0 });
        assert_eq!(c.try_validate(), Err(ConfigError::EmptyAsyncBuffer));
    }

    #[test]
    fn config_error_display_carries_section_reference() {
        let msg = ConfigError::CompressionWithoutGrouping.to_string();
        assert!(msg.contains("§3.3"), "missing §-reference: {msg}");
    }
}
