//! Runtime configuration.

use crate::shadow::ShadowConfig;
use crate::trace::TraceConfig;

/// How a committed transaction reaches durability (the evaluated system
/// variants of §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityMode {
    /// The standard decoupled pipeline: redo logs flow through a bounded
    /// per-thread buffer to background Persist threads; Perform blocks only
    /// when the buffer fills ("DudeTM").
    Async {
        /// Volatile log-buffer capacity, in committed transactions per
        /// thread (the paper uses one million log *entries*).
        buffer_txns: usize,
    },
    /// As `Async` but with an unbounded buffer, so Perform never blocks
    /// ("DudeTM-Inf").
    AsyncUnbounded,
    /// Perform flushes its own redo log and waits for durability before
    /// returning ("DudeTM-Sync": the first two steps merged).
    Sync,
}

/// A [`DudeTmConfig`] consistency violation, returned by
/// [`DudeTmConfig::try_validate`].
///
/// Each variant names the offending field(s); the [`std::fmt::Display`]
/// impl carries the full explanation, including the paper-section
/// references for the pipeline-shape rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `heap_bytes` is zero or not a multiple of the 4 KiB page size.
    HeapBytes {
        /// The rejected value.
        heap_bytes: u64,
    },
    /// `plog_bytes_per_thread` is below the 4 KiB minimum.
    PlogTooSmall {
        /// The rejected value.
        plog_bytes_per_thread: u64,
    },
    /// `max_threads` is outside `1..=256`.
    MaxThreads {
        /// The rejected value.
        max_threads: usize,
    },
    /// `persist_threads` is zero.
    NoPersistThreads,
    /// `persist_group` is zero.
    NoPersistGroup,
    /// `checkpoint_every` is zero.
    NoCheckpointCadence,
    /// `reproduce_threads` is outside `1..=64`.
    ReproduceThreads {
        /// The rejected value.
        reproduce_threads: usize,
    },
    /// `compress_groups` set with `persist_group == 1` — a silent no-op.
    CompressionWithoutGrouping,
    /// `persist_group > 1` combined with [`DurabilityMode::Sync`].
    GroupingWithSync,
    /// `persist_group > 1` combined with `persist_threads > 1`.
    GroupingWithMultiplePersistThreads {
        /// The rejected `persist_threads` value.
        persist_threads: usize,
    },
    /// [`DurabilityMode::Async`] with a zero-capacity buffer.
    EmptyAsyncBuffer,
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConfigError::HeapBytes { heap_bytes } => write!(
                f,
                "heap_bytes must be a positive multiple of 4096, got {heap_bytes}"
            ),
            ConfigError::PlogTooSmall {
                plog_bytes_per_thread,
            } => write!(
                f,
                "plog_bytes_per_thread must be at least 4096, got {plog_bytes_per_thread}"
            ),
            ConfigError::MaxThreads { max_threads } => {
                write!(f, "max_threads must be in 1..=256, got {max_threads}")
            }
            ConfigError::NoPersistThreads => f.write_str("persist_threads must be at least 1"),
            ConfigError::NoPersistGroup => f.write_str("persist_group must be at least 1"),
            ConfigError::NoCheckpointCadence => f.write_str("checkpoint_every must be at least 1"),
            ConfigError::ReproduceThreads { reproduce_threads } => write!(
                f,
                "reproduce_threads must be in 1..=64, got {reproduce_threads}"
            ),
            ConfigError::CompressionWithoutGrouping => f.write_str(
                "compress_groups has no effect without log combination: \
                 compression runs on combined groups only (§3.3), so \
                 persist_group must be > 1 when compress_groups is set \
                 (got persist_group = 1)",
            ),
            ConfigError::GroupingWithSync => {
                f.write_str("log combination requires the asynchronous pipeline (§3.3)")
            }
            ConfigError::GroupingWithMultiplePersistThreads { persist_threads } => write!(
                f,
                "log combination (persist_group > 1) runs on a single persist \
                 thread; persist_threads must be 1, got {persist_threads}"
            ),
            ConfigError::EmptyAsyncBuffer => {
                f.write_str("DurabilityMode::Async requires buffer_txns >= 1")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Configuration of a [`crate::DudeTm`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DudeTmConfig {
    /// Persistent heap size in bytes (multiple of the 4 KiB page size).
    pub heap_bytes: u64,
    /// Persistent redo-log ring size per Perform thread, in bytes.
    pub plog_bytes_per_thread: u64,
    /// Maximum number of Perform threads (log regions are preallocated).
    pub max_threads: usize,
    /// Durability variant.
    pub durability: DurabilityMode,
    /// Number of dedicated Persist threads (asynchronous modes). The paper
    /// finds one is typically enough (§3.3).
    pub persist_threads: usize,
    /// Cross-transaction log combination: group this many *consecutive*
    /// transactions and coalesce writes to the same address before flushing
    /// (§3.3). `1` disables grouping.
    pub persist_group: usize,
    /// Compress grouped logs with the LZ77 codec before flushing (§3.3).
    /// Only applies when `persist_group > 1`.
    pub compress_groups: bool,
    /// Reproduce checkpoints (and recycles log space) every this many
    /// replayed transactions.
    pub checkpoint_every: u64,
    /// Number of Reproduce shard workers. `1` keeps the serial replay
    /// thread; `N > 1` partitions the heap address space into `N`
    /// cache-line-granular shards replayed concurrently, with the
    /// reproduced watermark tracked as the minimum completed-TID frontier
    /// across shards (see `frontier`).
    pub reproduce_threads: usize,
    /// Shadow-memory configuration.
    pub shadow: ShadowConfig,
    /// Observability-layer configuration (event ring, histograms, stall
    /// counters — see [`crate::trace`]). Disabled by default; when disabled
    /// the pipeline's observable behavior is identical to a build without
    /// the layer.
    pub trace: TraceConfig,
}

impl DudeTmConfig {
    /// A small configuration for functional tests: identity shadow, modest
    /// buffers, combination off.
    pub fn small(heap_bytes: u64) -> Self {
        DudeTmConfig {
            heap_bytes,
            plog_bytes_per_thread: 1 << 20,
            max_threads: 8,
            durability: DurabilityMode::Async { buffer_txns: 1024 },
            persist_threads: 1,
            persist_group: 1,
            compress_groups: false,
            checkpoint_every: 16,
            reproduce_threads: 1,
            shadow: ShadowConfig::Identity,
            trace: TraceConfig::disabled(),
        }
    }

    /// Switches the observability-layer configuration.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the number of Reproduce shard workers.
    #[must_use]
    pub fn with_reproduce_threads(mut self, threads: usize) -> Self {
        self.reproduce_threads = threads;
        self
    }

    /// Switches the durability mode.
    #[must_use]
    pub fn with_durability(mut self, mode: DurabilityMode) -> Self {
        self.durability = mode;
        self
    }

    /// Enables log combination with the given group size, optionally with
    /// compression.
    #[must_use]
    pub fn with_grouping(mut self, group: usize, compress: bool) -> Self {
        self.persist_group = group;
        self.compress_groups = compress;
        self
    }

    /// Switches the shadow configuration.
    #[must_use]
    pub fn with_shadow(mut self, shadow: ShadowConfig) -> Self {
        self.shadow = shadow;
        self
    }

    /// Validates internal consistency, returning a typed error instead of
    /// panicking — the entry point for drivers (benchmarks, examples) that
    /// want to report a bad configuration rather than abort.
    ///
    /// # Errors
    ///
    /// The first [`ConfigError`] found, checked in field order and then
    /// combination order.
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        if self.heap_bytes == 0 || !self.heap_bytes.is_multiple_of(4096) {
            return Err(ConfigError::HeapBytes {
                heap_bytes: self.heap_bytes,
            });
        }
        if self.plog_bytes_per_thread < 4096 {
            return Err(ConfigError::PlogTooSmall {
                plog_bytes_per_thread: self.plog_bytes_per_thread,
            });
        }
        if !(1..=256).contains(&self.max_threads) {
            return Err(ConfigError::MaxThreads {
                max_threads: self.max_threads,
            });
        }
        if self.persist_threads == 0 {
            return Err(ConfigError::NoPersistThreads);
        }
        if self.persist_group == 0 {
            return Err(ConfigError::NoPersistGroup);
        }
        if self.checkpoint_every == 0 {
            return Err(ConfigError::NoCheckpointCadence);
        }
        if !(1..=64).contains(&self.reproduce_threads) {
            return Err(ConfigError::ReproduceThreads {
                reproduce_threads: self.reproduce_threads,
            });
        }
        // Compression only ever runs on *combined groups* (§3.3): the
        // grouped persist path serializes a whole group and then compresses
        // it. With persist_group == 1 the grouped path is never taken, so
        // compress_groups would be silently ignored — reject the no-op
        // combination instead of letting a benchmark believe it measured
        // compression.
        if self.compress_groups && self.persist_group == 1 {
            return Err(ConfigError::CompressionWithoutGrouping);
        }
        if self.persist_group > 1 {
            if matches!(self.durability, DurabilityMode::Sync) {
                return Err(ConfigError::GroupingWithSync);
            }
            // Grouping merges every thread's records into global ID order
            // on one thread; extra persist threads would silently never be
            // spawned, so reject the combination instead of ignoring it.
            if self.persist_threads != 1 {
                return Err(ConfigError::GroupingWithMultiplePersistThreads {
                    persist_threads: self.persist_threads,
                });
            }
        }
        if matches!(self.durability, DurabilityMode::Async { buffer_txns: 0 }) {
            return Err(ConfigError::EmptyAsyncBuffer);
        }
        Ok(())
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] message on invalid combinations;
    /// [`DudeTmConfig::try_validate`] is the non-panicking form.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("invalid DudeTmConfig: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_is_valid() {
        DudeTmConfig::small(1 << 20).validate();
    }

    #[test]
    fn builders_compose() {
        let c = DudeTmConfig::small(1 << 20)
            .with_durability(DurabilityMode::AsyncUnbounded)
            .with_grouping(100, true);
        assert_eq!(c.durability, DurabilityMode::AsyncUnbounded);
        assert_eq!(c.persist_group, 100);
        assert!(c.compress_groups);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "asynchronous pipeline")]
    fn grouping_with_sync_rejected() {
        DudeTmConfig::small(1 << 20)
            .with_durability(DurabilityMode::Sync)
            .with_grouping(10, false)
            .validate();
    }

    #[test]
    #[should_panic(expected = "persist_threads must be 1")]
    fn grouping_with_multiple_persist_threads_rejected() {
        let mut c = DudeTmConfig::small(1 << 20).with_grouping(8, false);
        c.persist_threads = 2;
        c.validate();
    }

    #[test]
    fn reproduce_threads_builder_composes() {
        let c = DudeTmConfig::small(1 << 20)
            .with_reproduce_threads(4)
            .with_durability(DurabilityMode::AsyncUnbounded);
        assert_eq!(c.reproduce_threads, 4);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "reproduce_threads must be in 1..=64")]
    fn zero_reproduce_threads_rejected() {
        DudeTmConfig::small(1 << 20)
            .with_reproduce_threads(0)
            .validate();
    }

    #[test]
    #[should_panic(expected = "compress_groups has no effect without log combination")]
    fn compression_without_grouping_rejected() {
        let mut c = DudeTmConfig::small(1 << 20);
        c.compress_groups = true; // persist_group stays 1: a silent no-op
        c.validate();
    }

    #[test]
    fn trace_builder_composes() {
        let c = DudeTmConfig::small(1 << 20).with_trace(TraceConfig::enabled(4096));
        assert!(c.trace.enabled);
        assert_eq!(c.trace.ring_capacity, 4096);
        c.validate();
    }

    #[test]
    #[should_panic]
    fn unaligned_heap_rejected() {
        let mut c = DudeTmConfig::small(1 << 20);
        c.heap_bytes = 1000;
        c.validate();
    }

    #[test]
    fn try_validate_accepts_valid_config() {
        assert_eq!(DudeTmConfig::small(1 << 20).try_validate(), Ok(()));
    }

    #[test]
    fn try_validate_returns_typed_errors() {
        let mut c = DudeTmConfig::small(1 << 20);
        c.heap_bytes = 1000;
        assert_eq!(
            c.try_validate(),
            Err(ConfigError::HeapBytes { heap_bytes: 1000 })
        );

        let mut c = DudeTmConfig::small(1 << 20);
        c.plog_bytes_per_thread = 8;
        assert!(matches!(
            c.try_validate(),
            Err(ConfigError::PlogTooSmall { .. })
        ));

        let c = DudeTmConfig::small(1 << 20)
            .with_durability(DurabilityMode::Sync)
            .with_grouping(8, false);
        assert_eq!(c.try_validate(), Err(ConfigError::GroupingWithSync));

        let mut c = DudeTmConfig::small(1 << 20).with_grouping(8, false);
        c.persist_threads = 2;
        assert_eq!(
            c.try_validate(),
            Err(ConfigError::GroupingWithMultiplePersistThreads { persist_threads: 2 })
        );

        let mut c = DudeTmConfig::small(1 << 20);
        c.compress_groups = true;
        assert_eq!(
            c.try_validate(),
            Err(ConfigError::CompressionWithoutGrouping)
        );

        let c =
            DudeTmConfig::small(1 << 20).with_durability(DurabilityMode::Async { buffer_txns: 0 });
        assert_eq!(c.try_validate(), Err(ConfigError::EmptyAsyncBuffer));
    }

    #[test]
    fn config_error_display_carries_section_reference() {
        let msg = ConfigError::CompressionWithoutGrouping.to_string();
        assert!(msg.contains("§3.3"), "missing §-reference: {msg}");
    }
}
