//! Runtime configuration.

use crate::shadow::ShadowConfig;
use crate::trace::TraceConfig;

/// How a committed transaction reaches durability (the evaluated system
/// variants of §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityMode {
    /// The standard decoupled pipeline: redo logs flow through a bounded
    /// per-thread buffer to background Persist threads; Perform blocks only
    /// when the buffer fills ("DudeTM").
    Async {
        /// Volatile log-buffer capacity, in committed transactions per
        /// thread (the paper uses one million log *entries*).
        buffer_txns: usize,
    },
    /// As `Async` but with an unbounded buffer, so Perform never blocks
    /// ("DudeTM-Inf").
    AsyncUnbounded,
    /// Perform flushes its own redo log and waits for durability before
    /// returning ("DudeTM-Sync": the first two steps merged).
    Sync,
}

/// Configuration of a [`crate::DudeTm`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DudeTmConfig {
    /// Persistent heap size in bytes (multiple of the 4 KiB page size).
    pub heap_bytes: u64,
    /// Persistent redo-log ring size per Perform thread, in bytes.
    pub plog_bytes_per_thread: u64,
    /// Maximum number of Perform threads (log regions are preallocated).
    pub max_threads: usize,
    /// Durability variant.
    pub durability: DurabilityMode,
    /// Number of dedicated Persist threads (asynchronous modes). The paper
    /// finds one is typically enough (§3.3).
    pub persist_threads: usize,
    /// Cross-transaction log combination: group this many *consecutive*
    /// transactions and coalesce writes to the same address before flushing
    /// (§3.3). `1` disables grouping.
    pub persist_group: usize,
    /// Compress grouped logs with the LZ77 codec before flushing (§3.3).
    /// Only applies when `persist_group > 1`.
    pub compress_groups: bool,
    /// Reproduce checkpoints (and recycles log space) every this many
    /// replayed transactions.
    pub checkpoint_every: u64,
    /// Number of Reproduce shard workers. `1` keeps the serial replay
    /// thread; `N > 1` partitions the heap address space into `N`
    /// cache-line-granular shards replayed concurrently, with the
    /// reproduced watermark tracked as the minimum completed-TID frontier
    /// across shards (see `frontier`).
    pub reproduce_threads: usize,
    /// Shadow-memory configuration.
    pub shadow: ShadowConfig,
    /// Observability-layer configuration (event ring, histograms, stall
    /// counters — see [`crate::trace`]). Disabled by default; when disabled
    /// the pipeline's observable behavior is identical to a build without
    /// the layer.
    pub trace: TraceConfig,
}

impl DudeTmConfig {
    /// A small configuration for functional tests: identity shadow, modest
    /// buffers, combination off.
    pub fn small(heap_bytes: u64) -> Self {
        DudeTmConfig {
            heap_bytes,
            plog_bytes_per_thread: 1 << 20,
            max_threads: 8,
            durability: DurabilityMode::Async { buffer_txns: 1024 },
            persist_threads: 1,
            persist_group: 1,
            compress_groups: false,
            checkpoint_every: 16,
            reproduce_threads: 1,
            shadow: ShadowConfig::Identity,
            trace: TraceConfig::disabled(),
        }
    }

    /// Switches the observability-layer configuration.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the number of Reproduce shard workers.
    #[must_use]
    pub fn with_reproduce_threads(mut self, threads: usize) -> Self {
        self.reproduce_threads = threads;
        self
    }

    /// Switches the durability mode.
    #[must_use]
    pub fn with_durability(mut self, mode: DurabilityMode) -> Self {
        self.durability = mode;
        self
    }

    /// Enables log combination with the given group size, optionally with
    /// compression.
    #[must_use]
    pub fn with_grouping(mut self, group: usize, compress: bool) -> Self {
        self.persist_group = group;
        self.compress_groups = compress;
        self
    }

    /// Switches the shadow configuration.
    #[must_use]
    pub fn with_shadow(mut self, shadow: ShadowConfig) -> Self {
        self.shadow = shadow;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on invalid combinations.
    pub fn validate(&self) {
        assert!(self.heap_bytes > 0 && self.heap_bytes.is_multiple_of(4096));
        assert!(self.plog_bytes_per_thread >= 4096);
        assert!(self.max_threads >= 1 && self.max_threads <= 256);
        assert!(self.persist_threads >= 1);
        assert!(self.persist_group >= 1);
        assert!(self.checkpoint_every >= 1);
        assert!(
            (1..=64).contains(&self.reproduce_threads),
            "reproduce_threads must be in 1..=64, got {}",
            self.reproduce_threads
        );
        // Compression only ever runs on *combined groups* (§3.3): the
        // grouped persist path serializes a whole group and then compresses
        // it. With persist_group == 1 the grouped path is never taken, so
        // compress_groups would be silently ignored — reject the no-op
        // combination instead of letting a benchmark believe it measured
        // compression.
        assert!(
            !(self.compress_groups && self.persist_group == 1),
            "compress_groups has no effect without log combination: \
             compression runs on combined groups only (§3.3), so \
             persist_group must be > 1 when compress_groups is set \
             (got persist_group = 1)"
        );
        if self.persist_group > 1 {
            assert!(
                !matches!(self.durability, DurabilityMode::Sync),
                "log combination requires the asynchronous pipeline"
            );
            // Grouping merges every thread's records into global ID order
            // on one thread; extra persist threads would silently never be
            // spawned, so reject the combination instead of ignoring it.
            assert!(
                self.persist_threads == 1,
                "log combination (persist_group > 1) runs on a single persist \
                 thread; persist_threads must be 1, got {}",
                self.persist_threads
            );
        }
        if let DurabilityMode::Async { buffer_txns } = self.durability {
            assert!(buffer_txns >= 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_is_valid() {
        DudeTmConfig::small(1 << 20).validate();
    }

    #[test]
    fn builders_compose() {
        let c = DudeTmConfig::small(1 << 20)
            .with_durability(DurabilityMode::AsyncUnbounded)
            .with_grouping(100, true);
        assert_eq!(c.durability, DurabilityMode::AsyncUnbounded);
        assert_eq!(c.persist_group, 100);
        assert!(c.compress_groups);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "asynchronous pipeline")]
    fn grouping_with_sync_rejected() {
        DudeTmConfig::small(1 << 20)
            .with_durability(DurabilityMode::Sync)
            .with_grouping(10, false)
            .validate();
    }

    #[test]
    #[should_panic(expected = "persist_threads must be 1")]
    fn grouping_with_multiple_persist_threads_rejected() {
        let mut c = DudeTmConfig::small(1 << 20).with_grouping(8, false);
        c.persist_threads = 2;
        c.validate();
    }

    #[test]
    fn reproduce_threads_builder_composes() {
        let c = DudeTmConfig::small(1 << 20)
            .with_reproduce_threads(4)
            .with_durability(DurabilityMode::AsyncUnbounded);
        assert_eq!(c.reproduce_threads, 4);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "reproduce_threads must be in 1..=64")]
    fn zero_reproduce_threads_rejected() {
        DudeTmConfig::small(1 << 20)
            .with_reproduce_threads(0)
            .validate();
    }

    #[test]
    #[should_panic(expected = "compress_groups has no effect without log combination")]
    fn compression_without_grouping_rejected() {
        let mut c = DudeTmConfig::small(1 << 20);
        c.compress_groups = true; // persist_group stays 1: a silent no-op
        c.validate();
    }

    #[test]
    fn trace_builder_composes() {
        let c = DudeTmConfig::small(1 << 20).with_trace(TraceConfig::enabled(4096));
        assert!(c.trace.enabled);
        assert_eq!(c.trace.ring_capacity, 4096);
        c.validate();
    }

    #[test]
    #[should_panic]
    fn unaligned_heap_rejected() {
        let mut c = DudeTmConfig::small(1 << 20);
        c.heap_bytes = 1000;
        c.validate();
    }
}
