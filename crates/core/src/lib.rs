//! DudeTM: durable transactions with decoupling for persistent memory.
//!
//! This crate is the core of a full reproduction of *"DudeTM: Building
//! Durable Transactions with Decoupling for Persistent Memory"* (Liu et
//! al., ASPLOS 2017). DudeTM resolves the undo-vs-redo-logging dilemma —
//! per-write persist ordering versus read indirection — by decoupling every
//! durable transaction into three fully asynchronous steps:
//!
//! 1. **Perform** — run the transaction with an out-of-the-box TM
//!    ([`dude_stm::Stm`] or [`dude_htm::Htm`]) on a shared *shadow DRAM*
//!    mirror of the persistent heap, producing a volatile redo log.
//! 2. **Persist** — background threads flush redo logs to persistent log
//!    rings with one barrier per transaction, advancing the global
//!    *durable ID*.
//! 3. **Reproduce** — a background thread replays durable logs, in global
//!    transaction-ID order, onto the real persistent data, then recycles
//!    log space.
//!
//! Dirty data never flows from shadow memory to NVM directly, so cache
//! evictions cannot break crash consistency, no read is ever redirected,
//! and no write needs its own fence.
//!
//! The repository's `DESIGN.md` documents the architecture in depth: the
//! three-stage pipeline and its sharded Reproduce variant are covered in
//! `DESIGN.md §Pipeline`, and the observability layer ([`trace`],
//! [`PipelineSnapshot`]) in `DESIGN.md §Observability`.
//!
//! # Example
//!
//! ```
//! use dude_nvm::{Nvm, NvmConfig};
//! use dude_txapi::{PAddr, TxnSystem, TxnThread};
//! use dudetm::{DudeTm, DudeTmConfig};
//! use std::sync::Arc;
//!
//! let nvm = Arc::new(Nvm::new(NvmConfig::for_testing(16 << 20)));
//! let config = DudeTmConfig::small(4 << 20);
//! let dude = DudeTm::create_stm(Arc::clone(&nvm), config);
//!
//! let mut thread = dude.register_thread();
//! let outcome = thread.run(&mut |tx| {
//!     let v = tx.read_word(PAddr::new(64))?;
//!     tx.write_word(PAddr::new(64), v + 1)?;
//!     Ok(())
//! });
//! let tid = outcome.info().unwrap().tid.unwrap();
//! thread.wait_durable(tid); // redo log is now in NVM
//! drop(thread);
//! dude.quiesce(); // Reproduce has applied it to the heap image
//! # let _ = tid;
//! ```
#![warn(missing_docs)]

pub mod check;
mod config;
mod engine;
pub mod frontier;
pub mod log;
pub mod metrics;
mod pipeline;
mod plog;
mod recovery;
mod runtime;
#[cfg(feature = "sim")]
pub mod sabotage;
mod seqtrack;
mod shadow;
mod stats;
pub mod trace;

pub use check::{check_prefix, CommitHistory, HistoryEntry, LinearizabilityError, PrefixReport};
pub use config::{ConfigError, DudeTmConfig, DurabilityMode};
pub use engine::{EngineThread, TmEngine};
pub use frontier::{shard_of, split_writes, ReproduceFrontier, SHARD_GRAIN_BYTES};
pub use log::{LogRecord, ParsedRecord};
pub use metrics::{
    validate_exposition, Counter, Gauge, MetricKind, MetricsBuilder, MetricsConfig, MetricsFrame,
    MetricsRegistry, MetricsServer, RecoveryPhase, RecoveryTelemetry,
};
pub use plog::{scan_region, PlogRing, PlogSpan};
pub use recovery::{recover_device, recover_device_observed, RecoverError, RecoveryReport};
pub use runtime::{dtm_abort, DtmThread, DtmTx, DudeTm, NvmLayout, RedoHooks};
pub use seqtrack::{OrderedCompletions, SequenceTracker};
pub use shadow::{PagingMode, ShadowConfig, ShadowMem, ShadowStats, ShadowView, PAGE_BYTES};
pub use stats::{PipelineSnapshot, PipelineStats, PipelineStatsSnapshot};
pub use trace::{
    HistogramSnapshot, LatencyHistogram, StallSnapshot, Trace, TraceConfig, TraceEventKind,
    TraceRecord, TraceRing,
};

use std::sync::Arc;

use dude_htm::{Htm, HtmConfig};
use dude_nvm::Nvm;
use dude_stm::{Stm, StmConfig};

impl DudeTm<Stm> {
    /// Formats `nvm` and starts a fresh STM-backed runtime (the paper's
    /// default TinySTM-based configuration).
    pub fn create_stm(nvm: Arc<Nvm>, config: DudeTmConfig) -> Self {
        Self::create_stm_with(nvm, config, StmConfig::default())
    }

    /// As [`DudeTm::create_stm`] with an explicit STM configuration.
    pub fn create_stm_with(nvm: Arc<Nvm>, config: DudeTmConfig, stm: StmConfig) -> Self {
        DudeTm::create_with(nvm, config, Stm::new(stm))
    }

    /// Recovers an STM-backed runtime from a crashed device: replays the
    /// durable logs, then resumes with transaction IDs continuing where the
    /// recovered history ended.
    ///
    /// # Errors
    ///
    /// See [`RecoverError`].
    pub fn recover_stm(
        nvm: Arc<Nvm>,
        config: DudeTmConfig,
    ) -> Result<(Self, RecoveryReport), RecoverError> {
        let telemetry = RecoveryTelemetry::default();
        let (layout, report) = recover_device_observed(&nvm, &config, &telemetry)?;
        let engine = Stm::with_initial_clock(StmConfig::default(), report.last_tid);
        let dude = DudeTm::start(nvm, config, engine, layout, report.last_tid, telemetry);
        Ok((dude, report))
    }
}

impl DudeTm<Htm> {
    /// Formats `nvm` and starts a fresh HTM-backed runtime (§4.2).
    pub fn create_htm(nvm: Arc<Nvm>, config: DudeTmConfig) -> Self {
        DudeTm::create_with(nvm, config, Htm::new(HtmConfig::default()))
    }

    /// Recovers an HTM-backed runtime from a crashed device.
    ///
    /// # Errors
    ///
    /// See [`RecoverError`].
    pub fn recover_htm(
        nvm: Arc<Nvm>,
        config: DudeTmConfig,
    ) -> Result<(Self, RecoveryReport), RecoverError> {
        let telemetry = RecoveryTelemetry::default();
        let (layout, report) = recover_device_observed(&nvm, &config, &telemetry)?;
        let engine = Htm::with_initial_clock(HtmConfig::default(), report.last_tid);
        let dude = DudeTm::start(nvm, config, engine, layout, report.last_tid, telemetry);
        Ok((dude, report))
    }
}
