//! The pipeline observability layer: stage-latency histograms, stall
//! accounting, and a lock-free event trace with JSON export.
//!
//! DudeTM's argument is about *where the time goes* — decoupling moves
//! persist barriers and replay off the critical path — so reproducing the
//! paper credibly needs per-stage visibility, not just aggregate counters.
//! This module provides three surfaces (see `DESIGN.md §Observability` for
//! the full field-by-field schema):
//!
//! * [`LatencyHistogram`] — log-scale (HDR-style power-of-two bucket)
//!   histograms for commit latency, persist-barrier duration, group-flush
//!   size, and per-shard replay-apply time. Fixed 64-bucket layout, no
//!   allocation on the record path, percentiles without storing samples.
//! * [`StallCounters`] — named counters for the five ways a stage can
//!   block: Perform on a full volatile log, Persist on a full persistent
//!   ring, the grouped-Persist sequencer on a TID gap, Reproduce starved
//!   of input, and the shutdown checkpoint waiting on the slowest shard.
//! * [`TraceRing`] — a fixed-size, lock-free ring of
//!   `{timestamp, stage, event, tid, bytes, duration}` records stamped
//!   with the process-wide [`dude_nvm::monotonic_ns`] clock, exported as
//!   chrome://tracing-compatible JSON by [`Trace::to_json`].
//!
//! Everything is gated behind [`TraceConfig::enabled`]: with tracing off
//! (the default) no event is recorded, no stall is counted, and no
//! timestamp is taken — the pipeline's hot paths check one boolean and
//! move on, so disabled-mode behavior is byte-identical to the
//! pre-observability runtime (verified by `tests/trace_layer.rs`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::metrics::Counter;

/// Number of power-of-two buckets in a [`LatencyHistogram`]. Bucket `b >= 1`
/// covers `[2^(b-1), 2^b - 1]`; bucket 0 holds exact zeros. 64 buckets cover
/// the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Configuration of the observability layer (a field of
/// [`crate::DudeTmConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch. When `false` (the default) the layer costs one
    /// branch per instrumentation point and records nothing.
    pub enabled: bool,
    /// Capacity of the event ring, in records. When the ring is full the
    /// oldest records are overwritten and counted as dropped.
    pub ring_capacity: usize,
}

impl TraceConfig {
    /// Tracing off — the default, and the configuration whose observable
    /// pipeline behavior is identical to the pre-observability runtime.
    #[must_use]
    pub fn disabled() -> Self {
        TraceConfig {
            enabled: false,
            ring_capacity: 0,
        }
    }

    /// Tracing on with an event ring of `ring_capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `ring_capacity` is zero.
    #[must_use]
    pub fn enabled(ring_capacity: usize) -> Self {
        assert!(ring_capacity > 0, "an enabled trace needs ring capacity");
        TraceConfig {
            enabled: true,
            ring_capacity,
        }
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// The pipeline stage an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Stage {
    /// The Perform step: application threads running transactions.
    Perform = 0,
    /// The Persist step: background log-flush workers.
    Persist = 1,
    /// The Reproduce step: replay workers (router and shards).
    Reproduce = 2,
    /// Checkpoint writes and recovery replay.
    Checkpoint = 3,
}

impl Stage {
    /// Stable display name (used in the JSON export's `pid` naming).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Perform => "perform",
            Stage::Persist => "persist",
            Stage::Reproduce => "reproduce",
            Stage::Checkpoint => "checkpoint",
        }
    }

    fn from_u8(v: u8) -> Stage {
        match v {
            0 => Stage::Perform,
            1 => Stage::Persist,
            2 => Stage::Reproduce,
            _ => Stage::Checkpoint,
        }
    }
}

/// What happened (the `name` of the exported trace event).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceEventKind {
    /// A transaction committed on a Perform thread.
    Commit = 0,
    /// A Persist worker's ordering barrier (covers one flush sweep).
    PersistBarrier = 1,
    /// A combined group was serialized and flushed (grouping mode).
    GroupFlush = 2,
    /// A Reproduce worker applied a run of writes to the heap image.
    ReplayApply = 3,
    /// A durable reproduced-ID checkpoint.
    CheckpointWrite = 4,
    /// The Persist sequencer sealed a group and dispatched it to a flush
    /// worker (grouped mode; `bytes` = 8 × the group's log entries).
    GroupDispatch = 5,
    /// The in-order publisher advanced the durable watermark over a flushed
    /// group and forwarded its batch to Reproduce (grouped mode).
    DurablePublish = 6,
}

impl TraceEventKind {
    /// Stable display name (the `name` field of the JSON export).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::Commit => "commit",
            TraceEventKind::PersistBarrier => "persist_barrier",
            TraceEventKind::GroupFlush => "group_flush",
            TraceEventKind::ReplayApply => "replay_apply",
            TraceEventKind::CheckpointWrite => "checkpoint",
            TraceEventKind::GroupDispatch => "group_dispatch",
            TraceEventKind::DurablePublish => "durable_publish",
        }
    }

    fn from_u8(v: u8) -> TraceEventKind {
        match v {
            0 => TraceEventKind::Commit,
            1 => TraceEventKind::PersistBarrier,
            2 => TraceEventKind::GroupFlush,
            3 => TraceEventKind::ReplayApply,
            5 => TraceEventKind::GroupDispatch,
            6 => TraceEventKind::DurablePublish,
            _ => TraceEventKind::CheckpointWrite,
        }
    }
}

/// One decoded trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Nanoseconds since the process trace epoch
    /// ([`dude_nvm::monotonic_ns`]).
    pub ts_ns: u64,
    /// Pipeline stage that emitted the event.
    pub stage: Stage,
    /// Event kind.
    pub event: TraceEventKind,
    /// Transaction ID the event covers (the last TID for batched events;
    /// the shard index is carried in `tid` for `ReplayApply` worker events
    /// only when no TID applies — see the recording sites).
    pub tid: u64,
    /// Payload bytes the event moved (log bytes flushed, heap bytes
    /// applied, 8 × words written at commit).
    pub bytes: u64,
    /// Event duration in nanoseconds (0 for instantaneous events).
    pub dur_ns: u64,
}

const RECORD_WORDS: usize = 5;

/// A fixed-size, lock-free, multi-writer event ring.
///
/// Writers reserve a slot with one `fetch_add` and store the record's five
/// words with relaxed atomics — no locks, no allocation, wait-free. When
/// the ring wraps, the oldest records are overwritten and counted as
/// dropped. Reading ([`TraceRing::records`]) is intended for quiescent
/// moments (after `quiesce`/shutdown); a snapshot taken while writers are
/// active may contain individual torn records, which is acceptable for an
/// observability surface and documented here rather than paid for with a
/// lock on the hot path.
#[derive(Debug)]
pub struct TraceRing {
    /// Flat `capacity × RECORD_WORDS` storage:
    /// `[ts, stage|event packed, tid, bytes, dur]` per slot.
    words: Vec<AtomicU64>,
    capacity: usize,
    /// Monotonic count of records ever written.
    head: AtomicU64,
}

impl TraceRing {
    /// Creates a ring holding `capacity` records (0 = a ring that drops
    /// everything, used by the disabled configuration).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            words: (0..capacity * RECORD_WORDS)
                .map(|_| AtomicU64::new(0))
                .collect(),
            capacity,
            head: AtomicU64::new(0),
        }
    }

    /// Ring capacity in records.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one event (wait-free; overwrites the oldest record when
    /// full).
    pub fn record(&self, rec: TraceRecord) {
        if self.capacity == 0 {
            self.head.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = (seq % self.capacity as u64) as usize * RECORD_WORDS;
        let packed = ((rec.stage as u64) << 8) | rec.event as u64;
        self.words[slot].store(rec.ts_ns, Ordering::Relaxed);
        self.words[slot + 1].store(packed, Ordering::Relaxed);
        self.words[slot + 2].store(rec.tid, Ordering::Relaxed);
        self.words[slot + 3].store(rec.bytes, Ordering::Relaxed);
        self.words[slot + 4].store(rec.dur_ns, Ordering::Relaxed);
    }

    /// Total records ever recorded (including dropped ones).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Records lost to ring overflow (overwritten oldest-first) — the
    /// ring keeps the most recent `capacity` records.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.capacity as u64)
    }

    /// Records currently held, oldest first. Take after quiescing the
    /// pipeline for a tear-free view.
    #[must_use]
    pub fn records(&self) -> Vec<TraceRecord> {
        let head = self.recorded();
        if self.capacity == 0 || head == 0 {
            return Vec::new();
        }
        let len = head.min(self.capacity as u64);
        let first = head - len;
        (first..head)
            .map(|seq| {
                let slot = (seq % self.capacity as u64) as usize * RECORD_WORDS;
                let packed = self.words[slot + 1].load(Ordering::Relaxed);
                TraceRecord {
                    ts_ns: self.words[slot].load(Ordering::Relaxed),
                    stage: Stage::from_u8((packed >> 8) as u8),
                    event: TraceEventKind::from_u8(packed as u8),
                    tid: self.words[slot + 2].load(Ordering::Relaxed),
                    bytes: self.words[slot + 3].load(Ordering::Relaxed),
                    dur_ns: self.words[slot + 4].load(Ordering::Relaxed),
                }
            })
            .collect()
    }
}

/// Index of the bucket value `v` lands in: 0 for 0, else
/// `64 - leading_zeros(v)` — so bucket `b >= 1` covers
/// `[2^(b-1), 2^b - 1]`.
#[inline]
#[must_use]
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive value range `[low, high]` covered by bucket `b`.
#[must_use]
pub fn bucket_bounds(b: usize) -> (u64, u64) {
    match b {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        _ => (1 << (b - 1), (1 << b) - 1),
    }
}

/// A concurrent log-scale histogram: 64 power-of-two buckets plus exact
/// count/sum/max, all relaxed atomics. HDR-style in spirit — fixed memory,
/// O(1) record, percentile queries without retaining samples — with
/// one-bucket-per-octave resolution (quantization error < 2×, which is
/// enough to tell a 300 ns barrier from a 10 µs stall).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS + 1],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS + 1],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (wait-free).
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Point-in-time copy.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`bucket_bounds`] for each bucket's range).
    pub buckets: Vec<u64>,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean of the recorded values (exact — from sum/count, not buckets).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// The `q`-quantile (`q` in `[0, 1]`), resolved to the upper bound of
    /// the bucket where the cumulative count crosses `q × count`, clamped
    /// to the exact observed maximum. 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bounds(b).1.min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`HistogramSnapshot::quantile`]).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Named percentile export (`p50`/`p95`/`p99`/`max`/`count`) for
    /// machine consumers such as the `dude-bench` JSON records.
    #[must_use]
    pub fn export(&self) -> [(&'static str, u64); 5] {
        [
            ("p50", self.p50()),
            ("p95", self.p95()),
            ("p99", self.p99()),
            ("max", self.max),
            ("count", self.count),
        ]
    }
}

/// The five ways a pipeline stage blocks, counted by name. Incremented
/// only when tracing is enabled (one branch otherwise), surfaced through
/// [`crate::PipelineSnapshot`]. The fields are [`Counter`] handles so the
/// metrics registry can share the same cells without a second increment
/// anywhere.
#[derive(Debug, Default)]
pub struct StallCounters {
    /// Perform found its bounded volatile log channel full at commit and
    /// had to block until the Persist stage drained it (§3.2's
    /// backpressure actually biting).
    pub perform_log_full: Counter,
    /// A Persist worker found a persistent log ring without space and
    /// parked the record (Reproduce has not recycled fast enough).
    pub persist_ring_full: Counter,
    /// The grouped-Persist sequencer idled with records stashed out of
    /// order: the next expected TID has not arrived, so no group can be
    /// sealed (a Perform thread is slow to hand over its log).
    pub persist_seq_wait: Counter,
    /// A Reproduce worker's input timed out with an empty reorder heap —
    /// replay is ahead of the Persist stage and idling.
    pub reproduce_starved: Counter,
    /// Yield iterations the shutdown checkpoint spent waiting for the
    /// slowest Reproduce shard to reach the drain target.
    pub checkpoint_wait: Counter,
}

impl StallCounters {
    /// Point-in-time copy.
    #[must_use]
    pub fn snapshot(&self) -> StallSnapshot {
        StallSnapshot {
            perform_log_full: self.perform_log_full.load(Ordering::Relaxed),
            persist_ring_full: self.persist_ring_full.load(Ordering::Relaxed),
            persist_seq_wait: self.persist_seq_wait.load(Ordering::Relaxed),
            reproduce_starved: self.reproduce_starved.load(Ordering::Relaxed),
            checkpoint_wait: self.checkpoint_wait.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of [`StallCounters`] (all zero when tracing is
/// disabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StallSnapshot {
    /// Commits that blocked on a full volatile log buffer.
    pub perform_log_full: u64,
    /// Records parked because a persistent log ring was full.
    pub persist_ring_full: u64,
    /// Sequencer idle ticks blocked on a TID gap (grouped mode).
    pub persist_seq_wait: u64,
    /// Reproduce idle ticks with nothing to replay.
    pub reproduce_starved: u64,
    /// Drain-checkpoint waits on the slowest shard.
    pub checkpoint_wait: u64,
}

/// The observability layer attached to one runtime instance: event ring,
/// stage histograms, and stall counters, all behind one `enabled` flag.
///
/// Obtain via [`crate::DudeTm::trace`]; export with [`Trace::to_json`].
/// The histograms are `Arc`-shared so the metrics registry can hold the
/// same instances under named handles.
#[derive(Debug)]
pub struct Trace {
    config: TraceConfig,
    ring: TraceRing,
    /// Wall time from transaction start to commit acknowledgement on the
    /// Perform thread (includes aborted attempts of the same transaction).
    pub commit_latency_ns: Arc<LatencyHistogram>,
    /// Duration of each Persist-stage ordering barrier (the modeled NVM
    /// fence cost plus scheduling).
    pub persist_barrier_ns: Arc<LatencyHistogram>,
    /// Stored bytes of each combined group flush (grouping mode only).
    pub group_flush_bytes: Arc<LatencyHistogram>,
    /// Per-shard wall time applying one replay run to the heap image
    /// (index = shard; one entry in serial mode).
    pub replay_apply_ns: Vec<Arc<LatencyHistogram>>,
    /// Per-flush-worker wall time persisting one group — serialize,
    /// optional compression, ring write, and fence, including any wait for
    /// ring space (index = worker; one entry outside grouped mode).
    pub flush_worker_ns: Vec<Arc<LatencyHistogram>>,
    /// Stall counters (see [`StallCounters`]).
    pub stalls: StallCounters,
}

impl Trace {
    /// Creates the layer for `shards` Reproduce workers and
    /// `flush_workers` grouped-Persist flush workers.
    #[must_use]
    pub fn new(config: TraceConfig, shards: usize, flush_workers: usize) -> Self {
        if config.enabled {
            // Pin the shared epoch now so event timestamps start near 0.
            let _ = dude_nvm::monotonic_ns();
        }
        Trace {
            config,
            ring: TraceRing::new(if config.enabled {
                config.ring_capacity
            } else {
                0
            }),
            commit_latency_ns: Arc::new(LatencyHistogram::new()),
            persist_barrier_ns: Arc::new(LatencyHistogram::new()),
            group_flush_bytes: Arc::new(LatencyHistogram::new()),
            replay_apply_ns: (0..shards.max(1))
                .map(|_| Arc::new(LatencyHistogram::new()))
                .collect(),
            flush_worker_ns: (0..flush_workers.max(1))
                .map(|_| Arc::new(LatencyHistogram::new()))
                .collect(),
            stalls: StallCounters::default(),
        }
    }

    /// Whether recording is on. Instrumentation sites check this first and
    /// skip all clock reads and atomics when it is off.
    #[inline]
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// The configuration the layer was built with.
    #[must_use]
    pub fn config(&self) -> TraceConfig {
        self.config
    }

    /// The event ring.
    #[must_use]
    pub fn ring(&self) -> &TraceRing {
        &self.ring
    }

    /// Records one event stamped now (no-op when disabled).
    pub fn event(&self, stage: Stage, event: TraceEventKind, tid: u64, bytes: u64, dur_ns: u64) {
        if !self.enabled() {
            return;
        }
        self.ring.record(TraceRecord {
            ts_ns: dude_nvm::monotonic_ns(),
            stage,
            event,
            tid,
            bytes,
            dur_ns,
        });
    }

    /// Serializes the whole layer as JSON. The object is directly loadable
    /// by `chrome://tracing` / Perfetto (they read the `traceEvents` key
    /// and ignore the rest); the extra keys carry the histograms, stall
    /// counters, and drop accounting. Schema documented field-by-field in
    /// `DESIGN.md §Observability`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [");
        let records = self.ring.records();
        for (i, r) in records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Complete ("X") events for durations, instant ("i") otherwise.
            // chrome ts/dur are microseconds (fractional allowed).
            let ts_us = r.ts_ns as f64 / 1000.0;
            if r.dur_ns > 0 {
                out.push_str(&format!(
                    "\n    {{\"name\": \"{}\", \"ph\": \"X\", \"pid\": 1, \"tid\": \"{}\", \
                     \"ts\": {:.3}, \"dur\": {:.3}, \"args\": {{\"tid\": {}, \"bytes\": {}}}}}",
                    r.event.name(),
                    r.stage.name(),
                    ts_us,
                    r.dur_ns as f64 / 1000.0,
                    r.tid,
                    r.bytes
                ));
            } else {
                out.push_str(&format!(
                    "\n    {{\"name\": \"{}\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 1, \
                     \"tid\": \"{}\", \"ts\": {:.3}, \"args\": {{\"tid\": {}, \"bytes\": {}}}}}",
                    r.event.name(),
                    r.stage.name(),
                    ts_us,
                    r.tid,
                    r.bytes
                ));
            }
        }
        out.push_str("\n  ],\n");
        out.push_str(&format!(
            "  \"droppedEvents\": {},\n  \"recordedEvents\": {},\n",
            self.ring.dropped(),
            self.ring.recorded()
        ));
        let stalls = self.stalls.snapshot();
        out.push_str(&format!(
            "  \"stalls\": {{\"perform_log_full\": {}, \"persist_ring_full\": {}, \
             \"persist_seq_wait\": {}, \"reproduce_starved\": {}, \
             \"checkpoint_wait\": {}}},\n",
            stalls.perform_log_full,
            stalls.persist_ring_full,
            stalls.persist_seq_wait,
            stalls.reproduce_starved,
            stalls.checkpoint_wait
        ));
        out.push_str("  \"histograms\": {\n");
        let mut hist = |name: &str, s: &HistogramSnapshot, last: bool| {
            out.push_str(&format!(
                "    \"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {:.1}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}}}{}\n",
                name,
                s.count,
                s.sum,
                s.max,
                s.mean(),
                s.p50(),
                s.p95(),
                s.p99(),
                if last { "" } else { "," }
            ));
        };
        hist(
            "commit_latency_ns",
            &self.commit_latency_ns.snapshot(),
            false,
        );
        hist(
            "persist_barrier_ns",
            &self.persist_barrier_ns.snapshot(),
            false,
        );
        hist(
            "group_flush_bytes",
            &self.group_flush_bytes.snapshot(),
            false,
        );
        for (i, h) in self.replay_apply_ns.iter().enumerate() {
            hist(&format!("replay_apply_ns_shard{i}"), &h.snapshot(), false);
        }
        for (i, h) in self.flush_worker_ns.iter().enumerate() {
            hist(
                &format!("flush_worker_ns_w{i}"),
                &h.snapshot(),
                i + 1 == self.flush_worker_ns.len(),
            );
        }
        out.push_str("  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 0..=64usize {
            let (lo, hi) = bucket_bounds(b);
            assert_eq!(bucket_of(lo), b, "lower bound of bucket {b}");
            assert_eq!(bucket_of(hi), b, "upper bound of bucket {b}");
        }
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let h = LatencyHistogram::new();
        for v in [0u64, 1, 2, 3, 100, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.sum, 1_001_106);
        assert_eq!(s.buckets[0], 1); // the zero
        assert_eq!(s.buckets[2], 2); // 2 and 3

        // p99 lands in the top bucket and clamps to the observed max.
        assert_eq!(s.p99(), 1_000_000);
        // The median of {0,1,2,3,100,1000,1M} is 3 → bucket 2, upper 3.
        assert_eq!(s.p50(), 3);
        assert_eq!(HistogramSnapshot::default().p50(), 0);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let ring = TraceRing::new(4);
        for i in 0..6u64 {
            ring.record(TraceRecord {
                ts_ns: i,
                stage: Stage::Persist,
                event: TraceEventKind::PersistBarrier,
                tid: i,
                bytes: 8 * i,
                dur_ns: 0,
            });
        }
        assert_eq!(ring.recorded(), 6);
        assert_eq!(ring.dropped(), 2);
        let recs = ring.records();
        assert_eq!(recs.len(), 4);
        // Oldest two (ts 0, 1) were overwritten; survivors in order.
        assert_eq!(
            recs.iter().map(|r| r.ts_ns).collect::<Vec<_>>(),
            vec![2, 3, 4, 5]
        );
        assert_eq!(recs[0].stage, Stage::Persist);
        assert_eq!(recs[0].event, TraceEventKind::PersistBarrier);
        assert_eq!(recs[3].bytes, 40);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let t = Trace::new(TraceConfig::disabled(), 1, 1);
        t.event(Stage::Perform, TraceEventKind::Commit, 1, 8, 100);
        assert_eq!(t.ring().recorded(), 0);
        assert!(!t.enabled());
    }

    #[test]
    fn json_is_chrome_shaped() {
        let t = Trace::new(TraceConfig::enabled(16), 2, 2);
        t.event(Stage::Perform, TraceEventKind::Commit, 7, 16, 120);
        t.event(Stage::Persist, TraceEventKind::PersistBarrier, 7, 64, 0);
        t.event(Stage::Persist, TraceEventKind::GroupDispatch, 8, 32, 0);
        t.event(Stage::Persist, TraceEventKind::DurablePublish, 8, 32, 0);
        t.commit_latency_ns.record(120);
        t.stalls.perform_log_full.fetch_add(1, Ordering::Relaxed);
        t.stalls.persist_seq_wait.fetch_add(2, Ordering::Relaxed);
        let json = t.to_json();
        assert!(json.contains("\"traceEvents\""), "{json}");
        assert!(json.contains("\"commit\""), "{json}");
        assert!(json.contains("\"persist_barrier\""), "{json}");
        assert!(json.contains("\"group_dispatch\""), "{json}");
        assert!(json.contains("\"durable_publish\""), "{json}");
        assert!(json.contains("\"perform_log_full\": 1"), "{json}");
        assert!(json.contains("\"persist_seq_wait\": 2"), "{json}");
        assert!(json.contains("\"commit_latency_ns\""), "{json}");
        assert!(json.contains("replay_apply_ns_shard1"), "{json}");
        assert!(json.contains("flush_worker_ns_w1"), "{json}");
        // Balanced braces — structurally valid without a JSON parser.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    #[should_panic(expected = "ring capacity")]
    fn enabled_zero_capacity_rejected() {
        let _ = TraceConfig::enabled(0);
    }
}
