//! Uniform transaction API shared by every durable-transaction system in the
//! DudeTM reproduction.
//!
//! The paper's evaluation (§5) runs the same six workloads over DudeTM (in
//! several durability modes), the volatile TinySTM upper bound, a
//! Mnemosyne-like redo-logging system and an NVML-like undo-logging system.
//! To make that possible with a single workload implementation, all systems
//! implement the traits in this crate:
//!
//! * [`TxnSystem`] — a shared, thread-safe transaction runtime.
//! * [`TxnThread`] — a per-thread handle that runs transactions.
//! * [`Txn`] — the in-transaction view: word-granular reads and writes over a
//!   persistent address space ([`PAddr`]), mirroring the paper's
//!   `dtmRead`/`dtmWrite` API (Algorithm 1).
//!
//! Transactions are expressed as closures over `&mut dyn Txn`. Conflicts are
//! propagated with `Result` (no unwinding): a body uses `?` on every access
//! and the system's retry loop re-executes it on [`TxAbort::Conflict`].
//!
//! # Example
//!
//! ```
//! use dude_txapi::{PAddr, Txn, TxResult};
//!
//! /// Transfer one unit between two accounts (paper Algorithm 1).
//! fn transfer(tx: &mut dyn Txn, src: PAddr, dst: PAddr) -> TxResult<()> {
//!     let s = tx.read_word(src)?;
//!     if s == 0 {
//!         return Err(dude_txapi::TxAbort::User);
//!     }
//!     tx.write_word(src, s - 1)?;
//!     let d = tx.read_word(dst)?;
//!     tx.write_word(dst, d + 1)?;
//!     Ok(())
//! }
//! ```

mod paddr;

pub use paddr::{PAddr, WORD_BYTES};

/// Global transaction identifier.
///
/// Transaction IDs are the TM's commit timestamps: globally unique and
/// monotonically increasing (§3.2). `0` is reserved for "no ID" (read-only
/// transactions never obtain one).
pub type TxId = u64;

/// Reason a transaction body stopped executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxAbort {
    /// The TM detected a conflict; the system's retry loop will re-execute
    /// the transaction body. Workload code should treat this as opaque and
    /// simply propagate it with `?`.
    Conflict,
    /// The application explicitly aborted (paper's `dtmAbort`); the
    /// transaction rolls back and [`TxnThread::run`] reports
    /// [`TxnOutcome::Aborted`].
    User,
}

impl core::fmt::Display for TxAbort {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TxAbort::Conflict => f.write_str("transaction conflict"),
            TxAbort::User => f.write_str("transaction aborted by user"),
        }
    }
}

impl std::error::Error for TxAbort {}

/// Result of a transactional operation.
pub type TxResult<T> = Result<T, TxAbort>;

/// Statistics describing how a committed transaction executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommitInfo {
    /// Commit timestamp assigned by the TM. `None` for read-only
    /// transactions (they are trivially durable).
    pub tid: Option<TxId>,
    /// Number of conflict-induced re-executions before the commit.
    pub retries: u32,
}

/// Outcome of running a transaction body to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOutcome<T> {
    /// The body returned `Ok` and the TM committed.
    Committed {
        /// Value returned by the transaction body.
        value: T,
        /// Commit metadata (transaction ID, retry count).
        info: CommitInfo,
    },
    /// The body returned [`TxAbort::User`]; all effects were rolled back.
    Aborted,
}

impl<T> TxnOutcome<T> {
    /// Returns the committed value.
    ///
    /// # Panics
    ///
    /// Panics if the transaction was aborted by the user.
    #[track_caller]
    pub fn expect_committed(self) -> T {
        match self {
            TxnOutcome::Committed { value, .. } => value,
            TxnOutcome::Aborted => panic!("transaction was aborted"),
        }
    }

    /// Commit metadata, or `None` if the transaction aborted.
    pub fn info(&self) -> Option<CommitInfo> {
        match self {
            TxnOutcome::Committed { info, .. } => Some(*info),
            TxnOutcome::Aborted => None,
        }
    }

    /// `true` if the transaction committed.
    pub fn is_committed(&self) -> bool {
        matches!(self, TxnOutcome::Committed { .. })
    }
}

/// In-transaction view of the persistent address space.
///
/// All accesses are word-granular (`u64`), matching the word-based TinySTM
/// the paper builds on. Every method can report a conflict, which the caller
/// must propagate with `?`.
pub trait Txn {
    /// Transactionally read the word at `addr` (paper's `dtmRead`).
    ///
    /// # Errors
    ///
    /// Returns [`TxAbort::Conflict`] if the TM detected a conflict; the body
    /// must propagate it so the retry loop can re-execute.
    fn read_word(&mut self, addr: PAddr) -> TxResult<u64>;

    /// Transactionally write `val` to the word at `addr` (paper's
    /// `dtmWrite`).
    ///
    /// # Errors
    ///
    /// Returns [`TxAbort::Conflict`] if the TM detected a conflict.
    fn write_word(&mut self, addr: PAddr, val: u64) -> TxResult<()>;

    /// Declare that the `words`-long range at `addr` may be written by this
    /// transaction.
    ///
    /// Only *static-transaction* systems (the NVML-like baseline, §2.2) act
    /// on this: they undo-log the range up front. Dynamic-transaction
    /// systems (DudeTM, Mnemosyne, volatile STM) ignore it, so workloads can
    /// call it unconditionally.
    ///
    /// # Errors
    ///
    /// Returns [`TxAbort::Conflict`] if logging the range conflicts.
    fn declare_write(&mut self, addr: PAddr, words: u64) -> TxResult<()> {
        let _ = (addr, words);
        Ok(())
    }

    /// Read `out.len()` consecutive words starting at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the first conflict encountered.
    fn read_words(&mut self, addr: PAddr, out: &mut [u64]) -> TxResult<()> {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.read_word(addr.add_words(i as u64))?;
        }
        Ok(())
    }

    /// Write the words in `vals` consecutively starting at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the first conflict encountered.
    fn write_words(&mut self, addr: PAddr, vals: &[u64]) -> TxResult<()> {
        for (i, v) in vals.iter().enumerate() {
            self.write_word(addr.add_words(i as u64), *v)?;
        }
        Ok(())
    }

    /// Reads `out.len()` bytes starting at the word-aligned `addr`
    /// (little-endian within each word). Byte-level layouts (strings,
    /// packed records) ride on the word-granular TM this way.
    ///
    /// # Errors
    ///
    /// Propagates the first conflict encountered.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not word-aligned.
    fn read_bytes(&mut self, addr: PAddr, out: &mut [u8]) -> TxResult<()> {
        assert!(addr.is_word_aligned(), "byte reads start word-aligned");
        for (i, chunk) in out.chunks_mut(8).enumerate() {
            let w = self.read_word(addr.add_words(i as u64))?;
            chunk.copy_from_slice(&w.to_le_bytes()[..chunk.len()]);
        }
        Ok(())
    }

    /// Writes `bytes` starting at the word-aligned `addr`. A trailing
    /// partial word is read-modified-written, preserving its other bytes.
    ///
    /// # Errors
    ///
    /// Propagates the first conflict encountered.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not word-aligned.
    fn write_bytes(&mut self, addr: PAddr, bytes: &[u8]) -> TxResult<()> {
        assert!(addr.is_word_aligned(), "byte writes start word-aligned");
        for (i, chunk) in bytes.chunks(8).enumerate() {
            let waddr = addr.add_words(i as u64);
            let w = if chunk.len() == 8 {
                u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"))
            } else {
                let mut b = self.read_word(waddr)?.to_le_bytes();
                b[..chunk.len()].copy_from_slice(chunk);
                u64::from_le_bytes(b)
            };
            self.write_word(waddr, w)?;
        }
        Ok(())
    }
}

/// Per-thread handle for executing transactions on a [`TxnSystem`].
pub trait TxnThread {
    /// Execute `body` as one transaction, retrying on conflicts until it
    /// either commits or aborts via [`TxAbort::User`].
    fn run<T>(&mut self, body: &mut dyn FnMut(&mut dyn Txn) -> TxResult<T>) -> TxnOutcome<T>;

    /// Block until the transaction with ID `tid` is durable.
    ///
    /// Volatile systems treat every committed transaction as durable, so the
    /// default is a no-op.
    fn wait_durable(&mut self, tid: TxId) {
        let _ = tid;
    }

    /// Largest transaction ID `D` such that every transaction with ID ≤ `D`
    /// is durable (the paper's global *durable ID*, §3.3).
    fn durable_watermark(&self) -> TxId {
        TxId::MAX
    }
}

/// A shared, thread-safe transaction runtime over a persistent heap.
pub trait TxnSystem: Sync {
    /// Per-thread transaction handle.
    type Thread<'a>: TxnThread + 'a
    where
        Self: 'a;

    /// Register the calling thread and return its transaction handle.
    fn register_thread(&self) -> Self::Thread<'_>;

    /// Human-readable system name used in benchmark tables
    /// (e.g. `"DudeTM"`, `"Mnemosyne"`).
    fn name(&self) -> &'static str;

    /// Size of the persistent heap, in words.
    fn heap_words(&self) -> u64;

    /// Wait until all committed transactions are durable *and* reproduced
    /// (pipeline drained). Used by the harness between load and measurement
    /// phases. Volatile systems return immediately.
    fn quiesce(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    struct MapTxn(std::collections::HashMap<u64, u64>);

    impl Txn for MapTxn {
        fn read_word(&mut self, addr: PAddr) -> TxResult<u64> {
            Ok(*self.0.get(&addr.offset()).unwrap_or(&0))
        }
        fn write_word(&mut self, addr: PAddr, val: u64) -> TxResult<()> {
            self.0.insert(addr.offset(), val);
            Ok(())
        }
    }

    #[test]
    fn multiword_helpers_roundtrip() {
        let mut tx = MapTxn(Default::default());
        let base = PAddr::new(64);
        tx.write_words(base, &[1, 2, 3]).unwrap();
        let mut out = [0u64; 3];
        tx.read_words(base, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3]);
    }

    #[test]
    fn byte_helpers_roundtrip() {
        let mut tx = MapTxn(Default::default());
        let base = PAddr::new(128);
        tx.write_bytes(base, b"hello, persistent world").unwrap();
        let mut out = [0u8; 23];
        tx.read_bytes(base, &mut out).unwrap();
        assert_eq!(&out, b"hello, persistent world");
    }

    #[test]
    fn partial_word_write_preserves_neighbours() {
        let mut tx = MapTxn(Default::default());
        let base = PAddr::new(0);
        tx.write_word(base, u64::MAX).unwrap();
        tx.write_bytes(base, &[0xAA, 0xBB]).unwrap();
        let w = tx.read_word(base).unwrap();
        assert_eq!(
            w.to_le_bytes(),
            [0xAA, 0xBB, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF]
        );
    }

    #[test]
    #[should_panic(expected = "word-aligned")]
    fn unaligned_byte_write_panics() {
        let mut tx = MapTxn(Default::default());
        let _ = tx.write_bytes(PAddr::new(3), &[1]);
    }

    #[test]
    fn declare_write_defaults_to_noop() {
        let mut tx = MapTxn(Default::default());
        tx.declare_write(PAddr::new(0), 10).unwrap();
    }

    #[test]
    fn outcome_accessors() {
        let c = TxnOutcome::Committed {
            value: 7,
            info: CommitInfo {
                tid: Some(3),
                retries: 1,
            },
        };
        assert!(c.is_committed());
        assert_eq!(c.info().unwrap().tid, Some(3));
        assert_eq!(c.expect_committed(), 7);
        let a: TxnOutcome<i32> = TxnOutcome::Aborted;
        assert!(!a.is_committed());
        assert!(a.info().is_none());
    }

    #[test]
    #[should_panic(expected = "aborted")]
    fn expect_committed_panics_on_abort() {
        TxnOutcome::<()>::Aborted.expect_committed();
    }

    #[test]
    fn abort_display() {
        assert_eq!(TxAbort::Conflict.to_string(), "transaction conflict");
        assert_eq!(TxAbort::User.to_string(), "transaction aborted by user");
    }
}
