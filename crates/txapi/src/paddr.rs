//! Persistent addresses.

/// A byte offset into the persistent heap.
///
/// Persistent memory is addressed by offset rather than by raw pointer: the
/// same `PAddr` resolves to the NVM image (in the Reproduce step and the
/// baselines) or to the shadow DRAM mirror (in the Perform step), which is
/// exactly the paper's constant-offset shadow mapping (§3.1, Figure 1).
///
/// Word-granular operations require 8-byte alignment; constructors accept any
/// offset so byte-level layouts are expressible, and alignment is checked by
/// the memory implementations.
///
/// # Example
///
/// ```
/// use dude_txapi::PAddr;
///
/// let base = PAddr::new(4096);
/// assert_eq!(base.add_words(2).offset(), 4096 + 16);
/// assert_eq!(base.word_index(), 512);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PAddr(u64);

/// Number of bytes in a transactional word.
pub const WORD_BYTES: u64 = 8;

impl PAddr {
    /// The null address (offset zero). By convention the first heap word is
    /// reserved so `PAddr::NULL` never refers to live data.
    pub const NULL: PAddr = PAddr(0);

    /// Creates an address from a byte offset.
    pub const fn new(offset: u64) -> Self {
        PAddr(offset)
    }

    /// Creates an address from a word index (`index * 8` bytes).
    pub const fn from_word_index(index: u64) -> Self {
        PAddr(index * WORD_BYTES)
    }

    /// Byte offset of this address.
    pub const fn offset(self) -> u64 {
        self.0
    }

    /// Word index of this address (`offset / 8`).
    pub const fn word_index(self) -> u64 {
        self.0 / WORD_BYTES
    }

    /// `true` if this address is 8-byte aligned.
    pub const fn is_word_aligned(self) -> bool {
        self.0.is_multiple_of(WORD_BYTES)
    }

    /// Address `bytes` bytes past `self`.
    #[must_use]
    pub const fn add(self, bytes: u64) -> Self {
        PAddr(self.0 + bytes)
    }

    /// Address `words` words (8 bytes each) past `self`.
    #[must_use]
    pub const fn add_words(self, words: u64) -> Self {
        PAddr(self.0 + words * WORD_BYTES)
    }

    /// `true` if this is the null address.
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl core::fmt::Display for PAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "p{:#x}", self.0)
    }
}

impl From<u64> for PAddr {
    fn from(offset: u64) -> Self {
        PAddr(offset)
    }
}

impl From<PAddr> for u64 {
    fn from(addr: PAddr) -> Self {
        addr.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = PAddr::new(16);
        assert_eq!(a.add(8), PAddr::new(24));
        assert_eq!(a.add_words(3), PAddr::new(40));
        assert_eq!(a.word_index(), 2);
        assert_eq!(PAddr::from_word_index(2), a);
    }

    #[test]
    fn alignment_and_null() {
        assert!(PAddr::new(0).is_null());
        assert!(PAddr::NULL.is_null());
        assert!(!PAddr::new(8).is_null());
        assert!(PAddr::new(8).is_word_aligned());
        assert!(!PAddr::new(9).is_word_aligned());
    }

    #[test]
    fn conversions_and_display() {
        let a: PAddr = 32u64.into();
        let back: u64 = a.into();
        assert_eq!(back, 32);
        assert_eq!(a.to_string(), "p0x20");
    }

    #[test]
    fn ordering_follows_offset() {
        assert!(PAddr::new(8) < PAddr::new(16));
    }
}
