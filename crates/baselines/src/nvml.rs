//! An NVML-like undo-logging durable transaction system (§5.2.2).
//!
//! NVML (Intel's early pmem library, today PMDK) uses undo logging with
//! *static* transactions: the write set must be declared so old values can
//! be logged — and persisted — **before** any in-place update, giving one
//! persist barrier per declared range (the per-update persist-ordering cost
//! of §2.2). NVML itself guarantees no isolation; the paper pairs it with
//! fine-grained locks, modeled here as striped two-phase locks acquired at
//! declaration time with try-lock + full restart to stay deadlock-free.
//!
//! Commit protocol per transaction:
//!
//! 1. per `declare_write`: acquire stripe locks, append `(addr, old values)`
//!    to the thread's undo log, **persist** (one barrier each);
//! 2. in-place writes, each flushed (unfenced);
//! 3. commit: fence the data, then invalidate the undo log and persist the
//!    invalidation (two more barriers).
//!
//! Recovery rolls back any transaction whose undo log is still marked
//! active.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use dude_nvm::{Nvm, Region};
use dude_txapi::{PAddr, TxAbort, TxResult, Txn, TxnOutcome, TxnSystem, TxnThread};
use parking_lot::Mutex;

use crate::BaselineConfig;

const UNDO_MAGIC: u64 = 0xBADC_0FFE_E0DD_F00D;
/// Undo-log header: [0] = status (0 idle, 1 active).
const LOG_HEADER_WORDS: u64 = 1;
const STRIPES: usize = 1 << 12;

fn undo_checksum(addr: u64, words: u64) -> u64 {
    UNDO_MAGIC ^ addr.rotate_left(7) ^ words.rotate_left(29)
}

/// The NVML-like system.
#[derive(Debug)]
pub struct NvmlLike {
    nvm: Arc<Nvm>,
    heap: Region,
    logs: Vec<Region>,
    /// Striped 2PL locks (the external concurrency control NVML needs).
    stripes: Vec<Mutex<()>>,
    next_slot: AtomicUsize,
    config: BaselineConfig,
}

impl NvmlLike {
    /// Creates a fresh system on `nvm`.
    ///
    /// # Panics
    ///
    /// Panics if the device cannot hold the configured logs plus heap.
    pub fn create(nvm: Arc<Nvm>, config: BaselineConfig) -> Self {
        config.validate();
        let (logs, heap) = Self::layout(&nvm, &config);
        for log in &logs {
            nvm.write_word(log.start(), 0);
            nvm.persist(log.start(), 8);
        }
        Self::build(nvm, config, logs, heap)
    }

    /// Recovers after a crash: rolls back every transaction whose undo log
    /// is still marked active.
    pub fn recover(nvm: Arc<Nvm>, config: BaselineConfig) -> Self {
        config.validate();
        let (logs, heap) = Self::layout(&nvm, &config);
        for log in &logs {
            if nvm.read_word(log.start()) != 1 {
                continue; // idle: nothing in flight on this thread
            }
            // Roll back: apply undo records in reverse append order.
            let mut records = Vec::new();
            let mut off = LOG_HEADER_WORDS;
            let cap = log.len() / 8;
            while off + 3 <= cap {
                let addr = nvm.read_word(log.start() + off * 8);
                let words = nvm.read_word(log.start() + (off + 1) * 8);
                let sum = nvm.read_word(log.start() + (off + 2) * 8);
                if sum != undo_checksum(addr, words) || off + 3 + words > cap {
                    break; // end of intact records (or torn tail)
                }
                let mut olds = vec![0u64; words as usize];
                nvm.read_words(log.start() + (off + 3) * 8, &mut olds);
                records.push((addr, olds));
                off += 3 + words;
            }
            for (addr, olds) in records.into_iter().rev() {
                for (i, old) in olds.into_iter().enumerate() {
                    let o = heap.start() + addr + 8 * i as u64;
                    nvm.write_word(o, old);
                    nvm.flush(o, 8);
                }
            }
            nvm.fence();
            nvm.write_word(log.start(), 0);
            nvm.persist(log.start(), 8);
        }
        Self::build(nvm, config, logs, heap)
    }

    fn layout(nvm: &Nvm, config: &BaselineConfig) -> (Vec<Region>, Region) {
        let mut off = 0u64;
        let mut logs = Vec::new();
        for _ in 0..config.max_threads {
            logs.push(Region::new(off, config.log_bytes_per_thread));
            off += config.log_bytes_per_thread;
        }
        let heap = Region::new(off, config.heap_bytes);
        assert!(
            heap.end() <= nvm.size_bytes(),
            "device too small for NVML layout"
        );
        (logs, heap)
    }

    fn build(nvm: Arc<Nvm>, config: BaselineConfig, logs: Vec<Region>, heap: Region) -> Self {
        NvmlLike {
            nvm,
            heap,
            logs,
            stripes: (0..STRIPES).map(|_| Mutex::new(())).collect(),
            next_slot: AtomicUsize::new(0),
            config,
        }
    }

    /// The underlying device.
    pub fn nvm(&self) -> &Arc<Nvm> {
        &self.nvm
    }

    /// The heap region.
    pub fn heap_region(&self) -> Region {
        self.heap
    }

    #[inline]
    fn stripe_of(&self, addr: u64) -> usize {
        (((addr >> 3).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) & (STRIPES - 1)
    }
}

/// Per-thread handle for [`NvmlLike`].
#[derive(Debug)]
pub struct NvmlThread<'s> {
    sys: &'s NvmlLike,
    log: Region,
}

/// In-flight static transaction state.
struct NvmlTxn<'s> {
    sys: &'s NvmlLike,
    log: Region,
    /// Stripe indices held (2PL), with their guards kept alive.
    held: Vec<(usize, parking_lot::MutexGuard<'s, ()>)>,
    /// Declared ranges (addr, words) for write validation.
    declared: Vec<(u64, u64)>,
    /// Undo-log append cursor in words.
    cursor: u64,
    /// Data lines were written since the last fence.
    dirty: bool,
    active: bool,
}

impl<'s> NvmlTxn<'s> {
    fn is_declared(&self, addr: u64) -> bool {
        self.declared
            .iter()
            .any(|&(a, w)| addr >= a && addr + 8 <= a + w * 8)
    }
}

impl Txn for NvmlTxn<'_> {
    fn declare_write(&mut self, addr: PAddr, words: u64) -> TxResult<()> {
        assert!(addr.is_word_aligned() && words > 0);
        assert!(
            addr.offset() + words * 8 <= self.sys.config.heap_bytes,
            "declared range beyond heap"
        );
        // Acquire the stripes covering the range; try-lock + restart keeps
        // the static-locking scheme deadlock-free.
        let mut needed: Vec<usize> = (0..words)
            .map(|i| self.sys.stripe_of(addr.offset() + i * 8))
            .collect();
        needed.sort_unstable();
        needed.dedup();
        for stripe in needed {
            if self.held.iter().any(|&(s, _)| s == stripe) {
                continue;
            }
            match self.sys.stripes[stripe].try_lock() {
                Some(guard) => self.held.push((stripe, guard)),
                None => return Err(TxAbort::Conflict), // restart the txn
            }
        }
        // Undo-log the old values and persist them before any in-place
        // update (the undo-ordering rule).
        let cap = self.log.len() / 8;
        assert!(
            self.cursor + 3 + words <= cap,
            "undo log overflow: transaction writes too much"
        );
        let base = self.log.start() + self.cursor * 8;
        self.sys.nvm.write_word(base, addr.offset());
        self.sys.nvm.write_word(base + 8, words);
        self.sys
            .nvm
            .write_word(base + 16, undo_checksum(addr.offset(), words));
        for i in 0..words {
            let old = self
                .sys
                .nvm
                .read_word(self.sys.heap.start() + addr.offset() + i * 8);
            self.sys.nvm.write_word(base + 24 + i * 8, old);
        }
        self.sys.nvm.flush(base, (3 + words) * 8);
        if !self.active {
            // First range: activate the log with the same barrier.
            self.sys.nvm.write_word(self.log.start(), 1);
            self.sys.nvm.flush(self.log.start(), 8);
            self.active = true;
        }
        self.sys.nvm.fence();
        self.cursor += 3 + words;
        self.declared.push((addr.offset(), words));
        Ok(())
    }

    fn read_word(&mut self, addr: PAddr) -> TxResult<u64> {
        assert!(addr.is_word_aligned() && addr.offset() + 8 <= self.sys.config.heap_bytes);
        let off = self.sys.heap.start() + addr.offset();
        if self.is_declared(addr.offset()) {
            // Covered by our own 2PL locks.
            return Ok(self.sys.nvm.read_word(off));
        }
        // Transient stripe lock: the "fine-grained locks" reads need for a
        // consistent view (NVML itself offers no isolation).
        let stripe = self.sys.stripe_of(addr.offset());
        if self.held.iter().any(|&(s, _)| s == stripe) {
            return Ok(self.sys.nvm.read_word(off));
        }
        match self.sys.stripes[stripe].try_lock() {
            Some(_guard) => Ok(self.sys.nvm.read_word(off)),
            None => Err(TxAbort::Conflict),
        }
    }

    fn write_word(&mut self, addr: PAddr, val: u64) -> TxResult<()> {
        assert!(
            self.is_declared(addr.offset()),
            "NVML-like system supports only static transactions: \
             write to {addr} without declare_write"
        );
        let off = self.sys.heap.start() + addr.offset();
        self.sys.nvm.write_word(off, val);
        self.sys.nvm.flush(off, 8);
        self.dirty = true;
        Ok(())
    }
}

impl NvmlTxn<'_> {
    fn commit(mut self) {
        if self.active {
            if self.dirty {
                self.sys.nvm.fence(); // order all in-place writes
            }
            // Invalidate the undo log.
            self.sys.nvm.write_word(self.log.start(), 0);
            self.sys.nvm.persist(self.log.start(), 8);
        }
        self.held.clear();
    }

    fn abort(mut self) {
        if self.active {
            // Roll back in place from the volatile copy of the undo data.
            let mut off = LOG_HEADER_WORDS;
            let mut records = Vec::new();
            while off < self.cursor {
                let addr = self.sys.nvm.read_word(self.log.start() + off * 8);
                let words = self.sys.nvm.read_word(self.log.start() + (off + 1) * 8);
                let mut olds = vec![0u64; words as usize];
                self.sys
                    .nvm
                    .read_words(self.log.start() + (off + 3) * 8, &mut olds);
                records.push((addr, olds));
                off += 3 + words;
            }
            for (addr, olds) in records.into_iter().rev() {
                for (i, old) in olds.into_iter().enumerate() {
                    let o = self.sys.heap.start() + addr + 8 * i as u64;
                    self.sys.nvm.write_word(o, old);
                    self.sys.nvm.flush(o, 8);
                }
            }
            self.sys.nvm.fence();
            self.sys.nvm.write_word(self.log.start(), 0);
            self.sys.nvm.persist(self.log.start(), 8);
        }
        self.held.clear();
    }
}

impl TxnSystem for NvmlLike {
    type Thread<'a>
        = NvmlThread<'a>
    where
        Self: 'a;

    fn register_thread(&self) -> NvmlThread<'_> {
        let slot = self.next_slot.fetch_add(1, Ordering::Relaxed);
        assert!(slot < self.config.max_threads, "too many threads");
        NvmlThread {
            sys: self,
            log: self.logs[slot],
        }
    }

    fn name(&self) -> &'static str {
        "NVML"
    }

    fn heap_words(&self) -> u64 {
        self.config.heap_bytes / 8
    }
}

impl TxnThread for NvmlThread<'_> {
    fn run<T>(&mut self, body: &mut dyn FnMut(&mut dyn Txn) -> TxResult<T>) -> TxnOutcome<T> {
        let mut retries = 0u32;
        loop {
            let mut txn = NvmlTxn {
                sys: self.sys,
                log: self.log,
                held: Vec::new(),
                declared: Vec::new(),
                cursor: LOG_HEADER_WORDS,
                dirty: false,
                active: false,
            };
            match body(&mut txn) {
                Ok(value) => {
                    txn.commit();
                    return TxnOutcome::Committed {
                        value,
                        info: dude_txapi::CommitInfo { tid: None, retries },
                    };
                }
                Err(TxAbort::User) => {
                    txn.abort();
                    return TxnOutcome::Aborted;
                }
                Err(TxAbort::Conflict) => {
                    txn.abort();
                    retries += 1;
                    if retries > 4 {
                        std::thread::yield_now();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dude_nvm::NvmConfig;

    fn setup(heap_bytes: u64) -> (Arc<Nvm>, BaselineConfig) {
        let config = BaselineConfig {
            heap_bytes,
            max_threads: 4,
            log_bytes_per_thread: 8192,
        };
        let bytes = heap_bytes + 4 * 8192;
        (Arc::new(Nvm::new(NvmConfig::for_testing(bytes))), config)
    }

    #[test]
    fn declared_write_commits_durably() {
        let (nvm, config) = setup(1 << 16);
        let sys = NvmlLike::create(Arc::clone(&nvm), config);
        {
            let mut t = sys.register_thread();
            t.run(&mut |tx| {
                tx.declare_write(PAddr::new(0), 2)?;
                tx.write_word(PAddr::new(0), 7)?;
                tx.write_word(PAddr::new(8), 8)
            })
            .expect_committed();
        }
        nvm.crash();
        let sys2 = NvmlLike::recover(Arc::clone(&nvm), config);
        assert_eq!(nvm.read_word(sys2.heap_region().start()), 7);
        assert_eq!(nvm.read_word(sys2.heap_region().start() + 8), 8);
    }

    #[test]
    #[should_panic(expected = "static transactions")]
    fn undeclared_write_panics() {
        let (nvm, config) = setup(1 << 16);
        let sys = NvmlLike::create(nvm, config);
        let mut t = sys.register_thread();
        let _ = t.run(&mut |tx| tx.write_word(PAddr::new(0), 1));
    }

    #[test]
    fn crash_mid_transaction_rolls_back() {
        let (nvm, config) = setup(1 << 16);
        let heap_start;
        {
            let sys = NvmlLike::create(Arc::clone(&nvm), config);
            heap_start = sys.heap_region().start();
            // Seed committed state.
            let mut t = sys.register_thread();
            t.run(&mut |tx| {
                tx.declare_write(PAddr::new(0), 2)?;
                tx.write_word(PAddr::new(0), 10)?;
                tx.write_word(PAddr::new(8), 20)
            })
            .expect_committed();
            // Start a transaction that writes one of two declared words,
            // then "crash" before commit by persisting in-place data but
            // never invalidating the log.
            let txn_partial = |tx: &mut dyn Txn| -> TxResult<()> {
                tx.declare_write(PAddr::new(0), 2)?;
                tx.write_word(PAddr::new(0), 999)?;
                // Make the torn write durable so the crash leaves it.
                Ok(())
            };
            // Run the partial body manually so commit never executes: we
            // emulate by crashing inside via panic-free path — simplest is
            // to do the steps directly on a txn value we leak.
            let mut raw = NvmlTxn {
                sys: &sys,
                log: sys.logs[1],
                held: Vec::new(),
                declared: Vec::new(),
                cursor: LOG_HEADER_WORDS,
                dirty: false,
                active: false,
            };
            txn_partial(&mut raw).unwrap();
            // Force the torn in-place write to be durable (worst case).
            nvm.fence();
            std::mem::forget(raw.held.drain(..).collect::<Vec<_>>());
            std::mem::forget(raw);
            let _ = t;
        }
        nvm.crash();
        let _sys2 = NvmlLike::recover(Arc::clone(&nvm), config);
        // Rolled back to the committed values.
        assert_eq!(nvm.read_word(heap_start), 10);
        assert_eq!(nvm.read_word(heap_start + 8), 20);
    }

    #[test]
    fn user_abort_rolls_back_in_place() {
        let (nvm, config) = setup(1 << 16);
        let sys = NvmlLike::create(Arc::clone(&nvm), config);
        let mut t = sys.register_thread();
        t.run(&mut |tx| {
            tx.declare_write(PAddr::new(0), 1)?;
            tx.write_word(PAddr::new(0), 5)
        })
        .expect_committed();
        let out = t.run(&mut |tx| {
            tx.declare_write(PAddr::new(0), 1)?;
            tx.write_word(PAddr::new(0), 6)?;
            Err::<(), _>(TxAbort::User)
        });
        assert!(!out.is_committed());
        assert_eq!(nvm.read_word(sys.heap_region().start()), 5);
    }

    #[test]
    fn concurrent_declared_increments_exact() {
        let (nvm, config) = setup(1 << 16);
        let sys = Arc::new(NvmlLike::create(Arc::clone(&nvm), config));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let sys = Arc::clone(&sys);
                s.spawn(move || {
                    let mut t = sys.register_thread();
                    for _ in 0..200 {
                        t.run(&mut |tx| {
                            tx.declare_write(PAddr::new(0), 1)?;
                            let v = tx.read_word(PAddr::new(0))?;
                            tx.write_word(PAddr::new(0), v + 1)
                        })
                        .expect_committed();
                    }
                });
            }
        });
        assert_eq!(nvm.read_word(sys.heap_region().start()), 800);
    }

    #[test]
    fn reads_take_transient_locks() {
        let (nvm, config) = setup(1 << 16);
        let sys = NvmlLike::create(nvm, config);
        let mut t = sys.register_thread();
        let v = t
            .run(&mut |tx| tx.read_word(PAddr::new(64)))
            .expect_committed();
        assert_eq!(v, 0);
    }
}
