//! Baseline durable-transaction systems from the paper's evaluation
//! (§5.2.2), plus the volatile upper bounds.
//!
//! * [`Mnemosyne`] — a Mnemosyne-like redo-logging system: write-back STM
//!   executing directly on NVM, every read redirected through the write set,
//!   and a **synchronous** per-transaction log persist at commit. This is
//!   the coupled design whose costs DudeTM's decoupling removes.
//! * [`NvmlLike`] — an NVML-like undo-logging system: *static* transactions
//!   that declare their write set up front, striped two-phase locking for
//!   isolation (NVML itself provides none), an undo-log persist barrier per
//!   declared range (the per-update persist-ordering cost of §2.2), and a
//!   second barrier sequence at commit.
//! * [`VolatileStm`] / [`VolatileHtm`] — the TM running on DRAM with no
//!   durability: the throughput ceilings of Figure 2 and Table 4.
//!
//! All four implement [`dude_txapi::TxnSystem`], so the workload suite runs
//! on them unchanged.

mod mnemosyne;
mod nvml;
mod volatile;

pub use mnemosyne::{Mnemosyne, MnemosyneThread};
pub use nvml::{NvmlLike, NvmlThread};
pub use volatile::{VolatileHtm, VolatileHtmThread, VolatileStm, VolatileStmThread};

/// Shared sizing configuration for the durable baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineConfig {
    /// Persistent heap size in bytes.
    pub heap_bytes: u64,
    /// Maximum worker threads (log regions are preallocated per thread).
    pub max_threads: usize,
    /// Per-thread log region size in bytes.
    pub log_bytes_per_thread: u64,
}

impl BaselineConfig {
    /// A small functional-testing configuration.
    pub fn small(heap_bytes: u64) -> Self {
        BaselineConfig {
            heap_bytes,
            max_threads: 8,
            log_bytes_per_thread: 1 << 20,
        }
    }

    pub(crate) fn validate(&self) {
        assert!(self.heap_bytes > 0 && self.heap_bytes.is_multiple_of(8));
        assert!(self.max_threads >= 1);
        assert!(self.log_bytes_per_thread >= 4096);
    }
}
