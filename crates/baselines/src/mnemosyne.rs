//! A Mnemosyne-like redo-logging durable transaction system (§5.2.2).
//!
//! Mnemosyne runs a write-back STM directly on persistent memory: every
//! transactional write is buffered, every read of written data is
//! redirected through the write set (the address-mapping cost of §2.2), and
//! at commit the redo log is **synchronously** persisted before the
//! in-place updates are published. The Perform and Persist steps are fused —
//! exactly the coupling DudeTM removes — so commit latency always contains
//! a persist barrier.
//!
//! Log records reuse DudeTM's checksummed on-NVM format; when a thread's
//! log region fills, the thread fences its published in-place updates and
//! truncates the log (Mnemosyne's background log replay/truncation,
//! foregrounded for simplicity — the cost model is the same: one fence per
//! truncation window plus a flush per in-place write).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use dude_nvm::{Nvm, Region};
use dude_stm::{NoHooks, Stm, StmConfig, WordMemory};
use dude_txapi::{PAddr, TxResult, Txn, TxnOutcome, TxnSystem, TxnThread};
use dudetm::log::{parse_record, serialize_commit};

use crate::BaselineConfig;

/// Status word offsets inside each per-thread log region.
const LOG_HEADER_WORDS: u64 = 1; // [0] = committed-record cursor (words)

/// NVM-backed memory with per-store cache-line flush: Mnemosyne's `CLFLUSH`
/// per log/in-place write (the flush is unfenced; the commit or truncation
/// fence orders it).
#[derive(Debug)]
struct FlushingNvmMemory {
    nvm: Arc<Nvm>,
    base: u64,
}

impl WordMemory for FlushingNvmMemory {
    #[inline]
    fn load(&self, addr: u64) -> u64 {
        self.nvm.read_word(self.base + addr)
    }

    #[inline]
    fn store(&self, addr: u64, val: u64) {
        self.nvm.write_word(self.base + addr, val);
        self.nvm.flush(self.base + addr, 8);
    }
}

/// The Mnemosyne-like system.
#[derive(Debug)]
pub struct Mnemosyne {
    nvm: Arc<Nvm>,
    stm: Stm,
    mem: FlushingNvmMemory,
    heap: Region,
    logs: Vec<Region>,
    next_slot: AtomicUsize,
    config: BaselineConfig,
}

impl Mnemosyne {
    /// Creates a fresh system on `nvm`.
    ///
    /// # Panics
    ///
    /// Panics if the device cannot hold the configured logs plus heap.
    pub fn create(nvm: Arc<Nvm>, config: BaselineConfig) -> Self {
        config.validate();
        let (logs, heap) = Self::layout(&nvm, &config);
        for log in &logs {
            nvm.write_word(log.start(), 0);
            nvm.persist(log.start(), 8);
        }
        Self::build(nvm, config, logs, heap)
    }

    /// Recovers after a crash: replays every committed record found in the
    /// logs onto the heap (idempotent — records hold absolute values), then
    /// truncates.
    pub fn recover(nvm: Arc<Nvm>, config: BaselineConfig) -> Self {
        config.validate();
        let (logs, heap) = Self::layout(&nvm, &config);
        // Collect committed records from every thread log, then replay them
        // in global commit-timestamp order (cross-thread writes to the same
        // address must resolve to the latest committed value).
        let mut records = Vec::new();
        for log in &logs {
            let committed_words = nvm.read_word(log.start());
            let mut off = LOG_HEADER_WORDS;
            while off < committed_words.min(log.len() / 8) {
                let mut words = vec![0u64; (committed_words - off) as usize];
                nvm.read_words(log.start() + off * 8, &mut words);
                match parse_record(&words) {
                    Some(rec) => {
                        off += rec.words as u64;
                        records.push(rec);
                    }
                    None => break,
                }
            }
        }
        records.sort_by_key(|r| r.first_tid);
        for rec in &records {
            for &(addr, val) in &rec.writes {
                nvm.write_word(heap.start() + addr, val);
                nvm.flush(heap.start() + addr, 8);
            }
        }
        nvm.fence();
        for log in &logs {
            nvm.write_word(log.start(), LOG_HEADER_WORDS);
            nvm.persist(log.start(), 8);
        }
        Self::build(nvm, config, logs, heap)
    }

    fn layout(nvm: &Nvm, config: &BaselineConfig) -> (Vec<Region>, Region) {
        let mut off = 0u64;
        let mut logs = Vec::new();
        for _ in 0..config.max_threads {
            logs.push(Region::new(off, config.log_bytes_per_thread));
            off += config.log_bytes_per_thread;
        }
        let heap = Region::new(off, config.heap_bytes);
        assert!(
            heap.end() <= nvm.size_bytes(),
            "device too small for Mnemosyne layout"
        );
        (logs, heap)
    }

    fn build(nvm: Arc<Nvm>, config: BaselineConfig, logs: Vec<Region>, heap: Region) -> Self {
        let mem = FlushingNvmMemory {
            nvm: Arc::clone(&nvm),
            base: heap.start(),
        };
        Mnemosyne {
            nvm,
            stm: Stm::new(StmConfig::default()),
            mem,
            heap,
            logs,
            next_slot: AtomicUsize::new(0),
            config,
        }
    }

    /// The underlying device.
    pub fn nvm(&self) -> &Arc<Nvm> {
        &self.nvm
    }

    /// The heap region.
    pub fn heap_region(&self) -> Region {
        self.heap
    }
}

/// Per-thread handle for [`Mnemosyne`].
#[derive(Debug)]
pub struct MnemosyneThread<'s> {
    sys: &'s Mnemosyne,
    thread: dude_stm::StmThread<'s>,
    log: Region,
    /// Log cursor, in words from the region start.
    cursor: u64,
    buf: Vec<u64>,
}

struct MnemosyneTxn<'x> {
    inner: &'x mut dyn dude_stm::TmAccess,
    heap_bytes: u64,
}

impl Txn for MnemosyneTxn<'_> {
    fn read_word(&mut self, addr: PAddr) -> TxResult<u64> {
        assert!(addr.is_word_aligned() && addr.offset() + 8 <= self.heap_bytes);
        self.inner.tm_read(addr.offset())
    }

    fn write_word(&mut self, addr: PAddr, val: u64) -> TxResult<()> {
        assert!(addr.is_word_aligned() && addr.offset() + 8 <= self.heap_bytes);
        self.inner.tm_write(addr.offset(), val)
    }
}

impl TxnSystem for Mnemosyne {
    type Thread<'a>
        = MnemosyneThread<'a>
    where
        Self: 'a;

    fn register_thread(&self) -> MnemosyneThread<'_> {
        let slot = self.next_slot.fetch_add(1, Ordering::Relaxed);
        assert!(slot < self.config.max_threads, "too many threads");
        MnemosyneThread {
            sys: self,
            thread: self.stm.register(),
            log: self.logs[slot],
            cursor: LOG_HEADER_WORDS,
            buf: Vec::new(),
        }
    }

    fn name(&self) -> &'static str {
        "Mnemosyne"
    }

    fn heap_words(&self) -> u64 {
        self.config.heap_bytes / 8
    }
}

impl TxnThread for MnemosyneThread<'_> {
    fn run<T>(&mut self, body: &mut dyn FnMut(&mut dyn Txn) -> TxResult<T>) -> TxnOutcome<T> {
        let heap_bytes = self.sys.config.heap_bytes;
        let mut slot = None;
        // Split-borrow dance: the STM thread and the log state are both
        // fields of self, used by different closures.
        let sys = self.sys;
        let log = self.log;
        let mut cursor = self.cursor;
        let buf = &mut self.buf;
        let out = self.thread.run_wb(
            &sys.mem,
            &mut NoHooks,
            |writes, tid| {
                // Synchronous redo-log persist before publication.
                serialize_commit(tid, writes, buf);
                let needed = buf.len() as u64;
                if cursor + needed + 1 > log.len() / 8 {
                    sys.nvm.fence();
                    cursor = LOG_HEADER_WORDS;
                    sys.nvm.write_word(log.start(), cursor);
                    sys.nvm.persist(log.start(), 8);
                }
                let off = log.start() + cursor * 8;
                sys.nvm.write_words(off, buf);
                sys.nvm.flush(off, needed * 8);
                cursor += needed;
                sys.nvm.write_word(log.start(), cursor);
                sys.nvm.flush(log.start(), 8);
                sys.nvm.fence();
            },
            |tx| {
                let mut t = MnemosyneTxn {
                    inner: tx,
                    heap_bytes,
                };
                slot = Some(body(&mut t)?);
                Ok(())
            },
        );
        self.cursor = cursor;
        match out {
            TxnOutcome::Committed { info, .. } => TxnOutcome::Committed {
                value: slot.take().expect("committed body produced a value"),
                info,
            },
            TxnOutcome::Aborted => TxnOutcome::Aborted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dude_nvm::NvmConfig;

    fn setup(heap_bytes: u64) -> (Arc<Nvm>, BaselineConfig) {
        let config = BaselineConfig {
            heap_bytes,
            max_threads: 5,
            log_bytes_per_thread: 8192,
        };
        let bytes = heap_bytes + 5 * 8192;
        (Arc::new(Nvm::new(NvmConfig::for_testing(bytes))), config)
    }

    #[test]
    fn commits_reach_nvm_in_place() {
        let (nvm, config) = setup(1 << 16);
        let sys = Mnemosyne::create(Arc::clone(&nvm), config);
        let mut t = sys.register_thread();
        t.run(&mut |tx| tx.write_word(PAddr::new(0), 42))
            .expect_committed();
        assert_eq!(nvm.read_word(sys.heap_region().start()), 42);
    }

    #[test]
    fn reads_see_own_writes() {
        let (nvm, config) = setup(1 << 16);
        let sys = Mnemosyne::create(nvm, config);
        let mut t = sys.register_thread();
        let v = t
            .run(&mut |tx| {
                tx.write_word(PAddr::new(8), 5)?;
                tx.read_word(PAddr::new(8))
            })
            .expect_committed();
        assert_eq!(v, 5);
    }

    #[test]
    fn durable_at_commit_under_crash() {
        let (nvm, config) = setup(1 << 16);
        {
            let sys = Mnemosyne::create(Arc::clone(&nvm), config);
            let mut t = sys.register_thread();
            for i in 0..20u64 {
                t.run(&mut |tx| {
                    tx.write_word(PAddr::new(i * 8), i + 1)?;
                    tx.write_word(PAddr::new((i + 100) * 8), i + 1)
                })
                .expect_committed();
            }
        }
        nvm.crash();
        let sys = Mnemosyne::recover(Arc::clone(&nvm), config);
        let heap = sys.heap_region();
        for i in 0..20u64 {
            assert_eq!(nvm.read_word(heap.start() + i * 8), i + 1);
            assert_eq!(nvm.read_word(heap.start() + (i + 100) * 8), i + 1);
        }
    }

    #[test]
    fn log_wraps_via_truncation() {
        let (nvm, config) = setup(1 << 16);
        let sys = Mnemosyne::create(Arc::clone(&nvm), config);
        let mut t = sys.register_thread();
        // Each record ~7 words; 1024-word log → forces several truncations.
        for i in 0..500u64 {
            t.run(&mut |tx| tx.write_word(PAddr::new((i % 32) * 8), i))
                .expect_committed();
        }
        for s in 0..32u64 {
            let expect = (0..500u64).filter(|i| i % 32 == s).max().unwrap();
            let v = t
                .run(&mut |tx| tx.read_word(PAddr::new(s * 8)))
                .expect_committed();
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn concurrent_increments_exact() {
        let (nvm, config) = setup(1 << 16);
        let sys = std::sync::Arc::new(Mnemosyne::create(nvm, config));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let sys = std::sync::Arc::clone(&sys);
                s.spawn(move || {
                    let mut t = sys.register_thread();
                    for _ in 0..200 {
                        t.run(&mut |tx| {
                            let v = tx.read_word(PAddr::new(0))?;
                            tx.write_word(PAddr::new(0), v + 1)
                        })
                        .expect_committed();
                    }
                });
            }
        });
        let mut t = sys.register_thread();
        let v = t
            .run(&mut |tx| tx.read_word(PAddr::new(0)))
            .expect_committed();
        assert_eq!(v, 800);
    }
}
