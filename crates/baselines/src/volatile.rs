//! Volatile TM upper bounds (no durability): "Volatile-STM" and
//! "Volatile-HTM" in Figure 2 and Table 4.

use dude_htm::{Htm, HtmConfig};
use dude_stm::{NoHooks, Stm, StmConfig, VecMemory};
use dude_txapi::{PAddr, TxResult, Txn, TxnOutcome, TxnSystem, TxnThread};

/// Word-aligned, bounds-checked `Txn` adapter over a `TmAccess`.
struct AccessTxn<'x> {
    inner: &'x mut dyn dude_stm::TmAccess,
    heap_bytes: u64,
}

impl AccessTxn<'_> {
    #[inline]
    fn check(&self, addr: PAddr) {
        assert!(addr.is_word_aligned(), "unaligned access: {addr}");
        assert!(
            addr.offset() + 8 <= self.heap_bytes,
            "address {addr} beyond heap of {} bytes",
            self.heap_bytes
        );
    }
}

impl Txn for AccessTxn<'_> {
    fn read_word(&mut self, addr: PAddr) -> TxResult<u64> {
        self.check(addr);
        self.inner.tm_read(addr.offset())
    }

    fn write_word(&mut self, addr: PAddr, val: u64) -> TxResult<()> {
        self.check(addr);
        self.inner.tm_write(addr.offset(), val)
    }
}

/// The plain TinySTM-on-DRAM system: DudeTM's theoretical upper bound.
#[derive(Debug)]
pub struct VolatileStm {
    stm: Stm,
    mem: VecMemory,
}

impl VolatileStm {
    /// Creates a volatile STM system with a zeroed heap of `heap_bytes`.
    pub fn new(heap_bytes: u64) -> Self {
        VolatileStm {
            stm: Stm::new(StmConfig::default()),
            mem: VecMemory::new(heap_bytes),
        }
    }

    /// The underlying STM (for statistics).
    pub fn stm(&self) -> &Stm {
        &self.stm
    }
}

/// Per-thread handle for [`VolatileStm`].
#[derive(Debug)]
pub struct VolatileStmThread<'s> {
    thread: dude_stm::StmThread<'s>,
    mem: &'s VecMemory,
    heap_bytes: u64,
}

impl TxnSystem for VolatileStm {
    type Thread<'a>
        = VolatileStmThread<'a>
    where
        Self: 'a;

    fn register_thread(&self) -> VolatileStmThread<'_> {
        VolatileStmThread {
            thread: self.stm.register(),
            mem: &self.mem,
            heap_bytes: self.mem.size_bytes(),
        }
    }

    fn name(&self) -> &'static str {
        "Volatile-STM"
    }

    fn heap_words(&self) -> u64 {
        self.mem.size_bytes() / 8
    }
}

impl TxnThread for VolatileStmThread<'_> {
    fn run<T>(&mut self, body: &mut dyn FnMut(&mut dyn Txn) -> TxResult<T>) -> TxnOutcome<T> {
        let heap_bytes = self.heap_bytes;
        let mut slot = None;
        let out = self.thread.run(self.mem, &mut NoHooks, |tx| {
            let mut t = AccessTxn {
                inner: tx,
                heap_bytes,
            };
            slot = Some(body(&mut t)?);
            Ok(())
        });
        match out {
            TxnOutcome::Committed { info, .. } => TxnOutcome::Committed {
                value: slot.take().expect("committed body produced a value"),
                info,
            },
            TxnOutcome::Aborted => TxnOutcome::Aborted,
        }
    }
}

/// The emulated-HTM-on-DRAM system ("Volatile-HTM", Table 4).
#[derive(Debug)]
pub struct VolatileHtm {
    htm: Htm,
    mem: VecMemory,
}

impl VolatileHtm {
    /// Creates a volatile HTM system with a zeroed heap of `heap_bytes`.
    pub fn new(heap_bytes: u64) -> Self {
        VolatileHtm {
            htm: Htm::new(HtmConfig::default()),
            mem: VecMemory::new(heap_bytes),
        }
    }

    /// The underlying HTM (for statistics).
    pub fn htm(&self) -> &Htm {
        &self.htm
    }
}

/// Per-thread handle for [`VolatileHtm`].
#[derive(Debug)]
pub struct VolatileHtmThread<'s> {
    thread: dude_htm::HtmThread<'s>,
    mem: &'s VecMemory,
    heap_bytes: u64,
}

impl TxnSystem for VolatileHtm {
    type Thread<'a>
        = VolatileHtmThread<'a>
    where
        Self: 'a;

    fn register_thread(&self) -> VolatileHtmThread<'_> {
        VolatileHtmThread {
            thread: self.htm.register(),
            mem: &self.mem,
            heap_bytes: self.mem.size_bytes(),
        }
    }

    fn name(&self) -> &'static str {
        "Volatile-HTM"
    }

    fn heap_words(&self) -> u64 {
        self.mem.size_bytes() / 8
    }
}

impl TxnThread for VolatileHtmThread<'_> {
    fn run<T>(&mut self, body: &mut dyn FnMut(&mut dyn Txn) -> TxResult<T>) -> TxnOutcome<T> {
        let heap_bytes = self.heap_bytes;
        let mut slot = None;
        let out = self.thread.run(self.mem, &mut NoHooks, |tx| {
            let mut t = AccessTxn {
                inner: tx,
                heap_bytes,
            };
            slot = Some(body(&mut t)?);
            Ok(())
        });
        match out {
            TxnOutcome::Committed { info, .. } => TxnOutcome::Committed {
                value: slot.take().expect("committed body produced a value"),
                info,
            },
            TxnOutcome::Aborted => TxnOutcome::Aborted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn increment_loop<S: TxnSystem>(sys: &S, n: u64) {
        let mut t = sys.register_thread();
        for _ in 0..n {
            t.run(&mut |tx| {
                let v = tx.read_word(PAddr::new(0))?;
                tx.write_word(PAddr::new(0), v + 1)
            })
            .expect_committed();
        }
        let v = t
            .run(&mut |tx| tx.read_word(PAddr::new(0)))
            .expect_committed();
        assert_eq!(v, n);
    }

    #[test]
    fn volatile_stm_counts() {
        let sys = VolatileStm::new(4096);
        increment_loop(&sys, 100);
        assert_eq!(sys.name(), "Volatile-STM");
        assert_eq!(sys.heap_words(), 512);
    }

    #[test]
    fn volatile_htm_counts() {
        let sys = VolatileHtm::new(4096);
        increment_loop(&sys, 100);
        assert_eq!(sys.name(), "Volatile-HTM");
    }

    #[test]
    fn wait_durable_is_noop() {
        let sys = VolatileStm::new(4096);
        let mut t = sys.register_thread();
        let out = t.run(&mut |tx| tx.write_word(PAddr::new(8), 1));
        let tid = out.info().unwrap().tid.unwrap();
        t.wait_durable(tid); // returns immediately
        assert_eq!(t.durable_watermark(), u64::MAX);
    }
}
