//! The HashTable and B+-tree micro-benchmarks (§5.1): insert randomly
//! generated 64-bit key/value pairs, one insert per transaction.

use dude_txapi::{TxResult, Txn};

use crate::btree::BTree;
use crate::driver::Workload;
use crate::hashtable::HashTable;
use crate::rng::Rng;

/// Random inserts into a fixed-size hash table ("HashTable" in the paper's
/// figures — the most write-intensive benchmark).
#[derive(Debug, Clone, Copy)]
pub struct HashInsertBench {
    table: HashTable,
    key_space: u64,
}

impl HashInsertBench {
    /// Creates the benchmark over `table`, drawing keys from
    /// `[0, key_space)`. Keep `key_space` below ~70 % of the bucket count
    /// so the table never fills.
    ///
    /// # Panics
    ///
    /// Panics if `key_space` is zero or ≥ the table's bucket count.
    pub fn new(table: HashTable, key_space: u64) -> Self {
        assert!(key_space > 0 && key_space < table.buckets());
        HashInsertBench { table, key_space }
    }

    /// The underlying table.
    pub fn table(&self) -> HashTable {
        self.table
    }
}

impl Workload for HashInsertBench {
    fn name(&self) -> String {
        "HashTable".into()
    }

    fn load_steps(&self) -> u64 {
        0 // starts empty
    }

    fn load_step(&self, _tx: &mut dyn Txn, _step: u64) -> TxResult<()> {
        Ok(())
    }

    fn op(&self, tx: &mut dyn Txn, rng: &mut Rng, _worker: usize) -> TxResult<()> {
        let key = rng.below(self.key_space);
        let val = rng.next_u64();
        self.table.insert(tx, key, val)?;
        Ok(())
    }
}

/// Random inserts into a B+-tree ("B+-tree" in the paper's figures).
#[derive(Debug, Clone, Copy)]
pub struct BTreeInsertBench {
    tree: BTree,
    key_space: u64,
}

impl BTreeInsertBench {
    /// Creates the benchmark over `tree`, drawing keys from
    /// `[0, key_space)`. Size the tree arena for at least
    /// `key_space / 4` nodes.
    pub fn new(tree: BTree, key_space: u64) -> Self {
        assert!(key_space > 0);
        BTreeInsertBench { tree, key_space }
    }

    /// The underlying tree.
    pub fn tree(&self) -> BTree {
        self.tree
    }
}

impl Workload for BTreeInsertBench {
    fn name(&self) -> String {
        "B+-tree".into()
    }

    fn load_steps(&self) -> u64 {
        0
    }

    fn load_step(&self, _tx: &mut dyn Txn, _step: u64) -> TxResult<()> {
        Ok(())
    }

    fn op(&self, tx: &mut dyn Txn, rng: &mut Rng, _worker: usize) -> TxResult<()> {
        let key = rng.below(self.key_space);
        let val = rng.next_u64();
        self.tree.insert(tx, key, val)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dude_txapi::PAddr;
    use std::collections::HashMap;

    #[derive(Default)]
    struct MapTxn(HashMap<u64, u64>);

    impl Txn for MapTxn {
        fn read_word(&mut self, addr: PAddr) -> TxResult<u64> {
            Ok(*self.0.get(&addr.offset()).unwrap_or(&0))
        }
        fn write_word(&mut self, addr: PAddr, val: u64) -> TxResult<()> {
            self.0.insert(addr.offset(), val);
            Ok(())
        }
    }

    #[test]
    fn hash_bench_ops_insert() {
        let bench = HashInsertBench::new(HashTable::new(PAddr::new(0), 256), 128);
        let mut tx = MapTxn::default();
        let mut rng = Rng::new(1);
        for _ in 0..200 {
            bench.op(&mut tx, &mut rng, 0).unwrap();
        }
        // At least one key must now be present.
        let mut found = 0;
        for k in 0..128 {
            if bench.table().get(&mut tx, k).unwrap().is_some() {
                found += 1;
            }
        }
        assert!(found > 50, "only {found} keys present");
    }

    #[test]
    fn btree_bench_ops_insert() {
        let bench = BTreeInsertBench::new(BTree::new(PAddr::new(0), 512), 200);
        let mut tx = MapTxn::default();
        let mut rng = Rng::new(2);
        for _ in 0..300 {
            bench.op(&mut tx, &mut rng, 0).unwrap();
        }
        let mut found = 0;
        for k in 0..200 {
            if bench.tree().get(&mut tx, k).unwrap().is_some() {
                found += 1;
            }
        }
        assert!(found > 80, "only {found} keys present");
    }
}
