//! The bank-transfer micro-benchmark (paper Algorithm 1).
//!
//! Classic TM smoke workload: accounts hold balances; a transaction moves
//! one unit between two random accounts, aborting (user abort = the paper's
//! `dtmAbort`) when the source is empty. The invariant — total balance is
//! conserved — is what the crash-consistency tests check end to end.

use dude_txapi::{PAddr, TxAbort, TxResult, Txn};

use crate::driver::Workload;
use crate::rng::Rng;

/// Descriptor for an array of accounts in the persistent heap.
#[derive(Debug, Clone, Copy)]
pub struct Bank {
    base: PAddr,
    accounts: u64,
    initial_balance: u64,
}

impl Bank {
    /// Creates a descriptor for `accounts` accounts at `base`, each seeded
    /// with `initial_balance` by the load phase.
    ///
    /// # Panics
    ///
    /// Panics if `accounts < 2` or `base` is unaligned.
    pub fn new(base: PAddr, accounts: u64, initial_balance: u64) -> Self {
        assert!(accounts >= 2);
        assert!(base.is_word_aligned());
        Bank {
            base,
            accounts,
            initial_balance,
        }
    }

    /// Number of accounts.
    pub fn accounts(&self) -> u64 {
        self.accounts
    }

    fn addr(&self, i: u64) -> PAddr {
        self.base.add_words(i)
    }

    /// Transfers `amount` from `src` to `dst`.
    ///
    /// # Errors
    ///
    /// [`TxAbort::User`] if the source balance is insufficient; TM
    /// conflicts propagate.
    pub fn transfer(&self, tx: &mut dyn Txn, src: u64, dst: u64, amount: u64) -> TxResult<()> {
        tx.declare_write(self.addr(src), 1)?;
        tx.declare_write(self.addr(dst), 1)?;
        let s = tx.read_word(self.addr(src))?;
        if s < amount {
            return Err(TxAbort::User);
        }
        tx.write_word(self.addr(src), s - amount)?;
        let d = tx.read_word(self.addr(dst))?;
        tx.write_word(self.addr(dst), d + amount)?;
        Ok(())
    }

    /// Reads the total balance (one big read-only transaction).
    ///
    /// # Errors
    ///
    /// Propagates TM conflicts.
    pub fn total(&self, tx: &mut dyn Txn) -> TxResult<u64> {
        let mut sum = 0u64;
        for i in 0..self.accounts {
            sum += tx.read_word(self.addr(i))?;
        }
        Ok(sum)
    }
}

impl Workload for Bank {
    fn name(&self) -> String {
        "Bank".into()
    }

    fn load_steps(&self) -> u64 {
        self.accounts.div_ceil(64)
    }

    fn load_step(&self, tx: &mut dyn Txn, step: u64) -> TxResult<()> {
        let lo = step * 64;
        let hi = (lo + 64).min(self.accounts);
        for i in lo..hi {
            tx.declare_write(self.addr(i), 1)?;
            tx.write_word(self.addr(i), self.initial_balance)?;
        }
        Ok(())
    }

    fn op(&self, tx: &mut dyn Txn, rng: &mut Rng, _worker: usize) -> TxResult<()> {
        let src = rng.below(self.accounts);
        let mut dst = rng.below(self.accounts);
        if dst == src {
            dst = (dst + 1) % self.accounts;
        }
        self.transfer(tx, src, dst, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[derive(Default)]
    struct MapTxn(HashMap<u64, u64>);

    impl Txn for MapTxn {
        fn read_word(&mut self, addr: PAddr) -> TxResult<u64> {
            Ok(*self.0.get(&addr.offset()).unwrap_or(&0))
        }
        fn write_word(&mut self, addr: PAddr, val: u64) -> TxResult<()> {
            self.0.insert(addr.offset(), val);
            Ok(())
        }
    }

    fn load_all(bank: &Bank, tx: &mut MapTxn) {
        for step in 0..bank.load_steps() {
            bank.load_step(tx, step).unwrap();
        }
    }

    #[test]
    fn transfer_moves_money() {
        let bank = Bank::new(PAddr::new(0), 4, 100);
        let mut tx = MapTxn::default();
        load_all(&bank, &mut tx);
        bank.transfer(&mut tx, 0, 1, 30).unwrap();
        assert_eq!(tx.read_word(PAddr::new(0)).unwrap(), 70);
        assert_eq!(tx.read_word(PAddr::new(8)).unwrap(), 130);
        assert_eq!(bank.total(&mut tx).unwrap(), 400);
    }

    #[test]
    fn insufficient_funds_user_aborts() {
        let bank = Bank::new(PAddr::new(0), 2, 5);
        let mut tx = MapTxn::default();
        load_all(&bank, &mut tx);
        assert_eq!(bank.transfer(&mut tx, 0, 1, 6), Err(TxAbort::User));
    }
}
