//! Benchmarks and transactional data structures for the DudeTM
//! reproduction (§5.1).
//!
//! Everything here is written once against [`dude_txapi::Txn`] and runs
//! unchanged on every evaluated system — DudeTM in its three durability
//! modes, the volatile STM/HTM upper bounds, and the Mnemosyne-like and
//! NVML-like baselines.
//!
//! * [`hashtable`] — fixed-size open-addressing hash table (the HashTable
//!   micro-benchmark); supports static-transaction declaration so it also
//!   runs on the NVML-like baseline.
//! * [`btree`] — a B+-tree mapping `u64 → u64` (the B+-tree
//!   micro-benchmark and the index for the tree-based TPC-C/TATP/YCSB
//!   variants).
//! * [`tpcc`] — TPC-C New-Order transactions over either index.
//! * [`tatp`] — TATP Update-Location transactions over either index.
//! * [`ycsb`] — the YCSB session-store workload (Zipfian keys, 50/50
//!   read/update) used for Figure 3 and Figure 4.
//! * [`bank`] — the classic transfer micro-benchmark (paper Algorithm 1).
//! * [`driver`] — the measurement harness: thread fan-out, fixed-duration
//!   runs, abort accounting, and pipelined durable-latency sampling
//!   (§5.3's acknowledgement scheme).
//! * [`rng`] — deterministic RNG plus the Zipfian generator behind the
//!   skewed workloads.

pub mod bank;
pub mod btree;
pub mod driver;
pub mod hashtable;
pub mod kv;
pub mod micro;
pub mod rng;
pub mod tatp;
pub mod tpcc;
pub mod ycsb;

pub use driver::{run_fixed_ops, run_timed, LatencyMode, RunConfig, RunStats, Workload};
pub use kv::{BTreeKv, HashKv, KvIndex, KvKind};
