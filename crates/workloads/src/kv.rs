//! A uniform key-value index over either structure.
//!
//! The paper runs TPC-C, TATP and the YCSB store twice — once with a
//! B+-tree index and once with a hash-table index. [`KvIndex`] lets those
//! workloads be written once and instantiated with either.

use dude_txapi::{PAddr, TxResult, Txn};

use crate::btree::BTree;
use crate::hashtable::HashTable;

/// Which index backs a composite workload (the "(B+-tree)" / "(hash)"
/// variants in the paper's tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvKind {
    /// Ordered B+-tree index.
    BTree,
    /// Open-addressing hash index.
    Hash,
}

impl KvKind {
    /// Suffix used in benchmark names, e.g. `"TPC-C (B+-tree)"`.
    pub fn label(self) -> &'static str {
        match self {
            KvKind::BTree => "B+-tree",
            KvKind::Hash => "hash",
        }
    }
}

/// A transactional `u64 → u64` index.
pub trait KvIndex: Send + Sync + Copy {
    /// Inserts or updates a mapping; returns the previous value.
    ///
    /// # Errors
    ///
    /// Propagates TM conflicts.
    fn insert(&self, tx: &mut dyn Txn, key: u64, value: u64) -> TxResult<Option<u64>>;

    /// Looks a key up.
    ///
    /// # Errors
    ///
    /// Propagates TM conflicts.
    fn get(&self, tx: &mut dyn Txn, key: u64) -> TxResult<Option<u64>>;
}

/// A [`BTree`]-backed index.
#[derive(Debug, Clone, Copy)]
pub struct BTreeKv(pub BTree);

impl BTreeKv {
    /// Creates the index with metadata at `base` and capacity for `nodes`
    /// nodes; see [`BTree::new`].
    pub fn new(base: PAddr, nodes: u64) -> Self {
        BTreeKv(BTree::new(base, nodes))
    }

    /// Heap words needed; see [`BTree::words_needed`].
    pub fn words_needed(nodes: u64) -> u64 {
        BTree::words_needed(nodes)
    }
}

impl KvIndex for BTreeKv {
    fn insert(&self, tx: &mut dyn Txn, key: u64, value: u64) -> TxResult<Option<u64>> {
        self.0.insert(tx, key, value)
    }

    fn get(&self, tx: &mut dyn Txn, key: u64) -> TxResult<Option<u64>> {
        self.0.get(tx, key)
    }
}

/// A [`HashTable`]-backed index.
#[derive(Debug, Clone, Copy)]
pub struct HashKv(pub HashTable);

impl HashKv {
    /// Creates the index at `base` with `buckets` buckets; see
    /// [`HashTable::new`].
    pub fn new(base: PAddr, buckets: u64) -> Self {
        HashKv(HashTable::new(base, buckets))
    }

    /// Heap words needed for `buckets` buckets.
    pub fn words_needed(buckets: u64) -> u64 {
        buckets * 2
    }
}

impl KvIndex for HashKv {
    fn insert(&self, tx: &mut dyn Txn, key: u64, value: u64) -> TxResult<Option<u64>> {
        self.0.insert(tx, key, value)
    }

    fn get(&self, tx: &mut dyn Txn, key: u64) -> TxResult<Option<u64>> {
        self.0.get(tx, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[derive(Default)]
    struct MapTxn(HashMap<u64, u64>);

    impl Txn for MapTxn {
        fn read_word(&mut self, addr: PAddr) -> TxResult<u64> {
            Ok(*self.0.get(&addr.offset()).unwrap_or(&0))
        }
        fn write_word(&mut self, addr: PAddr, val: u64) -> TxResult<()> {
            self.0.insert(addr.offset(), val);
            Ok(())
        }
    }

    fn exercise<K: KvIndex>(kv: K) {
        let mut tx = MapTxn::default();
        assert_eq!(kv.insert(&mut tx, 1, 10).unwrap(), None);
        assert_eq!(kv.insert(&mut tx, 2, 20).unwrap(), None);
        assert_eq!(kv.get(&mut tx, 1).unwrap(), Some(10));
        assert_eq!(kv.insert(&mut tx, 1, 11).unwrap(), Some(10));
        assert_eq!(kv.get(&mut tx, 1).unwrap(), Some(11));
        assert_eq!(kv.get(&mut tx, 3).unwrap(), None);
    }

    #[test]
    fn btree_kv_behaves() {
        exercise(BTreeKv::new(PAddr::new(0), 64));
    }

    #[test]
    fn hash_kv_behaves() {
        exercise(HashKv::new(PAddr::new(0), 64));
    }

    #[test]
    fn labels() {
        assert_eq!(KvKind::BTree.label(), "B+-tree");
        assert_eq!(KvKind::Hash.label(), "hash");
    }
}
