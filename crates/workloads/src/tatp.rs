//! The TATP Update-Location transaction (§5.1).
//!
//! TATP models a mobile-carrier subscriber database; Update Location
//! records a handoff: one index search for the subscriber plus one field
//! update — the paper's shortest transaction (~3000 cycles, one write).

use dude_txapi::{PAddr, TxResult, Txn};

use crate::driver::Workload;
use crate::kv::KvIndex;
use crate::rng::Rng;

/// Words per subscriber record:
/// `[s_id, bit_flags, hex_flags, vlr_location]`.
const RECORD_WORDS: u64 = 4;

/// The TATP workload over any KV index.
#[derive(Debug)]
pub struct Tatp<K: KvIndex> {
    kv: K,
    records_base: PAddr,
    subscribers: u64,
    label: String,
}

impl<K: KvIndex> Tatp<K> {
    /// Creates the workload: `subscribers` records stored at
    /// `records_base`, indexed by `kv`.
    pub fn new(kv: K, records_base: PAddr, subscribers: u64, label: &str) -> Self {
        assert!(subscribers > 0);
        assert!(records_base.is_word_aligned());
        Tatp {
            kv,
            records_base,
            subscribers,
            label: label.to_string(),
        }
    }

    /// Heap words the record region needs.
    pub fn record_words(subscribers: u64) -> u64 {
        subscribers * RECORD_WORDS
    }

    fn record_addr(&self, i: u64) -> PAddr {
        self.records_base.add_words(i * RECORD_WORDS)
    }

    /// The Update-Location transaction body.
    ///
    /// # Errors
    ///
    /// Propagates TM conflicts.
    pub fn update_location(&self, tx: &mut dyn Txn, s_id: u64, location: u64) -> TxResult<()> {
        let off = self
            .kv
            .get(tx, s_id)?
            .expect("subscriber must have been loaded");
        let vlr = PAddr::new(off).add_words(3);
        tx.declare_write(vlr, 1)?;
        tx.write_word(vlr, location)?;
        Ok(())
    }

    /// The Get-Subscriber-Data transaction body (read-only): returns
    /// `[s_id, bit_flags, hex_flags, vlr_location]`.
    ///
    /// TATP's full mix is read-dominated; the paper measures only Update
    /// Location, so this read transaction is an extension used by the mixed
    /// workload below.
    ///
    /// # Errors
    ///
    /// Propagates TM conflicts.
    pub fn get_subscriber_data(&self, tx: &mut dyn Txn, s_id: u64) -> TxResult<[u64; 4]> {
        let off = self
            .kv
            .get(tx, s_id)?
            .expect("subscriber must have been loaded");
        let rec = PAddr::new(off);
        Ok([
            tx.read_word(rec)?,
            tx.read_word(rec.add_words(1))?,
            tx.read_word(rec.add_words(2))?,
            tx.read_word(rec.add_words(3))?,
        ])
    }

    /// Converts this workload into a read/update mix: `update_pct`% Update
    /// Location, the rest Get Subscriber Data.
    pub fn into_mixed(self, update_pct: u64) -> TatpMixed<K> {
        assert!(update_pct <= 100);
        TatpMixed {
            inner: self,
            update_pct,
        }
    }
}

/// A TATP mix of Update-Location and Get-Subscriber-Data transactions
/// (extension beyond the paper's update-only measurement).
#[derive(Debug)]
pub struct TatpMixed<K: KvIndex> {
    inner: Tatp<K>,
    update_pct: u64,
}

impl<K: KvIndex> Workload for TatpMixed<K> {
    fn name(&self) -> String {
        format!("{} {}%upd", self.inner.label, self.update_pct)
    }

    fn load_steps(&self) -> u64 {
        self.inner.load_steps()
    }

    fn load_step(&self, tx: &mut dyn Txn, step: u64) -> TxResult<()> {
        self.inner.load_step(tx, step)
    }

    fn op(&self, tx: &mut dyn Txn, rng: &mut Rng, _worker: usize) -> TxResult<()> {
        let s_id = rng.below(self.inner.subscribers);
        if rng.below(100) < self.update_pct {
            self.inner.update_location(tx, s_id, rng.next_u64())
        } else {
            let data = self.inner.get_subscriber_data(tx, s_id)?;
            assert_eq!(data[0], s_id, "record integrity");
            Ok(())
        }
    }
}

impl<K: KvIndex> Workload for Tatp<K> {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn load_steps(&self) -> u64 {
        self.subscribers.div_ceil(32)
    }

    fn load_step(&self, tx: &mut dyn Txn, step: u64) -> TxResult<()> {
        let lo = step * 32;
        let hi = (lo + 32).min(self.subscribers);
        for s in lo..hi {
            let rec = self.record_addr(s);
            tx.declare_write(rec, RECORD_WORDS)?;
            tx.write_word(rec, s)?;
            tx.write_word(rec.add_words(1), s % 256)?;
            tx.write_word(rec.add_words(2), s % 16)?;
            tx.write_word(rec.add_words(3), 0)?;
            self.kv.insert(tx, s, rec.offset())?;
        }
        Ok(())
    }

    fn op(&self, tx: &mut dyn Txn, rng: &mut Rng, _worker: usize) -> TxResult<()> {
        let s_id = rng.below(self.subscribers);
        let location = rng.next_u64();
        self.update_location(tx, s_id, location)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::HashKv;
    use std::collections::HashMap;

    #[derive(Default)]
    struct MapTxn(HashMap<u64, u64>);

    impl Txn for MapTxn {
        fn read_word(&mut self, addr: PAddr) -> TxResult<u64> {
            Ok(*self.0.get(&addr.offset()).unwrap_or(&0))
        }
        fn write_word(&mut self, addr: PAddr, val: u64) -> TxResult<()> {
            self.0.insert(addr.offset(), val);
            Ok(())
        }
    }

    #[test]
    fn update_location_writes_field() {
        // Index in [0, 4096), records at 4096.
        let tatp = Tatp::new(
            HashKv::new(PAddr::new(0), 256),
            PAddr::new(4096),
            50,
            "TATP (hash)",
        );
        let mut tx = MapTxn::default();
        for s in 0..tatp.load_steps() {
            tatp.load_step(&mut tx, s).unwrap();
        }
        tatp.update_location(&mut tx, 7, 12345).unwrap();
        // Record 7's vlr_location (word 3) holds the new value.
        let rec = tatp.record_addr(7);
        assert_eq!(tx.read_word(rec.add_words(3)).unwrap(), 12345);
        // Neighbour untouched.
        let rec8 = tatp.record_addr(8);
        assert_eq!(tx.read_word(rec8.add_words(3)).unwrap(), 0);
    }

    #[test]
    fn get_subscriber_data_reads_record() {
        let tatp = Tatp::new(
            HashKv::new(PAddr::new(0), 256),
            PAddr::new(4096),
            30,
            "TATP (hash)",
        );
        let mut tx = MapTxn::default();
        for s in 0..tatp.load_steps() {
            tatp.load_step(&mut tx, s).unwrap();
        }
        tatp.update_location(&mut tx, 9, 777).unwrap();
        let data = tatp.get_subscriber_data(&mut tx, 9).unwrap();
        assert_eq!(data, [9, 9, 9, 777]);
    }

    #[test]
    fn mixed_workload_runs_both_kinds() {
        let tatp = Tatp::new(
            HashKv::new(PAddr::new(0), 256),
            PAddr::new(4096),
            20,
            "TATP (hash)",
        )
        .into_mixed(50);
        let mut tx = MapTxn::default();
        for s in 0..tatp.load_steps() {
            tatp.load_step(&mut tx, s).unwrap();
        }
        let mut rng = Rng::new(8);
        for _ in 0..100 {
            tatp.op(&mut tx, &mut rng, 0).unwrap();
        }
        assert!(tatp.name().contains("50%upd"));
    }

    #[test]
    fn op_is_single_update() {
        let tatp = Tatp::new(
            HashKv::new(PAddr::new(0), 256),
            PAddr::new(4096),
            20,
            "TATP (hash)",
        );
        let mut tx = MapTxn::default();
        for s in 0..tatp.load_steps() {
            tatp.load_step(&mut tx, s).unwrap();
        }
        let mut rng = Rng::new(4);
        for _ in 0..50 {
            tatp.op(&mut tx, &mut rng, 0).unwrap();
        }
    }
}
