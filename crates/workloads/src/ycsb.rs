//! The YCSB "Session Store" workload (§5.4).
//!
//! A key-value store preloaded with `records` entries; operations are a
//! 50/50 read/update mix with keys drawn from a Zipfian distribution
//! (constant 0.99 in Figure 3; 0.99 and 1.07 in Figure 4). The heavy skew
//! is what makes cross-transaction log combination so effective.

use dude_txapi::{TxResult, Txn};

use crate::driver::Workload;
use crate::kv::KvIndex;
use crate::rng::{Rng, Zipf};

/// The session-store workload over any KV index.
#[derive(Debug)]
pub struct SessionStore<K: KvIndex> {
    kv: K,
    records: u64,
    zipf: Zipf,
    /// Update probability in percent (paper: 50).
    update_pct: u64,
    label: String,
}

impl<K: KvIndex> SessionStore<K> {
    /// Creates the workload: `records` preloaded keys, Zipfian skew
    /// `theta`, `update_pct`% updates.
    ///
    /// # Panics
    ///
    /// Panics if `records` is zero or `update_pct > 100`.
    pub fn new(kv: K, records: u64, theta: f64, update_pct: u64, label: &str) -> Self {
        assert!(records > 0);
        assert!(update_pct <= 100);
        SessionStore {
            kv,
            records,
            zipf: Zipf::new(records, theta),
            update_pct,
            label: label.to_string(),
        }
    }

    /// Number of preloaded records.
    pub fn records(&self) -> u64 {
        self.records
    }
}

impl<K: KvIndex> Workload for SessionStore<K> {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn load_steps(&self) -> u64 {
        self.records.div_ceil(64)
    }

    fn load_step(&self, tx: &mut dyn Txn, step: u64) -> TxResult<()> {
        let lo = step * 64;
        let hi = (lo + 64).min(self.records);
        for k in lo..hi {
            self.kv.insert(tx, k, k)?;
        }
        Ok(())
    }

    fn op(&self, tx: &mut dyn Txn, rng: &mut Rng, _worker: usize) -> TxResult<()> {
        let key = self.zipf.sample(rng);
        if rng.below(100) < self.update_pct {
            self.kv.insert(tx, key, rng.next_u64())?;
        } else {
            let _ = self.kv.get(tx, key)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::BTreeKv;
    use dude_txapi::PAddr;
    use std::collections::HashMap;

    #[derive(Default)]
    struct MapTxn(HashMap<u64, u64>);

    impl Txn for MapTxn {
        fn read_word(&mut self, addr: PAddr) -> TxResult<u64> {
            Ok(*self.0.get(&addr.offset()).unwrap_or(&0))
        }
        fn write_word(&mut self, addr: PAddr, val: u64) -> TxResult<()> {
            self.0.insert(addr.offset(), val);
            Ok(())
        }
    }

    #[test]
    fn load_then_ops() {
        let store = SessionStore::new(
            BTreeKv::new(PAddr::new(0), 1024),
            100,
            0.99,
            50,
            "YCSB (B+-tree)",
        );
        let mut tx = MapTxn::default();
        for s in 0..store.load_steps() {
            store.load_step(&mut tx, s).unwrap();
        }
        // All loaded keys resolve.
        for k in 0..100 {
            assert_eq!(store.kv.get(&mut tx, k).unwrap(), Some(k));
        }
        let mut rng = Rng::new(9);
        for _ in 0..200 {
            store.op(&mut tx, &mut rng, 0).unwrap();
        }
        assert_eq!(store.name(), "YCSB (B+-tree)");
        assert_eq!(store.records(), 100);
    }
}
