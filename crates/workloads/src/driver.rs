//! The measurement harness.
//!
//! Drives a [`Workload`] over any [`TxnSystem`] with a configurable number
//! of worker threads, either for a fixed wall-clock duration or a fixed
//! operation count, and reports throughput, abort statistics and optional
//! durable-acknowledgement latency percentiles.
//!
//! Latency is measured with the paper's pipelined acknowledgement scheme
//! (§5.3): workers run transactions back-to-back, keep a queue of
//! outstanding `(transaction ID, start time)` pairs, and acknowledge every
//! outstanding transaction whose ID the global durable ID has passed. No
//! worker ever stalls waiting for its own transaction — exactly the
//! "check the durable ID between transactions" loop the paper describes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use dude_txapi::{TxResult, Txn, TxnSystem, TxnThread};

use crate::rng::Rng;

/// A benchmark workload: a load phase plus a repeatable operation.
pub trait Workload: Sync {
    /// Display name (e.g. `"TPC-C (B+-tree)"`).
    fn name(&self) -> String;

    /// Number of load steps; the driver runs **each step as its own
    /// transaction** so large datasets do not overflow per-transaction
    /// logs.
    fn load_steps(&self) -> u64 {
        1
    }

    /// Executes load step `step`.
    ///
    /// # Errors
    ///
    /// Propagates TM conflicts (the driver retries via the system).
    fn load_step(&self, tx: &mut dyn Txn, step: u64) -> TxResult<()>;

    /// Executes one operation (one transaction body).
    ///
    /// # Errors
    ///
    /// Propagates TM conflicts; may return user aborts.
    fn op(&self, tx: &mut dyn Txn, rng: &mut Rng, worker: usize) -> TxResult<()>;
}

/// Latency measurement mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyMode {
    /// No latency accounting (lowest overhead).
    Off,
    /// Pipelined durable-acknowledgement latency (§5.3), sampling one in
    /// `sample_every` committed transactions.
    DurableAck {
        /// Sampling interval (1 = every transaction).
        sample_every: u64,
    },
}

/// Run parameters.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Worker threads.
    pub threads: usize,
    /// RNG seed (runs are deterministic per seed and thread count).
    pub seed: u64,
    /// Latency accounting.
    pub latency: LatencyMode,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            threads: 4,
            seed: 42,
            latency: LatencyMode::Off,
        }
    }
}

/// Durable-latency percentiles in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyPercentiles {
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Number of samples.
    pub samples: u64,
}

/// Results of one run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Workload name.
    pub workload: String,
    /// System name.
    pub system: &'static str,
    /// Worker threads used.
    pub threads: usize,
    /// Committed operations.
    pub committed: u64,
    /// User-aborted operations.
    pub user_aborted: u64,
    /// Conflict retries observed.
    pub retries: u64,
    /// Wall-clock duration of the measurement phase.
    pub elapsed: Duration,
    /// Committed operations per second.
    pub throughput: f64,
    /// Durable-acknowledgement latency, when enabled.
    pub latency: Option<LatencyPercentiles>,
}

impl RunStats {
    /// Abort (retry) rate per committed transaction.
    pub fn retry_rate(&self) -> f64 {
        if self.committed == 0 {
            return 0.0;
        }
        self.retries as f64 / self.committed as f64
    }
}

/// Runs the load phase on one registered thread, one transaction per load
/// step, then quiesces the system.
pub fn load_workload<S: TxnSystem>(sys: &S, workload: &dyn Workload) {
    let mut t = sys.register_thread();
    for step in 0..workload.load_steps() {
        let outcome = t.run(&mut |tx| workload.load_step(tx, step));
        assert!(outcome.is_committed(), "load step {step} user-aborted");
    }
    drop(t);
    sys.quiesce();
}

/// Per-cell driver hooks around the load/measure phases, consumed by the
/// `dude-bench` spec runner: `after_load` fires once the load phase has
/// been quiesced (systems snapshot their counters there so load traffic is
/// excluded from the measurement), `after_run` fires with the final stats
/// before the cell is torn down (specs export system-internal counters
/// there while the instance is still alive).
#[derive(Default)]
pub struct RunHooks<'a> {
    /// Called after [`load_workload`] has returned (post-quiesce).
    pub after_load: Option<&'a dyn Fn()>,
    /// Called with the measurement stats before the cell is dropped.
    pub after_run: Option<&'a dyn Fn(&RunStats)>,
}

/// Runs one complete cell — load phase, hooks, fixed-ops measurement —
/// and returns the measurement stats.
pub fn run_cell<S: TxnSystem>(
    sys: &S,
    workload: &dyn Workload,
    config: RunConfig,
    ops_per_thread: u64,
    hooks: RunHooks<'_>,
) -> RunStats {
    load_workload(sys, workload);
    if let Some(h) = hooks.after_load {
        h();
    }
    let stats = run_fixed_ops(sys, workload, config, ops_per_thread);
    if let Some(h) = hooks.after_run {
        h(&stats);
    }
    stats
}

/// Runs `workload` for `duration` of wall-clock time.
pub fn run_timed<S, W>(sys: &S, workload: &W, config: RunConfig, duration: Duration) -> RunStats
where
    S: TxnSystem,
    W: Workload + ?Sized,
{
    run_inner(sys, workload, config, Some(duration), u64::MAX)
}

/// Runs `workload` for exactly `ops_per_thread` operations per worker.
pub fn run_fixed_ops<S, W>(
    sys: &S,
    workload: &W,
    config: RunConfig,
    ops_per_thread: u64,
) -> RunStats
where
    S: TxnSystem,
    W: Workload + ?Sized,
{
    run_inner(sys, workload, config, None, ops_per_thread)
}

fn run_inner<S, W>(
    sys: &S,
    workload: &W,
    config: RunConfig,
    duration: Option<Duration>,
    ops_per_thread: u64,
) -> RunStats
where
    S: TxnSystem,
    W: Workload + ?Sized,
{
    assert!(config.threads >= 1);
    let committed = AtomicU64::new(0);
    let user_aborted = AtomicU64::new(0);
    let retries = AtomicU64::new(0);
    let all_samples: parking_lot_free::Collector = parking_lot_free::Collector::default();
    let start = Instant::now();

    std::thread::scope(|scope| {
        for worker in 0..config.threads {
            let committed = &committed;
            let user_aborted = &user_aborted;
            let retries = &retries;
            let all_samples = &all_samples;
            scope.spawn(move || {
                let mut t = sys.register_thread();
                let mut rng = Rng::new(config.seed ^ (worker as u64 + 1).wrapping_mul(0xA5A5));
                let mut my_committed = 0u64;
                let mut my_aborted = 0u64;
                let mut my_retries = 0u64;
                let mut outstanding: std::collections::VecDeque<(u64, Instant)> =
                    std::collections::VecDeque::new();
                let mut samples: Vec<u64> = Vec::new();
                let mut ops = 0u64;
                loop {
                    if ops >= ops_per_thread {
                        break;
                    }
                    if let Some(d) = duration {
                        if ops.is_multiple_of(64) && start.elapsed() >= d {
                            break;
                        }
                    }
                    ops += 1;
                    let t0 = Instant::now();
                    let outcome = t.run(&mut |tx| workload.op(tx, &mut rng, worker));
                    match outcome.info() {
                        Some(info) => {
                            my_committed += 1;
                            my_retries += u64::from(info.retries);
                            if let LatencyMode::DurableAck { sample_every } = config.latency {
                                match info.tid {
                                    Some(tid) => {
                                        if ops.is_multiple_of(sample_every) {
                                            outstanding.push_back((tid, t0));
                                        }
                                    }
                                    // No transaction ID: a synchronously
                                    // durable system (NVML) or a read-only
                                    // transaction — durable at return.
                                    None => {
                                        if ops.is_multiple_of(sample_every) {
                                            samples.push(t0.elapsed().as_nanos() as u64);
                                        }
                                    }
                                }
                                // Acknowledge everything the durable ID has
                                // passed (the paper's between-transactions
                                // check).
                                let wm = t.durable_watermark();
                                let now = Instant::now();
                                while outstanding.front().is_some_and(|&(tid, _)| tid <= wm) {
                                    let (_, s) = outstanding.pop_front().expect("peeked");
                                    samples.push((now - s).as_nanos() as u64);
                                }
                            }
                        }
                        None => my_aborted += 1,
                    }
                }
                // Drain outstanding acknowledgements.
                if let Some(&(last_tid, _)) = outstanding.back() {
                    t.wait_durable(last_tid);
                    let now = Instant::now();
                    for (_, s) in outstanding.drain(..) {
                        samples.push((now - s).as_nanos() as u64);
                    }
                }
                committed.fetch_add(my_committed, Ordering::Relaxed);
                user_aborted.fetch_add(my_aborted, Ordering::Relaxed);
                retries.fetch_add(my_retries, Ordering::Relaxed);
                all_samples.add(samples);
            });
        }
    });

    let elapsed = start.elapsed();
    let committed = committed.into_inner();
    let latency = match config.latency {
        LatencyMode::Off => None,
        LatencyMode::DurableAck { .. } => Some(percentiles(all_samples.into_vec())),
    };
    RunStats {
        workload: workload.name(),
        system: sys.name(),
        threads: config.threads,
        committed,
        user_aborted: user_aborted.into_inner(),
        retries: retries.into_inner(),
        elapsed,
        throughput: committed as f64 / elapsed.as_secs_f64(),
        latency,
    }
}

fn percentiles(mut samples: Vec<u64>) -> LatencyPercentiles {
    if samples.is_empty() {
        return LatencyPercentiles {
            p50: 0,
            p90: 0,
            p99: 0,
            samples: 0,
        };
    }
    samples.sort_unstable();
    let at = |q: f64| samples[((samples.len() - 1) as f64 * q) as usize];
    LatencyPercentiles {
        p50: at(0.50),
        p90: at(0.90),
        p99: at(0.99),
        samples: samples.len() as u64,
    }
}

/// Minimal mutex-based sample collector (avoids a dependency for one use).
mod parking_lot_free {
    use std::sync::Mutex;

    #[derive(Default)]
    pub struct Collector {
        inner: Mutex<Vec<u64>>,
    }

    impl Collector {
        pub fn add(&self, mut samples: Vec<u64>) {
            self.inner
                .lock()
                .expect("collector poisoned")
                .append(&mut samples);
        }

        pub fn into_vec(self) -> Vec<u64> {
            self.inner.into_inner().expect("collector poisoned")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dude_txapi::{CommitInfo, PAddr, TxnOutcome};
    use std::collections::HashMap;
    use std::sync::Mutex;

    /// A toy sequential system: one global map behind a mutex, tids counted.
    #[derive(Default)]
    struct ToySystem {
        mem: Mutex<HashMap<u64, u64>>,
        clock: AtomicU64,
    }

    struct ToyThread<'a>(&'a ToySystem);

    struct ToyTxn<'a>(std::sync::MutexGuard<'a, HashMap<u64, u64>>, bool);

    impl Txn for ToyTxn<'_> {
        fn read_word(&mut self, addr: PAddr) -> TxResult<u64> {
            Ok(*self.0.get(&addr.offset()).unwrap_or(&0))
        }
        fn write_word(&mut self, addr: PAddr, val: u64) -> TxResult<()> {
            self.1 = true;
            self.0.insert(addr.offset(), val);
            Ok(())
        }
    }

    impl TxnSystem for ToySystem {
        type Thread<'a> = ToyThread<'a>;
        fn register_thread(&self) -> ToyThread<'_> {
            ToyThread(self)
        }
        fn name(&self) -> &'static str {
            "Toy"
        }
        fn heap_words(&self) -> u64 {
            1 << 20
        }
    }

    impl TxnThread for ToyThread<'_> {
        fn run<T>(&mut self, body: &mut dyn FnMut(&mut dyn Txn) -> TxResult<T>) -> TxnOutcome<T> {
            let guard = self.0.mem.lock().expect("toy lock");
            let mut tx = ToyTxn(guard, false);
            match body(&mut tx) {
                Ok(v) => {
                    let tid = if tx.1 {
                        Some(self.0.clock.fetch_add(1, Ordering::Relaxed) + 1)
                    } else {
                        None
                    };
                    TxnOutcome::Committed {
                        value: v,
                        info: CommitInfo { tid, retries: 0 },
                    }
                }
                Err(_) => TxnOutcome::Aborted,
            }
        }
        fn durable_watermark(&self) -> u64 {
            self.0.clock.load(Ordering::Relaxed)
        }
    }

    struct CounterWorkload;

    impl Workload for CounterWorkload {
        fn name(&self) -> String {
            "counter".into()
        }
        fn load_step(&self, tx: &mut dyn Txn, _step: u64) -> TxResult<()> {
            tx.write_word(PAddr::new(0), 0)
        }
        fn op(&self, tx: &mut dyn Txn, _rng: &mut Rng, _w: usize) -> TxResult<()> {
            let v = tx.read_word(PAddr::new(0))?;
            tx.write_word(PAddr::new(0), v + 1)
        }
    }

    #[test]
    fn fixed_ops_counts_exactly() {
        let sys = ToySystem::default();
        load_workload(&sys, &CounterWorkload);
        let stats = run_fixed_ops(
            &sys,
            &CounterWorkload,
            RunConfig {
                threads: 3,
                ..RunConfig::default()
            },
            100,
        );
        assert_eq!(stats.committed, 300);
        assert_eq!(stats.user_aborted, 0);
        assert_eq!(stats.system, "Toy");
        assert!(stats.throughput > 0.0);
        let v = *sys.mem.lock().unwrap().get(&0).unwrap();
        assert_eq!(v, 300);
    }

    #[test]
    fn timed_run_terminates() {
        let sys = ToySystem::default();
        load_workload(&sys, &CounterWorkload);
        let stats = run_timed(
            &sys,
            &CounterWorkload,
            RunConfig {
                threads: 2,
                ..RunConfig::default()
            },
            Duration::from_millis(50),
        );
        assert!(stats.committed > 0);
        assert!(stats.elapsed >= Duration::from_millis(50));
    }

    #[test]
    fn latency_sampling_produces_percentiles() {
        let sys = ToySystem::default();
        load_workload(&sys, &CounterWorkload);
        let stats = run_fixed_ops(
            &sys,
            &CounterWorkload,
            RunConfig {
                threads: 1,
                latency: LatencyMode::DurableAck { sample_every: 1 },
                ..RunConfig::default()
            },
            200,
        );
        let lat = stats.latency.expect("latency enabled");
        assert_eq!(lat.samples, 200);
        assert!(lat.p50 <= lat.p90 && lat.p90 <= lat.p99);
    }

    #[test]
    fn percentiles_of_empty_are_zero() {
        let p = percentiles(Vec::new());
        assert_eq!(p.samples, 0);
        assert_eq!(p.p99, 0);
    }

    #[test]
    fn run_cell_fires_hooks_in_order() {
        let sys = ToySystem::default();
        let after_load = std::cell::Cell::new(false);
        let after_run = std::cell::Cell::new(0u64);
        let stats = run_cell(
            &sys,
            &CounterWorkload,
            RunConfig {
                threads: 1,
                ..RunConfig::default()
            },
            50,
            RunHooks {
                after_load: Some(&|| after_load.set(true)),
                after_run: Some(&|s: &RunStats| after_run.set(s.committed)),
            },
        );
        assert!(after_load.get());
        assert_eq!(after_run.get(), 50);
        assert_eq!(stats.committed, 50);
    }

    #[test]
    fn retry_rate_math() {
        let stats = RunStats {
            workload: "x".into(),
            system: "y",
            threads: 1,
            committed: 100,
            user_aborted: 0,
            retries: 25,
            elapsed: Duration::from_secs(1),
            throughput: 100.0,
            latency: None,
        };
        assert!((stats.retry_rate() - 0.25).abs() < 1e-9);
    }
}
