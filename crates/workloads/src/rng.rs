//! Deterministic random number generation for workloads.
//!
//! A SplitMix64 core keeps runs reproducible across systems (the same seed
//! produces the same operation stream on DudeTM and every baseline), and a
//! Zipfian generator provides the skewed key distributions of §5.4/§5.5
//! (constants 0.99 and 1.07).

/// A small, fast, deterministic RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        Rng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire-style rejection-free approximation is fine for workloads.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi]` (inclusive).
    pub fn between(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A Zipfian distribution over `[0, n)` with skew `theta`.
///
/// Built from the inverse CDF (precomputed table + binary search), which is
/// exact and fast enough for the 10 K–1 M element populations the paper's
/// skewed workloads use.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipfian distribution over `n` items with parameter
    /// `theta` (the paper uses 0.99 and 1.07).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is not positive.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "population must be positive");
        assert!(theta > 0.0, "theta must be positive");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Population size.
    pub fn n(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// Samples a rank in `[0, n)`; rank 0 is the most popular item.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let u = rng.unit_f64();
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
        // All residues show up.
        let mut seen = [false; 13];
        for _ in 0..10_000 {
            seen[r.below(13) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn between_is_inclusive() {
        let mut r = Rng::new(9);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let v = r.between(3, 5);
            assert!((3..=5).contains(&v));
            lo_seen |= v == 3;
            hi_seen |= v == 5;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn zipf_is_skewed() {
        let z = Zipf::new(1000, 0.99);
        let mut r = Rng::new(1);
        let mut counts = vec![0u64; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut r) as usize] += 1;
        }
        // Rank 0 dominates; top-10 takes a large share.
        assert!(counts[0] > counts[500] * 20);
        let top10: u64 = counts[..10].iter().sum();
        assert!(top10 > 30_000, "zipf(0.99) top-10 share too small: {top10}");
    }

    #[test]
    fn zipf_higher_theta_is_more_skewed() {
        let mut r1 = Rng::new(5);
        let mut r2 = Rng::new(5);
        let z99 = Zipf::new(10_000, 0.99);
        let z107 = Zipf::new(10_000, 1.07);
        let hits = |z: &Zipf, r: &mut Rng| -> u64 {
            (0..50_000).filter(|_| z.sample(r) < 10).count() as u64
        };
        let h99 = hits(&z99, &mut r1);
        let h107 = hits(&z107, &mut r2);
        assert!(h107 > h99, "1.07 should be more skewed: {h107} vs {h99}");
    }

    #[test]
    fn zipf_covers_population() {
        let z = Zipf::new(10, 0.99);
        let mut r = Rng::new(3);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            seen[z.sample(&mut r) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(z.n(), 10);
    }
}
