//! The TPC-C New-Order transaction (§5.1).
//!
//! The paper implements New-Order — "a customer buying different items from
//! a local warehouse" — as its write-intensive realistic workload, with
//! both a B+-tree and a hash table as the order-table index. Directly
//! keyed tables (warehouse, district, customer, item, stock) are flat
//! record arrays; inserted rows (orders, new-orders, order lines) are
//! bump-allocated records registered in the KV index under tagged keys.
//!
//! The per-district variant of Figure 5 ("each thread serves customer
//! requests for a fixed district") is available via
//! [`TpccParams::partition_by_worker`].

use dude_txapi::{PAddr, TxResult, Txn};

use crate::driver::Workload;
use crate::kv::KvIndex;
use crate::rng::Rng;

const WAREHOUSE_WORDS: u64 = 2; // [w_tax, w_ytd]
const DISTRICT_WORDS: u64 = 3; // [d_tax, d_ytd, d_next_o_id]
const CUSTOMER_WORDS: u64 = 2; // [c_discount, c_balance]
const ITEM_WORDS: u64 = 1; // [i_price]
const STOCK_WORDS: u64 = 4; // [s_quantity, s_ytd, s_order_cnt, s_remote_cnt]
const ORDER_WORDS: u64 = 4; // [o_c_id, o_ol_cnt, o_entry_d, o_d_id]
const ORDER_LINE_WORDS: u64 = 4; // [ol_i_id, ol_quantity, ol_amount, _pad]

// Index key tags (high byte).
const TAG_ORDER: u64 = 1 << 56;
const TAG_NEW_ORDER: u64 = 2 << 56;
const TAG_ORDER_LINE: u64 = 3 << 56;

/// Scale parameters (shrinkable for tests; paper-scale defaults).
#[derive(Debug, Clone, Copy)]
pub struct TpccParams {
    /// Districts in the single warehouse (TPC-C: 10).
    pub districts: u64,
    /// Customers per district (TPC-C: 3000).
    pub customers_per_district: u64,
    /// Item catalogue size (TPC-C: 100 000).
    pub items: u64,
    /// Capacity of the order/order-line arenas, in orders.
    pub max_orders: u64,
    /// Figure 5's low-conflict variant: worker `w` always uses district
    /// `w % districts`, eliminating next-order-ID conflicts.
    pub partition_by_worker: bool,
    /// Percentage of operations that run Payment instead of New-Order
    /// (extension; the paper measures New-Order only, i.e. 0).
    pub payment_pct: u64,
}

impl TpccParams {
    /// Paper-scale parameters.
    pub fn standard(max_orders: u64) -> Self {
        TpccParams {
            districts: 10,
            customers_per_district: 3000,
            items: 100_000,
            max_orders,
            partition_by_worker: false,
            payment_pct: 0,
        }
    }

    /// Tiny parameters for functional tests.
    pub fn tiny() -> Self {
        TpccParams {
            districts: 2,
            customers_per_district: 16,
            items: 64,
            max_orders: 4096,
            partition_by_worker: false,
            payment_pct: 0,
        }
    }
}

/// The TPC-C New-Order workload over any KV index.
#[derive(Debug)]
pub struct Tpcc<K: KvIndex> {
    kv: K,
    params: TpccParams,
    warehouse: PAddr,
    districts: PAddr,
    customers: PAddr,
    items: PAddr,
    stocks: PAddr,
    order_bump: PAddr,
    order_arena: PAddr,
    ol_bump: PAddr,
    ol_arena: PAddr,
    label: String,
}

impl<K: KvIndex> Tpcc<K> {
    /// Heap words needed for the flat tables and arenas (the index is
    /// sized separately).
    pub fn words_needed(p: &TpccParams) -> u64 {
        WAREHOUSE_WORDS
            + p.districts * DISTRICT_WORDS
            + p.districts * p.customers_per_district * CUSTOMER_WORDS
            + p.items * ITEM_WORDS
            + p.items * STOCK_WORDS
            + 1
            + p.max_orders * ORDER_WORDS
            + 1
            + p.max_orders * 15 * ORDER_LINE_WORDS
    }

    /// Creates the workload with its tables laid out at `base`.
    pub fn new(kv: K, base: PAddr, params: TpccParams, label: &str) -> Self {
        assert!(base.is_word_aligned());
        let mut cursor = base;
        let mut take = |words: u64| {
            let r = cursor;
            cursor = cursor.add_words(words);
            r
        };
        let warehouse = take(WAREHOUSE_WORDS);
        let districts = take(params.districts * DISTRICT_WORDS);
        let customers = take(params.districts * params.customers_per_district * CUSTOMER_WORDS);
        let items = take(params.items * ITEM_WORDS);
        let stocks = take(params.items * STOCK_WORDS);
        let order_bump = take(1);
        let order_arena = take(params.max_orders * ORDER_WORDS);
        let ol_bump = take(1);
        let ol_arena = take(params.max_orders * 15 * ORDER_LINE_WORDS);
        Tpcc {
            kv,
            params,
            warehouse,
            districts,
            customers,
            items,
            stocks,
            order_bump,
            order_arena,
            ol_bump,
            ol_arena,
            label: label.to_string(),
        }
    }

    /// The scale parameters.
    pub fn params(&self) -> &TpccParams {
        &self.params
    }

    fn district_addr(&self, d: u64) -> PAddr {
        self.districts.add_words(d * DISTRICT_WORDS)
    }

    fn customer_addr(&self, d: u64, c: u64) -> PAddr {
        self.customers
            .add_words((d * self.params.customers_per_district + c) * CUSTOMER_WORDS)
    }

    fn item_addr(&self, i: u64) -> PAddr {
        self.items.add_words(i * ITEM_WORDS)
    }

    fn stock_addr(&self, i: u64) -> PAddr {
        self.stocks.add_words(i * STOCK_WORDS)
    }

    fn key_order(d: u64, o: u64) -> u64 {
        TAG_ORDER | (d << 40) | o
    }

    fn key_new_order(d: u64, o: u64) -> u64 {
        TAG_NEW_ORDER | (d << 40) | o
    }

    fn key_order_line(d: u64, o: u64, l: u64) -> u64 {
        TAG_ORDER_LINE | (d << 40) | (o << 8) | l
    }

    /// Bump-allocates `words` from the arena whose cursor is at `bump`.
    fn bump(
        &self,
        tx: &mut dyn Txn,
        bump: PAddr,
        arena: PAddr,
        words: u64,
        cap_words: u64,
    ) -> TxResult<PAddr> {
        tx.declare_write(bump, 1)?;
        let used = tx.read_word(bump)?;
        assert!(
            used + words <= cap_words,
            "TPC-C arena exhausted; raise TpccParams::max_orders"
        );
        tx.write_word(bump, used + words)?;
        Ok(arena.add_words(used))
    }

    /// The New-Order transaction body.
    ///
    /// # Errors
    ///
    /// Propagates TM conflicts.
    pub fn new_order(
        &self,
        tx: &mut dyn Txn,
        d: u64,
        c: u64,
        lines: &[(u64, u64)], // (item, quantity)
    ) -> TxResult<u64> {
        let w_tax = tx.read_word(self.warehouse)?;
        let daddr = self.district_addr(d);
        let d_tax = tx.read_word(daddr)?;
        let c_discount = tx.read_word(self.customer_addr(d, c))?;
        // Allocate the order ID from the district.
        tx.declare_write(daddr.add_words(2), 1)?;
        let o_id = tx.read_word(daddr.add_words(2))?;
        tx.write_word(daddr.add_words(2), o_id + 1)?;
        // Insert the ORDER and NEW-ORDER rows.
        let order = self.bump(
            tx,
            self.order_bump,
            self.order_arena,
            ORDER_WORDS,
            self.params.max_orders * ORDER_WORDS,
        )?;
        tx.declare_write(order, ORDER_WORDS)?;
        tx.write_word(order, c)?;
        tx.write_word(order.add_words(1), lines.len() as u64)?;
        tx.write_word(order.add_words(2), o_id)?;
        tx.write_word(order.add_words(3), d)?;
        self.kv
            .insert(tx, Self::key_order(d, o_id), order.offset())?;
        self.kv.insert(tx, Self::key_new_order(d, o_id), 1)?;
        // Order lines with stock updates.
        let mut total = 0u64;
        for (l, &(item, qty)) in lines.iter().enumerate() {
            let price = tx.read_word(self.item_addr(item))?;
            let saddr = self.stock_addr(item);
            tx.declare_write(saddr, STOCK_WORDS)?;
            let s_qty = tx.read_word(saddr)?;
            let new_qty = if s_qty >= qty + 10 {
                s_qty - qty
            } else {
                s_qty + 91 - qty
            };
            tx.write_word(saddr, new_qty)?;
            let ytd = tx.read_word(saddr.add_words(1))?;
            tx.write_word(saddr.add_words(1), ytd + qty)?;
            let cnt = tx.read_word(saddr.add_words(2))?;
            tx.write_word(saddr.add_words(2), cnt + 1)?;
            let amount = qty * price;
            total += amount;
            let ol = self.bump(
                tx,
                self.ol_bump,
                self.ol_arena,
                ORDER_LINE_WORDS,
                self.params.max_orders * 15 * ORDER_LINE_WORDS,
            )?;
            tx.declare_write(ol, ORDER_LINE_WORDS)?;
            tx.write_word(ol, item)?;
            tx.write_word(ol.add_words(1), qty)?;
            tx.write_word(ol.add_words(2), amount)?;
            self.kv
                .insert(tx, Self::key_order_line(d, o_id, l as u64), ol.offset())?;
        }
        // The computed order total (tax/discount applied) — returned so the
        // workload has a data dependency on every read.
        Ok(total * (100 + w_tax + d_tax) * (100 - c_discount) / 10_000)
    }

    /// The Payment transaction body (extension — the paper measures only
    /// New-Order): pays `amount` from customer `(d, c)`, updating the
    /// warehouse and district year-to-date totals and the customer balance.
    ///
    /// # Errors
    ///
    /// Propagates TM conflicts.
    pub fn payment(&self, tx: &mut dyn Txn, d: u64, c: u64, amount: u64) -> TxResult<()> {
        tx.declare_write(self.warehouse.add_words(1), 1)?;
        let w_ytd = tx.read_word(self.warehouse.add_words(1))?;
        tx.write_word(self.warehouse.add_words(1), w_ytd + amount)?;
        let daddr = self.district_addr(d).add_words(1);
        tx.declare_write(daddr, 1)?;
        let d_ytd = tx.read_word(daddr)?;
        tx.write_word(daddr, d_ytd + amount)?;
        let caddr = self.customer_addr(d, c).add_words(1);
        tx.declare_write(caddr, 1)?;
        let bal = tx.read_word(caddr)?;
        tx.write_word(caddr, bal.wrapping_sub(amount))?;
        Ok(())
    }

    /// Reads an order row back through the index (used by tests).
    ///
    /// # Errors
    ///
    /// Propagates TM conflicts.
    pub fn order_customer(&self, tx: &mut dyn Txn, d: u64, o_id: u64) -> TxResult<Option<u64>> {
        match self.kv.get(tx, Self::key_order(d, o_id))? {
            Some(off) => Ok(Some(tx.read_word(PAddr::new(off))?)),
            None => Ok(None),
        }
    }
}

impl<K: KvIndex> Workload for Tpcc<K> {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn load_steps(&self) -> u64 {
        // Steps: warehouse+districts (1), customers, items, stocks.
        let p = &self.params;
        1 + (p.districts * p.customers_per_district).div_ceil(64)
            + p.items.div_ceil(64)
            + p.items.div_ceil(16)
    }

    fn load_step(&self, tx: &mut dyn Txn, step: u64) -> TxResult<()> {
        let p = &self.params;
        let customer_steps = (p.districts * p.customers_per_district).div_ceil(64);
        let item_steps = p.items.div_ceil(64);
        if step == 0 {
            tx.declare_write(self.warehouse, WAREHOUSE_WORDS)?;
            tx.write_word(self.warehouse, 7)?; // w_tax 7%
            for d in 0..p.districts {
                let daddr = self.district_addr(d);
                tx.declare_write(daddr, DISTRICT_WORDS)?;
                tx.write_word(daddr, 5 + d % 5)?; // d_tax
                tx.write_word(daddr.add_words(2), 1)?; // d_next_o_id
            }
            return Ok(());
        }
        let step = step - 1;
        if step < customer_steps {
            let lo = step * 64;
            let hi = (lo + 64).min(p.districts * p.customers_per_district);
            for i in lo..hi {
                let (d, c) = (i / p.customers_per_district, i % p.customers_per_district);
                let addr = self.customer_addr(d, c);
                tx.declare_write(addr, CUSTOMER_WORDS)?;
                tx.write_word(addr, i % 50)?; // c_discount
            }
            return Ok(());
        }
        let step = step - customer_steps;
        if step < item_steps {
            let lo = step * 64;
            let hi = (lo + 64).min(p.items);
            for i in lo..hi {
                tx.declare_write(self.item_addr(i), ITEM_WORDS)?;
                tx.write_word(self.item_addr(i), 100 + (i * 37) % 9900)?; // i_price
            }
            return Ok(());
        }
        let step = step - item_steps;
        let lo = step * 16;
        let hi = (lo + 16).min(p.items);
        for i in lo..hi {
            let saddr = self.stock_addr(i);
            tx.declare_write(saddr, STOCK_WORDS)?;
            tx.write_word(saddr, 10_000_000)?; // s_quantity (never runs out)
        }
        Ok(())
    }

    fn op(&self, tx: &mut dyn Txn, rng: &mut Rng, worker: usize) -> TxResult<()> {
        let p = &self.params;
        let d = if p.partition_by_worker {
            worker as u64 % p.districts
        } else {
            rng.below(p.districts)
        };
        let c = rng.below(p.customers_per_district);
        if p.payment_pct > 0 && rng.below(100) < p.payment_pct {
            return self.payment(tx, d, c, rng.between(1, 5000));
        }
        let n_lines = rng.between(5, 15);
        let mut lines = Vec::with_capacity(n_lines as usize);
        for _ in 0..n_lines {
            lines.push((rng.below(p.items), rng.between(1, 10)));
        }
        self.new_order(tx, d, c, &lines)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::{BTreeKv, HashKv};
    use std::collections::HashMap;

    #[derive(Default)]
    struct MapTxn(HashMap<u64, u64>);

    impl Txn for MapTxn {
        fn read_word(&mut self, addr: PAddr) -> TxResult<u64> {
            Ok(*self.0.get(&addr.offset()).unwrap_or(&0))
        }
        fn write_word(&mut self, addr: PAddr, val: u64) -> TxResult<()> {
            self.0.insert(addr.offset(), val);
            Ok(())
        }
    }

    fn load<K: KvIndex>(t: &Tpcc<K>, tx: &mut MapTxn) {
        for s in 0..t.load_steps() {
            t.load_step(tx, s).unwrap();
        }
    }

    #[test]
    fn new_order_inserts_rows() {
        let params = TpccParams::tiny();
        // Index at 0..2^16, tables at 2^16.
        let tpcc = Tpcc::new(
            BTreeKv::new(PAddr::new(0), 4096),
            PAddr::new(1 << 16),
            params,
            "TPC-C (B+-tree)",
        );
        let mut tx = MapTxn::default();
        load(&tpcc, &mut tx);
        let total = tpcc.new_order(&mut tx, 1, 3, &[(5, 2), (9, 1)]).unwrap();
        assert!(total > 0);
        // Order 1 in district 1 belongs to customer 3.
        assert_eq!(tpcc.order_customer(&mut tx, 1, 1).unwrap(), Some(3));
        assert_eq!(tpcc.order_customer(&mut tx, 1, 2).unwrap(), None);
        // Stock decremented.
        let s5 = tx.read_word(tpcc.stock_addr(5)).unwrap();
        assert_eq!(s5, 10_000_000 - 2);
    }

    #[test]
    fn order_ids_are_per_district() {
        let tpcc = Tpcc::new(
            HashKv::new(PAddr::new(0), 8192),
            PAddr::new(1 << 17),
            TpccParams::tiny(),
            "TPC-C (hash)",
        );
        let mut tx = MapTxn::default();
        load(&tpcc, &mut tx);
        tpcc.new_order(&mut tx, 0, 0, &[(1, 1)]).unwrap();
        tpcc.new_order(&mut tx, 0, 1, &[(2, 1)]).unwrap();
        tpcc.new_order(&mut tx, 1, 2, &[(3, 1)]).unwrap();
        assert_eq!(tpcc.order_customer(&mut tx, 0, 1).unwrap(), Some(0));
        assert_eq!(tpcc.order_customer(&mut tx, 0, 2).unwrap(), Some(1));
        assert_eq!(tpcc.order_customer(&mut tx, 1, 1).unwrap(), Some(2));
    }

    #[test]
    fn workload_ops_run() {
        let tpcc = Tpcc::new(
            BTreeKv::new(PAddr::new(0), 16384),
            PAddr::new(1 << 18),
            TpccParams::tiny(),
            "TPC-C (B+-tree)",
        );
        let mut tx = MapTxn::default();
        load(&tpcc, &mut tx);
        let mut rng = Rng::new(11);
        for _ in 0..50 {
            tpcc.op(&mut tx, &mut rng, 0).unwrap();
        }
        // 50 orders allocated.
        assert_eq!(tx.read_word(tpcc.order_bump).unwrap(), 50 * ORDER_WORDS);
    }

    #[test]
    fn payment_moves_money() {
        let tpcc = Tpcc::new(
            BTreeKv::new(PAddr::new(0), 4096),
            PAddr::new(1 << 16),
            TpccParams::tiny(),
            "TPC-C",
        );
        let mut tx = MapTxn::default();
        load(&tpcc, &mut tx);
        tpcc.payment(&mut tx, 1, 3, 250).unwrap();
        assert_eq!(tx.read_word(tpcc.warehouse.add_words(1)).unwrap(), 250);
        assert_eq!(
            tx.read_word(tpcc.district_addr(1).add_words(1)).unwrap(),
            250
        );
        assert_eq!(
            tx.read_word(tpcc.customer_addr(1, 3).add_words(1)).unwrap(),
            0u64.wrapping_sub(250)
        );
    }

    #[test]
    fn mixed_payment_new_order_ops() {
        let mut params = TpccParams::tiny();
        params.payment_pct = 50;
        let tpcc = Tpcc::new(
            BTreeKv::new(PAddr::new(0), 16384),
            PAddr::new(1 << 18),
            params,
            "TPC-C mixed",
        );
        let mut tx = MapTxn::default();
        load(&tpcc, &mut tx);
        let mut rng = Rng::new(3);
        for _ in 0..100 {
            tpcc.op(&mut tx, &mut rng, 0).unwrap();
        }
        // Both kinds ran: some orders allocated, some payments recorded.
        let orders = tx.read_word(tpcc.order_bump).unwrap() / ORDER_WORDS;
        let ytd = tx.read_word(tpcc.warehouse.add_words(1)).unwrap();
        assert!(orders > 20 && orders < 80, "orders: {orders}");
        assert!(ytd > 0);
    }

    #[test]
    fn partitioned_mode_pins_district() {
        let mut params = TpccParams::tiny();
        params.partition_by_worker = true;
        let tpcc = Tpcc::new(
            BTreeKv::new(PAddr::new(0), 16384),
            PAddr::new(1 << 18),
            params,
            "TPC-C (B+-tree, partitioned)",
        );
        let mut tx = MapTxn::default();
        load(&tpcc, &mut tx);
        let mut rng = Rng::new(12);
        for _ in 0..10 {
            tpcc.op(&mut tx, &mut rng, 1).unwrap(); // worker 1 → district 1
        }
        // District 1 issued all ten order IDs; district 0 none.
        let d1_next = tx.read_word(tpcc.district_addr(1).add_words(2)).unwrap();
        let d0_next = tx.read_word(tpcc.district_addr(0).add_words(2)).unwrap();
        assert_eq!(d1_next, 11);
        assert_eq!(d0_next, 1);
    }

    #[test]
    fn words_needed_is_consistent() {
        let p = TpccParams::tiny();
        let need = Tpcc::<BTreeKv>::words_needed(&p);
        assert!(need > 0);
        // Creating at base 0 with that many words stays within bounds: the
        // last arena word is addressable.
        let tpcc = Tpcc::new(BTreeKv::new(PAddr::new(1 << 20), 16), PAddr::new(0), p, "x");
        let last = tpcc
            .ol_arena
            .add_words(p.max_orders * 15 * ORDER_LINE_WORDS - 1);
        assert!(last.word_index() < need);
    }
}
