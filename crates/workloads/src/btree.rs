//! The B+-tree micro-benchmark structure (§5.1).
//!
//! A transactional B+-tree mapping 64-bit keys to 64-bit values, used both
//! as a micro-benchmark (random inserts) and as the ordered index for the
//! tree-based TPC-C, TATP and YCSB variants. Nodes live in a bump-allocated
//! arena inside the persistent heap; the bump cursor is itself a
//! transactional word, so node allocation participates in transaction
//! rollback and recovery for free.
//!
//! The tree does not support the NVML-like static-transaction baseline
//! (splits write nodes whose addresses are unknown up front) — matching the
//! paper, which runs only hash-based workloads on NVML because "the complex
//! changes leading to a high performance lock-based concurrent B+-tree
//! would make the comparison unfair".

use dude_txapi::{PAddr, TxResult, Txn};

/// Maximum keys per node.
const MAX_KEYS: usize = 8;
/// Words per node: header + keys + (children | values + next).
const NODE_WORDS: u64 = 1 + MAX_KEYS as u64 + MAX_KEYS as u64 + 1;

const LEAF_BIT: u64 = 1 << 63;

/// Result of a recursive insert.
enum Ins {
    /// No structural change; previous value if the key existed.
    Done(Option<u64>),
    /// The child split: `(separator, new right node)`.
    Split(u64, PAddr),
}

/// A transactional B+-tree descriptor.
///
/// `meta` points at two reserved words: the root pointer and the node-arena
/// bump cursor. The arena follows immediately unless placed elsewhere.
#[derive(Debug, Clone, Copy)]
pub struct BTree {
    meta: PAddr,
    arena: PAddr,
    arena_nodes: u64,
}

impl BTree {
    /// Words of heap needed for a tree of at most `nodes` nodes (including
    /// the two metadata words).
    pub fn words_needed(nodes: u64) -> u64 {
        2 + nodes * NODE_WORDS
    }

    /// Creates a descriptor with metadata at `base` and the node arena
    /// right after it. The heap words must be zeroed (fresh) — an empty
    /// tree is all zeroes.
    ///
    /// # Panics
    ///
    /// Panics if `base` is unaligned or `nodes` is zero.
    pub fn new(base: PAddr, nodes: u64) -> Self {
        assert!(base.is_word_aligned());
        assert!(nodes > 0);
        BTree {
            meta: base,
            arena: base.add_words(2),
            arena_nodes: nodes,
        }
    }

    fn root_ptr(&self) -> PAddr {
        self.meta
    }

    fn bump_ptr(&self) -> PAddr {
        self.meta.add_words(1)
    }

    /// Allocates a node transactionally; returns its base address.
    fn alloc_node(&self, tx: &mut dyn Txn) -> TxResult<PAddr> {
        let n = tx.read_word(self.bump_ptr())?;
        assert!(
            n < self.arena_nodes,
            "B+-tree arena exhausted ({} nodes)",
            self.arena_nodes
        );
        tx.write_word(self.bump_ptr(), n + 1)?;
        Ok(self.arena.add_words(n * NODE_WORDS))
    }

    // Node field accessors. `node` is the node's base address.
    fn header(&self, tx: &mut dyn Txn, node: PAddr) -> TxResult<(bool, usize)> {
        let h = tx.read_word(node)?;
        Ok((h & LEAF_BIT != 0, (h & !LEAF_BIT) as usize))
    }

    fn set_header(&self, tx: &mut dyn Txn, node: PAddr, leaf: bool, count: usize) -> TxResult<()> {
        tx.write_word(node, if leaf { LEAF_BIT } else { 0 } | count as u64)
    }

    fn key_addr(node: PAddr, i: usize) -> PAddr {
        node.add_words(1 + i as u64)
    }

    /// Slot `i` of the second array: child pointer (inner) or value (leaf).
    fn slot_addr(node: PAddr, i: usize) -> PAddr {
        node.add_words(1 + MAX_KEYS as u64 + i as u64)
    }

    /// Looks up `key`.
    ///
    /// # Errors
    ///
    /// Propagates TM conflicts.
    pub fn get(&self, tx: &mut dyn Txn, key: u64) -> TxResult<Option<u64>> {
        let mut node_off = tx.read_word(self.root_ptr())?;
        if node_off == 0 {
            return Ok(None);
        }
        loop {
            let node = PAddr::new(node_off);
            let (leaf, count) = self.header(tx, node)?;
            if leaf {
                for i in 0..count {
                    let k = tx.read_word(Self::key_addr(node, i))?;
                    if k == key {
                        return Ok(Some(tx.read_word(Self::slot_addr(node, i))?));
                    }
                    if key < k {
                        return Ok(None);
                    }
                }
                return Ok(None);
            }
            // Inner routing: a key equal to the separator lives in the
            // right subtree (leaf splits promote the right node's first
            // key), so equality advances past the separator.
            let mut ci = 0;
            while ci < count {
                let k = tx.read_word(Self::key_addr(node, ci))?;
                if key < k {
                    break;
                }
                ci += 1;
            }
            node_off = tx.read_word(Self::slot_addr(node, ci))?;
        }
    }

    /// Inserts or updates `key → value`; returns the previous value if the
    /// key was present.
    ///
    /// # Errors
    ///
    /// Propagates TM conflicts.
    pub fn insert(&self, tx: &mut dyn Txn, key: u64, value: u64) -> TxResult<Option<u64>> {
        let root_off = tx.read_word(self.root_ptr())?;
        if root_off == 0 {
            let leaf = self.alloc_node(tx)?;
            self.set_header(tx, leaf, true, 1)?;
            tx.write_word(Self::key_addr(leaf, 0), key)?;
            tx.write_word(Self::slot_addr(leaf, 0), value)?;
            tx.write_word(self.root_ptr(), leaf.offset())?;
            return Ok(None);
        }
        let root = PAddr::new(root_off);
        match self.insert_rec(tx, root, key, value)? {
            Ins::Done(old) => Ok(old),
            Ins::Split(sep, right) => {
                let new_root = self.alloc_node(tx)?;
                self.set_header(tx, new_root, false, 1)?;
                tx.write_word(Self::key_addr(new_root, 0), sep)?;
                tx.write_word(Self::slot_addr(new_root, 0), root.offset())?;
                tx.write_word(Self::slot_addr(new_root, 1), right.offset())?;
                tx.write_word(self.root_ptr(), new_root.offset())?;
                Ok(None)
            }
        }
    }

    /// Removes `key`, returning its value if present.
    ///
    /// Deletion is *lazy* (no rebalancing): the entry is removed from its
    /// leaf and separators stay as-is, which keeps routing correct. Leaves
    /// may underflow; research-KV trade-off, matching the insert-heavy
    /// workloads this tree serves.
    ///
    /// # Errors
    ///
    /// Propagates TM conflicts.
    pub fn remove(&self, tx: &mut dyn Txn, key: u64) -> TxResult<Option<u64>> {
        let mut node_off = tx.read_word(self.root_ptr())?;
        if node_off == 0 {
            return Ok(None);
        }
        loop {
            let node = PAddr::new(node_off);
            let (leaf, count) = self.header(tx, node)?;
            if leaf {
                for i in 0..count {
                    let k = tx.read_word(Self::key_addr(node, i))?;
                    if k == key {
                        let old = tx.read_word(Self::slot_addr(node, i))?;
                        // Shift the tail left over the removed entry.
                        for j in i..count - 1 {
                            let nk = tx.read_word(Self::key_addr(node, j + 1))?;
                            let nv = tx.read_word(Self::slot_addr(node, j + 1))?;
                            tx.write_word(Self::key_addr(node, j), nk)?;
                            tx.write_word(Self::slot_addr(node, j), nv)?;
                        }
                        self.set_header(tx, node, true, count - 1)?;
                        return Ok(Some(old));
                    }
                    if key < k {
                        return Ok(None);
                    }
                }
                return Ok(None);
            }
            let mut ci = 0;
            while ci < count {
                let k = tx.read_word(Self::key_addr(node, ci))?;
                if key < k {
                    break;
                }
                ci += 1;
            }
            node_off = tx.read_word(Self::slot_addr(node, ci))?;
        }
    }

    /// Collects all `(key, value)` pairs with `lo <= key <= hi`, in key
    /// order, by walking the linked leaves.
    ///
    /// # Errors
    ///
    /// Propagates TM conflicts.
    pub fn range(&self, tx: &mut dyn Txn, lo: u64, hi: u64) -> TxResult<Vec<(u64, u64)>> {
        let mut out = Vec::new();
        if lo > hi {
            return Ok(out);
        }
        let mut node_off = tx.read_word(self.root_ptr())?;
        if node_off == 0 {
            return Ok(out);
        }
        // Descend to the leaf that would contain `lo`.
        loop {
            let node = PAddr::new(node_off);
            let (leaf, count) = self.header(tx, node)?;
            if leaf {
                break;
            }
            let mut ci = 0;
            while ci < count {
                let k = tx.read_word(Self::key_addr(node, ci))?;
                if lo < k {
                    break;
                }
                ci += 1;
            }
            node_off = tx.read_word(Self::slot_addr(node, ci))?;
        }
        // Walk the leaf chain.
        while node_off != 0 {
            let node = PAddr::new(node_off);
            let (_, count) = self.header(tx, node)?;
            for i in 0..count {
                let k = tx.read_word(Self::key_addr(node, i))?;
                if k > hi {
                    return Ok(out);
                }
                if k >= lo {
                    out.push((k, tx.read_word(Self::slot_addr(node, i))?));
                }
            }
            node_off = tx.read_word(node.add_words(NODE_WORDS - 1))?;
        }
        Ok(out)
    }

    fn insert_rec(&self, tx: &mut dyn Txn, node: PAddr, key: u64, value: u64) -> TxResult<Ins> {
        let (leaf, count) = self.header(tx, node)?;
        if leaf {
            return self.insert_leaf(tx, node, count, key, value);
        }
        // Route to the child.
        let mut ci = 0;
        while ci < count {
            let k = tx.read_word(Self::key_addr(node, ci))?;
            if key < k {
                break;
            }
            ci += 1;
        }
        let child = PAddr::new(tx.read_word(Self::slot_addr(node, ci))?);
        match self.insert_rec(tx, child, key, value)? {
            Ins::Done(old) => Ok(Ins::Done(old)),
            Ins::Split(sep, right) => self.insert_inner(tx, node, count, ci, sep, right),
        }
    }

    fn insert_leaf(
        &self,
        tx: &mut dyn Txn,
        node: PAddr,
        count: usize,
        key: u64,
        value: u64,
    ) -> TxResult<Ins> {
        // Position of the first key ≥ `key`.
        let mut pos = 0;
        while pos < count {
            let k = tx.read_word(Self::key_addr(node, pos))?;
            if k == key {
                let old = tx.read_word(Self::slot_addr(node, pos))?;
                tx.write_word(Self::slot_addr(node, pos), value)?;
                return Ok(Ins::Done(Some(old)));
            }
            if key < k {
                break;
            }
            pos += 1;
        }
        if count < MAX_KEYS {
            // Shift right and insert.
            let mut i = count;
            while i > pos {
                let k = tx.read_word(Self::key_addr(node, i - 1))?;
                let v = tx.read_word(Self::slot_addr(node, i - 1))?;
                tx.write_word(Self::key_addr(node, i), k)?;
                tx.write_word(Self::slot_addr(node, i), v)?;
                i -= 1;
            }
            tx.write_word(Self::key_addr(node, pos), key)?;
            tx.write_word(Self::slot_addr(node, pos), value)?;
            self.set_header(tx, node, true, count + 1)?;
            return Ok(Ins::Done(None));
        }
        // Split: merge into a sorted scratch list of MAX_KEYS + 1 entries.
        let mut entries = Vec::with_capacity(MAX_KEYS + 1);
        for i in 0..count {
            entries.push((
                tx.read_word(Self::key_addr(node, i))?,
                tx.read_word(Self::slot_addr(node, i))?,
            ));
        }
        entries.insert(pos, (key, value));
        let left_n = entries.len().div_ceil(2);
        let right = self.alloc_node(tx)?;
        // Rewrite left node.
        for (i, &(k, v)) in entries[..left_n].iter().enumerate() {
            tx.write_word(Self::key_addr(node, i), k)?;
            tx.write_word(Self::slot_addr(node, i), v)?;
        }
        self.set_header(tx, node, true, left_n)?;
        // Fill right node.
        for (i, &(k, v)) in entries[left_n..].iter().enumerate() {
            tx.write_word(Self::key_addr(right, i), k)?;
            tx.write_word(Self::slot_addr(right, i), v)?;
        }
        self.set_header(tx, right, true, entries.len() - left_n)?;
        // Leaf chaining (kept for future range scans).
        let next = tx.read_word(node.add_words(NODE_WORDS - 1))?;
        tx.write_word(right.add_words(NODE_WORDS - 1), next)?;
        tx.write_word(node.add_words(NODE_WORDS - 1), right.offset())?;
        Ok(Ins::Split(entries[left_n].0, right))
    }

    fn insert_inner(
        &self,
        tx: &mut dyn Txn,
        node: PAddr,
        count: usize,
        at: usize,
        sep: u64,
        right_child: PAddr,
    ) -> TxResult<Ins> {
        if count < MAX_KEYS {
            // Shift keys [at..count) and children [at+1..=count] right.
            let mut i = count;
            while i > at {
                let k = tx.read_word(Self::key_addr(node, i - 1))?;
                tx.write_word(Self::key_addr(node, i), k)?;
                let c = tx.read_word(Self::slot_addr(node, i))?;
                tx.write_word(Self::slot_addr(node, i + 1), c)?;
                i -= 1;
            }
            tx.write_word(Self::key_addr(node, at), sep)?;
            tx.write_word(Self::slot_addr(node, at + 1), right_child.offset())?;
            self.set_header(tx, node, false, count + 1)?;
            return Ok(Ins::Done(None));
        }
        // Split the inner node: gather keys and children, insert, promote
        // the middle key.
        let mut keys = Vec::with_capacity(MAX_KEYS + 1);
        let mut children = Vec::with_capacity(MAX_KEYS + 2);
        for i in 0..count {
            keys.push(tx.read_word(Self::key_addr(node, i))?);
        }
        for i in 0..=count {
            children.push(tx.read_word(Self::slot_addr(node, i))?);
        }
        keys.insert(at, sep);
        children.insert(at + 1, right_child.offset());
        let mid = keys.len() / 2;
        let promoted = keys[mid];
        let right = self.alloc_node(tx)?;
        // Left keeps keys[..mid] and children[..=mid].
        for (i, &k) in keys[..mid].iter().enumerate() {
            tx.write_word(Self::key_addr(node, i), k)?;
        }
        for (i, &c) in children[..=mid].iter().enumerate() {
            tx.write_word(Self::slot_addr(node, i), c)?;
        }
        self.set_header(tx, node, false, mid)?;
        // Right gets keys[mid+1..] and children[mid+1..].
        let rkeys = &keys[mid + 1..];
        for (i, &k) in rkeys.iter().enumerate() {
            tx.write_word(Self::key_addr(right, i), k)?;
        }
        for (i, &c) in children[mid + 1..].iter().enumerate() {
            tx.write_word(Self::slot_addr(right, i), c)?;
        }
        self.set_header(tx, right, false, rkeys.len())?;
        Ok(Ins::Split(promoted, right))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[derive(Default)]
    struct MapTxn(HashMap<u64, u64>);

    impl Txn for MapTxn {
        fn read_word(&mut self, addr: PAddr) -> TxResult<u64> {
            Ok(*self.0.get(&addr.offset()).unwrap_or(&0))
        }
        fn write_word(&mut self, addr: PAddr, val: u64) -> TxResult<()> {
            self.0.insert(addr.offset(), val);
            Ok(())
        }
    }

    #[test]
    fn empty_tree_returns_none() {
        let t = BTree::new(PAddr::new(0), 16);
        let mut tx = MapTxn::default();
        assert_eq!(t.get(&mut tx, 5).unwrap(), None);
    }

    #[test]
    fn insert_get_single() {
        let t = BTree::new(PAddr::new(0), 16);
        let mut tx = MapTxn::default();
        assert_eq!(t.insert(&mut tx, 10, 100).unwrap(), None);
        assert_eq!(t.get(&mut tx, 10).unwrap(), Some(100));
        assert_eq!(t.get(&mut tx, 11).unwrap(), None);
    }

    #[test]
    fn update_returns_old() {
        let t = BTree::new(PAddr::new(0), 16);
        let mut tx = MapTxn::default();
        t.insert(&mut tx, 10, 100).unwrap();
        assert_eq!(t.insert(&mut tx, 10, 200).unwrap(), Some(100));
        assert_eq!(t.get(&mut tx, 10).unwrap(), Some(200));
    }

    #[test]
    fn ascending_inserts_split_correctly() {
        let t = BTree::new(PAddr::new(0), 512);
        let mut tx = MapTxn::default();
        for k in 0..500u64 {
            t.insert(&mut tx, k, k * 2).unwrap();
        }
        for k in 0..500u64 {
            assert_eq!(t.get(&mut tx, k).unwrap(), Some(k * 2), "key {k}");
        }
        assert_eq!(t.get(&mut tx, 500).unwrap(), None);
    }

    #[test]
    fn descending_inserts_split_correctly() {
        let t = BTree::new(PAddr::new(0), 512);
        let mut tx = MapTxn::default();
        for k in (0..500u64).rev() {
            t.insert(&mut tx, k, k + 1).unwrap();
        }
        for k in 0..500u64 {
            assert_eq!(t.get(&mut tx, k).unwrap(), Some(k + 1), "key {k}");
        }
    }

    #[test]
    fn random_model_check() {
        let t = BTree::new(PAddr::new(128), 2048);
        let mut tx = MapTxn::default();
        let mut model = HashMap::new();
        let mut x = 99u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (x >> 40) % 700;
            if x.is_multiple_of(4) {
                assert_eq!(t.get(&mut tx, key).unwrap(), model.get(&key).copied());
            } else {
                let val = x % 100_000;
                assert_eq!(t.insert(&mut tx, key, val).unwrap(), model.insert(key, val));
            }
        }
        for (k, v) in &model {
            assert_eq!(t.get(&mut tx, *k).unwrap(), Some(*v));
        }
    }

    #[test]
    #[should_panic(expected = "arena exhausted")]
    fn arena_exhaustion_panics() {
        let t = BTree::new(PAddr::new(0), 2);
        let mut tx = MapTxn::default();
        for k in 0..100u64 {
            t.insert(&mut tx, k, k).unwrap();
        }
    }

    #[test]
    fn words_needed_accounts_for_meta() {
        assert_eq!(BTree::words_needed(1), 2 + NODE_WORDS);
    }

    #[test]
    fn remove_deletes_and_reports_old() {
        let t = BTree::new(PAddr::new(0), 64);
        let mut tx = MapTxn::default();
        for k in 0..30u64 {
            t.insert(&mut tx, k, k * 10).unwrap();
        }
        assert_eq!(t.remove(&mut tx, 7).unwrap(), Some(70));
        assert_eq!(t.get(&mut tx, 7).unwrap(), None);
        assert_eq!(t.remove(&mut tx, 7).unwrap(), None);
        // Neighbours unaffected.
        assert_eq!(t.get(&mut tx, 6).unwrap(), Some(60));
        assert_eq!(t.get(&mut tx, 8).unwrap(), Some(80));
        // Reinsert works.
        assert_eq!(t.insert(&mut tx, 7, 71).unwrap(), None);
        assert_eq!(t.get(&mut tx, 7).unwrap(), Some(71));
    }

    #[test]
    fn remove_from_missing_tree() {
        let t = BTree::new(PAddr::new(0), 8);
        let mut tx = MapTxn::default();
        assert_eq!(t.remove(&mut tx, 1).unwrap(), None);
    }

    #[test]
    fn range_scan_in_key_order() {
        let t = BTree::new(PAddr::new(0), 256);
        let mut tx = MapTxn::default();
        // Insert shuffled keys.
        for k in [50u64, 10, 90, 30, 70, 20, 80, 40, 60, 0] {
            t.insert(&mut tx, k, k + 1).unwrap();
        }
        let r = t.range(&mut tx, 25, 75).unwrap();
        assert_eq!(r, vec![(30, 31), (40, 41), (50, 51), (60, 61), (70, 71)]);
        assert!(t.range(&mut tx, 91, 100).unwrap().is_empty());
        assert!(t.range(&mut tx, 10, 5).unwrap().is_empty());
        let all = t.range(&mut tx, 0, u64::MAX).unwrap();
        assert_eq!(all.len(), 10);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn range_spans_many_leaves() {
        let t = BTree::new(PAddr::new(0), 512);
        let mut tx = MapTxn::default();
        for k in 0..300u64 {
            t.insert(&mut tx, k, k).unwrap();
        }
        let r = t.range(&mut tx, 100, 199).unwrap();
        assert_eq!(r.len(), 100);
        assert_eq!(r[0], (100, 100));
        assert_eq!(r[99], (199, 199));
    }

    #[test]
    fn mixed_insert_remove_model() {
        let t = BTree::new(PAddr::new(0), 2048);
        let mut tx = MapTxn::default();
        let mut model = HashMap::new();
        let mut x = 77u64;
        for _ in 0..4000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (x >> 40) % 400;
            match x % 5 {
                0 | 1 => {
                    let v = x % 1000;
                    assert_eq!(t.insert(&mut tx, key, v).unwrap(), model.insert(key, v));
                }
                2 => {
                    assert_eq!(t.remove(&mut tx, key).unwrap(), model.remove(&key));
                }
                _ => {
                    assert_eq!(t.get(&mut tx, key).unwrap(), model.get(&key).copied());
                }
            }
        }
        let mut expect: Vec<(u64, u64)> = model.into_iter().collect();
        expect.sort_unstable();
        assert_eq!(t.range(&mut tx, 0, u64::MAX).unwrap(), expect);
    }
}
