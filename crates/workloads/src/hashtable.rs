//! The HashTable micro-benchmark structure (§5.1).
//!
//! A fixed-size open-addressing hash table mapping 64-bit keys to 64-bit
//! values; collisions probe the next bucket circularly, exactly as the
//! paper describes. Every operation is one transaction.
//!
//! Writes are preceded by [`dude_txapi::Txn::declare_write`] on the target
//! bucket, so the same code runs on the static-transaction NVML-like
//! baseline (where the declaration takes locks and undo-logs the bucket)
//! and on the dynamic systems (where it is a no-op). After declaring, the
//! bucket is re-read: under the NVML baseline the declaration is the lock
//! acquisition, so the earlier probe must be revalidated.

use dude_txapi::{PAddr, TxResult, Txn};

/// Words per bucket: `[key, value]`; key 0 means empty.
const BUCKET_WORDS: u64 = 2;
/// Tombstone marker left by removals (probing continues past it; inserts
/// may reuse it).
const TOMBSTONE: u64 = u64::MAX;

/// A transactional open-addressing hash table.
///
/// Keys are offset by one internally so callers may use the full `u64`
/// range except `u64::MAX`.
#[derive(Debug, Clone, Copy)]
pub struct HashTable {
    base: PAddr,
    buckets: u64,
}

impl HashTable {
    /// Creates a descriptor for a table of `buckets` buckets at `base`.
    /// The underlying words must be zeroed (fresh heap) or previously
    /// cleared.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero or `base` is unaligned.
    pub fn new(base: PAddr, buckets: u64) -> Self {
        assert!(buckets > 0, "hash table needs at least one bucket");
        assert!(base.is_word_aligned());
        HashTable { base, buckets }
    }

    /// Bytes of heap the table occupies.
    pub fn size_bytes(&self) -> u64 {
        self.buckets * BUCKET_WORDS * 8
    }

    /// Number of buckets.
    pub fn buckets(&self) -> u64 {
        self.buckets
    }

    #[inline]
    fn bucket_addr(&self, idx: u64) -> PAddr {
        self.base.add_words(idx * BUCKET_WORDS)
    }

    #[inline]
    fn hash(&self, key: u64) -> u64 {
        (key.wrapping_add(1))
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(31)
            % self.buckets
    }

    /// Inserts or updates `key → value`. Returns the previous value if the
    /// key was present.
    ///
    /// # Errors
    ///
    /// Propagates TM conflicts.
    ///
    /// # Panics
    ///
    /// Panics if the table is full (the benchmark sizes tables to stay
    /// below full occupancy).
    pub fn insert(&self, tx: &mut dyn Txn, key: u64, value: u64) -> TxResult<Option<u64>> {
        let stored = key + 1;
        let mut idx = self.hash(key);
        // First free (empty or tombstone) slot seen on the probe path; the
        // key itself may still appear later, so keep probing before reusing.
        let mut free: Option<u64> = None;
        for _ in 0..self.buckets {
            let addr = self.bucket_addr(idx);
            let k = tx.read_word(addr)?;
            if k == stored {
                tx.declare_write(addr, BUCKET_WORDS)?;
                // Revalidate after declaration (lock acquisition on the
                // static-transaction baseline).
                if tx.read_word(addr)? != stored {
                    idx = (idx + 1) % self.buckets;
                    continue;
                }
                let old = tx.read_word(addr.add_words(1))?;
                tx.write_word(addr.add_words(1), value)?;
                return Ok(Some(old));
            }
            if k == TOMBSTONE && free.is_none() {
                free = Some(idx);
            }
            if k == 0 {
                let target = free.unwrap_or(idx);
                let taddr = self.bucket_addr(target);
                tx.declare_write(taddr, BUCKET_WORDS)?;
                let cur = tx.read_word(taddr)?;
                if cur != 0 && cur != TOMBSTONE {
                    idx = (idx + 1) % self.buckets;
                    free = None;
                    continue;
                }
                tx.write_word(taddr, stored)?;
                tx.write_word(taddr.add_words(1), value)?;
                return Ok(None);
            }
            idx = (idx + 1) % self.buckets;
        }
        if let Some(target) = free {
            let taddr = self.bucket_addr(target);
            tx.declare_write(taddr, BUCKET_WORDS)?;
            tx.write_word(taddr, stored)?;
            tx.write_word(taddr.add_words(1), value)?;
            return Ok(None);
        }
        panic!("hash table full ({} buckets)", self.buckets);
    }

    /// Removes `key`, returning its value if it was present. The bucket is
    /// tombstoned so later probes keep walking past it.
    ///
    /// # Errors
    ///
    /// Propagates TM conflicts.
    pub fn remove(&self, tx: &mut dyn Txn, key: u64) -> TxResult<Option<u64>> {
        let stored = key + 1;
        let mut idx = self.hash(key);
        for _ in 0..self.buckets {
            let addr = self.bucket_addr(idx);
            let k = tx.read_word(addr)?;
            if k == stored {
                tx.declare_write(addr, BUCKET_WORDS)?;
                if tx.read_word(addr)? != stored {
                    idx = (idx + 1) % self.buckets;
                    continue;
                }
                let old = tx.read_word(addr.add_words(1))?;
                tx.write_word(addr, TOMBSTONE)?;
                return Ok(Some(old));
            }
            if k == 0 {
                return Ok(None);
            }
            idx = (idx + 1) % self.buckets;
        }
        Ok(None)
    }

    /// Looks up `key`.
    ///
    /// # Errors
    ///
    /// Propagates TM conflicts.
    pub fn get(&self, tx: &mut dyn Txn, key: u64) -> TxResult<Option<u64>> {
        let stored = key + 1;
        let mut idx = self.hash(key);
        for _ in 0..self.buckets {
            let addr = self.bucket_addr(idx);
            let k = tx.read_word(addr)?;
            if k == stored {
                return Ok(Some(tx.read_word(addr.add_words(1))?));
            }
            if k == 0 {
                return Ok(None);
            }
            idx = (idx + 1) % self.buckets;
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// A plain in-memory `Txn` for structure-only tests.
    #[derive(Default)]
    struct MapTxn(HashMap<u64, u64>);

    impl Txn for MapTxn {
        fn read_word(&mut self, addr: PAddr) -> TxResult<u64> {
            Ok(*self.0.get(&addr.offset()).unwrap_or(&0))
        }
        fn write_word(&mut self, addr: PAddr, val: u64) -> TxResult<()> {
            self.0.insert(addr.offset(), val);
            Ok(())
        }
    }

    #[test]
    fn insert_get_roundtrip() {
        let t = HashTable::new(PAddr::new(0), 64);
        let mut tx = MapTxn::default();
        assert_eq!(t.insert(&mut tx, 5, 50).unwrap(), None);
        assert_eq!(t.get(&mut tx, 5).unwrap(), Some(50));
        assert_eq!(t.get(&mut tx, 6).unwrap(), None);
    }

    #[test]
    fn update_returns_previous() {
        let t = HashTable::new(PAddr::new(0), 64);
        let mut tx = MapTxn::default();
        t.insert(&mut tx, 5, 50).unwrap();
        assert_eq!(t.insert(&mut tx, 5, 51).unwrap(), Some(50));
        assert_eq!(t.get(&mut tx, 5).unwrap(), Some(51));
    }

    #[test]
    fn collisions_probe_circularly() {
        // Tiny table: plenty of collisions.
        let t = HashTable::new(PAddr::new(0), 8);
        let mut tx = MapTxn::default();
        for k in 0..6u64 {
            t.insert(&mut tx, k, k * 10).unwrap();
        }
        for k in 0..6u64 {
            assert_eq!(t.get(&mut tx, k).unwrap(), Some(k * 10), "key {k}");
        }
    }

    #[test]
    fn key_zero_is_usable() {
        let t = HashTable::new(PAddr::new(0), 8);
        let mut tx = MapTxn::default();
        t.insert(&mut tx, 0, 99).unwrap();
        assert_eq!(t.get(&mut tx, 0).unwrap(), Some(99));
    }

    #[test]
    #[should_panic(expected = "hash table full")]
    fn overfill_panics() {
        let t = HashTable::new(PAddr::new(0), 4);
        let mut tx = MapTxn::default();
        for k in 0..5u64 {
            t.insert(&mut tx, k, k).unwrap();
        }
    }

    #[test]
    fn remove_and_reuse() {
        let t = HashTable::new(PAddr::new(0), 16);
        let mut tx = MapTxn::default();
        t.insert(&mut tx, 1, 10).unwrap();
        t.insert(&mut tx, 2, 20).unwrap();
        assert_eq!(t.remove(&mut tx, 1).unwrap(), Some(10));
        assert_eq!(t.get(&mut tx, 1).unwrap(), None);
        assert_eq!(t.remove(&mut tx, 1).unwrap(), None);
        // Key 2 still reachable (even if it probed past key 1's bucket).
        assert_eq!(t.get(&mut tx, 2).unwrap(), Some(20));
        // Tombstone is reused on reinsertion.
        assert_eq!(t.insert(&mut tx, 1, 11).unwrap(), None);
        assert_eq!(t.get(&mut tx, 1).unwrap(), Some(11));
    }

    #[test]
    fn probe_past_tombstones_finds_displaced_keys() {
        // Tiny table, heavy collisions: remove an early key in a probe
        // chain and confirm later keys remain reachable.
        let t = HashTable::new(PAddr::new(0), 8);
        let mut tx = MapTxn::default();
        for k in 0..5u64 {
            t.insert(&mut tx, k, k * 100).unwrap();
        }
        t.remove(&mut tx, 2).unwrap();
        for k in [0u64, 1, 3, 4] {
            assert_eq!(t.get(&mut tx, k).unwrap(), Some(k * 100), "key {k}");
        }
    }

    #[test]
    fn churn_with_tombstones_never_fills() {
        // Repeated insert/remove cycles must not exhaust an 8-bucket table
        // with only 4 live keys (tombstone reuse).
        let t = HashTable::new(PAddr::new(0), 8);
        let mut tx = MapTxn::default();
        for round in 0..100u64 {
            for k in 0..4u64 {
                t.insert(&mut tx, k, round).unwrap();
            }
            for k in 0..4u64 {
                assert_eq!(t.remove(&mut tx, k).unwrap(), Some(round));
            }
        }
    }

    #[test]
    fn model_check_against_hashmap() {
        let t = HashTable::new(PAddr::new(64), 256);
        let mut tx = MapTxn::default();
        let mut model = HashMap::new();
        let mut x = 12345u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (x >> 33) % 128;
            match x % 4 {
                0 => {
                    assert_eq!(t.get(&mut tx, key).unwrap(), model.get(&key).copied());
                }
                1 => {
                    assert_eq!(t.remove(&mut tx, key).unwrap(), model.remove(&key));
                }
                _ => {
                    let val = x % 1000;
                    assert_eq!(t.insert(&mut tx, key, val).unwrap(), model.insert(key, val));
                }
            }
        }
    }
}
