//! Property tests: the transactional data structures against model maps.

use std::collections::HashMap;

use dude_txapi::{PAddr, TxResult, Txn};
use dude_workloads::btree::BTree;
use dude_workloads::hashtable::HashTable;
use proptest::prelude::*;

#[derive(Default)]
struct MapTxn(HashMap<u64, u64>);

impl Txn for MapTxn {
    fn read_word(&mut self, addr: PAddr) -> TxResult<u64> {
        Ok(*self.0.get(&addr.offset()).unwrap_or(&0))
    }
    fn write_word(&mut self, addr: PAddr, val: u64) -> TxResult<()> {
        self.0.insert(addr.offset(), val);
        Ok(())
    }
}

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Get(u64),
}

fn ops(keys: u64, n: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0..keys, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
            (0..keys).prop_map(Op::Get),
        ],
        0..n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The B+-tree behaves exactly like a map under arbitrary operation
    /// sequences (duplicates, updates, misses, splits).
    #[test]
    fn btree_matches_model(ops in ops(300, 400)) {
        let tree = BTree::new(PAddr::new(0), 4096);
        let mut tx = MapTxn::default();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(&mut tx, k, v).unwrap(), model.insert(k, v));
                }
                Op::Get(k) => {
                    prop_assert_eq!(tree.get(&mut tx, k).unwrap(), model.get(&k).copied());
                }
            }
        }
        // Full sweep at the end.
        for (k, v) in &model {
            prop_assert_eq!(tree.get(&mut tx, *k).unwrap(), Some(*v));
        }
    }

    /// The hash table behaves exactly like a map (bounded occupancy).
    #[test]
    fn hashtable_matches_model(ops in ops(96, 400)) {
        let table = HashTable::new(PAddr::new(0), 256);
        let mut tx = MapTxn::default();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(table.insert(&mut tx, k, v).unwrap(), model.insert(k, v));
                }
                Op::Get(k) => {
                    prop_assert_eq!(table.get(&mut tx, k).unwrap(), model.get(&k).copied());
                }
            }
        }
    }

    /// Zipf sampling always stays within the population and is monotone in
    /// popularity (rank 0 sampled at least as often as rank n-1 over a
    /// large sample).
    #[test]
    fn zipf_bounds(n in 2u64..500, seed in any::<u64>()) {
        let z = dude_workloads::rng::Zipf::new(n, 0.99);
        let mut rng = dude_workloads::rng::Rng::new(seed);
        let mut first = 0u64;
        let mut last = 0u64;
        for _ in 0..2000 {
            let s = z.sample(&mut rng);
            prop_assert!(s < n);
            if s == 0 { first += 1; }
            if s == n - 1 { last += 1; }
        }
        prop_assert!(first >= last);
    }
}
