//! Cross-system integration: the same workloads run over DudeTM, the
//! volatile upper bound and both baselines, and produce consistent state.

use std::sync::Arc;

use dude_baselines::{BaselineConfig, Mnemosyne, NvmlLike, VolatileStm};
use dude_nvm::{Nvm, NvmConfig};
use dude_txapi::{PAddr, TxnSystem, TxnThread};
use dude_workloads::bank::Bank;
use dude_workloads::driver::{load_workload, run_fixed_ops, RunConfig};
use dude_workloads::hashtable::HashTable;
use dude_workloads::kv::{BTreeKv, HashKv};
use dude_workloads::micro::HashInsertBench;
use dude_workloads::tatp::Tatp;
use dude_workloads::tpcc::{Tpcc, TpccParams};
use dude_workloads::ycsb::SessionStore;
use dudetm::{DudeTm, DudeTmConfig, DurabilityMode};

const HEAP: u64 = 8 << 20;

fn dude_system(mode: DurabilityMode) -> DudeTm<dude_stm::Stm> {
    let nvm = Arc::new(Nvm::new(NvmConfig::for_testing(24 << 20)));
    let config = DudeTmConfig {
        max_threads: 8,
        ..DudeTmConfig::small(HEAP)
    }
    .with_durability(mode);
    DudeTm::create_stm(nvm, config)
}

fn bank_total<S: TxnSystem>(sys: &S, bank: &Bank) -> u64 {
    let mut t = sys.register_thread();
    t.run(&mut |tx| bank.total(tx)).expect_committed()
}

/// Bank transfers conserve the total on every system.
#[test]
fn bank_conserves_on_every_system() {
    let bank = Bank::new(PAddr::new(64), 64, 100);
    let cfg = RunConfig {
        threads: 2,
        ..RunConfig::default()
    };

    // DudeTM (async) and DudeTM-Sync.
    for mode in [
        DurabilityMode::Async { buffer_txns: 256 },
        DurabilityMode::Sync,
    ] {
        let sys = dude_system(mode);
        load_workload(&sys, &bank);
        let stats = run_fixed_ops(&sys, &bank, cfg, 300);
        assert!(stats.committed > 0, "{}", sys.name());
        assert_eq!(bank_total(&sys, &bank), 6400, "{}", sys.name());
        sys.quiesce();
    }

    // Volatile-STM.
    let sys = VolatileStm::new(HEAP);
    load_workload(&sys, &bank);
    run_fixed_ops(&sys, &bank, cfg, 300);
    assert_eq!(bank_total(&sys, &bank), 6400);

    // Mnemosyne.
    let nvm = Arc::new(Nvm::new(NvmConfig::for_testing(24 << 20)));
    let sys = Mnemosyne::create(nvm, BaselineConfig::small(HEAP));
    load_workload(&sys, &bank);
    run_fixed_ops(&sys, &bank, cfg, 300);
    assert_eq!(bank_total(&sys, &bank), 6400);

    // NVML (static transactions: bank declares its writes).
    let nvm = Arc::new(Nvm::new(NvmConfig::for_testing(24 << 20)));
    let sys = NvmlLike::create(nvm, BaselineConfig::small(HEAP));
    load_workload(&sys, &bank);
    run_fixed_ops(&sys, &bank, cfg, 300);
    assert_eq!(bank_total(&sys, &bank), 6400);
}

/// Hash-table inserts land identically on DudeTM and Volatile-STM for the
/// same seed (single-threaded determinism).
#[test]
fn deterministic_single_thread_equivalence() {
    let table = HashTable::new(PAddr::new(64), 4096);
    let bench = HashInsertBench::new(table, 1024);
    let cfg = RunConfig {
        threads: 1,
        seed: 7,
        ..RunConfig::default()
    };

    let dude = dude_system(DurabilityMode::Async { buffer_txns: 256 });
    run_fixed_ops(&dude, &bench, cfg, 500);
    let vol = VolatileStm::new(HEAP);
    run_fixed_ops(&vol, &bench, cfg, 500);

    let mut td = dude.register_thread();
    let mut tv = vol.register_thread();
    for k in 0..1024u64 {
        let a = td.run(&mut |tx| table.get(tx, k)).expect_committed();
        let b = tv.run(&mut |tx| table.get(tx, k)).expect_committed();
        assert_eq!(a, b, "key {k} differs between systems");
    }
}

/// TPC-C runs on DudeTM with both index kinds and the state checks out.
#[test]
fn tpcc_on_dudetm_both_indexes() {
    let params = TpccParams {
        districts: 4,
        customers_per_district: 32,
        items: 128,
        max_orders: 4096,
        partition_by_worker: false,
        payment_pct: 0,
    };
    // B+-tree variant.
    {
        let sys = dude_system(DurabilityMode::Async { buffer_txns: 256 });
        let tpcc = Tpcc::new(
            BTreeKv::new(PAddr::new(64), 16384),
            PAddr::new(4 << 20),
            params,
            "TPC-C (B+-tree)",
        );
        load_workload(&sys, &tpcc);
        let stats = run_fixed_ops(
            &sys,
            &tpcc,
            RunConfig {
                threads: 2,
                ..RunConfig::default()
            },
            100,
        );
        assert_eq!(stats.committed, 200);
        // Order IDs issued = orders indexed.
        let mut t = sys.register_thread();
        let mut orders = 0u64;
        for d in 0..params.districts {
            for o in 1..1000 {
                if t.run(&mut |tx| tpcc.order_customer(tx, d, o))
                    .expect_committed()
                    .is_some()
                {
                    orders += 1;
                } else {
                    break;
                }
            }
        }
        assert_eq!(orders, 200);
    }
    // Hash variant.
    {
        let sys = dude_system(DurabilityMode::Async { buffer_txns: 256 });
        let tpcc = Tpcc::new(
            HashKv::new(PAddr::new(64), 65536),
            PAddr::new(4 << 20),
            params,
            "TPC-C (hash)",
        );
        load_workload(&sys, &tpcc);
        let stats = run_fixed_ops(
            &sys,
            &tpcc,
            RunConfig {
                threads: 2,
                ..RunConfig::default()
            },
            50,
        );
        assert_eq!(stats.committed, 100);
    }
}

/// TPC-C (hash) also runs on the static-transaction NVML baseline.
#[test]
fn tpcc_hash_on_nvml() {
    let params = TpccParams {
        districts: 2,
        customers_per_district: 16,
        items: 64,
        max_orders: 1024,
        partition_by_worker: false,
        payment_pct: 0,
    };
    let nvm = Arc::new(Nvm::new(NvmConfig::for_testing(32 << 20)));
    let sys = NvmlLike::create(
        nvm,
        BaselineConfig {
            heap_bytes: 16 << 20,
            max_threads: 8,
            log_bytes_per_thread: 1 << 20,
        },
    );
    let tpcc = Tpcc::new(
        HashKv::new(PAddr::new(64), 65536),
        PAddr::new(4 << 20),
        params,
        "TPC-C (hash)",
    );
    load_workload(&sys, &tpcc);
    let stats = run_fixed_ops(
        &sys,
        &tpcc,
        RunConfig {
            threads: 2,
            ..RunConfig::default()
        },
        25,
    );
    assert_eq!(stats.committed, 50);
}

/// TATP over DudeTM: every update lands in the record region.
#[test]
fn tatp_on_dudetm() {
    let sys = dude_system(DurabilityMode::Async { buffer_txns: 256 });
    let tatp = Tatp::new(
        HashKv::new(PAddr::new(64), 8192),
        PAddr::new(2 << 20),
        500,
        "TATP (hash)",
    );
    load_workload(&sys, &tatp);
    let stats = run_fixed_ops(
        &sys,
        &tatp,
        RunConfig {
            threads: 2,
            ..RunConfig::default()
        },
        250,
    );
    assert_eq!(stats.committed, 500);
    sys.quiesce();
}

/// YCSB over DudeTM with grouping + compression enabled (Figure 3's
/// configuration) keeps the store consistent and reports savings.
#[test]
fn ycsb_with_log_combination() {
    let nvm = Arc::new(Nvm::new(NvmConfig::for_testing(24 << 20)));
    let config = DudeTmConfig {
        max_threads: 8,
        ..DudeTmConfig::small(HEAP)
    }
    .with_grouping(32, true);
    let sys = DudeTm::create_stm(nvm, config);
    let store = SessionStore::new(
        BTreeKv::new(PAddr::new(64), 32768),
        1000,
        0.99,
        50,
        "YCSB (B+-tree)",
    );
    load_workload(&sys, &store);
    run_fixed_ops(
        &sys,
        &store,
        RunConfig {
            threads: 2,
            ..RunConfig::default()
        },
        500,
    );
    sys.quiesce();
    let stats = sys.pipeline_stats();
    assert!(stats.groups_persisted > 0);
    assert!(
        stats.combine_savings() > 0.0,
        "zipfian updates must coalesce"
    );
}

/// Durable-latency sampling works against the real pipeline.
#[test]
fn latency_sampling_on_dudetm() {
    let sys = dude_system(DurabilityMode::Async { buffer_txns: 256 });
    let bank = Bank::new(PAddr::new(64), 32, 100);
    load_workload(&sys, &bank);
    let stats = run_fixed_ops(
        &sys,
        &bank,
        RunConfig {
            threads: 2,
            latency: dude_workloads::LatencyMode::DurableAck { sample_every: 2 },
            ..RunConfig::default()
        },
        200,
    );
    let lat = stats.latency.expect("latency enabled");
    assert!(lat.samples > 100);
    assert!(lat.p50 > 0);
    assert!(lat.p50 <= lat.p99);
}
