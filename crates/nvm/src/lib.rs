//! Emulated persistent memory (NVM) for the DudeTM reproduction.
//!
//! Real NVM was not available to the DudeTM authors either: the paper
//! emulates persistent memory with DRAM and models only its *persistence
//! cost* — a persist barrier over `n` bytes takes
//! `max(latency, n / bandwidth)` (§5.1). This crate reproduces that emulator
//! and extends it with the piece the paper could not test: **observable crash
//! semantics**. Stores land in a volatile layer (the "CPU cache"); only
//! [`Nvm::flush`] + [`Nvm::fence`] move them to the durable image; a
//! simulated [`Nvm::crash`] discards everything that was not yet durable.
//! That turns crash consistency from an argument into a testable property.
//!
//! The crate also provides:
//!
//! * [`TimingModel`] / [`TimingConfig`] — the paper's delay model, realized
//!   by calibrated busy-waiting exactly like the paper's RDTSC spin loops.
//! * [`NvmStats`] — write/flush/fence counters behind Table 1 and Figure 3.
//! * [`PAllocator`] — a logged persistent allocator (`pmalloc`/`pfree`,
//!   §3.5) whose allocation log is replayed at recovery.
//! * [`Region`] — typed sub-ranges of the device used to lay out metadata,
//!   log and heap areas.
//! * [`monotonic_ns`] — the process-wide monotonic clock the observability
//!   layer stamps trace events with.
//!
//! How this emulation substitutes for the paper's hardware — and why that
//! preserves the reported behaviour — is argued point by point in
//! `DESIGN.md §Substitutions`; the pipeline that drives the device is
//! described in `DESIGN.md §Pipeline`.
//!
//! # Example
//!
//! ```
//! use dude_nvm::{Nvm, NvmConfig};
//!
//! let nvm = Nvm::new(NvmConfig::for_testing(1 << 16));
//! nvm.write_word(64, 42);
//! nvm.persist(64, 8); // flush + fence: now durable
//! nvm.write_word(72, 7); // still only in the volatile layer
//! nvm.crash();
//! assert_eq!(nvm.read_word(64), 42);
//! assert_eq!(nvm.read_word(72), 0); // lost: never flushed
//! ```

mod alloc;
mod device;
mod region;
mod stats;
pub mod thread;
mod timing;

pub use alloc::{AllocError, PAllocator, RecoveredHeap};
pub use device::{
    CrashEventKind, CrashPlan, Nvm, NvmConfig, PersistenceEvents, StageFilter, WearSummary,
};
pub use region::Region;
pub use stats::{NvmStats, StatsSnapshot};
pub use timing::{
    background_stage_scope, is_background_stage, monotonic_ns, set_background_stage,
    BackgroundStageScope, TimingConfig, TimingModel,
};

/// Bytes per emulated cache line (flush granularity).
pub const CACHE_LINE: u64 = 64;
