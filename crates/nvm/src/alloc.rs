//! Logged persistent allocator (`pmalloc`/`pfree`, §3.5).
//!
//! The paper keeps allocation orthogonal to the transaction design but
//! requires that allocator state be recoverable: every `pmalloc`/`pfree` is
//! recorded in a persistent log that recovery scans to determine which heap
//! regions are live. This module implements a first-fit free-list allocator
//! with exactly that log:
//!
//! * each operation appends a fixed-size, checksummed record and persists it
//!   (allocation is off the measured path — the paper's evaluation moves all
//!   allocation to program start, §5.2.2);
//! * recovery replays valid records in order and stops at the first torn or
//!   empty record, reconstructing the live set;
//! * when the log fills up it is compacted into a snapshot of live
//!   allocations.

use std::collections::BTreeMap;
use std::sync::Arc;

use dude_txapi::PAddr;
use parking_lot::Mutex;

use crate::{Nvm, Region};

const OP_ALLOC: u64 = 1;
const OP_FREE: u64 = 2;
const RECORD_WORDS: u64 = 4;
const RECORD_BYTES: u64 = RECORD_WORDS * 8;
const MAGIC: u64 = 0xD00D_A110_CA7E_5EED;

/// Errors returned by the allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// No free extent large enough for the request.
    OutOfMemory,
    /// The freed address is not the start of a live allocation.
    InvalidFree,
    /// The allocation log is full even after compaction.
    LogFull,
}

impl core::fmt::Display for AllocError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AllocError::OutOfMemory => f.write_str("persistent heap exhausted"),
            AllocError::InvalidFree => f.write_str("freed address is not a live allocation"),
            AllocError::LogFull => f.write_str("allocation log full"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Live allocations reconstructed by [`PAllocator::recover`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveredHeap {
    /// `(address, length in words)` of every live allocation, ascending.
    pub live: Vec<(PAddr, u64)>,
    /// Number of valid log records scanned.
    pub records_scanned: u64,
}

#[derive(Debug)]
struct Inner {
    /// Free extents: start byte offset → length in bytes.
    free: BTreeMap<u64, u64>,
    /// Live allocations: start byte offset → length in bytes.
    live: BTreeMap<u64, u64>,
    /// Next free byte offset within the log region.
    log_cursor: u64,
}

/// A recoverable persistent-heap allocator.
///
/// # Example
///
/// ```
/// use dude_nvm::{Nvm, NvmConfig, PAllocator, Region};
/// use std::sync::Arc;
///
/// let nvm = Arc::new(Nvm::new(NvmConfig::for_testing(1 << 16)));
/// let log = Region::new(0, 4096);
/// let heap = Region::new(4096, (1 << 16) - 4096);
/// let alloc = PAllocator::new(Arc::clone(&nvm), heap, log);
/// let a = alloc.alloc(4)?;
/// nvm.write_word(a.offset(), 99);
/// alloc.free(a)?;
/// # Ok::<(), dude_nvm::AllocError>(())
/// ```
#[derive(Debug)]
pub struct PAllocator {
    nvm: Arc<Nvm>,
    heap: Region,
    log: Region,
    inner: Mutex<Inner>,
}

impl PAllocator {
    /// Creates a fresh allocator over `heap`, logging into `log`.
    ///
    /// # Panics
    ///
    /// Panics if `log` cannot hold at least one record or regions are not
    /// word-aligned.
    pub fn new(nvm: Arc<Nvm>, heap: Region, log: Region) -> Self {
        assert!(log.len() >= RECORD_BYTES, "allocation log region too small");
        assert!(
            heap.start().is_multiple_of(8) && log.start().is_multiple_of(8),
            "allocator regions must be word-aligned"
        );
        let mut free = BTreeMap::new();
        free.insert(heap.start(), heap.len());
        // Zero the first record slot so recovery of a fresh heap sees an
        // empty log.
        nvm.write_words(log.start(), &[0; RECORD_WORDS as usize]);
        nvm.persist(log.start(), RECORD_BYTES);
        PAllocator {
            nvm,
            heap,
            log,
            inner: Mutex::new(Inner {
                free,
                live: BTreeMap::new(),
                log_cursor: 0,
            }),
        }
    }

    /// Rebuilds allocator state from the persistent log after a crash.
    ///
    /// Returns the allocator plus the reconstructed live set. Scanning stops
    /// at the first record with an invalid checksum (a torn append), exactly
    /// like transaction-log recovery (§3.5).
    pub fn recover(nvm: Arc<Nvm>, heap: Region, log: Region) -> (Self, RecoveredHeap) {
        let mut live: BTreeMap<u64, u64> = BTreeMap::new();
        let mut cursor = 0u64;
        let mut records = 0u64;
        while cursor + RECORD_BYTES <= log.len() {
            let mut rec = [0u64; RECORD_WORDS as usize];
            nvm.read_words(log.start() + cursor, &mut rec);
            let [op, addr, words, sum] = rec;
            if op == 0 || sum != checksum(op, addr, words) {
                break;
            }
            match op {
                OP_ALLOC => {
                    live.insert(addr, words * 8);
                }
                OP_FREE => {
                    live.remove(&addr);
                }
                _ => break,
            }
            cursor += RECORD_BYTES;
            records += 1;
        }
        // Free list = heap minus live extents.
        let mut free = BTreeMap::new();
        let mut pos = heap.start();
        for (&start, &len) in &live {
            if start > pos {
                free.insert(pos, start - pos);
            }
            pos = start + len;
        }
        if pos < heap.end() {
            free.insert(pos, heap.end() - pos);
        }
        let recovered = RecoveredHeap {
            live: live
                .iter()
                .map(|(&a, &len)| (PAddr::new(a), len / 8))
                .collect(),
            records_scanned: records,
        };
        let alloc = PAllocator {
            nvm,
            heap,
            log,
            inner: Mutex::new(Inner {
                free,
                live,
                log_cursor: cursor,
            }),
        };
        (alloc, recovered)
    }

    /// Allocates `words` words and durably logs the allocation.
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfMemory`] if no extent fits; [`AllocError::LogFull`]
    /// if the log cannot hold the record even after compaction.
    pub fn alloc(&self, words: u64) -> Result<PAddr, AllocError> {
        assert!(words > 0, "cannot allocate zero words");
        let bytes = words * 8;
        let mut inner = self.inner.lock();
        // First fit.
        let slot = inner
            .free
            .iter()
            .find(|(_, &len)| len >= bytes)
            .map(|(&start, &len)| (start, len))
            .ok_or(AllocError::OutOfMemory)?;
        let (start, len) = slot;
        inner.free.remove(&start);
        if len > bytes {
            inner.free.insert(start + bytes, len - bytes);
        }
        inner.live.insert(start, bytes);
        self.append(&mut inner, OP_ALLOC, start, words)?;
        Ok(PAddr::new(start))
    }

    /// Frees a previous allocation and durably logs the free.
    ///
    /// # Errors
    ///
    /// [`AllocError::InvalidFree`] if `addr` is not a live allocation start;
    /// [`AllocError::LogFull`] if the log cannot hold the record.
    pub fn free(&self, addr: PAddr) -> Result<(), AllocError> {
        let mut inner = self.inner.lock();
        let bytes = inner
            .live
            .remove(&addr.offset())
            .ok_or(AllocError::InvalidFree)?;
        Self::insert_free(&mut inner.free, addr.offset(), bytes);
        self.append(&mut inner, OP_FREE, addr.offset(), bytes / 8)?;
        Ok(())
    }

    /// The heap region this allocator manages.
    pub fn heap(&self) -> Region {
        self.heap
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.inner.lock().live.len()
    }

    /// Total free bytes.
    pub fn free_bytes(&self) -> u64 {
        self.inner.lock().free.values().sum()
    }

    fn insert_free(free: &mut BTreeMap<u64, u64>, start: u64, len: u64) {
        let mut start = start;
        let mut len = len;
        // Coalesce with predecessor.
        if let Some((&pstart, &plen)) = free.range(..start).next_back() {
            if pstart + plen == start {
                free.remove(&pstart);
                start = pstart;
                len += plen;
            }
        }
        // Coalesce with successor.
        if let Some(&nlen) = free.get(&(start + len)) {
            free.remove(&(start + len));
            len += nlen;
        }
        free.insert(start, len);
    }

    fn append(&self, inner: &mut Inner, op: u64, addr: u64, words: u64) -> Result<(), AllocError> {
        if inner.log_cursor + RECORD_BYTES > self.log.len() {
            self.compact(inner)?;
        }
        let off = self.log.start() + inner.log_cursor;
        let rec = [op, addr, words, checksum(op, addr, words)];
        self.nvm.write_words(off, &rec);
        self.nvm.persist(off, RECORD_BYTES);
        inner.log_cursor += RECORD_BYTES;
        // Zero the next slot so recovery stops cleanly (unless at the end).
        if inner.log_cursor + RECORD_BYTES <= self.log.len() {
            self.nvm
                .write_words(self.log.start() + inner.log_cursor, &[0; 4]);
            self.nvm
                .persist(self.log.start() + inner.log_cursor, RECORD_BYTES);
        }
        Ok(())
    }

    /// Rewrites the log as a snapshot of live allocations.
    fn compact(&self, inner: &mut Inner) -> Result<(), AllocError> {
        let needed = (inner.live.len() as u64 + 1) * RECORD_BYTES;
        if needed > self.log.len() {
            return Err(AllocError::LogFull);
        }
        // Write the snapshot from the beginning. A crash mid-compaction can
        // lose frees (records appear allocated again) but never loses live
        // allocations, because OP_ALLOC records are rewritten before the
        // cursor moves back. Conservative leak-on-crash is the standard
        // allocator-log trade-off.
        let mut cursor = 0u64;
        for (&addr, &bytes) in &inner.live {
            let off = self.log.start() + cursor;
            let rec = [
                OP_ALLOC,
                addr,
                bytes / 8,
                checksum(OP_ALLOC, addr, bytes / 8),
            ];
            self.nvm.write_words(off, &rec);
            cursor += RECORD_BYTES;
        }
        if cursor + RECORD_BYTES <= self.log.len() {
            self.nvm.write_words(self.log.start() + cursor, &[0; 4]);
        }
        self.nvm.persist(self.log.start(), cursor + RECORD_BYTES);
        inner.log_cursor = cursor;
        Ok(())
    }
}

fn checksum(op: u64, addr: u64, words: u64) -> u64 {
    MAGIC ^ op.rotate_left(1) ^ addr.rotate_left(17) ^ words.rotate_left(33)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NvmConfig;

    fn setup(size: u64) -> (Arc<Nvm>, Region, Region) {
        let nvm = Arc::new(Nvm::new(NvmConfig::for_testing(size)));
        let log = Region::new(0, 1024);
        let heap = Region::new(1024, size - 1024);
        (nvm, heap, log)
    }

    #[test]
    fn alloc_returns_disjoint_ranges() {
        let (nvm, heap, log) = setup(1 << 16);
        let a = PAllocator::new(nvm, heap, log);
        let x = a.alloc(4).unwrap();
        let y = a.alloc(4).unwrap();
        assert_ne!(x, y);
        assert!(y.offset() >= x.offset() + 32 || x.offset() >= y.offset() + 32);
    }

    #[test]
    fn free_coalesces() {
        let (nvm, heap, log) = setup(1 << 16);
        let a = PAllocator::new(nvm, heap, log);
        let before = a.free_bytes();
        let x = a.alloc(4).unwrap();
        let y = a.alloc(4).unwrap();
        let z = a.alloc(4).unwrap();
        a.free(y).unwrap();
        a.free(x).unwrap();
        a.free(z).unwrap();
        assert_eq!(a.free_bytes(), before);
        assert_eq!(a.live_count(), 0);
        // After full coalescing a max-size allocation fits again.
        let whole = a.alloc(before / 8).unwrap();
        assert_eq!(whole.offset(), heap.start());
    }

    #[test]
    fn invalid_free_rejected() {
        let (nvm, heap, log) = setup(1 << 16);
        let a = PAllocator::new(nvm, heap, log);
        assert_eq!(
            a.free(PAddr::new(heap.start())),
            Err(AllocError::InvalidFree)
        );
        let x = a.alloc(2).unwrap();
        assert_eq!(a.free(x.add(8)), Err(AllocError::InvalidFree));
    }

    #[test]
    fn out_of_memory() {
        let (nvm, heap, log) = setup(1 << 13);
        let a = PAllocator::new(nvm, heap, log);
        assert_eq!(a.alloc(1 << 20), Err(AllocError::OutOfMemory));
    }

    #[test]
    fn recovery_reconstructs_live_set() {
        let (nvm, heap, log) = setup(1 << 16);
        let a = PAllocator::new(Arc::clone(&nvm), heap, log);
        let x = a.alloc(4).unwrap();
        let y = a.alloc(8).unwrap();
        a.free(x).unwrap();
        drop(a);
        nvm.crash();
        let (a2, rec) = PAllocator::recover(Arc::clone(&nvm), heap, log);
        assert_eq!(rec.live, vec![(y, 8)]);
        assert_eq!(rec.records_scanned, 3);
        // The recovered allocator does not hand out the live range again.
        let z = a2.alloc(8).unwrap();
        assert_ne!(z, y);
        a2.free(y).unwrap();
    }

    #[test]
    fn recovery_of_fresh_heap_is_empty() {
        let (nvm, heap, log) = setup(1 << 16);
        let _ = PAllocator::new(Arc::clone(&nvm), heap, log);
        nvm.crash();
        let (_, rec) = PAllocator::recover(nvm, heap, log);
        assert!(rec.live.is_empty());
    }

    #[test]
    fn torn_record_is_ignored() {
        let (nvm, heap, log) = setup(1 << 16);
        let a = PAllocator::new(Arc::clone(&nvm), heap, log);
        let x = a.alloc(4).unwrap();
        // Corrupt the next slot with garbage that is not fenced.
        nvm.write_words(log.start() + RECORD_BYTES, &[OP_ALLOC, 999, 1, 0xBAD]);
        nvm.crash();
        let (_, rec) = PAllocator::recover(nvm, heap, log);
        assert_eq!(rec.live, vec![(x, 4)]);
    }

    #[test]
    fn compaction_allows_unbounded_ops() {
        let (nvm, heap, log) = setup(1 << 16);
        // 1024-byte log = 32 records; run many more alloc/free pairs.
        let a = PAllocator::new(Arc::clone(&nvm), heap, log);
        for _ in 0..200 {
            let x = a.alloc(2).unwrap();
            a.free(x).unwrap();
        }
        let keep = a.alloc(2).unwrap();
        nvm.crash();
        let (_, rec) = PAllocator::recover(nvm, heap, log);
        assert_eq!(rec.live, vec![(keep, 2)]);
    }

    #[test]
    fn recovered_free_list_excludes_live() {
        let (nvm, heap, log) = setup(1 << 16);
        let a = PAllocator::new(Arc::clone(&nvm), heap, log);
        let live: Vec<_> = (0..10).map(|_| a.alloc(3).unwrap()).collect();
        for (i, x) in live.iter().enumerate() {
            if i % 2 == 0 {
                a.free(*x).unwrap();
            }
        }
        nvm.crash();
        let (a2, rec) = PAllocator::recover(nvm, heap, log);
        assert_eq!(rec.live.len(), 5);
        // Allocate a lot; none may overlap a live extent.
        for _ in 0..20 {
            let n = a2.alloc(3).unwrap();
            for &(addr, words) in &rec.live {
                let (ns, ne) = (n.offset(), n.offset() + 24);
                let (ls, le) = (addr.offset(), addr.offset() + words * 8);
                assert!(ne <= ls || ns >= le, "overlap {n} vs {addr}");
            }
        }
    }
}
