//! The paper's NVM persistence-cost model (§5.1).
//!
//! * A single persisted write (or a persist barrier over a small range)
//!   costs a fixed `latency`. The paper uses 3500 cycles (≈ 1 µs on its
//!   3.4 GHz Xeon) for PCM-class writes and 1000 cycles (≈ 300 ns) for a
//!   projected faster device.
//! * A persist barrier over a large range costs
//!   `max(latency, bytes / bandwidth)`.
//!
//! Delays are realized by busy-waiting on the monotonic clock, the same
//! technique as the paper's RDTSC loop.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Frequency the paper's cycle counts are quoted at (3.4 GHz Xeon E5-2643).
pub const PAPER_GHZ: f64 = 3.4;

/// Process-wide monotonic epoch for trace timestamps (first call wins).
static TRACE_EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds elapsed since the process-wide trace epoch (the first call
/// to this function). This is the shared clock every pipeline stage stamps
/// trace events with: one origin, monotonic, and the same source the
/// timing model's busy-waits run on, so event timestamps and modeled
/// persist delays are directly comparable on one axis.
///
/// The epoch is lazily initialized; call once early (the runtime does this
/// when tracing is enabled) if a zero-based origin matters.
pub fn monotonic_ns() -> u64 {
    #[cfg(feature = "sim")]
    if dude_sim::on_sim_task() {
        // Clock reads are yield points: timer-driven control flow (flush
        // hold timers, watermark polls) is schedule-explorable, and the
        // returned time is the deterministic virtual clock.
        dude_sim::yield_point(dude_sim::YieldKind::Time);
        return dude_sim::now_ns();
    }
    let epoch = TRACE_EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

/// Configuration of the persistence-cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingConfig {
    /// Fixed persist-barrier latency in nanoseconds.
    pub latency_ns: u64,
    /// Sustained NVM write bandwidth in bytes per second. `0` disables the
    /// bandwidth term.
    pub bandwidth_bytes_per_sec: u64,
    /// Master switch: when `false` no delays are injected (unit tests).
    pub enabled: bool,
}

impl TimingConfig {
    /// The paper's default configuration: 1000-cycle latency at 3.4 GHz and
    /// 1 GB/s bandwidth.
    pub fn paper_default() -> Self {
        TimingConfig {
            latency_ns: Self::cycles_to_ns(1000),
            bandwidth_bytes_per_sec: 1 << 30,
            enabled: true,
        }
    }

    /// A configuration with all delays disabled (functional testing).
    pub fn disabled() -> Self {
        TimingConfig {
            latency_ns: 0,
            bandwidth_bytes_per_sec: 0,
            enabled: false,
        }
    }

    /// Converts a cycle count at the paper's 3.4 GHz into nanoseconds.
    pub fn cycles_to_ns(cycles: u64) -> u64 {
        (cycles as f64 / PAPER_GHZ) as u64
    }

    /// Sets the latency from a cycle count at the paper's clock frequency.
    #[must_use]
    pub fn with_latency_cycles(mut self, cycles: u64) -> Self {
        self.latency_ns = Self::cycles_to_ns(cycles);
        self
    }

    /// Sets the bandwidth in GB/s (the unit of Figure 2's sweep).
    #[must_use]
    pub fn with_bandwidth_gb(mut self, gb_per_sec: u64) -> Self {
        self.bandwidth_bytes_per_sec = gb_per_sec << 30;
        self
    }
}

impl Default for TimingConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

std::thread_local! {
    /// Marks the current thread as a background pipeline stage (Persist /
    /// Reproduce). See [`set_background_stage`].
    static BACKGROUND_STAGE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Declares whether the calling thread is a *background* pipeline stage.
///
/// Foreground persist barriers (a transaction waiting for durability on
/// its critical path) busy-wait with cycle accuracy, like the paper's RDTSC
/// loop. Background stages — DudeTM's Persist and Reproduce threads, which
/// on the paper's 12-core machine wait out NVM latency on *their own*
/// cores — must not burn the CPU that the Perform threads need, especially
/// on machines with few cores. Marking a thread as background makes its
/// modeled delays yield the processor while the wall-clock delay elapses,
/// which is exactly what dedicating a core to the stage would look like.
pub fn set_background_stage(background: bool) {
    BACKGROUND_STAGE.with(|b| b.set(background));
}

/// Whether the calling thread is currently marked as a background stage
/// (see [`set_background_stage`]). Used by the device's crash-plan event
/// accounting to attribute persistence events to pipeline stages.
pub fn is_background_stage() -> bool {
    BACKGROUND_STAGE.with(|b| b.get())
}

/// RAII guard marking the calling thread as a background pipeline stage
/// for its lifetime (see [`set_background_stage`]). Pipeline workers hold
/// one for their whole run so every persistence event they emit — and
/// every crash plan filtered on [`StageFilter::Background`] — attributes
/// to the background stage, even if the worker unwinds.
///
/// [`StageFilter::Background`]: crate::StageFilter::Background
#[derive(Debug)]
pub struct BackgroundStageScope {
    was: bool,
}

/// Enters a background-stage scope on the calling thread.
#[must_use = "the scope ends when the guard drops"]
pub fn background_stage_scope() -> BackgroundStageScope {
    let was = is_background_stage();
    set_background_stage(true);
    BackgroundStageScope { was }
}

impl Drop for BackgroundStageScope {
    fn drop(&mut self) {
        set_background_stage(self.was);
    }
}

/// Runtime delay injector for persist barriers.
///
/// Also accumulates the total modeled delay so experiments can report how
/// much wall time went to persistence.
#[derive(Debug)]
pub struct TimingModel {
    config: TimingConfig,
    total_delay_ns: AtomicU64,
}

impl TimingModel {
    /// Creates a model from a configuration.
    pub fn new(config: TimingConfig) -> Self {
        TimingModel {
            config,
            total_delay_ns: AtomicU64::new(0),
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> TimingConfig {
        self.config
    }

    /// Nanoseconds a persist barrier over `bytes` bytes costs:
    /// `max(latency, bytes / bandwidth)`.
    pub fn persist_cost_ns(&self, bytes: u64) -> u64 {
        if !self.config.enabled {
            return 0;
        }
        let bw = self.config.bandwidth_bytes_per_sec;
        let bw_ns = if bw == 0 {
            0
        } else {
            // bytes / (bw / 1e9) without overflow for realistic sizes.
            ((bytes as u128 * 1_000_000_000u128) / bw as u128) as u64
        };
        self.config.latency_ns.max(bw_ns)
    }

    /// Busy-waits for the cost of a persist barrier over `bytes` bytes.
    pub fn delay_persist(&self, bytes: u64) {
        let ns = self.persist_cost_ns(bytes);
        if ns == 0 {
            return;
        }
        self.total_delay_ns.fetch_add(ns, Ordering::Relaxed);
        #[cfg(feature = "sim")]
        if dude_sim::on_sim_task() {
            // Modeled device time becomes virtual time: the delay is
            // exact, deterministic, and free of wall-clock waiting.
            dude_sim::sleep_ns(ns);
            return;
        }
        if BACKGROUND_STAGE.with(|b| b.get()) {
            wait_yielding(Duration::from_nanos(ns));
        } else {
            spin_for(Duration::from_nanos(ns));
        }
    }

    /// Total modeled delay injected so far, in nanoseconds.
    pub fn total_delay_ns(&self) -> u64 {
        self.total_delay_ns.load(Ordering::Relaxed)
    }
}

/// Busy-wait for `dur` on the monotonic clock (the paper's RDTSC loop).
fn spin_for(dur: Duration) {
    let start = Instant::now();
    while start.elapsed() < dur {
        std::hint::spin_loop();
    }
}

/// Waits out `dur` while releasing the CPU to runnable threads — the
/// background-stage delay (see [`set_background_stage`]).
///
/// Long waits park the thread outright instead of yielding: a yield loop
/// keeps the thread runnable for the whole window, so on hosts with few
/// cores every "waiting" background stage still consumes a fair-share
/// scheduler slice and starves the compute threads it was supposed to get
/// out of the way of. Parking frees the core entirely — which is exactly
/// what a stage waiting out device time on dedicated hardware looks like —
/// and the trailing yield loop restores sub-quantum precision.
fn wait_yielding(dur: Duration) {
    const PARK_FLOOR: Duration = Duration::from_micros(200);
    const PARK_SLACK: Duration = Duration::from_micros(100);
    let start = Instant::now();
    if dur >= PARK_FLOOR {
        std::thread::sleep(dur - PARK_SLACK);
    }
    while start.elapsed() < dur {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_conversion_matches_paper_clock() {
        // 3400 cycles at 3.4 GHz is exactly 1 µs.
        assert_eq!(TimingConfig::cycles_to_ns(3400), 1000);
        // The paper's 3500-cycle PCM latency is about 1 µs.
        let ns = TimingConfig::cycles_to_ns(3500);
        assert!((1000..=1060).contains(&ns), "{ns}");
    }

    #[test]
    fn latency_dominates_small_persists() {
        let m = TimingModel::new(TimingConfig::paper_default());
        // 64 bytes at 1 GB/s is ~60 ns, below the ~294 ns latency.
        assert_eq!(m.persist_cost_ns(64), m.config().latency_ns);
    }

    #[test]
    fn bandwidth_dominates_large_persists() {
        let m = TimingModel::new(TimingConfig::paper_default().with_bandwidth_gb(1));
        // 1 MiB at 1 GiB/s is ~976 µs, far above latency.
        let ns = m.persist_cost_ns(1 << 20);
        assert!(ns > 900_000, "{ns}");
    }

    #[test]
    fn disabled_model_costs_nothing() {
        let m = TimingModel::new(TimingConfig::disabled());
        assert_eq!(m.persist_cost_ns(1 << 30), 0);
        m.delay_persist(1 << 30); // returns immediately
        assert_eq!(m.total_delay_ns(), 0);
    }

    #[test]
    fn delay_accumulates_total() {
        let cfg = TimingConfig {
            latency_ns: 1000,
            bandwidth_bytes_per_sec: 0,
            enabled: true,
        };
        let m = TimingModel::new(cfg);
        m.delay_persist(8);
        m.delay_persist(8);
        assert_eq!(m.total_delay_ns(), 2000);
    }

    #[test]
    fn delay_actually_waits() {
        let cfg = TimingConfig {
            latency_ns: 2_000_000, // 2 ms, comfortably measurable
            bandwidth_bytes_per_sec: 0,
            enabled: true,
        };
        let m = TimingModel::new(cfg);
        let start = Instant::now();
        m.delay_persist(8);
        assert!(start.elapsed() >= Duration::from_millis(2));
    }

    #[test]
    fn bandwidth_setter_uses_gb() {
        let cfg = TimingConfig::paper_default().with_bandwidth_gb(16);
        assert_eq!(cfg.bandwidth_bytes_per_sec, 16u64 << 30);
    }
}
