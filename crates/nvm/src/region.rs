//! Typed sub-ranges of the emulated device.

use dude_txapi::PAddr;

/// A contiguous byte range of the NVM device.
///
/// Regions partition the device into metadata, per-thread log and heap areas
/// (Figure 1's "persistent log region" and "persistent data"). They carry no
/// ownership; they are layout bookkeeping with bounds-checked splitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    start: u64,
    len: u64,
}

impl Region {
    /// Creates a region covering `[start, start + len)`.
    pub const fn new(start: u64, len: u64) -> Self {
        Region { start, len }
    }

    /// First byte offset of the region.
    pub const fn start(&self) -> u64 {
        self.start
    }

    /// Length of the region in bytes.
    pub const fn len(&self) -> u64 {
        self.len
    }

    /// `true` if the region is empty.
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// One past the last byte offset.
    pub const fn end(&self) -> u64 {
        self.start + self.len
    }

    /// Address of the byte at `offset` within the region.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= len`.
    pub fn addr(&self, offset: u64) -> PAddr {
        assert!(offset < self.len, "offset {offset} out of region {self:?}");
        PAddr::new(self.start + offset)
    }

    /// `true` if `[addr, addr + bytes)` lies entirely within the region.
    pub fn contains(&self, addr: PAddr, bytes: u64) -> bool {
        let off = addr.offset();
        off >= self.start && off + bytes <= self.end()
    }

    /// Splits off the first `len` bytes, returning `(head, rest)`.
    ///
    /// # Panics
    ///
    /// Panics if `len > self.len()`.
    #[must_use]
    pub fn split(&self, len: u64) -> (Region, Region) {
        assert!(len <= self.len, "cannot split {len} bytes off {self:?}");
        (
            Region::new(self.start, len),
            Region::new(self.start + len, self.len - len),
        )
    }

    /// Splits the region into `n` equal chunks (remainder goes unused).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn split_even(&self, n: u64) -> Vec<Region> {
        assert!(n > 0, "cannot split a region into zero chunks");
        let chunk = self.len / n;
        (0..n)
            .map(|i| Region::new(self.start + i * chunk, chunk))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_partitions() {
        let r = Region::new(100, 50);
        let (a, b) = r.split(20);
        assert_eq!(a, Region::new(100, 20));
        assert_eq!(b, Region::new(120, 30));
        assert_eq!(r.end(), 150);
    }

    #[test]
    fn split_even_covers_chunks() {
        let r = Region::new(0, 100);
        let parts = r.split_even(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], Region::new(0, 33));
        assert_eq!(parts[2], Region::new(66, 33));
    }

    #[test]
    fn contains_and_addr() {
        let r = Region::new(64, 64);
        assert!(r.contains(PAddr::new(64), 64));
        assert!(!r.contains(PAddr::new(64), 65));
        assert!(!r.contains(PAddr::new(0), 8));
        assert_eq!(r.addr(8), PAddr::new(72));
    }

    #[test]
    #[should_panic(expected = "out of region")]
    fn addr_bounds_checked() {
        Region::new(0, 8).addr(8);
    }

    #[test]
    fn empty_region() {
        assert!(Region::new(10, 0).is_empty());
        assert!(!Region::new(10, 1).is_empty());
    }
}
