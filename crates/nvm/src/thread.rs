//! Thread helpers shared by the pipeline stages, sim-aware.
//!
//! The pipeline spawns its background workers and parks in condition-poll
//! loops through these wrappers instead of `std::thread` directly. On a
//! native run they are thin veneers over `std`; under `cfg(feature =
//! "sim")` (and inside an active simulated run) spawning registers the
//! worker as a task of the `dude-sim` virtual scheduler and the waits
//! park on virtual time, so every pipeline hand-off is deterministic and
//! schedule-explorable. Threads spawned outside a simulated run behave
//! natively even in `sim` builds.

use std::time::Duration;

/// A join handle over either a native thread or a simulated task.
#[derive(Debug)]
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

#[derive(Debug)]
enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    #[cfg(feature = "sim")]
    Sim(dude_sim::SimJoinHandle<T>),
}

impl<T> JoinHandle<T> {
    /// Waits for the thread/task to finish, like
    /// [`std::thread::JoinHandle::join`]. Inside a simulated run the wait
    /// parks on the virtual scheduler, so joining never wedges the
    /// single-task-at-a-time token.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Std(h) => h.join(),
            #[cfg(feature = "sim")]
            Inner::Sim(h) => h.join(),
        }
    }

    /// Whether the thread/task has finished running.
    pub fn is_finished(&self) -> bool {
        match &self.inner {
            Inner::Std(h) => h.is_finished(),
            #[cfg(feature = "sim")]
            Inner::Sim(h) => h.is_finished(),
        }
    }
}

/// Spawns a named worker thread. Inside a simulated run the worker
/// becomes a scheduler task; otherwise a plain named OS thread.
///
/// # Panics
///
/// Panics if the OS refuses to spawn a thread (the pipeline cannot run
/// degraded).
pub fn spawn_named<T, F>(name: &str, f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    #[cfg(feature = "sim")]
    if dude_sim::on_sim_task() {
        return JoinHandle {
            inner: Inner::Sim(dude_sim::spawn(name, f)),
        };
    }
    let h = std::thread::Builder::new()
        .name(name.to_owned())
        .spawn(f)
        .expect("worker thread spawn failed");
    JoinHandle {
        inner: Inner::Std(h),
    }
}

/// Releases the processor in a condition-poll loop. Inside a simulated
/// run this parks the task as an event waiter on the virtual scheduler
/// (woken by the next lock release / channel operation, or a short
/// virtual poll interval) — a raw `std::thread::yield_now` loop would
/// spin forever under one-task-at-a-time scheduling.
pub fn yield_now() {
    #[cfg(feature = "sim")]
    if dude_sim::on_sim_task() {
        dude_sim::block(dude_sim::YieldKind::Poll);
        return;
    }
    std::thread::yield_now();
}

/// Sleeps for `dur`: virtual time inside a simulated run (exact and
/// instant in wall-clock terms), wall-clock time otherwise.
pub fn sleep(dur: Duration) {
    #[cfg(feature = "sim")]
    if dude_sim::on_sim_task() {
        dude_sim::sleep_ns(u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX));
        return;
    }
    std::thread::sleep(dur);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_spawn_join_roundtrip() {
        let h = spawn_named("probe", || 7u32);
        assert_eq!(h.join().unwrap(), 7);
    }

    #[test]
    fn native_helpers_do_not_block() {
        yield_now();
        sleep(Duration::from_millis(1));
    }
}
