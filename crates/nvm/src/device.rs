//! The emulated NVM device.
//!
//! Stores are word-granular and land in the device's *volatile layer* (the
//! stand-in for CPU caches plus the memory controller's buffers). Durability
//! requires an explicit [`Nvm::flush`] of the written range followed by an
//! [`Nvm::fence`] — mirroring `CLWB`/`SFENCE` on real hardware (§2.2). A
//! simulated [`Nvm::crash`] reverts every non-durable word, which is what
//! lets the test suite *observe* crash consistency instead of assuming it.
//!
//! Words are `AtomicU64` with relaxed ordering: the device never provides
//! inter-thread synchronization (that is the TM's job); atomics only make
//! concurrent word access well-defined in safe Rust.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::stats::{NvmStats, StatsSnapshot};
use crate::timing::{is_background_stage, TimingConfig, TimingModel};
use crate::CACHE_LINE;

/// Configuration for an emulated NVM device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NvmConfig {
    /// Device capacity in bytes; must be a positive multiple of 8.
    pub size_bytes: u64,
    /// Persistence-cost model.
    pub timing: TimingConfig,
    /// When `true`, the device keeps a durable image and dirty-word tracking
    /// so [`Nvm::crash`] works. Costs 2× memory and a lock per store; meant
    /// for crash-consistency tests, not throughput runs.
    pub crash_tracking: bool,
    /// When `true`, the device counts how many times each cache line is
    /// flushed — the cell-wear statistic behind the paper's endurance
    /// motivation for log combination (§1, §3.3). One `u32` per line.
    pub wear_tracking: bool,
}

impl NvmConfig {
    /// Functional-testing configuration: no delays, crash tracking on.
    pub fn for_testing(size_bytes: u64) -> Self {
        NvmConfig {
            size_bytes,
            timing: TimingConfig::disabled(),
            crash_tracking: true,
            wear_tracking: false,
        }
    }

    /// Benchmark configuration: the given timing model, crash tracking off.
    pub fn for_benchmark(size_bytes: u64, timing: TimingConfig) -> Self {
        NvmConfig {
            size_bytes,
            timing,
            crash_tracking: false,
            wear_tracking: false,
        }
    }

    /// Enables per-line wear accounting (endurance experiments).
    #[must_use]
    pub fn with_wear_tracking(mut self) -> Self {
        self.wear_tracking = true;
        self
    }
}

/// Per-line wear summary (see [`NvmConfig::with_wear_tracking`]).
///
/// Each count is one flush of that 64-byte line — the unit of physical cell
/// wear on a real device. The paper motivates log combination by NVM's
/// limited endurance; [`WearSummary::max_line_writes`] is the hot-spot
/// metric combination should reduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WearSummary {
    /// Flushes of the most-written line.
    pub max_line_writes: u32,
    /// Total line flushes across the device.
    pub total_line_writes: u64,
    /// Distinct lines flushed at least once.
    pub lines_touched: u64,
}

/// The kind of persistence event a [`CrashPlan`] counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashEventKind {
    /// A word store ([`Nvm::write_word`]).
    Write,
    /// A cache-line flush ([`Nvm::flush`], emulated `CLWB`).
    Flush,
    /// A persist barrier ([`Nvm::fence`], emulated `SFENCE`).
    Fence,
}

/// Which pipeline stage's events a [`CrashPlan`] counts, distinguished by
/// the [`set_background_stage`](crate::set_background_stage) thread flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StageFilter {
    /// Count events from every thread.
    #[default]
    Any,
    /// Only events from threads *not* marked as background stages
    /// (application / Perform threads).
    Foreground,
    /// Only events from threads marked as background stages (DudeTM's
    /// Persist and Reproduce workers).
    Background,
}

/// A deterministic crash trigger: simulate a power failure at the Nth
/// matching persistence event.
///
/// Arm a plan with [`Nvm::arm_crash_plan`] before running a workload. When
/// the Nth matching event is *about to execute*, the device freezes the
/// post-crash image — by default the strict [`Nvm::crash`] outcome (only
/// fenced data survives), or, with [`CrashPlan::with_torn_line`], the
/// adversarial "everything drained except one torn cache line" outcome.
/// Threads keep running on the volatile layer so a live pipeline is never
/// wedged mid-run; after quiescing, [`Nvm::apply_planned_crash`] installs
/// the frozen image and the test recovers from it.
///
/// Sweeping `trip_at` over `1..=N` (with `N` from
/// [`Nvm::persistence_events`] of an identical un-armed run) enumerates a
/// crash at every persistence event of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    event: CrashEventKind,
    stage: StageFilter,
    trip_at: u64,
    torn_seed: Option<u64>,
}

impl CrashPlan {
    /// Crash at the `trip_at`-th (1-based) event of kind `event`, counted
    /// across all threads.
    ///
    /// # Panics
    ///
    /// Panics if `trip_at` is zero.
    pub fn at_nth(event: CrashEventKind, trip_at: u64) -> Self {
        assert!(
            trip_at >= 1,
            "crash plans are 1-based; trip_at must be >= 1"
        );
        CrashPlan {
            event,
            stage: StageFilter::Any,
            trip_at,
            torn_seed: None,
        }
    }

    /// Restricts counting to the given stage filter.
    #[must_use]
    pub fn for_stage(mut self, stage: StageFilter) -> Self {
        self.stage = stage;
        self
    }

    /// Switches the frozen image from the strict all-volatile-lost outcome
    /// to torn-cache-line injection: every unflushed line survives *except
    /// one*, chosen by `seed` among the lines that were not yet durable at
    /// the crash instant. This models the other edge of the `CLWB`/`SFENCE`
    /// window, where the cache happened to drain almost everything.
    #[must_use]
    pub fn with_torn_line(mut self, seed: u64) -> Self {
        self.torn_seed = Some(seed);
        self
    }
}

/// Point-in-time persistence-event counts, split by pipeline stage (see
/// [`Nvm::persistence_events`]). `writes`/`flushes`/`fences` are totals
/// across all threads; the `background_*` fields count the subset issued by
/// threads marked with [`set_background_stage`](crate::set_background_stage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PersistenceEvents {
    /// Word stores, all threads.
    pub writes: u64,
    /// Cache-line flushes, all threads.
    pub flushes: u64,
    /// Persist barriers, all threads.
    pub fences: u64,
    /// Word stores from background-stage threads.
    pub background_writes: u64,
    /// Cache-line flushes from background-stage threads.
    pub background_flushes: u64,
    /// Persist barriers from background-stage threads.
    pub background_fences: u64,
}

impl PersistenceEvents {
    /// Events of `event` kind matching `stage` — the number of distinct
    /// crash points a [`CrashPlan`] sweep over that filter can hit.
    pub fn count(&self, event: CrashEventKind, stage: StageFilter) -> u64 {
        let (all, bg) = match event {
            CrashEventKind::Write => (self.writes, self.background_writes),
            CrashEventKind::Flush => (self.flushes, self.background_flushes),
            CrashEventKind::Fence => (self.fences, self.background_fences),
        };
        match stage {
            StageFilter::Any => all,
            StageFilter::Background => bg,
            StageFilter::Foreground => all - bg,
        }
    }
}

/// Always-on (under crash tracking) atomic event tallies.
#[derive(Debug, Default)]
struct EventCounters {
    writes: AtomicU64,
    flushes: AtomicU64,
    fences: AtomicU64,
    bg_writes: AtomicU64,
    bg_flushes: AtomicU64,
    bg_fences: AtomicU64,
}

impl EventCounters {
    fn bump(&self, kind: CrashEventKind, background: bool) {
        let (all, bg) = match kind {
            CrashEventKind::Write => (&self.writes, &self.bg_writes),
            CrashEventKind::Flush => (&self.flushes, &self.bg_flushes),
            CrashEventKind::Fence => (&self.fences, &self.bg_fences),
        };
        all.fetch_add(1, Ordering::Relaxed);
        if background {
            bg.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> PersistenceEvents {
        PersistenceEvents {
            writes: self.writes.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            fences: self.fences.load(Ordering::Relaxed),
            background_writes: self.bg_writes.load(Ordering::Relaxed),
            background_flushes: self.bg_flushes.load(Ordering::Relaxed),
            background_fences: self.bg_fences.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.writes.store(0, Ordering::Relaxed);
        self.flushes.store(0, Ordering::Relaxed);
        self.fences.store(0, Ordering::Relaxed);
        self.bg_writes.store(0, Ordering::Relaxed);
        self.bg_flushes.store(0, Ordering::Relaxed);
        self.bg_fences.store(0, Ordering::Relaxed);
    }
}

/// An armed [`CrashPlan`] plus its running match count.
#[derive(Debug)]
struct ArmedPlan {
    plan: CrashPlan,
    matched: AtomicU64,
}

/// SplitMix64: small deterministic mixer for torn-line selection.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// State kept only when crash tracking is enabled.
#[derive(Debug)]
struct CrashState {
    /// The durable image: what survives a crash.
    durable: Box<[AtomicU64]>,
    /// Word indices written since they were last flushed.
    dirty: Mutex<HashSet<u64>>,
    /// Word indices flushed but not yet fenced. A real `CLWB` without a
    /// following `SFENCE` may or may not have reached the device; the strict
    /// [`Nvm::crash`] drops these, the lenient variant keeps them.
    pending: Mutex<HashSet<u64>>,
    /// Persistence-event tallies (for crash-point enumeration).
    events: EventCounters,
    /// The armed crash plan, if any.
    plan: Mutex<Option<ArmedPlan>>,
    /// Fast-path guard so unarmed runs skip the plan lock entirely.
    plan_armed: AtomicBool,
    /// Set once the armed plan has fired.
    tripped: AtomicBool,
    /// The post-crash image captured when the plan fired, until
    /// [`Nvm::apply_planned_crash`] installs it.
    frozen: Mutex<Option<Box<[u64]>>>,
}

/// An emulated byte-addressable persistent memory device.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Nvm {
    words: Box<[AtomicU64]>,
    crash_state: Option<CrashState>,
    timing: TimingModel,
    stats: NvmStats,
    /// Bytes flushed since the last fence; the fence's modeled cost covers
    /// exactly these bytes.
    unfenced_bytes: AtomicU64,
    /// Per-cache-line flush counts (wear), when enabled.
    wear: Option<Box<[std::sync::atomic::AtomicU32]>>,
    config: NvmConfig,
}

fn alloc_words(n: u64) -> Box<[AtomicU64]> {
    (0..n).map(|_| AtomicU64::new(0)).collect()
}

impl Nvm {
    /// Creates a zero-filled device.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is zero or not a multiple of 8.
    pub fn new(config: NvmConfig) -> Self {
        assert!(
            config.size_bytes > 0 && config.size_bytes.is_multiple_of(8),
            "NVM size must be a positive multiple of 8, got {}",
            config.size_bytes
        );
        let nwords = config.size_bytes / 8;
        let crash_state = config.crash_tracking.then(|| CrashState {
            durable: alloc_words(nwords),
            dirty: Mutex::new(HashSet::new()),
            pending: Mutex::new(HashSet::new()),
            events: EventCounters::default(),
            plan: Mutex::new(None),
            plan_armed: AtomicBool::new(false),
            tripped: AtomicBool::new(false),
            frozen: Mutex::new(None),
        });
        let wear = config.wear_tracking.then(|| {
            (0..config.size_bytes.div_ceil(CACHE_LINE))
                .map(|_| std::sync::atomic::AtomicU32::new(0))
                .collect()
        });
        Nvm {
            words: alloc_words(nwords),
            crash_state,
            timing: TimingModel::new(config.timing),
            stats: NvmStats::default(),
            unfenced_bytes: AtomicU64::new(0),
            wear,
            config,
        }
    }

    /// Zeroes all wear counters (e.g. after a load phase, so a measurement
    /// phase is accounted alone). No-op when wear tracking is off.
    pub fn wear_reset(&self) {
        if let Some(wear) = &self.wear {
            for w in wear.iter() {
                w.store(0, Ordering::Relaxed);
            }
        }
    }

    /// Summarizes per-line wear (flush counts). Returns `None` unless the
    /// device was built with [`NvmConfig::with_wear_tracking`].
    pub fn wear_summary(&self) -> Option<WearSummary> {
        let wear = self.wear.as_ref()?;
        let mut max = 0u32;
        let mut total = 0u64;
        let mut touched = 0u64;
        for w in wear.iter() {
            let v = w.load(Ordering::Relaxed);
            if v > 0 {
                touched += 1;
                total += u64::from(v);
                max = max.max(v);
            }
        }
        Some(WearSummary {
            max_line_writes: max,
            total_line_writes: total,
            lines_touched: touched,
        })
    }

    /// Device capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.config.size_bytes
    }

    /// The configuration this device was built with.
    pub fn config(&self) -> &NvmConfig {
        &self.config
    }

    /// The device's timing model.
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// Point-in-time copy of the device's write statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    #[inline]
    fn word_index(&self, offset: u64) -> u64 {
        assert!(
            offset.is_multiple_of(8),
            "word access must be 8-byte aligned, got offset {offset}"
        );
        let idx = offset / 8;
        assert!(
            idx < self.words.len() as u64,
            "offset {offset} out of device bounds ({} bytes)",
            self.config.size_bytes
        );
        idx
    }

    /// Reads the word at byte `offset` from the volatile layer.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is unaligned or out of bounds.
    #[inline]
    pub fn read_word(&self, offset: u64) -> u64 {
        let idx = self.word_index(offset);
        self.words[idx as usize].load(Ordering::Relaxed)
    }

    /// Stores `val` at byte `offset`. The store is *not* durable until the
    /// covering cache line is flushed and fenced.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is unaligned or out of bounds.
    #[inline]
    pub fn write_word(&self, offset: u64, val: u64) {
        let idx = self.word_index(offset);
        self.note_event(CrashEventKind::Write);
        self.words[idx as usize].store(val, Ordering::Relaxed);
        self.stats.add_words(1);
        if let Some(cs) = &self.crash_state {
            cs.dirty.lock().insert(idx);
        }
    }

    /// Reads `out.len()` consecutive words starting at byte `offset`.
    pub fn read_words(&self, offset: u64, out: &mut [u64]) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.read_word(offset + 8 * i as u64);
        }
    }

    /// Writes `vals` as consecutive words starting at byte `offset`.
    pub fn write_words(&self, offset: u64, vals: &[u64]) {
        for (i, v) in vals.iter().enumerate() {
            self.write_word(offset + 8 * i as u64, *v);
        }
    }

    /// Flushes the cache lines covering `[offset, offset + len)` toward the
    /// device (emulated `CLWB`). Durability still requires [`Nvm::fence`].
    pub fn flush(&self, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        self.note_event(CrashEventKind::Flush);
        let first_line = offset / CACHE_LINE;
        let last_line = (offset + len - 1) / CACHE_LINE;
        let bytes = (last_line - first_line + 1) * CACHE_LINE;
        self.stats.add_flush(bytes);
        self.unfenced_bytes.fetch_add(bytes, Ordering::Relaxed);
        if let Some(wear) = &self.wear {
            for line in first_line..=last_line {
                wear[line as usize].fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(cs) = &self.crash_state {
            let mut dirty = cs.dirty.lock();
            let mut pending = cs.pending.lock();
            let first_word = first_line * (CACHE_LINE / 8);
            let last_word = (last_line + 1) * (CACHE_LINE / 8);
            for idx in first_word..last_word.min(self.words.len() as u64) {
                if dirty.remove(&idx) {
                    pending.insert(idx);
                }
            }
        }
    }

    /// Orders all previous flushes (emulated `SFENCE`); on return everything
    /// flushed so far is durable. The modeled cost is
    /// `max(latency, unfenced_bytes / bandwidth)` per §5.1.
    pub fn fence(&self) {
        self.note_event(CrashEventKind::Fence);
        let bytes = self.unfenced_bytes.swap(0, Ordering::Relaxed);
        self.stats.add_fence();
        self.stats.add_persist(bytes);
        self.timing.delay_persist(bytes.max(1));
        if let Some(cs) = &self.crash_state {
            let mut pending = cs.pending.lock();
            for idx in pending.drain() {
                let v = self.words[idx as usize].load(Ordering::Relaxed);
                cs.durable[idx as usize].store(v, Ordering::Relaxed);
            }
        }
    }

    /// Flush + fence over one range: the paper's *persist* operation.
    pub fn persist(&self, offset: u64, len: u64) {
        self.flush(offset, len);
        self.fence();
    }

    /// Simulates a power failure: every word that was not durable (dirty or
    /// flushed-but-unfenced) reverts to its last durable value.
    ///
    /// A real power failure stops all execution at the same instant; this
    /// emulated one cannot stop other threads. Outcomes observed by threads
    /// that keep using the device *after* `crash` returns (including
    /// durability acknowledgements) belong to a timeline the hardware would
    /// never produce — crash-consistency tests should quiesce mutators
    /// before crashing, or ignore post-crash observations.
    ///
    /// # Panics
    ///
    /// Panics if the device was created without crash tracking.
    pub fn crash(&self) {
        self.crash_impl(false);
    }

    /// Like [`Nvm::crash`], but flushed-yet-unfenced lines survive — the
    /// optimistic outcome real hardware may also produce. Useful for
    /// exploring both sides of the `CLWB`/`SFENCE` window in tests.
    ///
    /// # Panics
    ///
    /// Panics if the device was created without crash tracking.
    pub fn crash_lenient(&self) {
        self.crash_impl(true);
    }

    fn crash_impl(&self, keep_pending: bool) {
        let cs = self
            .crash_state
            .as_ref()
            .expect("crash() requires NvmConfig::crash_tracking");
        let mut dirty = cs.dirty.lock();
        let mut pending = cs.pending.lock();
        if keep_pending {
            for idx in pending.drain() {
                let v = self.words[idx as usize].load(Ordering::Relaxed);
                cs.durable[idx as usize].store(v, Ordering::Relaxed);
            }
        }
        for idx in dirty.drain().chain(pending.drain()) {
            let v = cs.durable[idx as usize].load(Ordering::Relaxed);
            self.words[idx as usize].store(v, Ordering::Relaxed);
        }
        self.unfenced_bytes.store(0, Ordering::Relaxed);
    }

    /// Records one persistence event: tally it, and trip the armed crash
    /// plan if this is its Nth matching event. Called at the *entry* of
    /// `write_word`/`flush`/`fence`, so a tripped plan freezes the device
    /// state from just before the event took effect — the crash preempts it.
    #[inline]
    fn note_event(&self, kind: CrashEventKind) {
        let Some(cs) = &self.crash_state else {
            return;
        };
        let background = is_background_stage();
        cs.events.bump(kind, background);
        if !cs.plan_armed.load(Ordering::Acquire) || cs.tripped.load(Ordering::Relaxed) {
            return;
        }
        let guard = cs.plan.lock();
        let Some(armed) = guard.as_ref() else {
            return;
        };
        if armed.plan.event != kind {
            return;
        }
        let stage_matches = match armed.plan.stage {
            StageFilter::Any => true,
            StageFilter::Foreground => !background,
            StageFilter::Background => background,
        };
        if !stage_matches {
            return;
        }
        let nth = armed.matched.fetch_add(1, Ordering::Relaxed) + 1;
        if nth == armed.plan.trip_at && !cs.tripped.swap(true, Ordering::Relaxed) {
            self.freeze_crash_image(cs, armed.plan.torn_seed);
        }
    }

    /// Captures what the durable medium would hold if power failed right
    /// now. Strict mode (`torn_seed == None`) keeps only fenced words.
    /// Torn mode keeps every not-yet-durable word *except* those on one
    /// seed-chosen unflushed cache line.
    fn freeze_crash_image(&self, cs: &CrashState, torn_seed: Option<u64>) {
        let dirty = cs.dirty.lock();
        let pending = cs.pending.lock();
        let mut image: Box<[u64]> = cs
            .durable
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect();
        if let Some(seed) = torn_seed {
            let words_per_line = CACHE_LINE / 8;
            let mut lines: Vec<u64> = dirty
                .iter()
                .chain(pending.iter())
                .map(|&w| w / words_per_line)
                .collect();
            lines.sort_unstable();
            lines.dedup();
            if !lines.is_empty() {
                let torn_line = lines[(splitmix64(seed) % lines.len() as u64) as usize];
                for &w in dirty.iter().chain(pending.iter()) {
                    if w / words_per_line != torn_line {
                        image[w as usize] = self.words[w as usize].load(Ordering::Relaxed);
                    }
                }
            }
        }
        drop(dirty);
        drop(pending);
        *cs.frozen.lock() = Some(image);
    }

    /// Arms `plan` on this device; the next matching events count toward
    /// its trigger. Replaces any previously armed plan and clears a
    /// previously tripped (but unapplied) crash image.
    ///
    /// # Panics
    ///
    /// Panics if the device was created without crash tracking.
    pub fn arm_crash_plan(&self, plan: CrashPlan) {
        let cs = self
            .crash_state
            .as_ref()
            .expect("arm_crash_plan() requires NvmConfig::crash_tracking");
        let mut slot = cs.plan.lock();
        *cs.frozen.lock() = None;
        cs.tripped.store(false, Ordering::Relaxed);
        *slot = Some(ArmedPlan {
            plan,
            matched: AtomicU64::new(0),
        });
        cs.plan_armed.store(true, Ordering::Release);
    }

    /// Whether the armed crash plan has fired.
    ///
    /// # Panics
    ///
    /// Panics if the device was created without crash tracking.
    pub fn crash_plan_tripped(&self) -> bool {
        let cs = self
            .crash_state
            .as_ref()
            .expect("crash_plan_tripped() requires NvmConfig::crash_tracking");
        cs.tripped.load(Ordering::Relaxed)
    }

    /// Installs the post-crash image frozen when the armed plan fired:
    /// both the volatile layer and the durable image become exactly the
    /// frozen state, all durability bookkeeping resets (as a fresh boot
    /// would see), and the plan disarms. Returns `false` — leaving the
    /// device untouched — if no plan tripped, e.g. the plan's index lay
    /// beyond the run's actual event count.
    ///
    /// Call only after the workload has quiesced; see [`Nvm::crash`] for
    /// why in-flight mutators and a simulated crash don't mix.
    ///
    /// # Panics
    ///
    /// Panics if the device was created without crash tracking.
    pub fn apply_planned_crash(&self) -> bool {
        let cs = self
            .crash_state
            .as_ref()
            .expect("apply_planned_crash() requires NvmConfig::crash_tracking");
        // Lock order matches note_event (plan, then frozen, then the
        // durability sets): disarm first so no concurrent straggler can
        // race the image install.
        let mut plan = cs.plan.lock();
        let Some(image) = cs.frozen.lock().take() else {
            return false;
        };
        cs.plan_armed.store(false, Ordering::Relaxed);
        *plan = None;
        let mut dirty = cs.dirty.lock();
        let mut pending = cs.pending.lock();
        for (i, &v) in image.iter().enumerate() {
            self.words[i].store(v, Ordering::Relaxed);
            cs.durable[i].store(v, Ordering::Relaxed);
        }
        dirty.clear();
        pending.clear();
        self.unfenced_bytes.store(0, Ordering::Relaxed);
        true
    }

    /// Point-in-time persistence-event tallies (total and background-stage
    /// counts of writes, flushes and fences). A crash-point sweep first
    /// runs the workload un-armed to learn these counts, then re-runs it
    /// with a [`CrashPlan`] aimed at each index.
    ///
    /// # Panics
    ///
    /// Panics if the device was created without crash tracking.
    pub fn persistence_events(&self) -> PersistenceEvents {
        let cs = self
            .crash_state
            .as_ref()
            .expect("persistence_events() requires NvmConfig::crash_tracking");
        cs.events.snapshot()
    }

    /// Zeroes the persistence-event tallies (e.g. after a load phase).
    ///
    /// # Panics
    ///
    /// Panics if the device was created without crash tracking.
    pub fn reset_persistence_events(&self) {
        let cs = self
            .crash_state
            .as_ref()
            .expect("reset_persistence_events() requires NvmConfig::crash_tracking");
        cs.events.reset();
    }

    /// Number of words that are currently *not* durable (diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if the device was created without crash tracking.
    pub fn volatile_word_count(&self) -> usize {
        let cs = self
            .crash_state
            .as_ref()
            .expect("volatile_word_count() requires NvmConfig::crash_tracking");
        cs.dirty.lock().len() + cs.pending.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Nvm {
        Nvm::new(NvmConfig::for_testing(4096))
    }

    #[test]
    fn read_back_what_was_written() {
        let n = dev();
        n.write_word(0, 7);
        n.write_word(4088, 9);
        assert_eq!(n.read_word(0), 7);
        assert_eq!(n.read_word(4088), 9);
    }

    #[test]
    fn multiword_io() {
        let n = dev();
        n.write_words(64, &[1, 2, 3]);
        let mut out = [0u64; 3];
        n.read_words(64, &mut out);
        assert_eq!(out, [1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn unaligned_access_panics() {
        dev().read_word(3);
    }

    #[test]
    #[should_panic(expected = "out of device bounds")]
    fn out_of_bounds_panics() {
        dev().write_word(4096, 1);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn bad_size_panics() {
        Nvm::new(NvmConfig::for_testing(12));
    }

    #[test]
    fn crash_loses_unflushed_store() {
        let n = dev();
        n.write_word(0, 42);
        n.crash();
        assert_eq!(n.read_word(0), 0);
    }

    #[test]
    fn crash_keeps_persisted_store() {
        let n = dev();
        n.write_word(0, 42);
        n.persist(0, 8);
        n.write_word(8, 43); // not persisted
        n.crash();
        assert_eq!(n.read_word(0), 42);
        assert_eq!(n.read_word(8), 0);
    }

    #[test]
    fn strict_crash_drops_flushed_but_unfenced() {
        let n = dev();
        n.write_word(0, 42);
        n.flush(0, 8);
        n.crash();
        assert_eq!(n.read_word(0), 0);
    }

    #[test]
    fn lenient_crash_keeps_flushed_but_unfenced() {
        let n = dev();
        n.write_word(0, 42);
        n.flush(0, 8);
        n.crash_lenient();
        assert_eq!(n.read_word(0), 42);
    }

    #[test]
    fn overwrite_after_persist_reverts_to_persisted_value() {
        let n = dev();
        n.write_word(0, 1);
        n.persist(0, 8);
        n.write_word(0, 2);
        n.crash();
        assert_eq!(n.read_word(0), 1);
    }

    #[test]
    fn flush_covers_whole_cache_lines() {
        let n = dev();
        // Two words on the same 64-byte line: flushing one flushes both.
        n.write_word(0, 1);
        n.write_word(56, 2);
        n.persist(0, 8);
        n.crash();
        assert_eq!(n.read_word(0), 1);
        assert_eq!(n.read_word(56), 2);
    }

    #[test]
    fn stats_count_operations() {
        let n = dev();
        n.write_word(0, 1);
        n.write_word(8, 2);
        n.persist(0, 16);
        let s = n.stats();
        assert_eq!(s.words_written, 2);
        assert_eq!(s.fences, 1);
        assert_eq!(s.persist_barriers, 1);
        assert_eq!(s.bytes_flushed, 64); // one cache line
    }

    #[test]
    fn volatile_word_count_tracks_pending_durability() {
        let n = dev();
        assert_eq!(n.volatile_word_count(), 0);
        n.write_word(0, 1);
        assert_eq!(n.volatile_word_count(), 1);
        n.persist(0, 8);
        assert_eq!(n.volatile_word_count(), 0);
    }

    #[test]
    fn crash_resets_unfenced_byte_accounting() {
        let n = dev();
        n.write_word(0, 1);
        n.flush(0, 8);
        n.crash();
        // A fence after crash covers zero new bytes.
        n.fence();
        assert_eq!(n.read_word(0), 0);
    }

    #[test]
    #[should_panic(expected = "crash_tracking")]
    fn crash_requires_tracking() {
        let n = Nvm::new(NvmConfig::for_benchmark(4096, TimingConfig::disabled()));
        n.crash();
    }

    #[test]
    fn wear_tracking_counts_line_flushes() {
        let n = Nvm::new(NvmConfig::for_testing(4096).with_wear_tracking());
        n.write_word(0, 1);
        n.persist(0, 8);
        n.write_word(8, 2); // same line
        n.persist(8, 8);
        n.write_word(256, 3); // different line
        n.persist(256, 8);
        let w = n.wear_summary().expect("wear enabled");
        assert_eq!(w.max_line_writes, 2);
        assert_eq!(w.lines_touched, 2);
        assert_eq!(w.total_line_writes, 3);
    }

    #[test]
    fn wear_reset_zeroes_counters() {
        let n = Nvm::new(NvmConfig::for_testing(4096).with_wear_tracking());
        n.write_word(0, 1);
        n.persist(0, 8);
        n.wear_reset();
        let w = n.wear_summary().unwrap();
        assert_eq!(w, WearSummary::default());
    }

    #[test]
    fn wear_summary_absent_when_disabled() {
        assert!(dev().wear_summary().is_none());
    }

    #[test]
    fn persistence_events_tally_by_stage() {
        let n = dev();
        n.write_word(0, 1);
        n.persist(0, 8); // one flush + one fence, foreground
        crate::set_background_stage(true);
        n.write_word(64, 2);
        n.persist(64, 8);
        crate::set_background_stage(false);
        let e = n.persistence_events();
        assert_eq!((e.writes, e.flushes, e.fences), (2, 2, 2));
        assert_eq!(
            (
                e.background_writes,
                e.background_flushes,
                e.background_fences
            ),
            (1, 1, 1)
        );
        assert_eq!(e.count(CrashEventKind::Flush, StageFilter::Foreground), 1);
        assert_eq!(e.count(CrashEventKind::Fence, StageFilter::Background), 1);
        assert_eq!(e.count(CrashEventKind::Write, StageFilter::Any), 2);
        n.reset_persistence_events();
        assert_eq!(n.persistence_events(), PersistenceEvents::default());
    }

    #[test]
    fn crash_plan_preempts_nth_fence() {
        let n = dev();
        n.arm_crash_plan(CrashPlan::at_nth(CrashEventKind::Fence, 2));
        n.write_word(0, 1);
        n.persist(0, 8); // fence #1: completes, word 0 durable
        n.write_word(64, 2);
        n.persist(64, 8); // fence #2: the plan preempts it
        assert!(n.crash_plan_tripped());
        // The live volatile layer is untouched until the image is applied.
        assert_eq!(n.read_word(64), 2);
        assert!(n.apply_planned_crash());
        assert_eq!(n.read_word(0), 1); // survived: fenced before the crash
        assert_eq!(n.read_word(64), 0); // lost: its fence was preempted
        assert_eq!(n.volatile_word_count(), 0);
    }

    #[test]
    fn crash_plan_preempts_nth_write() {
        let n = dev();
        n.arm_crash_plan(CrashPlan::at_nth(CrashEventKind::Write, 2));
        n.write_word(0, 1);
        n.persist(0, 8);
        n.write_word(8, 2); // preempted
        assert!(n.apply_planned_crash());
        assert_eq!(n.read_word(0), 1);
        assert_eq!(n.read_word(8), 0);
    }

    #[test]
    fn crash_plan_past_event_count_never_trips() {
        let n = dev();
        n.arm_crash_plan(CrashPlan::at_nth(CrashEventKind::Fence, 100));
        n.write_word(0, 1);
        n.persist(0, 8);
        assert!(!n.crash_plan_tripped());
        assert!(!n.apply_planned_crash());
        assert_eq!(n.read_word(0), 1); // device untouched
    }

    #[test]
    fn crash_plan_stage_filter_selects_thread() {
        let n = dev();
        n.arm_crash_plan(
            CrashPlan::at_nth(CrashEventKind::Fence, 1).for_stage(StageFilter::Background),
        );
        n.write_word(0, 1);
        n.persist(0, 8); // foreground fence: not counted
        assert!(!n.crash_plan_tripped());
        crate::set_background_stage(true);
        n.write_word(64, 2);
        n.persist(64, 8); // background fence: trips (preempted)
        crate::set_background_stage(false);
        assert!(n.crash_plan_tripped());
        assert!(n.apply_planned_crash());
        assert_eq!(n.read_word(0), 1);
        assert_eq!(n.read_word(64), 0);
    }

    #[test]
    fn torn_crash_drops_exactly_one_unflushed_line() {
        let n = dev();
        // Three dirty lines, none flushed; the torn crash keeps two.
        n.arm_crash_plan(CrashPlan::at_nth(CrashEventKind::Fence, 1).with_torn_line(7));
        n.write_word(0, 10);
        n.write_word(64, 11);
        n.write_word(128, 12);
        n.fence(); // preempted by the plan
        assert!(n.apply_planned_crash());
        let survivors: Vec<u64> = [0u64, 64, 128]
            .iter()
            .filter(|&&off| n.read_word(off) != 0)
            .copied()
            .collect();
        assert_eq!(survivors.len(), 2, "exactly one line must be torn");
    }

    #[test]
    fn torn_choice_is_seed_deterministic() {
        let run = |seed: u64| -> Vec<u64> {
            let n = dev();
            n.arm_crash_plan(CrashPlan::at_nth(CrashEventKind::Fence, 1).with_torn_line(seed));
            n.write_word(0, 10);
            n.write_word(64, 11);
            n.write_word(128, 12);
            n.fence();
            assert!(n.apply_planned_crash());
            (0..3).map(|i| n.read_word(i * 64)).collect()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn rearming_clears_previous_trip() {
        let n = dev();
        n.arm_crash_plan(CrashPlan::at_nth(CrashEventKind::Write, 1));
        n.write_word(0, 1);
        assert!(n.crash_plan_tripped());
        n.arm_crash_plan(CrashPlan::at_nth(CrashEventKind::Write, 5));
        assert!(!n.crash_plan_tripped());
        assert!(!n.apply_planned_crash(), "old frozen image must be gone");
    }

    #[test]
    #[should_panic(expected = "crash_tracking")]
    fn crash_plan_requires_tracking() {
        let n = Nvm::new(NvmConfig::for_benchmark(4096, TimingConfig::disabled()));
        n.arm_crash_plan(CrashPlan::at_nth(CrashEventKind::Fence, 1));
    }

    #[test]
    fn benchmark_mode_skips_tracking() {
        let n = Nvm::new(NvmConfig::for_benchmark(4096, TimingConfig::disabled()));
        n.write_word(0, 5);
        n.persist(0, 8);
        assert_eq!(n.read_word(0), 5);
        assert_eq!(n.stats().persist_barriers, 1);
    }
}
