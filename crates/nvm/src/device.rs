//! The emulated NVM device.
//!
//! Stores are word-granular and land in the device's *volatile layer* (the
//! stand-in for CPU caches plus the memory controller's buffers). Durability
//! requires an explicit [`Nvm::flush`] of the written range followed by an
//! [`Nvm::fence`] — mirroring `CLWB`/`SFENCE` on real hardware (§2.2). A
//! simulated [`Nvm::crash`] reverts every non-durable word, which is what
//! lets the test suite *observe* crash consistency instead of assuming it.
//!
//! Words are `AtomicU64` with relaxed ordering: the device never provides
//! inter-thread synchronization (that is the TM's job); atomics only make
//! concurrent word access well-defined in safe Rust.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::stats::{NvmStats, StatsSnapshot};
use crate::timing::{TimingConfig, TimingModel};
use crate::CACHE_LINE;

/// Configuration for an emulated NVM device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NvmConfig {
    /// Device capacity in bytes; must be a positive multiple of 8.
    pub size_bytes: u64,
    /// Persistence-cost model.
    pub timing: TimingConfig,
    /// When `true`, the device keeps a durable image and dirty-word tracking
    /// so [`Nvm::crash`] works. Costs 2× memory and a lock per store; meant
    /// for crash-consistency tests, not throughput runs.
    pub crash_tracking: bool,
    /// When `true`, the device counts how many times each cache line is
    /// flushed — the cell-wear statistic behind the paper's endurance
    /// motivation for log combination (§1, §3.3). One `u32` per line.
    pub wear_tracking: bool,
}

impl NvmConfig {
    /// Functional-testing configuration: no delays, crash tracking on.
    pub fn for_testing(size_bytes: u64) -> Self {
        NvmConfig {
            size_bytes,
            timing: TimingConfig::disabled(),
            crash_tracking: true,
            wear_tracking: false,
        }
    }

    /// Benchmark configuration: the given timing model, crash tracking off.
    pub fn for_benchmark(size_bytes: u64, timing: TimingConfig) -> Self {
        NvmConfig {
            size_bytes,
            timing,
            crash_tracking: false,
            wear_tracking: false,
        }
    }

    /// Enables per-line wear accounting (endurance experiments).
    #[must_use]
    pub fn with_wear_tracking(mut self) -> Self {
        self.wear_tracking = true;
        self
    }
}

/// Per-line wear summary (see [`NvmConfig::with_wear_tracking`]).
///
/// Each count is one flush of that 64-byte line — the unit of physical cell
/// wear on a real device. The paper motivates log combination by NVM's
/// limited endurance; [`WearSummary::max_line_writes`] is the hot-spot
/// metric combination should reduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WearSummary {
    /// Flushes of the most-written line.
    pub max_line_writes: u32,
    /// Total line flushes across the device.
    pub total_line_writes: u64,
    /// Distinct lines flushed at least once.
    pub lines_touched: u64,
}

/// State kept only when crash tracking is enabled.
#[derive(Debug)]
struct CrashState {
    /// The durable image: what survives a crash.
    durable: Box<[AtomicU64]>,
    /// Word indices written since they were last flushed.
    dirty: Mutex<HashSet<u64>>,
    /// Word indices flushed but not yet fenced. A real `CLWB` without a
    /// following `SFENCE` may or may not have reached the device; the strict
    /// [`Nvm::crash`] drops these, the lenient variant keeps them.
    pending: Mutex<HashSet<u64>>,
}

/// An emulated byte-addressable persistent memory device.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Nvm {
    words: Box<[AtomicU64]>,
    crash_state: Option<CrashState>,
    timing: TimingModel,
    stats: NvmStats,
    /// Bytes flushed since the last fence; the fence's modeled cost covers
    /// exactly these bytes.
    unfenced_bytes: AtomicU64,
    /// Per-cache-line flush counts (wear), when enabled.
    wear: Option<Box<[std::sync::atomic::AtomicU32]>>,
    config: NvmConfig,
}

fn alloc_words(n: u64) -> Box<[AtomicU64]> {
    (0..n).map(|_| AtomicU64::new(0)).collect()
}

impl Nvm {
    /// Creates a zero-filled device.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is zero or not a multiple of 8.
    pub fn new(config: NvmConfig) -> Self {
        assert!(
            config.size_bytes > 0 && config.size_bytes.is_multiple_of(8),
            "NVM size must be a positive multiple of 8, got {}",
            config.size_bytes
        );
        let nwords = config.size_bytes / 8;
        let crash_state = config.crash_tracking.then(|| CrashState {
            durable: alloc_words(nwords),
            dirty: Mutex::new(HashSet::new()),
            pending: Mutex::new(HashSet::new()),
        });
        let wear = config.wear_tracking.then(|| {
            (0..config.size_bytes.div_ceil(CACHE_LINE))
                .map(|_| std::sync::atomic::AtomicU32::new(0))
                .collect()
        });
        Nvm {
            words: alloc_words(nwords),
            crash_state,
            timing: TimingModel::new(config.timing),
            stats: NvmStats::default(),
            unfenced_bytes: AtomicU64::new(0),
            wear,
            config,
        }
    }

    /// Zeroes all wear counters (e.g. after a load phase, so a measurement
    /// phase is accounted alone). No-op when wear tracking is off.
    pub fn wear_reset(&self) {
        if let Some(wear) = &self.wear {
            for w in wear.iter() {
                w.store(0, Ordering::Relaxed);
            }
        }
    }

    /// Summarizes per-line wear (flush counts). Returns `None` unless the
    /// device was built with [`NvmConfig::with_wear_tracking`].
    pub fn wear_summary(&self) -> Option<WearSummary> {
        let wear = self.wear.as_ref()?;
        let mut max = 0u32;
        let mut total = 0u64;
        let mut touched = 0u64;
        for w in wear.iter() {
            let v = w.load(Ordering::Relaxed);
            if v > 0 {
                touched += 1;
                total += u64::from(v);
                max = max.max(v);
            }
        }
        Some(WearSummary {
            max_line_writes: max,
            total_line_writes: total,
            lines_touched: touched,
        })
    }

    /// Device capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.config.size_bytes
    }

    /// The configuration this device was built with.
    pub fn config(&self) -> &NvmConfig {
        &self.config
    }

    /// The device's timing model.
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// Point-in-time copy of the device's write statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    #[inline]
    fn word_index(&self, offset: u64) -> u64 {
        assert!(
            offset.is_multiple_of(8),
            "word access must be 8-byte aligned, got offset {offset}"
        );
        let idx = offset / 8;
        assert!(
            idx < self.words.len() as u64,
            "offset {offset} out of device bounds ({} bytes)",
            self.config.size_bytes
        );
        idx
    }

    /// Reads the word at byte `offset` from the volatile layer.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is unaligned or out of bounds.
    #[inline]
    pub fn read_word(&self, offset: u64) -> u64 {
        let idx = self.word_index(offset);
        self.words[idx as usize].load(Ordering::Relaxed)
    }

    /// Stores `val` at byte `offset`. The store is *not* durable until the
    /// covering cache line is flushed and fenced.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is unaligned or out of bounds.
    #[inline]
    pub fn write_word(&self, offset: u64, val: u64) {
        let idx = self.word_index(offset);
        self.words[idx as usize].store(val, Ordering::Relaxed);
        self.stats.add_words(1);
        if let Some(cs) = &self.crash_state {
            cs.dirty.lock().insert(idx);
        }
    }

    /// Reads `out.len()` consecutive words starting at byte `offset`.
    pub fn read_words(&self, offset: u64, out: &mut [u64]) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.read_word(offset + 8 * i as u64);
        }
    }

    /// Writes `vals` as consecutive words starting at byte `offset`.
    pub fn write_words(&self, offset: u64, vals: &[u64]) {
        for (i, v) in vals.iter().enumerate() {
            self.write_word(offset + 8 * i as u64, *v);
        }
    }

    /// Flushes the cache lines covering `[offset, offset + len)` toward the
    /// device (emulated `CLWB`). Durability still requires [`Nvm::fence`].
    pub fn flush(&self, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first_line = offset / CACHE_LINE;
        let last_line = (offset + len - 1) / CACHE_LINE;
        let bytes = (last_line - first_line + 1) * CACHE_LINE;
        self.stats.add_flush(bytes);
        self.unfenced_bytes.fetch_add(bytes, Ordering::Relaxed);
        if let Some(wear) = &self.wear {
            for line in first_line..=last_line {
                wear[line as usize].fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(cs) = &self.crash_state {
            let mut dirty = cs.dirty.lock();
            let mut pending = cs.pending.lock();
            let first_word = first_line * (CACHE_LINE / 8);
            let last_word = (last_line + 1) * (CACHE_LINE / 8);
            for idx in first_word..last_word.min(self.words.len() as u64) {
                if dirty.remove(&idx) {
                    pending.insert(idx);
                }
            }
        }
    }

    /// Orders all previous flushes (emulated `SFENCE`); on return everything
    /// flushed so far is durable. The modeled cost is
    /// `max(latency, unfenced_bytes / bandwidth)` per §5.1.
    pub fn fence(&self) {
        let bytes = self.unfenced_bytes.swap(0, Ordering::Relaxed);
        self.stats.add_fence();
        self.stats.add_persist(bytes);
        self.timing.delay_persist(bytes.max(1));
        if let Some(cs) = &self.crash_state {
            let mut pending = cs.pending.lock();
            for idx in pending.drain() {
                let v = self.words[idx as usize].load(Ordering::Relaxed);
                cs.durable[idx as usize].store(v, Ordering::Relaxed);
            }
        }
    }

    /// Flush + fence over one range: the paper's *persist* operation.
    pub fn persist(&self, offset: u64, len: u64) {
        self.flush(offset, len);
        self.fence();
    }

    /// Simulates a power failure: every word that was not durable (dirty or
    /// flushed-but-unfenced) reverts to its last durable value.
    ///
    /// A real power failure stops all execution at the same instant; this
    /// emulated one cannot stop other threads. Outcomes observed by threads
    /// that keep using the device *after* `crash` returns (including
    /// durability acknowledgements) belong to a timeline the hardware would
    /// never produce — crash-consistency tests should quiesce mutators
    /// before crashing, or ignore post-crash observations.
    ///
    /// # Panics
    ///
    /// Panics if the device was created without crash tracking.
    pub fn crash(&self) {
        self.crash_impl(false);
    }

    /// Like [`Nvm::crash`], but flushed-yet-unfenced lines survive — the
    /// optimistic outcome real hardware may also produce. Useful for
    /// exploring both sides of the `CLWB`/`SFENCE` window in tests.
    ///
    /// # Panics
    ///
    /// Panics if the device was created without crash tracking.
    pub fn crash_lenient(&self) {
        self.crash_impl(true);
    }

    fn crash_impl(&self, keep_pending: bool) {
        let cs = self
            .crash_state
            .as_ref()
            .expect("crash() requires NvmConfig::crash_tracking");
        let mut dirty = cs.dirty.lock();
        let mut pending = cs.pending.lock();
        if keep_pending {
            for idx in pending.drain() {
                let v = self.words[idx as usize].load(Ordering::Relaxed);
                cs.durable[idx as usize].store(v, Ordering::Relaxed);
            }
        }
        for idx in dirty.drain().chain(pending.drain()) {
            let v = cs.durable[idx as usize].load(Ordering::Relaxed);
            self.words[idx as usize].store(v, Ordering::Relaxed);
        }
        self.unfenced_bytes.store(0, Ordering::Relaxed);
    }

    /// Number of words that are currently *not* durable (diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if the device was created without crash tracking.
    pub fn volatile_word_count(&self) -> usize {
        let cs = self
            .crash_state
            .as_ref()
            .expect("volatile_word_count() requires NvmConfig::crash_tracking");
        cs.dirty.lock().len() + cs.pending.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Nvm {
        Nvm::new(NvmConfig::for_testing(4096))
    }

    #[test]
    fn read_back_what_was_written() {
        let n = dev();
        n.write_word(0, 7);
        n.write_word(4088, 9);
        assert_eq!(n.read_word(0), 7);
        assert_eq!(n.read_word(4088), 9);
    }

    #[test]
    fn multiword_io() {
        let n = dev();
        n.write_words(64, &[1, 2, 3]);
        let mut out = [0u64; 3];
        n.read_words(64, &mut out);
        assert_eq!(out, [1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn unaligned_access_panics() {
        dev().read_word(3);
    }

    #[test]
    #[should_panic(expected = "out of device bounds")]
    fn out_of_bounds_panics() {
        dev().write_word(4096, 1);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn bad_size_panics() {
        Nvm::new(NvmConfig::for_testing(12));
    }

    #[test]
    fn crash_loses_unflushed_store() {
        let n = dev();
        n.write_word(0, 42);
        n.crash();
        assert_eq!(n.read_word(0), 0);
    }

    #[test]
    fn crash_keeps_persisted_store() {
        let n = dev();
        n.write_word(0, 42);
        n.persist(0, 8);
        n.write_word(8, 43); // not persisted
        n.crash();
        assert_eq!(n.read_word(0), 42);
        assert_eq!(n.read_word(8), 0);
    }

    #[test]
    fn strict_crash_drops_flushed_but_unfenced() {
        let n = dev();
        n.write_word(0, 42);
        n.flush(0, 8);
        n.crash();
        assert_eq!(n.read_word(0), 0);
    }

    #[test]
    fn lenient_crash_keeps_flushed_but_unfenced() {
        let n = dev();
        n.write_word(0, 42);
        n.flush(0, 8);
        n.crash_lenient();
        assert_eq!(n.read_word(0), 42);
    }

    #[test]
    fn overwrite_after_persist_reverts_to_persisted_value() {
        let n = dev();
        n.write_word(0, 1);
        n.persist(0, 8);
        n.write_word(0, 2);
        n.crash();
        assert_eq!(n.read_word(0), 1);
    }

    #[test]
    fn flush_covers_whole_cache_lines() {
        let n = dev();
        // Two words on the same 64-byte line: flushing one flushes both.
        n.write_word(0, 1);
        n.write_word(56, 2);
        n.persist(0, 8);
        n.crash();
        assert_eq!(n.read_word(0), 1);
        assert_eq!(n.read_word(56), 2);
    }

    #[test]
    fn stats_count_operations() {
        let n = dev();
        n.write_word(0, 1);
        n.write_word(8, 2);
        n.persist(0, 16);
        let s = n.stats();
        assert_eq!(s.words_written, 2);
        assert_eq!(s.fences, 1);
        assert_eq!(s.persist_barriers, 1);
        assert_eq!(s.bytes_flushed, 64); // one cache line
    }

    #[test]
    fn volatile_word_count_tracks_pending_durability() {
        let n = dev();
        assert_eq!(n.volatile_word_count(), 0);
        n.write_word(0, 1);
        assert_eq!(n.volatile_word_count(), 1);
        n.persist(0, 8);
        assert_eq!(n.volatile_word_count(), 0);
    }

    #[test]
    fn crash_resets_unfenced_byte_accounting() {
        let n = dev();
        n.write_word(0, 1);
        n.flush(0, 8);
        n.crash();
        // A fence after crash covers zero new bytes.
        n.fence();
        assert_eq!(n.read_word(0), 0);
    }

    #[test]
    #[should_panic(expected = "crash_tracking")]
    fn crash_requires_tracking() {
        let n = Nvm::new(NvmConfig::for_benchmark(4096, TimingConfig::disabled()));
        n.crash();
    }

    #[test]
    fn wear_tracking_counts_line_flushes() {
        let n = Nvm::new(NvmConfig::for_testing(4096).with_wear_tracking());
        n.write_word(0, 1);
        n.persist(0, 8);
        n.write_word(8, 2); // same line
        n.persist(8, 8);
        n.write_word(256, 3); // different line
        n.persist(256, 8);
        let w = n.wear_summary().expect("wear enabled");
        assert_eq!(w.max_line_writes, 2);
        assert_eq!(w.lines_touched, 2);
        assert_eq!(w.total_line_writes, 3);
    }

    #[test]
    fn wear_reset_zeroes_counters() {
        let n = Nvm::new(NvmConfig::for_testing(4096).with_wear_tracking());
        n.write_word(0, 1);
        n.persist(0, 8);
        n.wear_reset();
        let w = n.wear_summary().unwrap();
        assert_eq!(w, WearSummary::default());
    }

    #[test]
    fn wear_summary_absent_when_disabled() {
        assert!(dev().wear_summary().is_none());
    }

    #[test]
    fn benchmark_mode_skips_tracking() {
        let n = Nvm::new(NvmConfig::for_benchmark(4096, TimingConfig::disabled()));
        n.write_word(0, 5);
        n.persist(0, 8);
        assert_eq!(n.read_word(0), 5);
        assert_eq!(n.stats().persist_barriers, 1);
    }
}
