//! NVM write statistics.
//!
//! Table 1 of the paper reports memory writes per second and per transaction;
//! Figure 3 reports NVM write traffic saved by log combination and
//! compression. Both are derived from the counters here.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters maintained by the emulated device.
///
/// All counters use relaxed atomics; they are statistics, not
/// synchronization.
#[derive(Debug, Default)]
pub struct NvmStats {
    /// Number of word stores issued to the device (volatile layer).
    pub(crate) words_written: AtomicU64,
    /// Bytes covered by `flush` calls.
    pub(crate) bytes_flushed: AtomicU64,
    /// Number of `fence` calls.
    pub(crate) fences: AtomicU64,
    /// Number of `persist` barriers (flush + fence pairs issued together).
    pub(crate) persist_barriers: AtomicU64,
    /// Bytes covered by `persist` barriers.
    pub(crate) bytes_persisted: AtomicU64,
}

impl NvmStats {
    pub(crate) fn add_words(&self, n: u64) {
        self.words_written.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_flush(&self, bytes: u64) {
        self.bytes_flushed.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn add_fence(&self) {
        self.fences.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_persist(&self, bytes: u64) {
        self.persist_barriers.fetch_add(1, Ordering::Relaxed);
        self.bytes_persisted.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            words_written: self.words_written.load(Ordering::Relaxed),
            bytes_flushed: self.bytes_flushed.load(Ordering::Relaxed),
            fences: self.fences.load(Ordering::Relaxed),
            persist_barriers: self.persist_barriers.load(Ordering::Relaxed),
            bytes_persisted: self.bytes_persisted.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`NvmStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Word stores issued to the device.
    pub words_written: u64,
    /// Bytes covered by `flush` calls.
    pub bytes_flushed: u64,
    /// `fence` calls.
    pub fences: u64,
    /// `persist` barriers.
    pub persist_barriers: u64,
    /// Bytes covered by `persist` barriers.
    pub bytes_persisted: u64,
}

impl StatsSnapshot {
    /// Counter deltas since an earlier snapshot.
    #[must_use]
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            words_written: self.words_written - earlier.words_written,
            bytes_flushed: self.bytes_flushed - earlier.bytes_flushed,
            fences: self.fences - earlier.fences,
            persist_barriers: self.persist_barriers - earlier.persist_barriers,
            bytes_persisted: self.bytes_persisted - earlier.bytes_persisted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_delta() {
        let s = NvmStats::default();
        s.add_words(3);
        s.add_flush(64);
        s.add_fence();
        s.add_persist(128);
        let a = s.snapshot();
        assert_eq!(a.words_written, 3);
        assert_eq!(a.bytes_flushed, 64);
        assert_eq!(a.fences, 1);
        assert_eq!(a.persist_barriers, 1);
        assert_eq!(a.bytes_persisted, 128);

        s.add_words(2);
        let b = s.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.words_written, 2);
        assert_eq!(d.fences, 0);
    }
}
