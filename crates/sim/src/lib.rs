//! `dude-sim`: a deterministic virtual scheduler for schedule-exploration
//! testing.
//!
//! The simulator runs a set of *logical tasks* (each backed by a real OS
//! thread) under a cooperative token-passing protocol: exactly one task
//! runs at a time, and every instrumented synchronization operation — lock
//! acquisition, channel send/recv, park, clock read — is a *yield point*
//! where the running task hands the token to a scheduler. The scheduler
//! picks the next task with a seeded PRNG, so the whole interleaving is a
//! deterministic function of the seed, recorded as a replayable trace.
//!
//! Wall-clock time is replaced by a *virtual clock*: each scheduling step
//! advances it by a small fixed tick, and when no task is runnable the
//! clock jumps straight to the earliest pending deadline. Modeled NVM
//! persist delays and background parks therefore cost simulation steps,
//! not real time, and timer-dependent code paths (flush hold timers,
//! `recv_timeout` polls) fire deterministically.
//!
//! Schedule exploration is *preemption-bounded*: at a preemption
//! opportunity (a yield point where the running task could continue) the
//! scheduler switches away with probability `100 - stay_bias` percent,
//! but only while the run's preemption budget lasts; voluntary switches
//! (blocking, sleeping, exiting) are always free. Bounding preemptions is
//! the classic systematic-concurrency-testing trick: most ordering bugs
//! are triggered by a handful of preemptions, so spending the budget
//! sparingly explores the interesting corner of the schedule space far
//! faster than uniform interleaving.
//!
//! The crate is dependency-free; the vendored `parking_lot`/`crossbeam`
//! shims and `dude_nvm::timing` call into it behind `cfg(feature =
//! "sim")`. Threads that were not spawned through [`spawn`] (or as the
//! [`run`] root) are invisible to the simulator: [`on_sim_task`] returns
//! `false` for them and the shims fall through to their native paths.

#![warn(missing_docs)]

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// The kind of yield point a task hit, recorded in the schedule trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum YieldKind {
    /// A new task was registered (the spawner yields right after).
    Spawn = 1,
    /// A task finished (normally or by panic).
    Exit = 2,
    /// Lock acquisition (mutex or rwlock).
    Lock = 3,
    /// Channel operation (send/recv/try variants).
    Chan = 4,
    /// Virtual-clock read (`monotonic_ns`).
    Time = 5,
    /// Virtual sleep / modeled persist delay.
    Sleep = 6,
    /// Condition-poll wait (`yield_now` loops, ring-full parks).
    Poll = 7,
    /// Contention backoff (STM/HTM abort-retry paths).
    Backoff = 8,
    /// Waiting for another task to finish.
    Join = 9,
}

/// Virtual nanoseconds an event-wait sleeps before re-polling when nothing
/// wakes it explicitly. Every blocking wait in the simulator is an
/// event-*or*-deadline wait with this poll interval, which makes a missed
/// [`wake_all`] cost bounded virtual time instead of a livelock.
const EVENT_POLL_NS: u64 = 100_000;

/// Configuration of one simulated run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// PRNG seed; the schedule is a deterministic function of it.
    pub seed: u64,
    /// Percent chance (0..=100) of *staying* with the current task at a
    /// preemption opportunity. Higher values mean longer uninterrupted
    /// runs punctuated by a few context switches.
    pub stay_bias: u32,
    /// Maximum number of preemptive (involuntary) context switches per
    /// run; `None` is unbounded. Voluntary switches (block/sleep/exit)
    /// are always free.
    pub preemption_bound: Option<u32>,
    /// Scheduling-step budget; exceeding it poisons the run with a
    /// livelock diagnostic.
    pub max_steps: u64,
    /// Virtual nanoseconds the clock advances per scheduling step.
    pub step_ns: u64,
}

impl SimConfig {
    /// A configuration with every exploration knob derived
    /// deterministically from `seed`, so a seed sweep also sweeps the
    /// stay bias and the preemption bound.
    pub fn from_seed(seed: u64) -> Self {
        let mut r = SplitMix64::new(seed ^ 0x5EED_0DE5_CEDE_D5EE);
        let stay_bias = 35 + (r.next() % 46) as u32; // 35..=80
        const BOUNDS: [Option<u32>; 8] = [
            None,
            Some(2),
            Some(3),
            Some(4),
            Some(8),
            Some(16),
            Some(64),
            None,
        ];
        let preemption_bound = BOUNDS[(r.next() % BOUNDS.len() as u64) as usize];
        SimConfig {
            seed,
            stay_bias,
            preemption_bound,
            max_steps: 4_000_000,
            step_ns: 40,
        }
    }
}

/// Result of a simulated run: the root closure's return value, the first
/// panic (if any task panicked or the scheduler aborted), and the recorded
/// schedule trace.
#[derive(Debug)]
pub struct SimReport<R> {
    /// The root closure's return value; `None` if it panicked.
    pub result: Option<R>,
    /// First failure recorded during the run (task panic, deadlock, or
    /// step-budget exhaustion), with the offending task named.
    pub panic: Option<String>,
    /// Encoded schedule trace: 5 bytes per decision (`kind`, `task` LE).
    /// Identical seeds yield byte-identical traces.
    pub trace: Vec<u8>,
    /// Total scheduling decisions taken.
    pub steps: u64,
    /// Preemptive context switches charged against the bound.
    pub preemptions: u64,
    /// Final virtual-clock reading in nanoseconds.
    pub virtual_ns: u64,
}

// ---------------------------------------------------------------------------
// PRNG
// ---------------------------------------------------------------------------

/// SplitMix64: tiny, fast, and plenty for schedule choice.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

// ---------------------------------------------------------------------------
// Scheduler state
// ---------------------------------------------------------------------------

/// What a task is waiting for, from the scheduler's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    /// Eligible to run.
    Runnable,
    /// Event-or-deadline wait: woken by [`wake_all`] or when the virtual
    /// clock reaches the deadline, whichever first.
    Until(u64),
    /// Deadline-only wait (virtual sleep): *not* woken by [`wake_all`],
    /// so modeled delays keep their exact virtual duration.
    SleepUntil(u64),
    /// Finished (normally or by panic).
    Finished,
}

/// Per-task handshake: the task parks on its own condvar until a granter
/// sets the flag.
#[derive(Debug, Default)]
struct TaskSignal {
    granted: Mutex<bool>,
    cv: Condvar,
}

impl TaskSignal {
    fn grant(&self) {
        *self.granted.lock().unwrap() = true;
        self.cv.notify_one();
    }

    fn wait(&self) {
        let mut g = self.granted.lock().unwrap();
        while !*g {
            g = self.cv.wait(g).unwrap();
        }
        *g = false;
    }
}

#[derive(Debug)]
struct TaskSlot {
    name: String,
    state: TaskState,
    signal: Arc<TaskSignal>,
}

#[derive(Debug)]
struct SchedState {
    cfg: SimConfig,
    rng: SplitMix64,
    tasks: Vec<TaskSlot>,
    /// Task currently holding the run token.
    current: u32,
    now_ns: u64,
    steps: u64,
    preemptions: u64,
    /// First failure; once set the run is poisoned and free-runs to exit.
    poisoned: Option<String>,
    tasks_alive: usize,
    trace: Vec<u8>,
}

impl SchedState {
    fn record(&mut self, kind: YieldKind, chosen: u32) {
        self.trace.push(kind as u8);
        self.trace.extend_from_slice(&chosen.to_le_bytes());
    }

    /// Grants every live task so it can run to its next yield point, see
    /// the poison, and unwind. Idempotent.
    fn free_run_all(&mut self) {
        for t in &self.tasks {
            if t.state != TaskState::Finished {
                t.signal.grant();
            }
        }
    }
}

struct GlobalSim {
    state: Mutex<Option<SchedState>>,
    /// Signalled when `tasks_alive` reaches zero.
    completion: Condvar,
}

static GLOBAL: OnceLock<GlobalSim> = OnceLock::new();
static RUN_LOCK: Mutex<()> = Mutex::new(());
/// Fast-path gate so uninstrumented threads skip the simulator entirely.
static ACTIVE: AtomicBool = AtomicBool::new(false);

std::thread_local! {
    static CURRENT: Cell<Option<u32>> = const { Cell::new(None) };
}

fn global() -> &'static GlobalSim {
    GLOBAL.get_or_init(|| GlobalSim {
        state: Mutex::new(None),
        completion: Condvar::new(),
    })
}

/// Takes the scheduler lock, shrugging off std poisoning (a panicking sim
/// task must still be able to reach the scheduler to unwind cleanly).
fn lock_state(g: &GlobalSim) -> MutexGuard<'_, Option<SchedState>> {
    g.state.lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether the calling thread is a registered task of an active simulated
/// run. The shims check this before taking their `sim` paths; threads
/// outside the simulation always run natively.
#[inline]
pub fn on_sim_task() -> bool {
    ACTIVE.load(Ordering::Relaxed) && CURRENT.with(|c| c.get().is_some())
}

fn current_task() -> u32 {
    CURRENT
        .with(|c| c.get())
        .expect("dude-sim API called off a sim task")
}

// ---------------------------------------------------------------------------
// The scheduling step
// ---------------------------------------------------------------------------

/// How the task re-enters the scheduler at a yield point.
enum Reentry {
    /// Still runnable: a preemption opportunity.
    Yield,
    /// Event-or-deadline wait.
    Until(u64),
    /// Deadline-only wait.
    Sleep(u64),
    /// Task is done.
    Exit,
}

/// The heart of the simulator: the running task declares its new state,
/// the scheduler picks who runs next, and (unless the task keeps the
/// token) hands it over and parks.
fn reschedule(kind: YieldKind, reentry: Reentry) {
    let me = current_task();
    let g = global();
    let mut guard = lock_state(g);

    let st = match guard.as_mut() {
        Some(st) => st,
        // The run was torn down while this task was unwinding.
        None => return,
    };

    if matches!(reentry, Reentry::Exit) {
        // An exiting task ALWAYS retires its slot — even in a poisoned
        // run — or `run()` would wait on `tasks_alive` forever.
        st.tasks[me as usize].state = TaskState::Finished;
        st.tasks_alive -= 1;
        // A finishing task is an event: joiners and channel peers
        // re-check their conditions.
        wake_event_waiters(st);
        if st.poisoned.is_some() || st.tasks_alive == 0 {
            g.completion.notify_all();
            return;
        }
    } else if st.poisoned.is_some() {
        drop(guard);
        abort_current_task();
        return;
    }

    st.steps += 1;
    st.now_ns += st.cfg.step_ns;
    if st.steps > st.cfg.max_steps {
        let msg = format!(
            "step budget exceeded ({} steps): livelock or runaway schedule\n{}",
            st.cfg.max_steps,
            task_table(st)
        );
        poison(st, &g.completion, msg);
        if matches!(reentry, Reentry::Exit) {
            return;
        }
        drop(guard);
        abort_current_task();
        return;
    }

    st.tasks[me as usize].state = match reentry {
        Reentry::Yield => TaskState::Runnable,
        Reentry::Until(d) => TaskState::Until(d),
        Reentry::Sleep(d) => TaskState::SleepUntil(d),
        Reentry::Exit => TaskState::Finished,
    };

    let chosen = loop {
        let runnable: Vec<u32> = st
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state == TaskState::Runnable)
            .map(|(i, _)| i as u32)
            .collect();
        if !runnable.is_empty() {
            break pick(st, me, &runnable, matches!(reentry, Reentry::Yield));
        }
        // Nobody runnable: jump the virtual clock to the earliest
        // deadline and wake whoever it belongs to.
        let min_deadline = st
            .tasks
            .iter()
            .filter_map(|t| match t.state {
                TaskState::Until(d) | TaskState::SleepUntil(d) => Some(d),
                _ => None,
            })
            .min();
        match min_deadline {
            Some(d) => {
                st.now_ns = st.now_ns.max(d);
                let now = st.now_ns;
                for t in st.tasks.iter_mut() {
                    match t.state {
                        TaskState::Until(dl) | TaskState::SleepUntil(dl) if dl <= now => {
                            t.state = TaskState::Runnable;
                        }
                        _ => {}
                    }
                }
            }
            None => {
                let msg = format!(
                    "deadlock: no runnable task, no deadline\n{}",
                    task_table(st)
                );
                poison(st, &g.completion, msg);
                if matches!(reentry, Reentry::Exit) {
                    return;
                }
                drop(guard);
                abort_current_task();
                return;
            }
        }
    };

    st.record(kind, chosen);
    st.current = chosen;
    if chosen == me {
        return; // keep the token
    }
    st.tasks[chosen as usize].signal.grant();
    drop(guard);

    if matches!(reentry, Reentry::Exit) {
        return; // the OS thread is about to terminate
    }
    wait_for_grant(me);
}

/// Chooses the next task. `voluntary_stay_possible` is true when the
/// current task is itself runnable (a preemption opportunity); switching
/// away then costs preemption budget.
fn pick(st: &mut SchedState, me: u32, runnable: &[u32], preemption_opportunity: bool) -> u32 {
    if preemption_opportunity {
        let others: Vec<u32> = runnable.iter().copied().filter(|&t| t != me).collect();
        if others.is_empty() {
            return me;
        }
        let budget_left = match st.cfg.preemption_bound {
            Some(b) => st.preemptions < b as u64,
            None => true,
        };
        if !budget_left {
            return me;
        }
        if st.rng.next() % 100 < st.cfg.stay_bias as u64 {
            return me;
        }
        st.preemptions += 1;
        others[(st.rng.next() % others.len() as u64) as usize]
    } else {
        runnable[(st.rng.next() % runnable.len() as u64) as usize]
    }
}

/// Marks every event-waiter runnable. Deadline-only sleepers keep
/// sleeping: modeled delays are not interruptible events.
fn wake_event_waiters(st: &mut SchedState) {
    for t in st.tasks.iter_mut() {
        if matches!(t.state, TaskState::Until(_)) {
            t.state = TaskState::Runnable;
        }
    }
}

fn poison(st: &mut SchedState, completion: &Condvar, msg: String) {
    if st.poisoned.is_none() {
        st.poisoned = Some(msg);
    }
    st.free_run_all();
    completion.notify_all();
}

/// Called at a yield point once the run is poisoned. During unwinding the
/// task free-runs (so drop glue passes straight through the shims);
/// otherwise it panics to start unwinding.
fn abort_current_task() {
    if std::thread::panicking() {
        // Free-running alongside other unwinding tasks: give the OS
        // scheduler a chance so retry loops don't spin hard.
        std::thread::yield_now();
        return;
    }
    let msg = {
        let guard = lock_state(global());
        guard
            .as_ref()
            .and_then(|st| st.poisoned.clone())
            .unwrap_or_else(|| "run poisoned".to_owned())
    };
    panic!("dude-sim: schedule aborted: {msg}");
}

fn wait_for_grant(me: u32) {
    let signal = {
        let guard = lock_state(global());
        match guard.as_ref() {
            Some(st) => Arc::clone(&st.tasks[me as usize].signal),
            None => return,
        }
    };
    signal.wait();
}

fn task_table(st: &SchedState) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (i, t) in st.tasks.iter().enumerate() {
        let _ = writeln!(out, "  task {i} [{}]: {:?}", t.name, t.state);
    }
    out
}

// ---------------------------------------------------------------------------
// Public yield-point API (called by the shims)
// ---------------------------------------------------------------------------

/// A preemption-opportunity yield point: the task stays runnable and may
/// keep the token.
pub fn yield_point(kind: YieldKind) {
    reschedule(kind, Reentry::Yield);
}

/// Event wait: parks until [`wake_all`] or a short virtual poll interval,
/// whichever first. The caller re-checks its condition in a loop.
pub fn block(kind: YieldKind) {
    let deadline = raw_now().saturating_add(EVENT_POLL_NS);
    reschedule(kind, Reentry::Until(deadline));
}

/// Event-or-deadline wait: parks until [`wake_all`] or the virtual clock
/// reaches `deadline_ns`, whichever first.
pub fn block_until(deadline_ns: u64, kind: YieldKind) {
    reschedule(kind, Reentry::Until(deadline_ns));
}

/// Virtual sleep: parks for exactly `ns` virtual nanoseconds. Not woken
/// by [`wake_all`], so modeled delays keep their duration.
pub fn sleep_ns(ns: u64) {
    let deadline = raw_now().saturating_add(ns);
    reschedule(YieldKind::Sleep, Reentry::Sleep(deadline));
}

/// Current virtual-clock reading, without yielding. Instrumented clock
/// reads should call [`yield_point`] first (see `dude_nvm::monotonic_ns`).
pub fn now_ns() -> u64 {
    raw_now()
}

fn raw_now() -> u64 {
    let guard = lock_state(global());
    guard.as_ref().map_or(0, |st| st.now_ns)
}

/// Marks every event-waiting task runnable. The shims call this after any
/// state change another task might be waiting on: a mutex/rwlock guard
/// drop, a successful channel operation, a channel endpoint disconnect.
/// Never panics; a no-op off the simulator.
pub fn wake_all() {
    if !on_sim_task() {
        return;
    }
    let mut guard = lock_state(global());
    if let Some(st) = guard.as_mut() {
        wake_event_waiters(st);
    }
}

// ---------------------------------------------------------------------------
// Tasks: spawn / join / run
// ---------------------------------------------------------------------------

/// Join handle for a simulated task: a sim-aware wrapper over the OS
/// thread handle.
#[derive(Debug)]
pub struct SimJoinHandle<T> {
    id: u32,
    inner: std::thread::JoinHandle<T>,
}

impl<T> SimJoinHandle<T> {
    /// Waits for the task to finish and returns its result, like
    /// [`std::thread::JoinHandle::join`]. When called from a sim task this
    /// parks on the virtual scheduler until the target exits, so joining
    /// never wedges the token.
    pub fn join(self) -> std::thread::Result<T> {
        if on_sim_task() {
            loop {
                let finished = {
                    let guard = lock_state(global());
                    match guard.as_ref() {
                        Some(st) => st.tasks[self.id as usize].state == TaskState::Finished,
                        None => true,
                    }
                };
                if finished {
                    break;
                }
                block(YieldKind::Join);
            }
        }
        // The target's OS thread is past its last yield point; the real
        // join below is a brief, bounded wait.
        self.inner.join()
    }

    /// Whether the task has finished running.
    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

/// Registers a new task slot and returns its id. The caller must already
/// hold no scheduler lock.
fn register_task(name: &str) -> u32 {
    let mut guard = lock_state(global());
    let st = guard
        .as_mut()
        .expect("dude-sim: spawn outside an active run");
    let id = st.tasks.len() as u32;
    st.tasks.push(TaskSlot {
        name: name.to_owned(),
        state: TaskState::Runnable,
        signal: Arc::new(TaskSignal::default()),
    });
    st.tasks_alive += 1;
    if st.poisoned.is_some() {
        // Spawned into a poisoned run: free-run it straight to its abort
        // so `tasks_alive` still drains to zero.
        st.tasks[id as usize].signal.grant();
    }
    id
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// The body every task OS thread runs: wait for the first grant, run the
/// closure under `catch_unwind`, record the outcome, and exit through the
/// scheduler.
fn task_main<T, F: FnOnce() -> T>(id: u32, f: F) -> T {
    CURRENT.with(|c| c.set(Some(id)));
    wait_for_grant(id);
    let result = catch_unwind(AssertUnwindSafe(f));
    if let Err(payload) = &result {
        let g = global();
        let mut guard = lock_state(g);
        if let Some(st) = guard.as_mut() {
            let msg = format!(
                "task {id} [{}] panicked: {}",
                st.tasks[id as usize].name,
                panic_message(payload.as_ref())
            );
            poison(st, &g.completion, msg);
        }
    }
    reschedule(YieldKind::Exit, Reentry::Exit);
    match result {
        Ok(v) => v,
        Err(payload) => resume_unwind(payload),
    }
}

/// Spawns a new simulated task. Must be called from a sim task; the
/// spawner yields right after registration so the scheduler can explore
/// start orders.
pub fn spawn<T, F>(name: &str, f: F) -> SimJoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    assert!(on_sim_task(), "dude-sim: spawn off a sim task");
    let id = register_task(name);
    let inner = std::thread::Builder::new()
        .name(format!("sim-{id}-{name}"))
        .spawn(move || task_main(id, f))
        .expect("dude-sim: OS thread spawn failed");
    yield_point(YieldKind::Spawn);
    SimJoinHandle { id, inner }
}

/// Runs `f` as the root task of a fresh simulated schedule and reports
/// the outcome. Runs are serialized process-wide; nesting panics.
pub fn run<R, F>(cfg: SimConfig, f: F) -> SimReport<R>
where
    R: Send + 'static,
    F: FnOnce() -> R + Send + 'static,
{
    assert!(!on_sim_task(), "dude-sim: nested run");
    let _serial = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let g = global();

    {
        let mut guard = lock_state(g);
        assert!(guard.is_none(), "dude-sim: concurrent run");
        *guard = Some(SchedState {
            rng: SplitMix64::new(cfg.seed),
            cfg,
            tasks: Vec::new(),
            current: 0,
            now_ns: 0,
            steps: 0,
            preemptions: 0,
            poisoned: None,
            tasks_alive: 0,
            trace: Vec::new(),
        });
    }
    ACTIVE.store(true, Ordering::SeqCst);

    let root_id = register_task("root");
    debug_assert_eq!(root_id, 0);
    let root = std::thread::Builder::new()
        .name("sim-0-root".to_owned())
        .spawn(move || task_main(0, f))
        .expect("dude-sim: OS thread spawn failed");

    // Hand the token to the root task and wait for the run to drain.
    {
        let mut guard = lock_state(g);
        {
            let st = guard.as_mut().unwrap();
            st.record(YieldKind::Spawn, 0);
            st.tasks[0].signal.grant();
        }
        while guard.as_ref().is_some_and(|st| st.tasks_alive > 0) {
            guard = g.completion.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }

    let result = root.join();
    ACTIVE.store(false, Ordering::SeqCst);
    let st = lock_state(g).take().expect("dude-sim: run state vanished");

    SimReport {
        result: result.ok(),
        panic: st.poisoned,
        trace: st.trace,
        steps: st.steps,
        preemptions: st.preemptions,
        virtual_ns: st.now_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn cfg(seed: u64) -> SimConfig {
        SimConfig::from_seed(seed)
    }

    #[test]
    fn same_seed_replays_identical_trace() {
        let body = || {
            let n = Arc::new(AtomicU64::new(0));
            let hs: Vec<_> = (0..3)
                .map(|i| {
                    let n = Arc::clone(&n);
                    spawn(&format!("w{i}"), move || {
                        for _ in 0..10 {
                            yield_point(YieldKind::Poll);
                            n.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            n.load(Ordering::Relaxed)
        };
        let a = run(cfg(42), body);
        let b = run(cfg(42), body);
        assert_eq!(a.result, Some(30));
        assert_eq!(b.result, Some(30));
        assert!(!a.trace.is_empty());
        assert_eq!(a.trace, b.trace, "same seed must replay byte-identically");
        let c = run(cfg(43), body);
        // Different seeds *may* coincide, but for this workload shape they
        // should not; treat coincidence as a bug in seed plumbing.
        assert_ne!(a.trace, c.trace, "different seed produced identical trace");
    }

    #[test]
    fn virtual_sleep_orders_by_deadline() {
        let report = run(cfg(7), || {
            let order = Arc::new(Mutex::new(Vec::new()));
            let o1 = Arc::clone(&order);
            let long = spawn("long", move || {
                sleep_ns(1_000_000);
                o1.lock().unwrap().push("long");
            });
            let o2 = Arc::clone(&order);
            let short = spawn("short", move || {
                sleep_ns(10_000);
                o2.lock().unwrap().push("short");
            });
            long.join().unwrap();
            short.join().unwrap();
            Arc::try_unwrap(order).unwrap().into_inner().unwrap()
        });
        assert_eq!(report.panic, None);
        assert_eq!(report.result.unwrap(), vec!["short", "long"]);
    }

    #[test]
    fn virtual_clock_jumps_past_idle_time() {
        let report = run(cfg(9), || {
            sleep_ns(50_000_000); // 50 virtual ms
        });
        assert_eq!(report.panic, None);
        assert!(report.virtual_ns >= 50_000_000);
        // Jumping (not ticking) through the sleep keeps the step count
        // tiny.
        assert!(report.steps < 1000, "steps = {}", report.steps);
    }

    #[test]
    fn child_panic_is_reported_with_task_name() {
        let report = run(cfg(3), || {
            let h = spawn("boomer", || panic!("boom"));
            let _ = h.join();
            "root survived?"
        });
        let msg = report.panic.expect("panic must be recorded");
        assert!(msg.contains("boomer"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn step_budget_exhaustion_poisons_run() {
        let mut c = cfg(5);
        c.max_steps = 500;
        let report = run(c, || loop {
            yield_point(YieldKind::Poll);
        });
        let msg = report.panic.expect("budget exhaustion must poison");
        assert!(msg.contains("step budget"), "{msg}");
        assert!(report.result.is_none());
    }

    #[test]
    fn preemption_bound_zero_never_preempts() {
        let mut c = cfg(11);
        c.preemption_bound = Some(0);
        let report = run(c, || {
            let hs: Vec<_> = (0..3)
                .map(|i| {
                    spawn(&format!("w{i}"), move || {
                        for _ in 0..20 {
                            yield_point(YieldKind::Poll);
                        }
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
        });
        assert_eq!(report.panic, None);
        assert_eq!(report.preemptions, 0);
    }

    #[test]
    fn event_wait_is_woken_by_wake_all() {
        let report = run(cfg(13), || {
            let flag = Arc::new(AtomicBool::new(false));
            let f2 = Arc::clone(&flag);
            let waiter = spawn("waiter", move || {
                let mut polls = 0u64;
                while !f2.load(Ordering::Relaxed) {
                    polls += 1;
                    block(YieldKind::Poll);
                }
                polls
            });
            let f3 = Arc::clone(&flag);
            let setter = spawn("setter", move || {
                f3.store(true, Ordering::Relaxed);
                wake_all();
            });
            setter.join().unwrap();
            waiter.join().unwrap()
        });
        assert_eq!(report.panic, None);
        assert!(report.result.is_some());
    }

    #[test]
    fn from_seed_varies_exploration_knobs() {
        let knobs: std::collections::BTreeSet<(u32, Option<u32>)> = (0..64)
            .map(|s| {
                let c = SimConfig::from_seed(s);
                (c.stay_bias, c.preemption_bound)
            })
            .collect();
        assert!(
            knobs.len() > 8,
            "knob derivation looks degenerate: {knobs:?}"
        );
    }
}
