//! Executes registered specs: prints their tables, writes the canonical
//! `<spec>__<slug>.csv` and `BENCH_<spec>.json` artifacts.

use std::path::{Path, PathBuf};

use crate::record::{EnvMeta, Record};
use crate::registry::ablation_section;
use crate::spec::{Spec, SpecCtx};

/// Where a run writes its artifacts.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Output directory (default `bench_results`).
    pub out_dir: PathBuf,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            out_dir: PathBuf::from("bench_results"),
        }
    }
}

/// Runs one spec end to end: executes the runner, prints every table,
/// writes per-table CSVs and the spec's JSON record, and returns the
/// record.
pub fn run_spec(spec: &Spec, ctx: &SpecCtx, opts: &RunOptions) -> Record {
    println!(
        "== {} [{} tier, seed {}{}] ==",
        spec.name,
        ctx.tier().name(),
        ctx.seed,
        if ctx.deterministic {
            ", deterministic"
        } else {
            ""
        }
    );
    let out = (spec.runner)(ctx);
    for t in &out.tables {
        t.table.print();
        t.table
            .save_csv_as(&opts.out_dir, &format!("{}__{}", spec.name, t.slug));
    }
    for note in &out.notes {
        println!("({note})");
    }
    let record = Record::from_output(spec, ctx, out, EnvMeta::capture());
    write_record(&record, &opts.out_dir);
    record
}

/// Writes a record as `BENCH_<spec>.json` under `dir`.
pub fn write_record(record: &Record, dir: &Path) {
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(record.file_name());
    match std::fs::write(&path, record.to_json().pretty()) {
        Ok(()) => println!("[json] {}", path.display()),
        Err(e) => eprintln!("[json] failed to write {}: {e}", path.display()),
    }
}

/// Entry point shared by the legacy per-experiment binaries, which are now
/// thin shims over the registry. `bin` is the legacy binary name; flags
/// (`--quick`, `--section`, `--trace-out`) keep their old meaning, and
/// artifacts land in `bench_results/` exactly as before.
pub fn legacy_main(bin: &str) {
    let ctx = SpecCtx {
        tier: crate::spec::TierField(if crate::quick_flag() {
            crate::spec::Tier::Quick
        } else {
            crate::spec::Tier::Full
        }),
        trace_out: crate::trace_out_flag(),
        ..SpecCtx::quick()
    };
    let opts = RunOptions::default();
    let specs: Vec<&'static Spec> = if bin == "ablation_pipeline" {
        match crate::section_flag() {
            Some(n) => match ablation_section(n) {
                Some(s) => vec![s],
                None => {
                    eprintln!("{bin}: unknown --section {n} (expected 1-5)");
                    std::process::exit(2);
                }
            },
            None => (1..=5).map(|n| ablation_section(n).unwrap()).collect(),
        }
    } else {
        let matching: Vec<&'static Spec> = crate::registry::SPECS
            .iter()
            .filter(|s| s.legacy_bin == bin)
            .collect();
        assert!(!matching.is_empty(), "no spec registered for bin {bin}");
        matching
    };
    for spec in specs {
        run_spec(spec, &ctx, &opts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Tier;

    #[test]
    fn run_spec_writes_csv_and_json() {
        let dir = std::env::temp_dir().join(format!("dude_bench_runner_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ctx = SpecCtx {
            ops: Some(64),
            threads: Some(1),
            deterministic: true,
            workload_filter: Some(vec!["HashTable".into()]),
            ..SpecCtx::quick()
        };
        let opts = RunOptions {
            out_dir: dir.clone(),
        };
        let spec = crate::registry::find("table1").unwrap();
        let record = run_spec(spec, &ctx, &opts);
        assert_eq!(record.tier, Tier::Quick);
        assert!(dir.join("table1__main.csv").is_file());
        let loaded = Record::load(&dir.join("BENCH_table1.json")).expect("record loads");
        assert_eq!(loaded.spec, "table1");
        assert!(loaded.deterministic);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
