//! The declarative experiment model: a [`Spec`] names one table/figure/
//! ablation of the evaluation, a [`SpecCtx`] carries the run parameters
//! (tier, seed, overrides), and a [`SpecOutput`] is what a spec's runner
//! hands back — tables for the report renderer plus named metrics for the
//! regression gate.

use crate::env::BenchEnv;
use crate::report::{fmt_tps, Table};

/// Measurement tier: how much work a run buys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Reduced sweep, smoke-sized cells (seconds; CI uses this).
    Quick,
    /// The full recorded configuration (the numbers in `EXPERIMENTS.md`).
    Full,
}

impl Tier {
    /// Stable on-disk name (`"quick"` / `"full"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Tier::Quick => "quick",
            Tier::Full => "full",
        }
    }

    /// Parses the on-disk name.
    #[must_use]
    pub fn from_name(s: &str) -> Option<Tier> {
        match s {
            "quick" => Some(Tier::Quick),
            "full" => Some(Tier::Full),
            _ => None,
        }
    }
}

/// Which direction of change counts as a regression for a gated metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Better {
    /// Larger is better (throughput, savings): regression = drop.
    Higher,
    /// Smaller is better (latency, wear): regression = rise.
    Lower,
    /// The value is structural and should hold (writes/tx, counts):
    /// regression = drift in either direction.
    TwoSided,
}

impl Better {
    /// Stable on-disk name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Better::Higher => "higher",
            Better::Lower => "lower",
            Better::TwoSided => "two-sided",
        }
    }

    /// Parses the on-disk name.
    #[must_use]
    pub fn from_name(s: &str) -> Option<Better> {
        match s {
            "higher" => Some(Better::Higher),
            "lower" => Some(Better::Lower),
            "two-sided" => Some(Better::TwoSided),
            _ => None,
        }
    }
}

/// One named scalar a spec reports.
///
/// `samples` holds every repeat's raw value (one entry for single-shot
/// cells); `value` is the headline (the median the spec's repeat policy
/// selected). Only `gated` metrics participate in `dude-bench diff` by
/// default: wall-clock throughputs vary across hosts far more than any
/// sane tolerance, so specs gate structural values (counts, ratios,
/// writes/tx, wear) and leave timings as recorded-but-informational
/// unless the operator opts in with `--include-walltime`.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Stable name, unique within the spec.
    pub name: String,
    /// Unit label (`"tps"`, `"writes/tx"`, ...).
    pub unit: &'static str,
    /// Headline value (median under the spec's repeat policy).
    pub value: f64,
    /// Raw per-repeat samples.
    pub samples: Vec<f64>,
    /// Whether `dude-bench diff` gates on this metric by default.
    pub gated: bool,
    /// Regression direction.
    pub better: Better,
    /// Whether the value is wall-clock derived (machine-dependent).
    pub walltime: bool,
}

/// One rendered table plus the stable slug naming its CSV artifact
/// (`<spec>__<slug>.csv`).
#[derive(Debug, Clone)]
pub struct SpecTable {
    /// File-name slug (lowercase, `[a-z0-9_]`).
    pub slug: String,
    /// The table.
    pub table: Table,
}

/// Everything a spec's runner produces.
#[derive(Debug, Clone, Default)]
pub struct SpecOutput {
    /// Tables in presentation order.
    pub tables: Vec<SpecTable>,
    /// Metrics for the JSON record and the regression gate.
    pub metrics: Vec<Metric>,
    /// Free-form notes carried into the JSON record.
    pub notes: Vec<String>,
}

impl SpecOutput {
    /// Appends a table under `slug`.
    pub fn table(&mut self, slug: &str, table: Table) {
        self.tables.push(SpecTable {
            slug: slug.to_string(),
            table,
        });
    }

    /// Appends an ungated wall-clock metric (recorded, not gated).
    pub fn walltime_metric(&mut self, name: impl Into<String>, unit: &'static str, value: f64) {
        self.metrics.push(Metric {
            name: name.into(),
            unit,
            value,
            samples: vec![value],
            gated: false,
            better: Better::Higher,
            walltime: true,
        });
    }

    /// Appends a gated structural metric (`TwoSided` unless overridden via
    /// the returned entry).
    pub fn gated_metric(&mut self, name: impl Into<String>, unit: &'static str, value: f64) {
        self.metrics.push(Metric {
            name: name.into(),
            unit,
            value,
            samples: vec![value],
            gated: true,
            better: Better::TwoSided,
            walltime: false,
        });
    }

    /// Appends a wall-clock metric with all repeat samples; `value` is the
    /// median.
    pub fn walltime_samples(
        &mut self,
        name: impl Into<String>,
        unit: &'static str,
        samples: Vec<f64>,
    ) {
        let value = median(&samples);
        self.metrics.push(Metric {
            name: name.into(),
            unit,
            value,
            samples,
            gated: false,
            better: Better::Higher,
            walltime: true,
        });
    }

    /// Appends a note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }
}

/// Median of a non-empty sample set (0 when empty).
#[must_use]
pub fn median(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted[sorted.len() / 2]
}

/// The `p95` of a sample set by nearest-rank (0 when empty).
#[must_use]
pub fn p95(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((0.95 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Run parameters handed to every spec runner.
#[derive(Debug, Clone, Default)]
pub struct SpecCtx {
    /// Quick or full tier.
    pub tier: TierField,
    /// RNG seed (flows into [`BenchEnv::seed`]).
    pub seed: u64,
    /// Worker-thread override (specs default to the tier's standard).
    pub threads: Option<usize>,
    /// Per-cell operation-count override (test-sized runs).
    pub ops: Option<u64>,
    /// Deterministic rendering: wall-clock cells print as `-` so two
    /// pinned-seed runs render byte-identical tables (the docs-freshness
    /// determinism contract; see `DESIGN.md §Benchmark methodology`).
    pub deterministic: bool,
    /// Restrict multi-workload specs to these workload labels.
    pub workload_filter: Option<Vec<String>>,
    /// Chrome-tracing JSON output path (honored by the ablation specs).
    pub trace_out: Option<String>,
}

/// Newtype default for [`Tier`] inside `SpecCtx` (quick).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierField(pub Tier);

impl Default for TierField {
    fn default() -> Self {
        TierField(Tier::Quick)
    }
}

impl SpecCtx {
    /// A quick-tier context with the standard seed.
    #[must_use]
    pub fn quick() -> Self {
        SpecCtx {
            seed: 42,
            ..SpecCtx::default()
        }
    }

    /// A full-tier context with the standard seed.
    #[must_use]
    pub fn full() -> Self {
        SpecCtx {
            tier: TierField(Tier::Full),
            ..SpecCtx::quick()
        }
    }

    /// The tier.
    #[must_use]
    pub fn tier(&self) -> Tier {
        self.tier.0
    }

    /// `true` in quick tier.
    #[must_use]
    pub fn is_quick(&self) -> bool {
        self.tier() == Tier::Quick
    }

    /// The base environment for this context: the tier's standard
    /// [`BenchEnv`] with seed/thread/ops overrides applied.
    #[must_use]
    pub fn env(&self) -> BenchEnv {
        let mut env = BenchEnv::from_quick(self.is_quick());
        env.seed = self.seed;
        if let Some(t) = self.threads {
            env.threads = t;
        }
        if let Some(ops) = self.ops {
            env.ops = ops;
        }
        env
    }

    /// Repeat count under the tier's median policy (`1` in quick tier).
    #[must_use]
    pub fn reps(&self, full: usize) -> usize {
        if self.is_quick() {
            1
        } else {
            full
        }
    }

    /// Formats a throughput cell, masking it as `-` in deterministic mode.
    #[must_use]
    pub fn tps(&self, v: f64) -> String {
        if self.deterministic {
            "-".to_string()
        } else {
            fmt_tps(v)
        }
    }

    /// Formats an arbitrary wall-clock-derived cell, masking it as `-` in
    /// deterministic mode.
    #[must_use]
    pub fn walltime_cell(&self, s: String) -> String {
        if self.deterministic {
            "-".to_string()
        } else {
            s
        }
    }

    /// `true` if `label` passes the workload filter (no filter = all).
    #[must_use]
    pub fn wants_workload(&self, label: &str) -> bool {
        match &self.workload_filter {
            None => true,
            Some(labels) => labels.iter().any(|l| l == label),
        }
    }
}

/// One registered experiment.
pub struct Spec {
    /// Canonical name (`table2`, `fig3`, `ablation_flush_workers`, ...):
    /// the JSON record is `BENCH_<name>.json`, CSVs are
    /// `<name>__<slug>.csv`, and the doc marker is `<!-- bench:<name> -->`.
    pub name: &'static str,
    /// Human title.
    pub title: &'static str,
    /// What part of the paper (or which extension) this reproduces.
    pub paper_ref: &'static str,
    /// Declared table slugs with one-line descriptions (drives
    /// `MANIFEST.md`; runners must emit exactly these slugs).
    pub tables: &'static [(&'static str, &'static str)],
    /// The legacy single-experiment binary that fronts this spec.
    pub legacy_bin: &'static str,
    /// Executes the spec.
    pub runner: fn(&SpecCtx) -> SpecOutput,
}

impl std::fmt::Debug for Spec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Spec")
            .field("name", &self.name)
            .field("title", &self.title)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_and_better_names_round_trip() {
        for t in [Tier::Quick, Tier::Full] {
            assert_eq!(Tier::from_name(t.name()), Some(t));
        }
        for b in [Better::Higher, Better::Lower, Better::TwoSided] {
            assert_eq!(Better::from_name(b.name()), Some(b));
        }
        assert_eq!(Tier::from_name("warp"), None);
    }

    #[test]
    fn ctx_overrides_flow_into_env() {
        let ctx = SpecCtx {
            threads: Some(2),
            ops: Some(123),
            seed: 7,
            ..SpecCtx::quick()
        };
        let env = ctx.env();
        assert_eq!(env.threads, 2);
        assert_eq!(env.ops, 123);
        assert_eq!(env.seed, 7);
        assert_eq!(ctx.reps(3), 1);
        assert_eq!(SpecCtx::full().reps(3), 3);
    }

    #[test]
    fn deterministic_masks_walltime_cells() {
        let det = SpecCtx {
            deterministic: true,
            ..SpecCtx::quick()
        };
        assert_eq!(det.tps(123_000.0), "-");
        assert_eq!(SpecCtx::quick().tps(123_000.0), "123.0 KTPS");
    }

    #[test]
    fn median_and_p95() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(p95(&[1.0, 2.0, 3.0, 4.0]), 4.0);
    }

    #[test]
    fn workload_filter() {
        let ctx = SpecCtx {
            workload_filter: Some(vec!["Bank".into()]),
            ..SpecCtx::quick()
        };
        assert!(ctx.wants_workload("Bank"));
        assert!(!ctx.wants_workload("HashTable"));
        assert!(SpecCtx::quick().wants_workload("anything"));
    }
}
