//! A minimal JSON value type with a deterministic serializer and a strict
//! parser.
//!
//! The build environment vendors no `serde`, and the bench records need a
//! byte-stable on-disk form (the `render`/`diff` machinery and the
//! docs-freshness CI check both depend on "same data in → same bytes
//! out"), so this module implements exactly the subset the harness needs:
//! objects keep **insertion order**, numbers round-trip through Rust's
//! shortest-representation float formatting, and serialization is pure —
//! no timestamps, no hash-map iteration order, no locale.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (serialized via shortest-roundtrip formatting).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs keep insertion order (deterministic output).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number value.
    pub fn num(v: f64) -> Json {
        Json::Num(v)
    }

    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline
    /// (stable across runs for identical values).
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no NaN/Inf; the harness never produces them, but a
        // defensive null beats invalid output.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters"));
    }
    Ok(value)
}

fn err(at: usize, msg: &str) -> ParseError {
    ParseError {
        at,
        msg: msg.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), ParseError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected '{}'", b as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected '{lit}'")))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "bad utf-8"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(start, "invalid number"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| err(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogates are not produced by our serializer;
                        // map them to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "bad utf-8"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_structure_and_order() {
        let doc = Json::Obj(vec![
            ("b".into(), Json::num(1.5)),
            ("a".into(), Json::str("x\n\"y\"")),
            (
                "list".into(),
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::num(42.0)]),
            ),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let text = doc.pretty();
        let back = parse(&text).expect("round trip");
        assert_eq!(back, doc);
        // Serialization is deterministic (order preserved, bytes stable).
        assert_eq!(back.pretty(), text);
    }

    #[test]
    fn integers_serialize_without_fraction() {
        assert_eq!(Json::num(42.0).pretty(), "42\n");
        assert_eq!(Json::num(0.25).pretty(), "0.25\n");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors() {
        let doc = parse(r#"{"n": 3, "s": "hi", "b": false, "a": [1]}"#).expect("parse");
        assert_eq!(doc.get("n").and_then(Json::as_f64), Some(3.0));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(doc.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(
            doc.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert!(doc.get("missing").is_none());
    }
}
