//! The experiment registry: every table, figure and ablation of the
//! evaluation as a named, declarative [`Spec`].
//!
//! Each runner ports the corresponding legacy `src/bin/` experiment into a
//! `fn(&SpecCtx) -> SpecOutput` so one driver (`dude-bench run`) owns the
//! whole measurement loop: tier selection, seeds, repeat policy, CSV/JSON
//! artifact naming and the report renderer all flow from this table.
//!
//! Conventions shared by every runner:
//!
//! * quick tier reproduces the legacy binaries' `--quick` sweeps exactly;
//!   full tier reproduces the recorded configuration in `EXPERIMENTS.md`;
//! * wall-clock-derived cells go through [`SpecCtx::tps`] /
//!   [`SpecCtx::walltime_cell`] so `--deterministic` runs render
//!   byte-identical tables;
//! * structural values that must hold across hosts (writes/tx, committed
//!   counts) become gated metrics; timings are recorded but not gated.

use std::sync::Arc;

use dudetm::{DudeTmConfig, DurabilityMode, PagingMode, ShadowConfig, TraceConfig, PAGE_BYTES};

use crate::env::BenchEnv;
use crate::report::{fmt_pct, fmt_tps, fmt_us, Table};
use crate::spec::{Better, Metric, Spec, SpecCtx, SpecOutput};
use crate::systems::{checked, run_combo, run_combo_median, SystemKind};
use crate::workloads::{build_workload, WorkloadKind};

/// All registered experiments, in `EXPERIMENTS.md` presentation order.
pub static SPECS: &[Spec] = &[
    Spec {
        name: "table2",
        title: "Table 2 — throughput (1 GB/s, 1000 cycles, 4 threads)",
        paper_ref: "Table 2",
        tables: &[(
            "main",
            "DudeTM vs DudeTM-Sync vs Mnemosyne vs NVML, six benchmarks",
        )],
        legacy_bin: "table2_systems",
        runner: run_table2,
    },
    Spec {
        name: "table1",
        title: "Table 1 — memory writes (DudeTM, 1 GB/s, 1000 cycles, 4 threads)",
        paper_ref: "Table 1",
        tables: &[(
            "main",
            "NVM write statistics per benchmark vs the paper's writes/tx",
        )],
        legacy_bin: "table1_writes",
        runner: run_table1,
    },
    Spec {
        name: "table3",
        title: "Table 3 — durable latency, TPC-C (hash)",
        paper_ref: "Table 3",
        tables: &[(
            "main",
            "durable-ack latency percentiles across four systems",
        )],
        legacy_bin: "table3_latency",
        runner: run_table3,
    },
    Spec {
        name: "fig2",
        title: "Figure 2 — throughput vs NVM bandwidth",
        paper_ref: "Figure 2",
        tables: &[
            ("hashtable", "HashTable throughput vs bandwidth"),
            ("btree", "B+-tree throughput vs bandwidth"),
            ("tpcc_btree", "TPC-C (B+-tree) throughput vs bandwidth"),
            ("tpcc_hash", "TPC-C (hash) throughput vs bandwidth"),
            ("tatp_btree", "TATP (B+-tree) throughput vs bandwidth"),
            ("tatp_hash", "TATP (hash) throughput vs bandwidth"),
            ("aux_sync_latency", "DudeTM-Sync at 3500-cycle PCM latency"),
        ],
        legacy_bin: "fig2_throughput",
        runner: run_fig2,
    },
    Spec {
        name: "fig3",
        title: "Figure 3 — log optimization vs group size (YCSB, zipf 0.99)",
        paper_ref: "Figure 3",
        tables: &[(
            "main",
            "combination/compression savings and throughput impact",
        )],
        legacy_bin: "fig3_logopt",
        runner: run_fig3,
    },
    Spec {
        name: "fig4",
        title: "Figure 4 — swap overhead (YCSB update-only)",
        paper_ref: "Figure 4",
        tables: &[
            ("zipf_0_99", "software vs hardware paging, zipf 0.99"),
            ("zipf_1_07", "software vs hardware paging, zipf 1.07"),
        ],
        legacy_bin: "fig4_swap",
        runner: run_fig4,
    },
    Spec {
        name: "fig5",
        title: "Figure 5 — TPC-C (B+-tree) scaling, normalized to 1 thread",
        paper_ref: "Figure 5",
        tables: &[(
            "main",
            "thread scaling vs Volatile-STM plus the partitioned variant",
        )],
        legacy_bin: "fig5_scalability",
        runner: run_fig5,
    },
    Spec {
        name: "table4",
        title: "Table 4 — STM vs HTM engines (1 GB/s, 1000 cycles, 4 threads)",
        paper_ref: "Table 4",
        tables: &[("main", "volatile/durable slowdowns on both TM engines")],
        legacy_bin: "table4_htm",
        runner: run_table4,
    },
    Spec {
        name: "ablation_vlog",
        title: "Ablation — volatile log buffer size (TPC-C hash, DudeTM)",
        paper_ref: "extension (Finding 2 sensitivity)",
        tables: &[("main", "throughput vs volatile-log bound")],
        legacy_bin: "ablation_pipeline",
        runner: run_ablation_vlog,
    },
    Spec {
        name: "ablation_persist_threads",
        title: "Ablation — persist threads (TPC-C hash, DudeTM)",
        paper_ref: "extension (§3.3 'one is enough')",
        tables: &[(
            "main",
            "throughput and latency percentiles vs persist threads",
        )],
        legacy_bin: "ablation_pipeline",
        runner: run_ablation_persist_threads,
    },
    Spec {
        name: "ablation_checkpoint_cadence",
        title: "Ablation — reproduce checkpoint cadence (TPC-C hash, DudeTM)",
        paper_ref: "extension (log recycling)",
        tables: &[(
            "main",
            "throughput and latency percentiles vs checkpoint cadence",
        )],
        legacy_bin: "ablation_pipeline",
        runner: run_ablation_checkpoint_cadence,
    },
    Spec {
        name: "ablation_reproduce_shards",
        title: "Ablation — reproduce shard workers (write-heavy drain, DudeTM-Inf)",
        paper_ref: "extension (sharded Reproduce)",
        tables: &[("main", "backlog drain rate vs shard workers")],
        legacy_bin: "ablation_pipeline",
        runner: run_ablation_reproduce_shards,
    },
    Spec {
        name: "ablation_flush_workers",
        title:
            "Ablation — persist flush workers (write-heavy drain, group=8, DudeTM-Inf, PCM latency)",
        paper_ref: "extension (parallel grouped Persist)",
        tables: &[(
            "main",
            "drain rate and barrier percentiles vs flush workers",
        )],
        legacy_bin: "ablation_pipeline",
        runner: run_ablation_flush_workers,
    },
    Spec {
        name: "endurance",
        title: "Endurance — line wear vs log combination (YCSB, zipf 0.99)",
        paper_ref: "extension (§3.3 endurance motivation)",
        tables: &[("main", "hottest-line wear with combination off and on")],
        legacy_bin: "endurance_wear",
        runner: run_endurance,
    },
];

/// Looks up a spec by name.
#[must_use]
pub fn find(name: &str) -> Option<&'static Spec> {
    SPECS.iter().find(|s| s.name == name)
}

/// All spec names, in presentation order.
#[must_use]
pub fn names() -> Vec<&'static str> {
    SPECS.iter().map(|s| s.name).collect()
}

/// Maps a legacy `ablation_pipeline --section <n>` number to its spec.
#[must_use]
pub fn ablation_section(n: u32) -> Option<&'static Spec> {
    match n {
        1 => find("ablation_vlog"),
        2 => find("ablation_persist_threads"),
        3 => find("ablation_checkpoint_cadence"),
        4 => find("ablation_reproduce_shards"),
        5 => find("ablation_flush_workers"),
        _ => None,
    }
}

/// File-name slug for a workload (used in per-workload table slugs and
/// metric names).
fn workload_slug(w: WorkloadKind) -> &'static str {
    match w {
        WorkloadKind::HashTable => "hashtable",
        WorkloadKind::BTree => "btree",
        WorkloadKind::TpccBTree => "tpcc_btree",
        WorkloadKind::TpccHash => "tpcc_hash",
        WorkloadKind::TpccBTreePartitioned => "tpcc_btree_partitioned",
        WorkloadKind::TatpBTree => "tatp_btree",
        WorkloadKind::TatpHash => "tatp_hash",
        WorkloadKind::Ycsb { .. } => "ycsb",
        WorkloadKind::YcsbUpdate { .. } => "ycsb_update",
        WorkloadKind::Bank => "bank",
    }
}

/// The six paper benchmarks in Table 1/2 order.
const SIX: [WorkloadKind; 6] = [
    WorkloadKind::BTree,
    WorkloadKind::TpccBTree,
    WorkloadKind::TatpBTree,
    WorkloadKind::HashTable,
    WorkloadKind::TpccHash,
    WorkloadKind::TatpHash,
];

fn run_table2(ctx: &SpecCtx) -> SpecOutput {
    let env = ctx.env();
    let mut out = SpecOutput::default();
    let mut table = Table::new(
        "Table 2 — throughput (1 GB/s, 1000 cycles, 4 threads)",
        &[
            "benchmark",
            "DudeTM",
            "DudeTM-Sync",
            "Mnemosyne",
            "NVML",
            "DudeTM/Mnem.",
        ],
    );
    let mut committed = 0.0;
    for workload in SIX {
        if !ctx.wants_workload(&workload.label()) {
            continue;
        }
        let slug = workload_slug(workload);
        let dude = run_combo(SystemKind::Dude, workload, &env);
        let sync = run_combo(SystemKind::DudeSync, workload, &env);
        let mnem = run_combo(SystemKind::Mnemosyne, workload, &env);
        let nvml = workload
            .nvml_compatible()
            .then(|| run_combo(SystemKind::Nvml, workload, &env));
        committed += dude.run.committed as f64;
        out.walltime_metric(format!("tps/{slug}/dude"), "tps", dude.run.throughput);
        out.walltime_metric(format!("tps/{slug}/sync"), "tps", sync.run.throughput);
        out.walltime_metric(format!("tps/{slug}/mnemosyne"), "tps", mnem.run.throughput);
        if let Some(n) = &nvml {
            out.walltime_metric(format!("tps/{slug}/nvml"), "tps", n.run.throughput);
        }
        table.push(vec![
            workload.label(),
            ctx.tps(dude.run.throughput),
            ctx.tps(sync.run.throughput),
            ctx.tps(mnem.run.throughput),
            nvml.map_or("-".into(), |c| ctx.tps(c.run.throughput)),
            ctx.walltime_cell(format!("{:.1}x", dude.run.throughput / mnem.run.throughput)),
        ]);
    }
    out.gated_metric("committed_txns", "txns", committed);
    out.table("main", table);
    out
}

fn run_table1(ctx: &SpecCtx) -> SpecOutput {
    let env = ctx.env();
    let mut out = SpecOutput::default();
    let mut table = Table::new(
        "Table 1 — memory writes (DudeTM, 1 GB/s, 1000 cycles, 4 threads)",
        &[
            "benchmark",
            "# writes/s",
            "throughput",
            "# writes per tx",
            "paper writes/tx",
        ],
    );
    let paper = ["15.8", "183.5", "1.0", "3.0", "156.5", "1.0"];
    for (workload, paper_wtx) in SIX.into_iter().zip(paper) {
        if !ctx.wants_workload(&workload.label()) {
            continue;
        }
        let slug = workload_slug(workload);
        let cell = run_combo(SystemKind::Dude, workload, &env);
        let stats = cell.pipeline.expect("DudeTM exposes pipeline stats");
        let writes_per_sec = stats.entries_logged as f64 / cell.run.elapsed.as_secs_f64();
        let writes_per_tx = stats.entries_logged as f64 / stats.commits.max(1) as f64;
        // Structural: entry counts and commits are functions of the seeded
        // op stream, not of machine speed — these hold across hosts.
        out.gated_metric(format!("writes_per_tx/{slug}"), "writes/tx", writes_per_tx);
        out.gated_metric(format!("committed/{slug}"), "txns", stats.commits as f64);
        out.walltime_metric(format!("tps/{slug}"), "tps", cell.run.throughput);
        table.push(vec![
            workload.label(),
            ctx.walltime_cell(format!("{:.1} M/s", writes_per_sec / 1e6)),
            ctx.tps(cell.run.throughput),
            format!("{writes_per_tx:.1}"),
            paper_wtx.to_string(),
        ]);
    }
    out.table("main", table);
    out
}

fn run_table3(ctx: &SpecCtx) -> SpecOutput {
    let mut env = ctx.env();
    env.latency_mode = dude_workloads::LatencyMode::DurableAck { sample_every: 4 };
    // A bounded volatile log keeps the durable ID's lag bounded; on a
    // single-CPU host the Persist thread only runs when Perform threads
    // yield, so an over-large buffer would let the lag grow to the length
    // of the whole run (see EXPERIMENTS.md).
    env.durability = DurabilityMode::Async { buffer_txns: 64 };
    let workload = WorkloadKind::TpccHash;
    let systems = [
        (SystemKind::Dude, "dude"),
        (SystemKind::DudeSync, "sync"),
        (SystemKind::Mnemosyne, "mnemosyne"),
        (SystemKind::Nvml, "nvml"),
    ];
    let mut out = SpecOutput::default();
    let mut table = Table::new(
        "Table 3 — durable latency, TPC-C (hash)",
        &["percentile", "DudeTM", "DudeTM-Sync", "Mnemosyne", "NVML"],
    );
    let mut cols = Vec::new();
    let mut sample_counts = Vec::new();
    for (system, slug) in systems {
        let cell = run_combo(system, workload, &env);
        let lat = cell.run.latency.expect("latency sampling enabled");
        out.walltime_metric(format!("p50_ns/{slug}"), "ns", lat.p50 as f64);
        out.walltime_metric(format!("p90_ns/{slug}"), "ns", lat.p90 as f64);
        out.walltime_metric(format!("p99_ns/{slug}"), "ns", lat.p99 as f64);
        sample_counts.push(lat.samples);
        cols.push(lat);
    }
    for (label, pick) in [("50%", 0usize), ("90%", 1), ("99%", 2)] {
        let mut row = vec![label.to_string()];
        for lat in &cols {
            let v = match pick {
                0 => lat.p50,
                1 => lat.p90,
                _ => lat.p99,
            };
            row.push(ctx.walltime_cell(fmt_us(v)));
        }
        table.push(row);
    }
    out.table("main", table);
    out.note(format!("samples per system: {sample_counts:?}"));
    out.note(
        "single-CPU host: DudeTM's lag reflects OS scheduling of the Persist \
         thread, not pipeline depth — see EXPERIMENTS.md",
    );
    out
}

fn run_fig2(ctx: &SpecCtx) -> SpecOutput {
    let base = ctx.env();
    let bandwidths: &[u64] = if ctx.is_quick() {
        &[1, 8]
    } else {
        &[1, 4, 8, 16]
    };
    let workloads = [
        WorkloadKind::HashTable,
        WorkloadKind::BTree,
        WorkloadKind::TpccBTree,
        WorkloadKind::TpccHash,
        WorkloadKind::TatpBTree,
        WorkloadKind::TatpHash,
    ];
    let systems = [
        (SystemKind::VolatileStm, "vstm"),
        (SystemKind::Dude, "dude"),
        (SystemKind::DudeInf, "dude_inf"),
        (SystemKind::DudeSync, "sync"),
    ];
    let mut out = SpecOutput::default();
    for workload in workloads {
        if !ctx.wants_workload(&workload.label()) {
            continue;
        }
        let wslug = workload_slug(workload);
        let mut table = Table::new(
            &format!(
                "Figure 2 — {} throughput vs NVM bandwidth",
                workload.label()
            ),
            &["system", "1 GB/s", "4 GB/s", "8 GB/s", "16 GB/s"],
        );
        for (system, sslug) in systems {
            let mut row = vec![system.label().to_string()];
            for &bw in &[1u64, 4, 8, 16] {
                if !bandwidths.contains(&bw) {
                    row.push("-".into());
                    continue;
                }
                // Volatile systems do not touch NVM; measure them once.
                if system == SystemKind::VolatileStm && bw != bandwidths[0] {
                    row.push("(same)".into());
                    continue;
                }
                let env = base.with_bandwidth(bw);
                let cell = run_combo(system, workload, &env);
                out.walltime_metric(
                    format!("tps/{wslug}/{sslug}/{bw}gb"),
                    "tps",
                    cell.run.throughput,
                );
                row.push(ctx.tps(cell.run.throughput));
            }
            table.push(row);
        }
        out.table(wslug, table);
    }
    // DudeTM-Sync at the paper's PCM-class 3500-cycle latency (the latency
    // sensitivity the paper highlights for short transactions). Runs with
    // the full workload set only — a workload filter skips it.
    if ctx.workload_filter.is_none() {
        let mut table = Table::new(
            "Figure 2 (aux) — DudeTM-Sync at 3500-cycle latency, 1 GB/s",
            &["benchmark", "sync @1000cyc", "sync @3500cyc"],
        );
        for workload in [WorkloadKind::TatpHash, WorkloadKind::TpccHash] {
            let wslug = workload_slug(workload);
            let fast = run_combo(SystemKind::DudeSync, workload, &base);
            let mut slow_env = base;
            slow_env.latency_cycles = 3500;
            let slow = run_combo(SystemKind::DudeSync, workload, &slow_env);
            out.walltime_metric(
                format!("tps/{wslug}/sync/3500cyc"),
                "tps",
                slow.run.throughput,
            );
            table.push(vec![
                workload.label(),
                ctx.tps(fast.run.throughput),
                ctx.tps(slow.run.throughput),
            ]);
        }
        out.table("aux_sync_latency", table);
    }
    out
}

fn run_fig3(ctx: &SpecCtx) -> SpecOutput {
    let base = ctx.env();
    let groups: &[usize] = if ctx.is_quick() {
        &[10, 100, 1_000]
    } else {
        &[10, 100, 1_000, 10_000]
    };
    let workload = WorkloadKind::Ycsb { theta: 0.99 };
    let mut out = SpecOutput::default();
    let mut table = Table::new(
        "Figure 3 — log optimization vs group size (YCSB, zipf 0.99)",
        &[
            "group size",
            "entries saved by combination",
            "payload saved by compression",
            "total NVM log bytes saved",
            "throughput impact vs group=1",
        ],
    );
    // Baseline: no grouping.
    let baseline = run_combo(SystemKind::Dude, workload, &base);
    let base_tps = baseline.run.throughput;
    for &group in groups {
        let mut env = base;
        env.persist_group = group;
        env.compress = true;
        // Make sure enough transactions flow to fill groups — unless the
        // caller pinned the op count (test-sized runs).
        if ctx.ops.is_none() && env.ops < group as u64 * 20 {
            env.ops = group as u64 * 20;
        }
        let cell = run_combo(SystemKind::Dude, workload, &env);
        let stats = cell.pipeline.expect("pipeline stats");
        let combine = stats.combine_savings();
        let compress = stats.compression_savings();
        // Total savings: entries dropped by combination, then bytes dropped
        // by compression of what remains.
        let total = 1.0 - (1.0 - combine) * (1.0 - compress);
        // Savings depend on where the flush timer seals partial groups, so
        // they are machine-speed-dependent: recorded, not gated.
        out.walltime_metric(
            format!("combine_savings/group_{group}"),
            "fraction",
            combine,
        );
        out.walltime_metric(
            format!("compress_savings/group_{group}"),
            "fraction",
            compress,
        );
        out.walltime_metric(format!("total_savings/group_{group}"), "fraction", total);
        table.push(vec![
            group.to_string(),
            ctx.walltime_cell(fmt_pct(combine)),
            ctx.walltime_cell(fmt_pct(compress)),
            ctx.walltime_cell(fmt_pct(total)),
            ctx.walltime_cell(format!(
                "{:+.1}%",
                (cell.run.throughput / base_tps - 1.0) * 100.0
            )),
        ]);
    }
    out.table("main", table);
    out
}

fn run_fig4(ctx: &SpecCtx) -> SpecOutput {
    let quick = ctx.is_quick();
    let mut base = ctx.env();
    // Large heap so the tree working set spans many pages; the shadow is
    // the small side of the experiment.
    base.heap_bytes = if quick { 64 << 20 } else { 128 << 20 };
    base.ops = ctx.ops.unwrap_or(if quick { 6_000 } else { 30_000 });
    // Working-set estimate: `build_workload` sizes the store at
    // heap_words/80 records; a ~5-fan-out B+-tree needs ~records/5 nodes of
    // 144 bytes plus metadata.
    let records = (base.heap_bytes / 8) / 80;
    let working_pages = (records / 5 * 144).div_ceil(PAGE_BYTES) + 8;
    let fractions: &[(f64, &str)] = if quick {
        &[(2.0, "2x working set"), (0.25, "1/4 working set")]
    } else {
        &[
            (2.0, "2x working set"),
            (1.0, "1x"),
            (0.5, "1/2"),
            (0.25, "1/4"),
            (0.125, "1/8"),
        ]
    };
    let mut out = SpecOutput::default();
    for theta in [0.99, 1.07] {
        let tslug = if theta == 0.99 {
            "zipf_0_99"
        } else {
            "zipf_1_07"
        };
        let mut table = Table::new(
            &format!("Figure 4 — swap overhead (YCSB update-only, zipf {theta})"),
            &[
                "shadow frames",
                "software paging",
                "sw swap-outs",
                "hardware paging",
                "hw swap-outs",
            ],
        );
        for &(frac, label) in fractions {
            let frames = ((working_pages as f64 * frac) as usize).max(64);
            let mut row = vec![format!("{label} ({frames})")];
            for (mode, mslug) in [(PagingMode::Software, "sw"), (PagingMode::Hardware, "hw")] {
                let mut env = base;
                env.shadow = ShadowConfig::Paged { frames, mode };
                let cell = run_combo_median(
                    SystemKind::Dude,
                    WorkloadKind::YcsbUpdate { theta },
                    &env,
                    ctx.reps(3),
                );
                let shadow = cell.shadow.expect("paged shadow stats");
                out.walltime_metric(
                    format!("tps/{tslug}/{mslug}/frames_{frames}"),
                    "tps",
                    cell.run.throughput,
                );
                // Swap-out counts drift with thread interleaving, so they
                // stay informational rather than gated.
                out.metrics.push(Metric {
                    name: format!("swap_outs/{tslug}/{mslug}/frames_{frames}"),
                    unit: "count",
                    value: shadow.swap_outs as f64,
                    samples: vec![shadow.swap_outs as f64],
                    gated: false,
                    better: Better::Lower,
                    walltime: false,
                });
                row.push(ctx.tps(cell.run.throughput));
                row.push(shadow.swap_outs.to_string());
            }
            table.push(row);
        }
        out.table(tslug, table);
    }
    out.note(format!(
        "working set ≈ {working_pages} pages of {PAGE_BYTES} bytes"
    ));
    out
}

fn run_fig5(ctx: &SpecCtx) -> SpecOutput {
    let base = ctx.env();
    let threads: &[usize] = if ctx.is_quick() {
        &[1, 2]
    } else {
        &[1, 2, 4, 8]
    };
    let reps = ctx.reps(3);
    let mut out = SpecOutput::default();
    let mut table = Table::new(
        "Figure 5 — TPC-C (B+-tree) scaling, normalized to 1 thread",
        &[
            "threads",
            "Volatile-STM",
            "DudeTM",
            "DudeTM partitioned",
            "DudeTM retries/tx",
            "partitioned retries/tx",
        ],
    );
    let mut base_tput: [f64; 3] = [0.0; 3];
    for &n in threads {
        let env = base.with_threads(n);
        let vol = run_combo_median(SystemKind::VolatileStm, WorkloadKind::TpccBTree, &env, reps);
        let dude = run_combo_median(SystemKind::Dude, WorkloadKind::TpccBTree, &env, reps);
        let part = run_combo_median(
            SystemKind::Dude,
            WorkloadKind::TpccBTreePartitioned,
            &env,
            reps,
        );
        if n == threads[0] {
            base_tput = [vol.run.throughput, dude.run.throughput, part.run.throughput];
        }
        out.walltime_metric(
            format!("scaling/vstm/threads_{n}"),
            "ratio",
            vol.run.throughput / base_tput[0],
        );
        out.walltime_metric(
            format!("scaling/dude/threads_{n}"),
            "ratio",
            dude.run.throughput / base_tput[1],
        );
        out.walltime_metric(
            format!("scaling/partitioned/threads_{n}"),
            "ratio",
            part.run.throughput / base_tput[2],
        );
        table.push(vec![
            n.to_string(),
            ctx.walltime_cell(format!("{:.2}x", vol.run.throughput / base_tput[0])),
            ctx.walltime_cell(format!("{:.2}x", dude.run.throughput / base_tput[1])),
            ctx.walltime_cell(format!("{:.2}x", part.run.throughput / base_tput[2])),
            ctx.walltime_cell(format!("{:.3}", dude.run.retry_rate())),
            ctx.walltime_cell(format!("{:.3}", part.run.retry_rate())),
        ]);
    }
    out.table("main", table);
    out.note(
        "single-CPU container: compare DudeTM's curve against Volatile-STM's; \
         absolute multi-thread speedup is not observable here",
    );
    out
}

fn run_table4(ctx: &SpecCtx) -> SpecOutput {
    let env = ctx.env();
    let reps = ctx.reps(3);
    let workloads = [
        WorkloadKind::BTree,
        WorkloadKind::HashTable,
        WorkloadKind::TatpBTree,
    ];
    let mut out = SpecOutput::default();
    let mut table = Table::new(
        "Table 4 — STM vs HTM engines (1 GB/s, 1000 cycles, 4 threads)",
        &[
            "benchmark",
            "Volatile-STM",
            "DudeTM-STM",
            "STM slowdown",
            "Volatile-HTM",
            "DudeTM-HTM",
            "HTM slowdown",
            "HTM/STM speedup",
        ],
    );
    for workload in workloads {
        if !ctx.wants_workload(&workload.label()) {
            continue;
        }
        let slug = workload_slug(workload);
        let vstm = run_combo_median(SystemKind::VolatileStm, workload, &env, reps);
        let dstm = run_combo_median(SystemKind::Dude, workload, &env, reps);
        let vhtm = run_combo_median(SystemKind::VolatileHtm, workload, &env, reps);
        let dhtm = run_combo_median(SystemKind::DudeHtm, workload, &env, reps);
        out.walltime_metric(
            format!("slowdown_stm/{slug}"),
            "fraction",
            1.0 - dstm.run.throughput / vstm.run.throughput,
        );
        out.walltime_metric(
            format!("slowdown_htm/{slug}"),
            "fraction",
            1.0 - dhtm.run.throughput / vhtm.run.throughput,
        );
        out.walltime_metric(
            format!("htm_speedup/{slug}"),
            "ratio",
            dhtm.run.throughput / dstm.run.throughput,
        );
        table.push(vec![
            workload.label(),
            ctx.tps(vstm.run.throughput),
            ctx.tps(dstm.run.throughput),
            ctx.walltime_cell(fmt_pct(1.0 - dstm.run.throughput / vstm.run.throughput)),
            ctx.tps(vhtm.run.throughput),
            ctx.tps(dhtm.run.throughput),
            ctx.walltime_cell(fmt_pct(1.0 - dhtm.run.throughput / vhtm.run.throughput)),
            ctx.walltime_cell(format!("{:.2}x", dhtm.run.throughput / dstm.run.throughput)),
        ]);
    }
    out.table("main", table);
    out
}

/// Extra columns for the traced ablations: commit-latency and
/// persist-barrier percentiles in microseconds, or dashes when the layer is
/// off (so the CSV schema is stable across traced and untraced runs).
const LATENCY_HEADERS: [&str; 6] = [
    "commit p50 (us)",
    "commit p95 (us)",
    "commit p99 (us)",
    "barrier p50 (us)",
    "barrier p95 (us)",
    "barrier p99 (us)",
];

fn latency_cols(ctx: &SpecCtx, trace: &dudetm::Trace) -> Vec<String> {
    if !trace.enabled() {
        return vec!["-".to_string(); 6];
    }
    let us = |v: u64| ctx.walltime_cell(format!("{:.2}", v as f64 / 1000.0));
    let c = trace.commit_latency_ns.snapshot();
    let b = trace.persist_barrier_ns.snapshot();
    vec![
        us(c.p50()),
        us(c.p95()),
        us(c.p99()),
        us(b.p50()),
        us(b.p95()),
        us(b.p99()),
    ]
}

/// Trace configuration for an ablation run: enabled when `--trace-out` was
/// given (the exported run is the section's last traced configuration).
fn ablation_trace_cfg(ctx: &SpecCtx) -> TraceConfig {
    if ctx.trace_out.is_some() {
        // 64 Ki records is enough to keep the tail of a quick run; overflow
        // is reported in the export rather than silently truncated.
        TraceConfig::enabled(64 * 1024)
    } else {
        TraceConfig::disabled()
    }
}

fn write_trace(ctx: &SpecCtx, last_trace_json: Option<String>) {
    if let Some(path) = &ctx.trace_out {
        match last_trace_json {
            Some(json) => match std::fs::write(path, json) {
                Ok(()) => println!("[trace] chrome://tracing JSON written to {path}"),
                Err(e) => eprintln!("[trace] failed to write {path}: {e}"),
            },
            None => eprintln!("[trace] no traced run produced output"),
        }
    }
}

fn run_ablation_vlog(ctx: &SpecCtx) -> SpecOutput {
    let base = ctx.env();
    let workload = WorkloadKind::TpccHash;
    let mut out = SpecOutput::default();
    let mut table = Table::new(
        "Ablation — volatile log buffer size (TPC-C hash, DudeTM)",
        &["buffer (txns/thread)", "throughput"],
    );
    let sizes: &[usize] = if ctx.is_quick() {
        &[16, 16_384]
    } else {
        &[4, 64, 1_024, 16_384]
    };
    for &buffer in sizes {
        let mut env = base;
        env.durability = DurabilityMode::Async {
            buffer_txns: buffer,
        };
        let cell = run_combo(SystemKind::Dude, workload, &env);
        out.walltime_metric(format!("tps/buffer_{buffer}"), "tps", cell.run.throughput);
        table.push(vec![buffer.to_string(), ctx.tps(cell.run.throughput)]);
    }
    out.table("main", table);
    out
}

/// Builds a DudeTM instance directly (the ablations sweep knobs that
/// [`crate::systems::run_combo`] does not expose), runs the TPC-C hash
/// workload on it, and returns `(throughput, system)`.
fn ablation_cell(
    env: &BenchEnv,
    config: DudeTmConfig,
    workload: WorkloadKind,
) -> (f64, dudetm::DudeTm<dude_stm::Stm>) {
    use dude_workloads::driver::{load_workload, run_fixed_ops, RunConfig};
    let nvm = Arc::new(dude_nvm::Nvm::new(dude_nvm::NvmConfig::for_benchmark(
        env.device_bytes(),
        dude_nvm::TimingConfig::paper_default(),
    )));
    let sys = dudetm::DudeTm::create_stm(nvm, checked(config));
    let w = build_workload(workload, env);
    load_workload(&sys, w.as_ref());
    let stats = run_fixed_ops(
        &sys,
        w.as_ref(),
        RunConfig {
            threads: env.threads,
            seed: env.seed,
            latency: env.latency_mode,
        },
        env.ops_per_thread(),
    );
    sys.quiesce();
    (stats.throughput, sys)
}

fn ablation_base_config(env: &BenchEnv, trace: TraceConfig) -> DudeTmConfig {
    DudeTmConfig {
        heap_bytes: env.heap_bytes,
        plog_bytes_per_thread: env.plog_bytes,
        max_threads: env.threads + 4,
        durability: env.durability,
        persist_threads: 1,
        persist_group: 1,
        persist_flush_workers: 1,
        compress_groups: false,
        checkpoint_every: 64,
        reproduce_threads: 1,
        shadow: ShadowConfig::Identity,
        trace,
        metrics: crate::metrics_out::config_for(env.metrics),
    }
}

fn run_ablation_persist_threads(ctx: &SpecCtx) -> SpecOutput {
    let env = ctx.env();
    let trace_cfg = ablation_trace_cfg(ctx);
    let mut out = SpecOutput::default();
    let mut headers = vec!["persist threads", "throughput"];
    headers.extend(LATENCY_HEADERS);
    let mut table = Table::new("Ablation — persist threads (TPC-C hash, DudeTM)", &headers);
    let mut last_trace_json = None;
    // On a single-CPU host more persist threads can only add scheduling
    // overhead — the interesting direction is that one thread does NOT
    // become a bottleneck.
    for &threads in if ctx.is_quick() {
        &[1usize, 2][..]
    } else {
        &[1usize, 2, 4][..]
    } {
        let config = DudeTmConfig {
            persist_threads: threads,
            ..ablation_base_config(&env, trace_cfg)
        };
        let (tps, sys) = ablation_cell(&env, config, WorkloadKind::TpccHash);
        // The lag surface: after quiesce the three watermarks coincide and
        // the snapshot shows what the run put through each stage.
        println!(
            "  pipeline [{threads} persist threads]: {}",
            sys.stats_snapshot().summary()
        );
        out.walltime_metric(format!("tps/persist_threads_{threads}"), "tps", tps);
        let mut row = vec![threads.to_string(), ctx.tps(tps)];
        row.extend(latency_cols(ctx, sys.trace()));
        if trace_cfg.enabled {
            last_trace_json = Some(sys.trace().to_json());
        }
        table.push(row);
    }
    out.table("main", table);
    write_trace(ctx, last_trace_json);
    out
}

fn run_ablation_checkpoint_cadence(ctx: &SpecCtx) -> SpecOutput {
    let env = ctx.env();
    let trace_cfg = ablation_trace_cfg(ctx);
    let mut out = SpecOutput::default();
    let mut headers = vec!["checkpoint every (txns)", "throughput"];
    headers.extend(LATENCY_HEADERS);
    let mut table = Table::new(
        "Ablation — reproduce checkpoint cadence (TPC-C hash, DudeTM)",
        &headers,
    );
    let mut last_trace_json = None;
    for &every in if ctx.is_quick() {
        &[8u64, 512][..]
    } else {
        &[1u64, 8, 64, 512][..]
    } {
        let config = DudeTmConfig {
            checkpoint_every: every,
            ..ablation_base_config(&env, trace_cfg)
        };
        let (tps, sys) = ablation_cell(&env, config, WorkloadKind::TpccHash);
        out.walltime_metric(format!("tps/checkpoint_{every}"), "tps", tps);
        let mut row = vec![every.to_string(), ctx.tps(tps)];
        row.extend(latency_cols(ctx, sys.trace()));
        if trace_cfg.enabled {
            last_trace_json = Some(sys.trace().to_json());
        }
        table.push(row);
    }
    out.table("main", table);
    write_trace(ctx, last_trace_json);
    out
}

fn run_ablation_reproduce_shards(ctx: &SpecCtx) -> SpecOutput {
    use dude_txapi::{PAddr, TxnSystem, TxnThread};
    let env = ctx.env();
    let trace_cfg = ablation_trace_cfg(ctx);
    let mut out = SpecOutput::default();
    let mut headers = vec!["reproduce threads", "drain throughput", "speedup"];
    headers.extend(LATENCY_HEADERS);
    let mut table = Table::new(
        "Ablation — reproduce shard workers (write-heavy drain, DudeTM-Inf)",
        &headers,
    );
    let ops: u64 = ctx
        .ops
        .unwrap_or(if ctx.is_quick() { 1_500 } else { 6_000 });
    let mut serial_rate = None;
    let mut last_trace_json = None;
    for &rt in if ctx.is_quick() {
        &[1usize, 4][..]
    } else {
        &[1usize, 2, 4, 8][..]
    } {
        // Write-heavy: replay bandwidth, not barrier latency, must gate the
        // drain — model a quarter of the paper's bandwidth so the backlog
        // builds even in quick mode.
        let timing = dude_nvm::TimingConfig {
            bandwidth_bytes_per_sec: 256 << 20,
            ..dude_nvm::TimingConfig::paper_default()
        };
        let nvm = Arc::new(dude_nvm::Nvm::new(dude_nvm::NvmConfig::for_benchmark(
            env.device_bytes(),
            timing,
        )));
        let config = DudeTmConfig {
            durability: DurabilityMode::AsyncUnbounded,
            reproduce_threads: rt,
            ..ablation_base_config(&env, trace_cfg)
        };
        let sys = dudetm::DudeTm::create_stm(nvm, checked(config));
        let lines = env.heap_bytes / 64;
        {
            let mut t = sys.register_thread();
            let mut x = env.seed | 1;
            for _ in 0..ops {
                t.run(&mut |tx| {
                    // 32 scattered words, one per cache line.
                    for _ in 0..32 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let line = (x >> 17) % lines;
                        tx.write_word(PAddr::from_word_index(line * 8), x)?;
                    }
                    Ok(())
                });
            }
        }
        let committed = sys.stats_snapshot().committed;
        let backlog_from = sys.reproduced_id();
        let start = std::time::Instant::now();
        sys.quiesce();
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        let drained = committed - backlog_from;
        let rate = drained as f64 / secs;
        let speedup = match serial_rate {
            None => {
                serial_rate = Some(rate);
                "1.00x".to_string()
            }
            Some(base_rate) => format!("{:.2}x", rate / base_rate),
        };
        println!(
            "  drain [{rt} reproduce threads]: backlog {drained} txns in {:.1} ms; {}",
            secs * 1e3,
            sys.stats_snapshot().summary()
        );
        out.walltime_metric(format!("drain_tps/shards_{rt}"), "tps", rate);
        let mut row = vec![
            rt.to_string(),
            ctx.walltime_cell(fmt_tps(rate)),
            ctx.walltime_cell(speedup),
        ];
        row.extend(latency_cols(ctx, sys.trace()));
        if trace_cfg.enabled {
            last_trace_json = Some(sys.trace().to_json());
        }
        table.push(row);
    }
    out.table("main", table);
    write_trace(ctx, last_trace_json);
    out
}

fn run_ablation_flush_workers(ctx: &SpecCtx) -> SpecOutput {
    use dude_txapi::{PAddr, TxnSystem, TxnThread};
    let env = ctx.env();
    let trace_cfg = ablation_trace_cfg(ctx);
    let mut out = SpecOutput::default();
    let mut table = Table::new(
        "Ablation — persist flush workers (write-heavy drain, group=8, DudeTM-Inf, PCM latency)",
        &[
            "flush workers",
            "compress",
            "throughput",
            "speedup",
            "barrier p50 (us)",
            "barrier p95 (us)",
            "barrier p99 (us)",
        ],
    );
    // The observability layer is always on here (uniform overhead across
    // rows) to report the per-group barrier percentiles that explain the
    // throughput column.
    let section_trace = TraceConfig::enabled(64 * 1024);
    let quick = ctx.is_quick();
    let ops: u64 = ctx.ops.unwrap_or(if quick { 2_000 } else { 8_000 });
    let workers: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4] };
    let compress_axis: &[bool] = if quick { &[false] } else { &[false, true] };
    let repeats = ctx.reps(3);
    let mut last_trace_json = None;
    for &compress in compress_axis {
        let mut serial_rate = None;
        for &fw in workers {
            // Median of `repeats` runs: a single shared core makes any one
            // drain noisy, and this cell is the section's claim.
            let mut runs: Vec<(f64, u64, u64, u64)> = Vec::new();
            for rep in 0..repeats {
                // Group size 8 with PCM-class barrier latency (3500 cycles)
                // and bandwidth scaled to 64 MB/s so the modeled medium —
                // not this container's core — gates the drain.
                let timing = dude_nvm::TimingConfig {
                    bandwidth_bytes_per_sec: 64 << 20,
                    ..dude_nvm::TimingConfig::paper_default().with_latency_cycles(3500)
                };
                let nvm = Arc::new(dude_nvm::Nvm::new(dude_nvm::NvmConfig::for_benchmark(
                    env.device_bytes(),
                    timing,
                )));
                let config = DudeTmConfig {
                    durability: DurabilityMode::AsyncUnbounded,
                    persist_group: 8,
                    persist_flush_workers: fw,
                    compress_groups: compress,
                    reproduce_threads: 4,
                    trace: section_trace,
                    ..ablation_base_config(&env, section_trace)
                };
                let sys = dudetm::DudeTm::create_stm(nvm, checked(config));
                let lines = env.heap_bytes / 64;
                // Four Perform threads: the volatile burst outruns every
                // Persist configuration, so each row's drain starts from a
                // near-identical backlog and the rates are comparable.
                std::thread::scope(|scope| {
                    for p in 0..4u64 {
                        let sys = &sys;
                        scope.spawn(move || {
                            let mut t = sys.register_thread();
                            let mut x = (env.seed | 1) ^ (p + rep as u64).wrapping_mul(0x9E37_79B9);
                            for _ in 0..ops / 4 {
                                t.run(&mut |tx| {
                                    // 32 scattered words, one per cache line.
                                    for _ in 0..32 {
                                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                                        let line = (x >> 17) % lines;
                                        tx.write_word(PAddr::from_word_index(line * 8), x)?;
                                    }
                                    Ok(())
                                });
                            }
                        });
                    }
                });
                let committed = sys.stats_snapshot().committed;
                let backlog = committed - sys.reproduced_id();
                let start = std::time::Instant::now();
                sys.quiesce();
                let secs = start.elapsed().as_secs_f64().max(1e-9);
                let rate = backlog as f64 / secs;
                println!(
                    "  drain [{fw} flush workers, lz={compress}, rep {rep}]: {backlog} of \
                     {committed} txns backlogged at burst end, drained in {:.1} ms; {}",
                    secs * 1e3,
                    sys.stats_snapshot().summary()
                );
                let b = sys.trace().persist_barrier_ns.snapshot();
                runs.push((rate, b.p50(), b.p95(), b.p99()));
                if trace_cfg.enabled {
                    last_trace_json = Some(sys.trace().to_json());
                }
            }
            runs.sort_by(|a, b| a.0.total_cmp(&b.0));
            let (rate, p50, p95, p99) = runs[runs.len() / 2];
            let speedup = match serial_rate {
                None => {
                    serial_rate = Some(rate);
                    "1.00x".to_string()
                }
                Some(base_rate) => format!("{:.2}x", rate / base_rate),
            };
            let lz = if compress { "lz" } else { "off" };
            out.walltime_samples(
                format!("drain_tps/workers_{fw}/{lz}"),
                "tps",
                runs.iter().map(|r| r.0).collect(),
            );
            let us = |v: u64| ctx.walltime_cell(format!("{:.2}", v as f64 / 1000.0));
            table.push(vec![
                fw.to_string(),
                lz.to_string(),
                ctx.walltime_cell(fmt_tps(rate)),
                ctx.walltime_cell(speedup),
                us(p50),
                us(p95),
                us(p99),
            ]);
        }
    }
    out.table("main", table);
    write_trace(ctx, last_trace_json);
    out
}

fn run_endurance(ctx: &SpecCtx) -> SpecOutput {
    use dude_nvm::{Nvm, NvmConfig, TimingConfig};
    use dude_workloads::driver::{load_workload, run_fixed_ops, RunConfig};
    let env = ctx.env();
    let groups: &[usize] = if ctx.is_quick() {
        &[1, 100]
    } else {
        &[1, 10, 100, 1_000]
    };
    let mut out = SpecOutput::default();
    let mut table = Table::new(
        "Endurance — line wear vs log combination (YCSB, zipf 0.99)",
        &[
            "group size",
            "max line wear",
            "total line flushes",
            "lines touched",
            "throughput",
        ],
    );
    for &group in groups {
        let timing = TimingConfig {
            latency_ns: TimingConfig::cycles_to_ns(env.latency_cycles),
            bandwidth_bytes_per_sec: env.bandwidth_gb << 30,
            enabled: true,
        };
        let nvm = Arc::new(Nvm::new(
            NvmConfig::for_benchmark(env.device_bytes(), timing).with_wear_tracking(),
        ));
        let config = DudeTmConfig {
            persist_group: group,
            compress_groups: group > 1,
            ..ablation_base_config(&env, TraceConfig::disabled())
        };
        let sys = dudetm::DudeTm::create_stm(Arc::clone(&nvm), checked(config));
        let w = build_workload(WorkloadKind::Ycsb { theta: 0.99 }, &env);
        load_workload(&sys, w.as_ref());
        nvm.wear_reset();
        let stats = run_fixed_ops(
            &sys,
            w.as_ref(),
            RunConfig {
                threads: env.threads,
                seed: env.seed,
                latency: env.latency_mode,
            },
            env.ops_per_thread(),
        );
        sys.quiesce();
        let wear = nvm.wear_summary().expect("wear enabled");
        // Wear counters include watermark/metadata persists whose cadence
        // is timing-driven, so they stay informational rather than gated.
        out.metrics.push(Metric {
            name: format!("max_line_wear/group_{group}"),
            unit: "count",
            value: wear.max_line_writes as f64,
            samples: vec![wear.max_line_writes as f64],
            gated: false,
            better: Better::Lower,
            walltime: false,
        });
        out.walltime_metric(format!("tps/group_{group}"), "tps", stats.throughput);
        table.push(vec![
            if group == 1 {
                "1 (off)".into()
            } else {
                group.to_string()
            },
            wear.max_line_writes.to_string(),
            wear.total_line_writes.to_string(),
            wear.lines_touched.to_string(),
            ctx.tps(stats.throughput),
        ]);
    }
    out.table("main", table);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_well_formed() {
        assert_eq!(SPECS.len(), 14);
        let mut seen = std::collections::HashSet::new();
        for spec in SPECS {
            assert!(seen.insert(spec.name), "duplicate spec {}", spec.name);
            assert!(!spec.tables.is_empty(), "{} declares no tables", spec.name);
            assert!(
                spec.name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "bad spec name {}",
                spec.name
            );
        }
        assert!(find("table2").is_some());
        assert!(find("nope").is_none());
        assert_eq!(ablation_section(5).unwrap().name, "ablation_flush_workers");
        assert!(ablation_section(6).is_none());
    }

    #[test]
    fn tiny_spec_run_produces_declared_slug() {
        // table1 restricted to one cheap workload with a tiny op count:
        // exercises the runner → SpecOutput path end to end.
        let ctx = SpecCtx {
            ops: Some(64),
            threads: Some(1),
            deterministic: true,
            workload_filter: Some(vec!["HashTable".into()]),
            ..SpecCtx::quick()
        };
        let out = (find("table1").unwrap().runner)(&ctx);
        assert_eq!(out.tables.len(), 1);
        assert_eq!(out.tables[0].slug, "main");
        assert_eq!(out.tables[0].table.rows.len(), 1);
        // Deterministic mode masks the wall-clock columns.
        assert_eq!(out.tables[0].table.rows[0][1], "-");
        assert_eq!(out.tables[0].table.rows[0][2], "-");
        // Structural metrics are gated.
        assert!(out
            .metrics
            .iter()
            .any(|m| m.gated && m.name.starts_with("writes_per_tx/")));
    }
}
