//! Shared experiment parameters.

use dude_workloads::LatencyMode;
use dudetm::{DurabilityMode, MetricsConfig, ShadowConfig, TraceConfig};

/// Parameters shared by all experiments; per-experiment binaries override
/// individual fields.
#[derive(Debug, Clone, Copy)]
pub struct BenchEnv {
    /// Persistent heap size in bytes.
    pub heap_bytes: u64,
    /// Per-thread persistent log ring, in bytes.
    pub plog_bytes: u64,
    /// Worker threads (the paper's default measurement uses 4).
    pub threads: usize,
    /// Modeled NVM bandwidth in GB/s (Figure 2 sweeps 1–16).
    pub bandwidth_gb: u64,
    /// Modeled persist latency in cycles at 3.4 GHz (paper: 1000 / 3500).
    pub latency_cycles: u64,
    /// Volatile redo-log buffer, in transactions per thread.
    pub vlog_txns: usize,
    /// Total operations per cell (split evenly across threads).
    pub ops: u64,
    /// DudeTM durability mode for [`crate::SystemKind::Dude`].
    pub durability: DurabilityMode,
    /// Log-combination group size (1 = off).
    pub persist_group: usize,
    /// Compress combined groups.
    pub compress: bool,
    /// Shadow-memory configuration.
    pub shadow: ShadowConfig,
    /// Latency accounting.
    pub latency_mode: LatencyMode,
    /// RNG seed.
    pub seed: u64,
    /// Observability layer (histograms, stall counters, event trace).
    /// Disabled by default so measured throughput carries no recording
    /// overhead; `--trace-out` in the ablation binary enables it.
    pub trace: TraceConfig,
    /// Continuous metrics sampling. Disabled by default for the same
    /// reason as `trace`; `--metrics-out` on `dude-bench run` (and the
    /// `dude-top` live monitor) enable it.
    pub metrics: MetricsConfig,
}

impl BenchEnv {
    /// The paper's base configuration scaled to this container
    /// (1 GB/s NVM, 1000-cycle latency, 4 threads, 64 MiB heap).
    pub fn standard() -> Self {
        BenchEnv {
            heap_bytes: 64 << 20,
            plog_bytes: 4 << 20,
            threads: 4,
            bandwidth_gb: 1,
            latency_cycles: 1000,
            vlog_txns: 16_384,
            ops: 40_000,
            durability: DurabilityMode::Async {
                buffer_txns: 16_384,
            },
            persist_group: 1,
            compress: false,
            shadow: ShadowConfig::Identity,
            latency_mode: LatencyMode::Off,
            seed: 42,
            trace: TraceConfig::disabled(),
            metrics: MetricsConfig::disabled(),
        }
    }

    /// A fast smoke configuration (`--quick`).
    pub fn quick() -> Self {
        BenchEnv {
            heap_bytes: 32 << 20,
            ops: 4_000,
            ..Self::standard()
        }
    }

    /// Selects standard or quick based on the flag.
    pub fn from_quick(quick: bool) -> Self {
        if quick {
            Self::quick()
        } else {
            Self::standard()
        }
    }

    /// Operations per worker thread.
    pub fn ops_per_thread(&self) -> u64 {
        (self.ops / self.threads as u64).max(1)
    }

    /// Total device size needed for a DudeTM instance.
    pub fn device_bytes(&self) -> u64 {
        // meta + rings (threads + 2 spare slots) + heap + slack.
        self.heap_bytes + (self.threads as u64 + 4) * self.plog_bytes + (1 << 20)
    }

    /// Sets the bandwidth (Figure 2's x-axis).
    #[must_use]
    pub fn with_bandwidth(mut self, gb: u64) -> Self {
        self.bandwidth_gb = gb;
        self
    }

    /// Sets the per-cell operation count.
    #[must_use]
    pub fn with_ops(mut self, ops: u64) -> Self {
        self.ops = ops;
        self
    }

    /// Sets the thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let e = BenchEnv::standard()
            .with_bandwidth(8)
            .with_ops(100)
            .with_threads(2);
        assert_eq!(e.bandwidth_gb, 8);
        assert_eq!(e.ops_per_thread(), 50);
        assert!(e.device_bytes() > e.heap_bytes);
    }

    #[test]
    fn quick_selection() {
        assert!(BenchEnv::from_quick(true).ops < BenchEnv::from_quick(false).ops);
    }
}
