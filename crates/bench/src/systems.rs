//! System construction and the `(system × workload)` dispatch.

use std::sync::Arc;

use dude_baselines::{BaselineConfig, Mnemosyne, NvmlLike, VolatileHtm, VolatileStm};
use dude_nvm::{Nvm, NvmConfig, TimingConfig};
use dude_workloads::driver::RunStats;
use dudetm::{DudeTm, DudeTmConfig, DurabilityMode, PipelineStatsSnapshot, ShadowStats, TmEngine};

use crate::env::BenchEnv;
use crate::workloads::{run_on, run_on_with, WorkloadKind};

/// The evaluated systems (§5.1 plus the HTM variants of §5.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// TinySTM on DRAM (no durability) — the upper bound.
    VolatileStm,
    /// Emulated RTM on DRAM (no durability).
    VolatileHtm,
    /// DudeTM with the durability mode from the environment (default:
    /// bounded asynchronous pipeline).
    Dude,
    /// DudeTM with an unbounded volatile log ("DudeTM-Inf").
    DudeInf,
    /// DudeTM flushing synchronously at commit ("DudeTM-Sync").
    DudeSync,
    /// DudeTM with the emulated-HTM Perform engine.
    DudeHtm,
    /// The Mnemosyne-like redo-logging baseline.
    Mnemosyne,
    /// The NVML-like undo-logging baseline (hash workloads only).
    Nvml,
}

impl SystemKind {
    /// Display label matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::VolatileStm => "Volatile-STM",
            SystemKind::VolatileHtm => "Volatile-HTM",
            SystemKind::Dude => "DudeTM",
            SystemKind::DudeInf => "DudeTM-Inf",
            SystemKind::DudeSync => "DudeTM-Sync",
            SystemKind::DudeHtm => "DudeTM-HTM",
            SystemKind::Mnemosyne => "Mnemosyne",
            SystemKind::Nvml => "NVML",
        }
    }
}

/// A cell result: run statistics plus system-internal counters.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Workload-level statistics.
    pub run: RunStats,
    /// DudeTM pipeline statistics, when the system is DudeTM.
    pub pipeline: Option<PipelineStatsSnapshot>,
    /// Shadow paging statistics, when the system is DudeTM.
    pub shadow: Option<ShadowStats>,
}

fn timing(env: &BenchEnv) -> TimingConfig {
    TimingConfig {
        latency_ns: TimingConfig::cycles_to_ns(env.latency_cycles),
        bandwidth_bytes_per_sec: env.bandwidth_gb << 30,
        enabled: true,
    }
}

/// An emulated NVM device sized and timed for `env` (public so
/// `dude-top` builds the same device the measurement loop does).
pub fn bench_nvm(env: &BenchEnv) -> Arc<Nvm> {
    Arc::new(Nvm::new(NvmConfig::for_benchmark(
        env.device_bytes(),
        timing(env),
    )))
}

/// Validates a bench-constructed configuration through the typed
/// [`DudeTmConfig::try_validate`] path. The knobs come straight from
/// `DUDE_*` environment variables and CLI flags, so an impossible
/// combination (say `DUDE_PERSIST_GROUP=8` against the Sync system) is
/// operator error, not a bug: report it as a usage error and exit instead
/// of panicking from inside runtime construction.
pub fn checked(config: DudeTmConfig) -> DudeTmConfig {
    if let Err(e) = config.try_validate() {
        eprintln!("bench: invalid DudeTM configuration: {e}");
        std::process::exit(2);
    }
    config
}

/// The DudeTM configuration a bench cell runs with. Public so the
/// `dude-top` live monitor drives the same configuration the measurement
/// loop does. Metrics sampling is forced on when `--metrics-out` armed
/// the [`crate::metrics_out`] sink.
pub fn dude_config(env: &BenchEnv, durability: DurabilityMode) -> DudeTmConfig {
    checked(DudeTmConfig {
        heap_bytes: env.heap_bytes,
        plog_bytes_per_thread: env.plog_bytes,
        max_threads: env.threads + 4,
        durability,
        persist_threads: 1,
        persist_group: env.persist_group,
        persist_flush_workers: 1,
        compress_groups: env.compress,
        checkpoint_every: 64,
        reproduce_threads: 1,
        shadow: env.shadow,
        trace: env.trace,
        metrics: crate::metrics_out::config_for(env.metrics),
    })
}

/// Shared measurement body for every DudeTM variant: run the workload,
/// quiesce, capture a final metrics frame at the drained state, hand the
/// frame series to the `--metrics-out` sink, and report the
/// warmup-corrected pipeline delta.
fn run_dude_cell<E: TmEngine>(
    sys: &DudeTm<E>,
    workload: WorkloadKind,
    env: &BenchEnv,
) -> CellResult {
    let baseline = std::cell::Cell::new(PipelineStatsSnapshot::default());
    let run = run_on_with(sys, workload, env, || baseline.set(sys.pipeline_stats()));
    sys.quiesce();
    sys.sample_metrics_now();
    crate::metrics_out::append(sys.metrics());
    CellResult {
        pipeline: Some(sys.pipeline_stats().delta(&baseline.get())),
        shadow: Some(sys.shadow_stats()),
        run,
    }
}

fn baseline_config(env: &BenchEnv) -> BaselineConfig {
    BaselineConfig {
        heap_bytes: env.heap_bytes,
        max_threads: env.threads + 4,
        log_bytes_per_thread: env.plog_bytes,
    }
}

/// Builds the system, runs the workload, returns the cell result.
///
/// # Panics
///
/// Panics if `kind` is [`SystemKind::Nvml`] and the workload is not
/// hash-based (the paper's NVML limitation).
pub fn run_combo(kind: SystemKind, workload: WorkloadKind, env: &BenchEnv) -> CellResult {
    match kind {
        SystemKind::VolatileStm => {
            let sys = VolatileStm::new(env.heap_bytes);
            CellResult {
                run: run_on(&sys, workload, env),
                pipeline: None,
                shadow: None,
            }
        }
        SystemKind::VolatileHtm => {
            let sys = VolatileHtm::new(env.heap_bytes);
            CellResult {
                run: run_on(&sys, workload, env),
                pipeline: None,
                shadow: None,
            }
        }
        SystemKind::Dude => {
            let sys = DudeTm::create_stm(bench_nvm(env), dude_config(env, env.durability));
            run_dude_cell(&sys, workload, env)
        }
        SystemKind::DudeInf => {
            let sys = DudeTm::create_stm(
                bench_nvm(env),
                dude_config(env, DurabilityMode::AsyncUnbounded),
            );
            run_dude_cell(&sys, workload, env)
        }
        SystemKind::DudeSync => {
            let sys = DudeTm::create_stm(bench_nvm(env), dude_config(env, DurabilityMode::Sync));
            run_dude_cell(&sys, workload, env)
        }
        SystemKind::DudeHtm => {
            let sys = DudeTm::create_htm(bench_nvm(env), dude_config(env, env.durability));
            run_dude_cell(&sys, workload, env)
        }
        SystemKind::Mnemosyne => {
            let sys = Mnemosyne::create(bench_nvm(env), baseline_config(env));
            CellResult {
                run: run_on(&sys, workload, env),
                pipeline: None,
                shadow: None,
            }
        }
        SystemKind::Nvml => {
            assert!(
                workload.nvml_compatible(),
                "NVML supports only static (hash-based) workloads; got {}",
                workload.label()
            );
            let sys = NvmlLike::create(bench_nvm(env), baseline_config(env));
            CellResult {
                run: run_on(&sys, workload, env),
                pipeline: None,
                shadow: None,
            }
        }
    }
}

/// Runs a cell `repeats` times and returns the run with the **median**
/// throughput — the single-CPU container's scheduler makes individual runs
/// noisy, and normalized comparisons (Figures 4/5, Table 4) need stability.
pub fn run_combo_median(
    kind: SystemKind,
    workload: WorkloadKind,
    env: &BenchEnv,
    repeats: usize,
) -> CellResult {
    assert!(repeats >= 1);
    let mut cells: Vec<CellResult> = (0..repeats)
        .map(|_| run_combo(kind, workload, env))
        .collect();
    cells.sort_by(|a, b| {
        a.run
            .throughput
            .partial_cmp(&b.run.throughput)
            .expect("throughput is finite")
    });
    cells.swap_remove(cells.len() / 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(SystemKind::Dude.label(), "DudeTM");
        assert_eq!(SystemKind::DudeSync.label(), "DudeTM-Sync");
    }

    #[test]
    fn quick_cell_runs_end_to_end() {
        let mut env = BenchEnv::quick();
        env.ops = 200;
        env.threads = 2;
        let cell = run_combo(SystemKind::Dude, WorkloadKind::Bank, &env);
        assert!(cell.run.committed > 0);
        assert!(cell.pipeline.is_some());
    }

    #[test]
    #[should_panic(expected = "static")]
    fn nvml_rejects_btree() {
        let env = BenchEnv::quick();
        run_combo(SystemKind::Nvml, WorkloadKind::BTree, &env);
    }
}
