//! The `dude-bench` command-line interface.
//!
//! Subcommands: `list`, `run`, `diff`, `render`, `baseline`, `manifest`,
//! `import-legacy`. Exit codes: `0` success, `1` gate regression or
//! `--check` mismatch, `2` usage or typed setup error.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::diff::{baseline_bundle, diff_records, load_baseline, load_records, parse_tolerance};
use crate::manifest::manifest_text;
use crate::record::Record;
use crate::registry::{find, SPECS};
use crate::render::render_doc;
use crate::runner::{run_spec, RunOptions};
use crate::spec::{SpecCtx, Tier, TierField};

const USAGE: &str = "\
dude-bench — the experiment driver for the DudeTM reproduction

USAGE:
  dude-bench list
  dude-bench run [<spec>...] [--all] [--quick|--full] [--out-dir DIR]
                 [--seed N] [--threads N] [--ops N] [--deterministic]
                 [--workload LABEL]... [--trace-out PATH]
                 [--metrics-out PATH]
  dude-bench diff --baseline PATH [--current DIR] [--tolerance PCT]
                  [--include-walltime]
  dude-bench render [--check] [--doc PATH] [--results DIR]
  dude-bench baseline [--from DIR] [--out PATH]
  dude-bench manifest [--check] [--results DIR] [--out PATH]
  dude-bench import-legacy [--results DIR]

Defaults: --out-dir/--results bench_results, --doc EXPERIMENTS.md,
--tolerance 15%, --baseline-out bench_results/baseline.json, quick tier.
Exit codes: 0 ok; 1 regression or --check mismatch; 2 usage error.";

/// A minimal argument cursor: positionals plus `--flag [value]` options.
struct Args {
    rest: Vec<String>,
}

impl Args {
    fn new(args: Vec<String>) -> Args {
        Args { rest: args }
    }

    /// Removes `--name`, returning whether it was present.
    fn flag(&mut self, name: &str) -> bool {
        match self.rest.iter().position(|a| a == name) {
            Some(i) => {
                self.rest.remove(i);
                true
            }
            None => false,
        }
    }

    /// Removes `--name VALUE`, returning the value.
    fn opt(&mut self, name: &str) -> Result<Option<String>, String> {
        match self.rest.iter().position(|a| a == name) {
            Some(i) => {
                if i + 1 >= self.rest.len() {
                    return Err(format!("{name} takes a value"));
                }
                let v = self.rest.remove(i + 1);
                self.rest.remove(i);
                Ok(Some(v))
            }
            None => Ok(None),
        }
    }

    /// Removes every `--name VALUE` occurrence.
    fn multi(&mut self, name: &str) -> Result<Vec<String>, String> {
        let mut out = Vec::new();
        while let Some(v) = self.opt(name)? {
            out.push(v);
        }
        Ok(out)
    }

    /// Remaining positional arguments; errors on unconsumed `--flags`.
    fn positionals(self) -> Result<Vec<String>, String> {
        if let Some(bad) = self.rest.iter().find(|a| a.starts_with("--")) {
            return Err(format!("unknown option {bad}"));
        }
        Ok(self.rest)
    }
}

fn parse_num<T: std::str::FromStr>(name: &str, v: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("{name}: bad number '{v}'"))
}

/// Runs the CLI on `args` (without the program name); returns the process
/// exit code.
#[must_use]
pub fn main_with_args(args: Vec<String>) -> i32 {
    match dispatch(args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("dude-bench: {msg}");
            eprintln!("{USAGE}");
            2
        }
    }
}

fn dispatch(mut args: Vec<String>) -> Result<i32, String> {
    if args.is_empty() {
        return Err("missing subcommand".into());
    }
    let cmd = args.remove(0);
    let args = Args::new(args);
    match cmd.as_str() {
        "list" => cmd_list(args),
        "run" => cmd_run(args),
        "diff" => cmd_diff(args),
        "render" => cmd_render(args),
        "baseline" => cmd_baseline(args),
        "manifest" => cmd_manifest(args),
        "import-legacy" => cmd_import(args),
        "--help" | "help" | "-h" => {
            println!("{USAGE}");
            Ok(0)
        }
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

fn cmd_list(args: Args) -> Result<i32, String> {
    args.positionals()?;
    println!("{:<28} {:<10} {}", "SPEC", "TABLES", "TITLE");
    for spec in SPECS {
        println!("{:<28} {:<10} {}", spec.name, spec.tables.len(), spec.title);
    }
    Ok(0)
}

fn cmd_run(mut args: Args) -> Result<i32, String> {
    let all = args.flag("--all");
    let quick = args.flag("--quick");
    let full = args.flag("--full");
    if quick && full {
        return Err("--quick and --full are mutually exclusive".into());
    }
    let out_dir = args
        .opt("--out-dir")?
        .map_or_else(|| PathBuf::from("bench_results"), PathBuf::from);
    let seed = match args.opt("--seed")? {
        Some(v) => parse_num("--seed", &v)?,
        None => 42u64,
    };
    let threads = args
        .opt("--threads")?
        .map(|v| parse_num("--threads", &v))
        .transpose()?;
    let ops = args
        .opt("--ops")?
        .map(|v| parse_num("--ops", &v))
        .transpose()?;
    let deterministic = args.flag("--deterministic");
    let workloads = args.multi("--workload")?;
    let trace_out = args.opt("--trace-out")?;
    if let Some(path) = args.opt("--metrics-out")? {
        // Arms the process-global sink: every DudeTM cell below runs with
        // a 10 ms sampler and appends its frame series to `path` as JSONL.
        crate::metrics_out::arm(&path);
    }
    let names = args.positionals()?;
    let specs: Vec<_> = if all || names.is_empty() {
        if !all && names.is_empty() {
            return Err("run: name specs or pass --all".into());
        }
        SPECS.iter().collect()
    } else {
        names
            .iter()
            .map(|n| find(n).ok_or_else(|| format!("unknown spec '{n}' (see dude-bench list)")))
            .collect::<Result<_, _>>()?
    };
    let ctx = SpecCtx {
        tier: TierField(if full { Tier::Full } else { Tier::Quick }),
        seed,
        threads,
        ops,
        deterministic,
        workload_filter: if workloads.is_empty() {
            None
        } else {
            Some(workloads)
        },
        trace_out,
    };
    let opts = RunOptions { out_dir };
    for spec in specs {
        run_spec(spec, &ctx, &opts);
    }
    Ok(0)
}

fn cmd_diff(mut args: Args) -> Result<i32, String> {
    let baseline_path = args
        .opt("--baseline")?
        .ok_or("diff: --baseline is required")?;
    let current_dir = args
        .opt("--current")?
        .map_or_else(|| PathBuf::from("bench_results"), PathBuf::from);
    let tolerance = parse_tolerance(
        &args
            .opt("--tolerance")?
            .unwrap_or_else(|| "15%".to_string()),
    )
    .map_err(|e| e.to_string())?;
    let include_walltime = args.flag("--include-walltime");
    args.positionals()?;
    let baseline = load_baseline(Path::new(&baseline_path)).map_err(|e| e.to_string())?;
    let current = load_records(&current_dir).map_err(|e| e.to_string())?;
    let report = diff_records(&baseline, &current, tolerance, include_walltime)
        .map_err(|e| e.to_string())?;
    println!(
        "diff: {} gated metric(s) checked at {:.1}% tolerance",
        report.checked,
        tolerance * 100.0
    );
    for imp in &report.improvements {
        println!(
            "  improved  {}/{}: {} -> {} ({:+.1}%)",
            imp.spec,
            imp.metric,
            imp.baseline,
            imp.current,
            imp.change * 100.0
        );
    }
    for reg in &report.regressions {
        let direction = match reg.better {
            crate::spec::Better::Higher => "higher is better",
            crate::spec::Better::Lower => "lower is better",
            crate::spec::Better::TwoSided => "two-sided gate",
        };
        println!(
            "  REGRESSED {}/{}: {} -> {} ({:+.1}%, {})",
            reg.spec,
            reg.metric,
            reg.baseline,
            reg.current,
            reg.change * 100.0,
            direction
        );
    }
    if report.pass() {
        println!("diff: PASS");
        Ok(0)
    } else {
        println!("diff: FAIL ({} regression(s))", report.regressions.len());
        Ok(1)
    }
}

fn cmd_render(mut args: Args) -> Result<i32, String> {
    let check = args.flag("--check");
    let doc_path = args
        .opt("--doc")?
        .map_or_else(|| PathBuf::from("EXPERIMENTS.md"), PathBuf::from);
    let results = args
        .opt("--results")?
        .map_or_else(|| PathBuf::from("bench_results"), PathBuf::from);
    args.positionals()?;
    let records: BTreeMap<String, Record> = load_records(&results)
        .map_err(|e| e.to_string())?
        .into_iter()
        .map(|r| (r.spec.clone(), r))
        .collect();
    let doc =
        std::fs::read_to_string(&doc_path).map_err(|e| format!("{}: {e}", doc_path.display()))?;
    let (out, n) = render_doc(&doc, &records).map_err(|e| e.to_string())?;
    if check {
        if out == doc {
            println!(
                "render --check: {} up to date ({n} block(s))",
                doc_path.display()
            );
            Ok(0)
        } else {
            eprintln!(
                "render --check: {} is stale — run `dude-bench render` and commit the result",
                doc_path.display()
            );
            Ok(1)
        }
    } else {
        std::fs::write(&doc_path, &out).map_err(|e| format!("{}: {e}", doc_path.display()))?;
        println!(
            "render: {} block(s) regenerated in {}",
            n,
            doc_path.display()
        );
        Ok(0)
    }
}

fn cmd_baseline(mut args: Args) -> Result<i32, String> {
    let from = args
        .opt("--from")?
        .map_or_else(|| PathBuf::from("bench_results"), PathBuf::from);
    let out = args.opt("--out")?.map_or_else(
        || PathBuf::from("bench_results/baseline.json"),
        PathBuf::from,
    );
    args.positionals()?;
    let records = load_records(&from).map_err(|e| e.to_string())?;
    // A baseline gates future runs, so only keep records that actually
    // carry gated metrics or that a diff must find present.
    if records.is_empty() {
        return Err(format!("no BENCH_*.json records under {}", from.display()));
    }
    std::fs::write(&out, baseline_bundle(&records).pretty())
        .map_err(|e| format!("{}: {e}", out.display()))?;
    println!(
        "baseline: {} record(s) written to {}",
        records.len(),
        out.display()
    );
    Ok(0)
}

fn cmd_manifest(mut args: Args) -> Result<i32, String> {
    let check = args.flag("--check");
    let results = args
        .opt("--results")?
        .map_or_else(|| PathBuf::from("bench_results"), PathBuf::from);
    let out = args
        .opt("--out")?
        .map_or_else(|| results.join("MANIFEST.md"), PathBuf::from);
    args.positionals()?;
    let text = manifest_text(&results);
    if check {
        let existing = std::fs::read_to_string(&out).unwrap_or_default();
        if existing == text {
            println!("manifest --check: {} up to date", out.display());
            Ok(0)
        } else {
            eprintln!(
                "manifest --check: {} is stale — run `dude-bench manifest` and commit",
                out.display()
            );
            Ok(1)
        }
    } else {
        std::fs::write(&out, &text).map_err(|e| format!("{}: {e}", out.display()))?;
        println!("manifest: written to {}", out.display());
        Ok(0)
    }
}

fn cmd_import(mut args: Args) -> Result<i32, String> {
    let results = args
        .opt("--results")?
        .map_or_else(|| PathBuf::from("bench_results"), PathBuf::from);
    args.positionals()?;
    let records = crate::import::import_legacy(&results)?;
    println!("import-legacy: {} spec record(s) written", records.len());
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> i32 {
        main_with_args(args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn usage_errors_exit_2() {
        assert_eq!(run(&[]), 2);
        assert_eq!(run(&["frobnicate"]), 2);
        assert_eq!(run(&["run"]), 2); // no specs, no --all
        assert_eq!(run(&["run", "no_such_spec"]), 2);
        assert_eq!(run(&["diff"]), 2); // --baseline required
        assert_eq!(run(&["run", "--quick", "--full", "table1"]), 2);
    }

    #[test]
    fn list_and_help_succeed() {
        assert_eq!(run(&["list"]), 0);
        assert_eq!(run(&["help"]), 0);
    }
}
