//! Table 3: durable-transaction latency distribution (50/90/99 percentile)
//! for the hash-table-based TPC-C benchmark.
//!
//! Latency is measured with the paper's pipelined acknowledgement scheme
//! (§5.3): transactions run back-to-back and are acknowledged when the
//! global durable ID passes them. Expected shape: DudeTM-Sync has the
//! lowest p50 (it waits inline), DudeTM adds moderate extra latency
//! (~2× its ideal) but beats Mnemosyne and NVML because its throughput is
//! higher; NVML has the worst latency.

use dude_bench::report::fmt_us;
use dude_bench::{quick_flag, run_combo, BenchEnv, SystemKind, Table, WorkloadKind};
use dude_workloads::LatencyMode;

fn main() {
    let mut env = BenchEnv::from_quick(quick_flag());
    env.latency_mode = LatencyMode::DurableAck { sample_every: 4 };
    // A bounded volatile log keeps the durable ID's lag bounded; on this
    // single-CPU host the Persist thread only runs when Perform threads
    // yield, so an over-large buffer would let the lag grow to the length
    // of the whole run (see EXPERIMENTS.md).
    env.durability = dudetm::DurabilityMode::Async { buffer_txns: 64 };
    let workload = WorkloadKind::TpccHash;
    let systems = [
        SystemKind::Dude,
        SystemKind::DudeSync,
        SystemKind::Mnemosyne,
        SystemKind::Nvml,
    ];
    let mut table = Table::new(
        "Table 3 — durable latency, TPC-C (hash)",
        &["percentile", "DudeTM", "DudeTM-Sync", "Mnemosyne", "NVML"],
    );
    let mut cols = Vec::new();
    for system in systems {
        let cell = run_combo(system, workload, &env);
        cols.push(cell.run.latency.expect("latency sampling enabled"));
    }
    for (label, pick) in [("50%", 0usize), ("90%", 1), ("99%", 2)] {
        let mut row = vec![label.to_string()];
        for lat in &cols {
            let v = match pick {
                0 => lat.p50,
                1 => lat.p90,
                _ => lat.p99,
            };
            row.push(fmt_us(v));
        }
        table.push(row);
    }
    table.print();
    table.save_csv("bench_results");
    println!(
        "(samples per system: {:?})",
        cols.iter().map(|l| l.samples).collect::<Vec<_>>()
    );
    println!(
        "(single-CPU host: DudeTM's lag reflects OS scheduling of the \
         Persist thread, not pipeline depth — see EXPERIMENTS.md)"
    );
}
