//! Legacy shim: runs the `table3` spec from the experiment registry.
//!
//! Kept so existing invocations (`cargo run --bin table3_latency [--quick]`)
//! keep working; the experiment itself lives in
//! `dude_bench::registry` and is driven by `dude-bench run table3`.

fn main() {
    dude_bench::runner::legacy_main("table3_latency");
}
