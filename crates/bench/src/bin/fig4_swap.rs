//! Figure 4: paging/swap overhead when the shadow memory is smaller than
//! the persistent working set.
//!
//! Workload: update-only YCSB over a B+-tree KV store, Zipfian 0.99 and
//! 1.07 (§5.5), with software- and hardware-style paging. The shadow is
//! swept from 2× the working set (no pressure) down to 1/8 of it. Expected
//! shape: throughput falls as the shadow shrinks, falls *faster* for the
//! less skewed (0.99) distribution, and hardware paging degrades more
//! steeply than software paging once evictions — and their stop-the-world
//! TLB shootdowns — become frequent.

use dude_bench::report::fmt_tps;
use dude_bench::{quick_flag, run_combo_median, BenchEnv, SystemKind, Table, WorkloadKind};
use dudetm::{PagingMode, ShadowConfig, PAGE_BYTES};

fn main() {
    let quick = quick_flag();
    let mut base = BenchEnv::from_quick(quick);
    // Large heap so the tree working set spans many pages; the shadow is
    // the small side of the experiment.
    base.heap_bytes = if quick { 64 << 20 } else { 128 << 20 };
    base.ops = if quick { 6_000 } else { 30_000 };
    // Working-set estimate: `build_workload` sizes the store at
    // heap_words/80 records; a ~5-fan-out B+-tree needs ~records/5 nodes of
    // 144 bytes plus metadata.
    let records = (base.heap_bytes / 8) / 80;
    let working_pages = (records / 5 * 144).div_ceil(PAGE_BYTES) + 8;
    let fractions: &[(f64, &str)] = if quick {
        &[(2.0, "2x working set"), (0.25, "1/4 working set")]
    } else {
        &[
            (2.0, "2x working set"),
            (1.0, "1x"),
            (0.5, "1/2"),
            (0.25, "1/4"),
            (0.125, "1/8"),
        ]
    };

    for theta in [0.99, 1.07] {
        let mut table = Table::new(
            &format!("Figure 4 — swap overhead (YCSB update-only, zipf {theta})"),
            &[
                "shadow frames",
                "software paging",
                "sw swap-outs",
                "hardware paging",
                "hw swap-outs",
            ],
        );
        for &(frac, label) in fractions {
            let frames = ((working_pages as f64 * frac) as usize).max(64);
            let mut row = vec![format!("{label} ({frames})")];
            for mode in [PagingMode::Software, PagingMode::Hardware] {
                let mut env = base;
                env.shadow = ShadowConfig::Paged { frames, mode };
                let cell = run_combo_median(
                    SystemKind::Dude,
                    WorkloadKind::YcsbUpdate { theta },
                    &env,
                    if quick { 1 } else { 3 },
                );
                let shadow = cell.shadow.expect("paged shadow stats");
                row.push(fmt_tps(cell.run.throughput));
                row.push(shadow.swap_outs.to_string());
            }
            table.push(row);
        }
        table.print();
        table.save_csv("bench_results");
    }
    println!("(working set ≈ {working_pages} pages of {PAGE_BYTES} bytes)");
}
