//! Legacy shim: runs the `fig4` spec from the experiment registry.
//!
//! Kept so existing invocations (`cargo run --bin fig4_swap [--quick]`)
//! keep working; the experiment itself lives in
//! `dude_bench::registry` and is driven by `dude-bench run fig4`.

fn main() {
    dude_bench::runner::legacy_main("fig4_swap");
}
