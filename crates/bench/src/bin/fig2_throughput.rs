//! Legacy shim: runs the `fig2` spec from the experiment registry.
//!
//! Kept so existing invocations (`cargo run --bin fig2_throughput [--quick]`)
//! keep working; the experiment itself lives in
//! `dude_bench::registry` and is driven by `dude-bench run fig2`.

fn main() {
    dude_bench::runner::legacy_main("fig2_throughput");
}
