//! Figure 2: throughput of Volatile-STM, DudeTM, DudeTM-Inf and
//! DudeTM-Sync across NVM bandwidths, for all six benchmarks.
//!
//! The paper sweeps 1–16 GB/s at 1000-cycle persist latency (DudeTM-Sync is
//! also shown at 3500 cycles; we add that series). Expected shape: the
//! decoupled variants sit a little below Volatile-STM and are insensitive
//! to bandwidth; DudeTM-Sync starts well below at 1 GB/s and climbs with
//! bandwidth; DudeTM ≈ DudeTM-Inf throughout (log flushing is not the
//! bottleneck — Finding 2).

use dude_bench::report::fmt_tps;
use dude_bench::{quick_flag, run_combo, BenchEnv, SystemKind, Table, WorkloadKind};

fn main() {
    let quick = quick_flag();
    let base = BenchEnv::from_quick(quick);
    let bandwidths: &[u64] = if quick { &[1, 8] } else { &[1, 4, 8, 16] };
    let workloads = [
        WorkloadKind::HashTable,
        WorkloadKind::BTree,
        WorkloadKind::TpccBTree,
        WorkloadKind::TpccHash,
        WorkloadKind::TatpBTree,
        WorkloadKind::TatpHash,
    ];
    let systems = [
        SystemKind::VolatileStm,
        SystemKind::Dude,
        SystemKind::DudeInf,
        SystemKind::DudeSync,
    ];

    for workload in workloads {
        let mut table = Table::new(
            &format!(
                "Figure 2 — {} throughput vs NVM bandwidth",
                workload.label()
            ),
            &["system", "1 GB/s", "4 GB/s", "8 GB/s", "16 GB/s"],
        );
        for system in systems {
            let mut row = vec![system.label().to_string()];
            for &bw in &[1u64, 4, 8, 16] {
                if !bandwidths.contains(&bw) {
                    row.push("-".into());
                    continue;
                }
                // Volatile systems do not touch NVM; measure them once.
                if system == SystemKind::VolatileStm && bw != bandwidths[0] {
                    row.push("(same)".into());
                    continue;
                }
                let env = base.with_bandwidth(bw);
                let cell = run_combo(system, workload, &env);
                row.push(fmt_tps(cell.run.throughput));
            }
            table.push(row);
        }
        table.print();
        table.save_csv("bench_results");
    }
    // DudeTM-Sync at the paper's PCM-class 3500-cycle latency (the latency
    // sensitivity the paper highlights for short transactions).
    let mut table = Table::new(
        "Figure 2 (aux) — DudeTM-Sync at 3500-cycle latency, 1 GB/s",
        &["benchmark", "sync @1000cyc", "sync @3500cyc"],
    );
    for workload in [WorkloadKind::TatpHash, WorkloadKind::TpccHash] {
        let fast = run_combo(SystemKind::DudeSync, workload, &base);
        let mut slow_env = base;
        slow_env.latency_cycles = 3500;
        let slow = run_combo(SystemKind::DudeSync, workload, &slow_env);
        table.push(vec![
            workload.label(),
            fmt_tps(fast.run.throughput),
            fmt_tps(slow.run.throughput),
        ]);
    }
    table.print();
    table.save_csv("bench_results");
}
