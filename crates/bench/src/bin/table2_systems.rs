//! Table 2: throughput of DudeTM, DudeTM-Sync, Mnemosyne and NVML on all
//! six benchmarks (1 GB/s, 1000 cycles, 4 threads).
//!
//! Expected shape (paper): DudeTM > DudeTM-Sync > Mnemosyne ≥/≈ NVML, with
//! DudeTM 1.7×–4.4× over the baselines. NVML runs only the hash-based
//! benchmarks (static transactions).

use dude_bench::report::fmt_tps;
use dude_bench::{quick_flag, run_combo, BenchEnv, SystemKind, Table, WorkloadKind};

fn main() {
    let env = BenchEnv::from_quick(quick_flag());
    let workloads = [
        WorkloadKind::BTree,
        WorkloadKind::TpccBTree,
        WorkloadKind::TatpBTree,
        WorkloadKind::HashTable,
        WorkloadKind::TpccHash,
        WorkloadKind::TatpHash,
    ];
    let mut table = Table::new(
        "Table 2 — throughput (1 GB/s, 1000 cycles, 4 threads)",
        &[
            "benchmark",
            "DudeTM",
            "DudeTM-Sync",
            "Mnemosyne",
            "NVML",
            "DudeTM/Mnem.",
        ],
    );
    for workload in workloads {
        let dude = run_combo(SystemKind::Dude, workload, &env);
        let sync = run_combo(SystemKind::DudeSync, workload, &env);
        let mnem = run_combo(SystemKind::Mnemosyne, workload, &env);
        let nvml = workload
            .nvml_compatible()
            .then(|| run_combo(SystemKind::Nvml, workload, &env));
        table.push(vec![
            workload.label(),
            fmt_tps(dude.run.throughput),
            fmt_tps(sync.run.throughput),
            fmt_tps(mnem.run.throughput),
            nvml.map_or("-".into(), |c| fmt_tps(c.run.throughput)),
            format!("{:.1}x", dude.run.throughput / mnem.run.throughput),
        ]);
    }
    table.print();
    table.save_csv("bench_results");
}
