//! Legacy shim: runs the `table2` spec from the experiment registry.
//!
//! Kept so existing invocations (`cargo run --bin table2_systems [--quick]`)
//! keep working; the experiment itself lives in
//! `dude_bench::registry` and is driven by `dude-bench run table2`.

fn main() {
    dude_bench::runner::legacy_main("table2_systems");
}
