//! `dude-top` — a live terminal monitor for the DudeTM pipeline.
//!
//! Default mode runs a seeded in-process bank workload and renders a
//! refreshing dashboard off the runtime's metrics registry: per-stage
//! rates, the three watermarks with their lags, a persist-lag sparkline,
//! and the stall-counter table. Three offline modes reuse the same
//! rendering and validation paths for tooling and CI:
//!
//! - `--replay PATH` renders a recorded `--metrics-out` JSONL series;
//! - `--check-jsonl PATH` validates a JSONL series (parses, non-empty,
//!   time-ordered) and exits nonzero otherwise;
//! - `--check-url URL` scrapes a Prometheus endpoint once and validates
//!   the exposition, exiting nonzero on failure.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dude_bench::systems::{bench_nvm, dude_config};
use dude_bench::BenchEnv;
use dude_txapi::{PAddr, TxnSystem, TxnThread};
use dudetm::{
    validate_exposition, DudeTm, MetricsConfig, MetricsFrame, MetricsRegistry, MetricsServer,
};

const USAGE: &str = "\
dude-top — live terminal monitor for the DudeTM pipeline

USAGE:
  dude-top [--threads N] [--ops N] [--seed N] [--interval-ms N]
           [--refresh-ms N] [--plain] [--serve ADDR] [--quick]
  dude-top --replay PATH
  dude-top --check-jsonl PATH
  dude-top --check-url URL

Defaults: 4 threads, 40000 ops (4000 with --quick), seed 42, 10 ms
sampling, 100 ms refresh. --serve 127.0.0.1:PORT additionally exposes
GET /metrics while the workload runs. Exit codes: 0 ok, 1 check failed,
2 usage error.";

fn fail_usage(msg: &str) -> ! {
    eprintln!("dude-top: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

struct Opts {
    threads: usize,
    ops: u64,
    seed: u64,
    interval_ms: u64,
    refresh_ms: u64,
    plain: bool,
    serve: Option<String>,
    quick: bool,
    replay: Option<String>,
    check_jsonl: Option<String>,
    check_url: Option<String>,
}

fn parse_opts() -> Opts {
    let mut o = Opts {
        threads: 4,
        ops: 0,
        seed: 42,
        interval_ms: 10,
        refresh_ms: 100,
        plain: false,
        serve: None,
        quick: false,
        replay: None,
        check_jsonl: None,
        check_url: None,
    };
    let mut ops_set = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail_usage(&format!("{name} takes a value")))
        };
        match a.as_str() {
            "--threads" => {
                o.threads = val("--threads")
                    .parse()
                    .unwrap_or_else(|_| fail_usage("--threads: bad number"))
            }
            "--ops" => {
                o.ops = val("--ops")
                    .parse()
                    .unwrap_or_else(|_| fail_usage("--ops: bad number"));
                ops_set = true;
            }
            "--seed" => {
                o.seed = val("--seed")
                    .parse()
                    .unwrap_or_else(|_| fail_usage("--seed: bad number"))
            }
            "--interval-ms" => {
                o.interval_ms = val("--interval-ms")
                    .parse()
                    .unwrap_or_else(|_| fail_usage("--interval-ms: bad number"))
            }
            "--refresh-ms" => {
                o.refresh_ms = val("--refresh-ms")
                    .parse()
                    .unwrap_or_else(|_| fail_usage("--refresh-ms: bad number"))
            }
            "--plain" => o.plain = true,
            "--serve" => o.serve = Some(val("--serve")),
            "--quick" => o.quick = true,
            "--replay" => o.replay = Some(val("--replay")),
            "--check-jsonl" => o.check_jsonl = Some(val("--check-jsonl")),
            "--check-url" => o.check_url = Some(val("--check-url")),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => fail_usage(&format!("unknown option {other}")),
        }
    }
    if !ops_set {
        o.ops = if o.quick { 4_000 } else { 40_000 };
    }
    o
}

fn main() {
    let opts = parse_opts();
    let code = if let Some(path) = &opts.check_jsonl {
        check_jsonl(path)
    } else if let Some(url) = &opts.check_url {
        check_url(url)
    } else if let Some(path) = &opts.replay {
        replay(path, opts.plain)
    } else {
        live(&opts)
    };
    std::process::exit(code);
}

// ---------------------------------------------------------------- live mode

/// xorshift64* — deterministic per-thread account selection.
fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

fn live(opts: &Opts) -> i32 {
    let mut env = BenchEnv::from_quick(opts.quick)
        .with_threads(opts.threads)
        .with_ops(opts.ops);
    env.seed = opts.seed;
    env.metrics = MetricsConfig::sampling(Duration::from_millis(opts.interval_ms.max(1)));
    let sys = DudeTm::create_stm(bench_nvm(&env), dude_config(&env, env.durability));
    let server = opts.serve.as_ref().map(|addr| {
        let s = MetricsServer::start(Arc::clone(sys.metrics()), addr)
            .unwrap_or_else(|e| fail_usage(&format!("--serve {addr}: {e}")));
        eprintln!("serving GET http://{}/metrics", s.local_addr());
        s
    });

    const ACCOUNTS: u64 = 1024;
    let done = AtomicBool::new(false);
    let start = Instant::now();
    std::thread::scope(|s| {
        let sys = &sys;
        let done = &done;
        let mut workers = Vec::new();
        for t in 0..opts.threads {
            let per_thread = env.ops_per_thread();
            let seed = opts
                .seed
                .wrapping_add(t as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                | 1;
            workers.push(s.spawn(move || {
                let mut rng = seed;
                let mut th = sys.register_thread();
                for _ in 0..per_thread {
                    let from = next_rand(&mut rng) % ACCOUNTS;
                    let to = next_rand(&mut rng) % ACCOUNTS;
                    th.run(&mut |tx| {
                        let a = tx.read_word(PAddr::from_word_index(from))?;
                        let b = tx.read_word(PAddr::from_word_index(to))?;
                        tx.write_word(PAddr::from_word_index(from), a.wrapping_sub(1))?;
                        tx.write_word(PAddr::from_word_index(to), b.wrapping_add(1))
                    });
                }
            }));
        }
        let renderer = s.spawn(move || {
            // Render until the workers finish; the final frame prints
            // after quiesce below.
            while !done.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(opts.refresh_ms.max(10)));
                render(sys.metrics(), start.elapsed(), opts.plain, false);
            }
        });
        for w in workers {
            let _ = w.join();
        }
        done.store(true, Ordering::Release);
        let _ = renderer.join();
    });
    sys.quiesce();
    sys.sample_metrics_now();
    render(sys.metrics(), start.elapsed(), opts.plain, true);
    drop(server);
    0
}

const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

fn sparkline(values: &[u64], width: usize) -> String {
    if values.is_empty() {
        return String::new();
    }
    // Downsample to `width` columns by bucket max.
    let n = values.len();
    let cols = width.min(n).max(1);
    let peak = values.iter().copied().max().unwrap_or(0).max(1);
    (0..cols)
        .map(|c| {
            let lo = c * n / cols;
            let hi = ((c + 1) * n / cols).max(lo + 1);
            let v = values[lo..hi].iter().copied().max().unwrap_or(0);
            SPARK[(v * 7 / peak) as usize]
        })
        .collect()
}

fn render(registry: &MetricsRegistry, elapsed: Duration, plain: bool, final_frame: bool) {
    let frames = registry.frames();
    let Some(last) = frames.last() else { return };
    let lags: Vec<u64> = frames.iter().map(|f| f.persist_lag).collect();
    let mut out = String::new();
    if !plain {
        out.push_str("\x1b[2J\x1b[H"); // clear + home
    }
    out.push_str(&format!(
        "dude-top — DudeTM pipeline ({:.1}s elapsed, {} frame(s){})\n",
        elapsed.as_secs_f64(),
        registry.frames_recorded(),
        if final_frame { ", final" } else { "" }
    ));
    out.push_str(&format!(
        "  rates    commit/s {:>12.1}  persist/s {:>12.1}  replay/s {:>12.1}  flush MB/s {:>8.2}\n",
        last.commit_rate,
        last.persist_rate,
        last.replay_rate,
        last.flush_bytes_rate / (1024.0 * 1024.0),
    ));
    out.push_str(&format!(
        "  tids     committed={} durable={} (lag {}) reproduced={} (lag {}) ring-words={}\n",
        last.committed,
        last.durable,
        last.persist_lag,
        last.reproduced,
        last.reproduce_lag,
        last.ring_used_words,
    ));
    out.push_str(&format!(
        "  frontier min={} skew={}   totals commits={} groups={} replayed={} ckpts={} flushed={}B\n",
        last.frontier_min,
        last.frontier_skew,
        last.commits,
        last.groups_persisted,
        last.txns_reproduced,
        last.checkpoints,
        last.log_bytes_flushed,
    ));
    out.push_str(&format!("  persist-lag {}\n", sparkline(&lags, 60)));
    out.push_str(&format!(
        "  stalls   log-full={} ring-full={} seq-wait={} starved={} ckpt-wait={}\n",
        last.stalls.perform_log_full,
        last.stalls.persist_ring_full,
        last.stalls.persist_seq_wait,
        last.stalls.reproduce_starved,
        last.stalls.checkpoint_wait,
    ));
    print!("{out}");
    let _ = std::io::stdout().flush();
}

// ------------------------------------------------------------ offline modes

fn load_frames(path: &str) -> Result<Vec<MetricsFrame>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut frames = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let frame = MetricsFrame::from_json_line(line)
            .ok_or_else(|| format!("{path}:{}: malformed frame: {line}", i + 1))?;
        frames.push(frame);
    }
    if frames.is_empty() {
        return Err(format!("{path}: no frames"));
    }
    Ok(frames)
}

fn replay(path: &str, plain: bool) -> i32 {
    let frames = match load_frames(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("dude-top: {e}");
            return 1;
        }
    };
    let first_ts = frames.first().map_or(0, |f| f.ts_ns);
    let last = frames.last().expect("non-empty");
    let wall = Duration::from_nanos(last.ts_ns.saturating_sub(first_ts));
    let lags: Vec<u64> = frames.iter().map(|f| f.persist_lag).collect();
    // Rates from sub-millisecond windows (e.g. the explicit final sample
    // landing right after a timer sample) are noise — skip them for peak.
    let peak_commit = frames
        .iter()
        .filter(|f| f.dt_ns >= 1_000_000)
        .map(|f| f.commit_rate)
        .fold(0.0, f64::max);
    println!(
        "dude-top --replay {path}: {} frame(s) over {:.3}s",
        frames.len(),
        wall.as_secs_f64()
    );
    println!("  peak commit/s {peak_commit:.1}");
    render_replay_tail(last, &lags, plain);
    0
}

fn render_replay_tail(last: &MetricsFrame, lags: &[u64], _plain: bool) {
    println!(
        "  final    committed={} durable={} (lag {}) reproduced={} (lag {})",
        last.committed, last.durable, last.persist_lag, last.reproduced, last.reproduce_lag
    );
    println!(
        "  totals   commits={} persisted-groups={} replayed={} flushed={}B",
        last.commits, last.groups_persisted, last.txns_reproduced, last.log_bytes_flushed
    );
    println!("  persist-lag {}", sparkline(lags, 60));
    println!(
        "  stalls   log-full={} ring-full={} seq-wait={} starved={} ckpt-wait={}",
        last.stalls.perform_log_full,
        last.stalls.persist_ring_full,
        last.stalls.persist_seq_wait,
        last.stalls.reproduce_starved,
        last.stalls.checkpoint_wait,
    );
}

fn check_jsonl(path: &str) -> i32 {
    let frames = match load_frames(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("dude-top --check-jsonl: {e}");
            return 1;
        }
    };
    // Cells concatenate in run order under --metrics-out; `ts_ns` is the
    // process-wide monotonic clock, so the combined series must still be
    // time-ordered (`seq` restarts per cell and is not checked).
    for w in frames.windows(2) {
        if w[1].ts_ns < w[0].ts_ns {
            eprintln!(
                "dude-top --check-jsonl: {path}: ts_ns regressed ({} after {})",
                w[1].ts_ns, w[0].ts_ns
            );
            return 1;
        }
    }
    println!(
        "dude-top --check-jsonl: ok — {} frame(s), final commits={}",
        frames.len(),
        frames.last().expect("non-empty").commits
    );
    0
}

fn check_url(url: &str) -> i32 {
    let rest = url.strip_prefix("http://").unwrap_or(url);
    let (host, path) = match rest.split_once('/') {
        Some((h, p)) => (h, format!("/{p}")),
        None => (rest, "/metrics".to_string()),
    };
    let body = (|| -> Result<String, String> {
        let mut s = TcpStream::connect(host).map_err(|e| format!("connect {host}: {e}"))?;
        s.set_read_timeout(Some(Duration::from_secs(5)))
            .map_err(|e| e.to_string())?;
        write!(
            s,
            "GET {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n"
        )
        .map_err(|e| e.to_string())?;
        let mut resp = String::new();
        s.read_to_string(&mut resp).map_err(|e| e.to_string())?;
        if !resp.starts_with("HTTP/1.1 200") {
            return Err(format!(
                "non-200 response: {}",
                resp.lines().next().unwrap_or("")
            ));
        }
        resp.split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .ok_or_else(|| "no body".to_string())
    })();
    match body.and_then(|b| validate_exposition(&b).map(|()| b)) {
        Ok(b) => {
            println!(
                "dude-top --check-url: ok — {} sample line(s)",
                b.lines()
                    .filter(|l| !l.is_empty() && !l.starts_with('#'))
                    .count()
            );
            0
        }
        Err(e) => {
            eprintln!("dude-top --check-url: {url}: {e}");
            1
        }
    }
}
