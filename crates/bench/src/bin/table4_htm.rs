//! Legacy shim: runs the `table4` spec from the experiment registry.
//!
//! Kept so existing invocations (`cargo run --bin table4_htm [--quick]`)
//! keep working; the experiment itself lives in
//! `dude_bench::registry` and is driven by `dude-bench run table4`.

fn main() {
    dude_bench::runner::legacy_main("table4_htm");
}
