//! Table 4: DudeTM on STM vs on (emulated) HTM, with the volatile TM upper
//! bounds, on B+-tree, HashTable and TATP (B+-tree).
//!
//! Expected shape (paper): HTM beats STM for both the volatile and the
//! durable configurations (up to 1.7×), B+-tree shows the largest speedup
//! (bigger transactions benefit most from cheap conflict tracking), and
//! DudeTM's slowdown relative to its volatile TM stays within ~28 % on
//! either engine. TPC-C is excluded: its write sets exceed the HTM's
//! capacity (paper footnote 7) — visible here as capacity aborts.

use dude_bench::report::{fmt_pct, fmt_tps};
use dude_bench::{quick_flag, run_combo_median, BenchEnv, SystemKind, Table, WorkloadKind};

fn main() {
    let env = BenchEnv::from_quick(quick_flag());
    let reps = if quick_flag() { 1 } else { 3 };
    let workloads = [
        WorkloadKind::BTree,
        WorkloadKind::HashTable,
        WorkloadKind::TatpBTree,
    ];
    let mut table = Table::new(
        "Table 4 — STM vs HTM engines (1 GB/s, 1000 cycles, 4 threads)",
        &[
            "benchmark",
            "Volatile-STM",
            "DudeTM-STM",
            "STM slowdown",
            "Volatile-HTM",
            "DudeTM-HTM",
            "HTM slowdown",
            "HTM/STM speedup",
        ],
    );
    for workload in workloads {
        let vstm = run_combo_median(SystemKind::VolatileStm, workload, &env, reps);
        let dstm = run_combo_median(SystemKind::Dude, workload, &env, reps);
        let vhtm = run_combo_median(SystemKind::VolatileHtm, workload, &env, reps);
        let dhtm = run_combo_median(SystemKind::DudeHtm, workload, &env, reps);
        table.push(vec![
            workload.label(),
            fmt_tps(vstm.run.throughput),
            fmt_tps(dstm.run.throughput),
            fmt_pct(1.0 - dstm.run.throughput / vstm.run.throughput),
            fmt_tps(vhtm.run.throughput),
            fmt_tps(dhtm.run.throughput),
            fmt_pct(1.0 - dhtm.run.throughput / vhtm.run.throughput),
            format!("{:.2}x", dhtm.run.throughput / dstm.run.throughput),
        ]);
    }
    table.print();
    table.save_csv("bench_results");
}
