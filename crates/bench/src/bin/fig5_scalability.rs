//! Legacy shim: runs the `fig5` spec from the experiment registry.
//!
//! Kept so existing invocations (`cargo run --bin fig5_scalability [--quick]`)
//! keep working; the experiment itself lives in
//! `dude_bench::registry` and is driven by `dude-bench run fig5`.

fn main() {
    dude_bench::runner::legacy_main("fig5_scalability");
}
