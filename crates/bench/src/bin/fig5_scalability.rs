//! Figure 5: scalability of DudeTM vs Volatile-STM on TPC-C (B+-tree),
//! 1–8 threads, normalized to one thread; plus the low-conflict
//! per-district variant whose bottleneck (TinySTM concurrency control) is
//! removed.
//!
//! NOTE: this container exposes a single CPU, so absolute speedups cannot
//! exceed 1× (threads time-slice). The paper's claim is *relative*: DudeTM
//! scales like the underlying TinySTM (decoupling adds no bottleneck), and
//! the partitioned variant removes the conflict bottleneck. Both claims
//! survive time-slicing: compare DudeTM's curve against Volatile-STM's
//! curve, and compare conflict retries between the contended and
//! partitioned variants.

use dude_bench::{quick_flag, run_combo_median, BenchEnv, SystemKind, Table, WorkloadKind};

fn main() {
    let quick = quick_flag();
    let base = BenchEnv::from_quick(quick);
    let threads: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let reps = if quick { 1 } else { 3 };

    let mut table = Table::new(
        "Figure 5 — TPC-C (B+-tree) scaling, normalized to 1 thread",
        &[
            "threads",
            "Volatile-STM",
            "DudeTM",
            "DudeTM partitioned",
            "DudeTM retries/tx",
            "partitioned retries/tx",
        ],
    );

    let mut base_tput: [f64; 3] = [0.0; 3];
    for &n in threads {
        let env = base.with_threads(n);
        let vol = run_combo_median(SystemKind::VolatileStm, WorkloadKind::TpccBTree, &env, reps);
        let dude = run_combo_median(SystemKind::Dude, WorkloadKind::TpccBTree, &env, reps);
        let part = run_combo_median(
            SystemKind::Dude,
            WorkloadKind::TpccBTreePartitioned,
            &env,
            reps,
        );
        if n == threads[0] {
            base_tput = [vol.run.throughput, dude.run.throughput, part.run.throughput];
        }
        table.push(vec![
            n.to_string(),
            format!("{:.2}x", vol.run.throughput / base_tput[0]),
            format!("{:.2}x", dude.run.throughput / base_tput[1]),
            format!("{:.2}x", part.run.throughput / base_tput[2]),
            format!("{:.3}", dude.run.retry_rate()),
            format!("{:.3}", part.run.retry_rate()),
        ]);
    }
    table.print();
    table.save_csv("bench_results");
    println!(
        "\n(single-CPU container: compare DudeTM's curve against Volatile-STM's; \
         absolute multi-thread speedup is not observable here)"
    );
}
