//! `dude-bench`: the experiment driver owning the whole measurement loop —
//! registry listing, spec execution, regression gating, report rendering.
//! See `dude_bench::cli` for the subcommands.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(dude_bench::cli::main_with_args(args));
}
