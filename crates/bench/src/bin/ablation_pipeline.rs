//! Ablation study of the decoupled pipeline's design knobs (extension —
//! the per-knob sensitivity behind the paper's design choices):
//!
//! * **volatile log buffer size** — the paper argues Perform "rarely
//!   blocks" (Finding 2); shrinking the buffer should show when that stops
//!   being true;
//! * **number of Persist threads** — the paper claims "typically one is
//!   enough" (§3.3);
//! * **Reproduce checkpoint cadence** — recycling frequency trades fences
//!   against log-space pressure;
//! * **Reproduce shard workers** — drain throughput of the
//!   conflict-sharded Reproduce stage on a write-heavy backlog, the knob
//!   that lifts the pipeline's single-threaded drain ceiling;
//! * **Persist flush workers** — drain throughput of the parallel grouped
//!   Persist stage (sequencer + N out-of-order flush workers) on a
//!   PCM-latency device, where the per-group fence is the stage's cost and
//!   overlapping fences across workers is the win.
//!
//! `--section <n>` runs a single section (1–5); the default runs all.

use dude_bench::report::fmt_tps;
use dude_bench::{
    quick_flag, run_combo, section_flag, trace_out_flag, BenchEnv, SystemKind, Table, WorkloadKind,
};
use dudetm::{DurabilityMode, TraceConfig};

/// Extra columns for sections 2–4: commit-latency and persist-barrier
/// percentiles in microseconds, or dashes when the layer is off (so the
/// CSV schema is stable across traced and untraced runs).
const LATENCY_HEADERS: [&str; 6] = [
    "commit p50 (us)",
    "commit p95 (us)",
    "commit p99 (us)",
    "barrier p50 (us)",
    "barrier p95 (us)",
    "barrier p99 (us)",
];

fn latency_cols(trace: &dudetm::Trace) -> Vec<String> {
    if !trace.enabled() {
        return vec!["-".to_string(); 6];
    }
    let us = |v: u64| format!("{:.2}", v as f64 / 1000.0);
    let c = trace.commit_latency_ns.snapshot();
    let b = trace.persist_barrier_ns.snapshot();
    vec![
        us(c.p50()),
        us(c.p95()),
        us(c.p99()),
        us(b.p50()),
        us(b.p95()),
        us(b.p99()),
    ]
}

fn main() {
    let quick = quick_flag();
    let section = section_flag();
    let run_section = |n: u32| section.is_none() || section == Some(n);
    let base = BenchEnv::from_quick(quick);
    let workload = WorkloadKind::TpccHash;
    let trace_out = trace_out_flag();
    // 64 Ki records is enough to keep the tail of a quick run; overflow is
    // reported in the export rather than silently truncated.
    let trace_cfg = if trace_out.is_some() {
        TraceConfig::enabled(64 * 1024)
    } else {
        TraceConfig::disabled()
    };
    // The traced run whose JSON export lands in `--trace-out` (the last
    // traced run of the binary — the largest shard-drain configuration).
    let mut last_trace_json: Option<String> = None;

    // 1. Volatile log buffer size.
    if run_section(1) {
        let mut table = Table::new(
            "Ablation — volatile log buffer size (TPC-C hash, DudeTM)",
            &["buffer (txns/thread)", "throughput"],
        );
        let sizes: &[usize] = if quick {
            &[16, 16_384]
        } else {
            &[4, 64, 1_024, 16_384]
        };
        for &buffer in sizes {
            let mut env = base;
            env.durability = DurabilityMode::Async {
                buffer_txns: buffer,
            };
            let cell = run_combo(SystemKind::Dude, workload, &env);
            table.push(vec![buffer.to_string(), fmt_tps(cell.run.throughput)]);
        }
        table.print();
        table.save_csv("bench_results");
    }

    // 2. Persist thread count. (On this single-CPU host, more persist
    // threads can only add scheduling overhead — the interesting direction
    // is that one thread does NOT become a bottleneck.)
    if run_section(2) {
        let mut headers = vec!["persist threads", "throughput"];
        headers.extend(LATENCY_HEADERS);
        let mut table = Table::new("Ablation — persist threads (TPC-C hash, DudeTM)", &headers);
        // `BenchEnv` pins one persist thread; emulate the sweep via config by
        // reusing run_combo with modified env is not wired for this knob, so
        // construct directly.
        for &threads in if quick {
            &[1usize, 2][..]
        } else {
            &[1usize, 2, 4][..]
        } {
            use dude_workloads::driver::RunConfig;
            let env = base;
            let nvm = std::sync::Arc::new(dude_nvm::Nvm::new(dude_nvm::NvmConfig::for_benchmark(
                env.device_bytes(),
                dude_nvm::TimingConfig::paper_default(),
            )));
            let config = dudetm::DudeTmConfig {
                heap_bytes: env.heap_bytes,
                plog_bytes_per_thread: env.plog_bytes,
                max_threads: env.threads + 4,
                durability: env.durability,
                persist_threads: threads,
                persist_group: 1,
                persist_flush_workers: 1,
                compress_groups: false,
                checkpoint_every: 64,
                reproduce_threads: 1,
                shadow: dudetm::ShadowConfig::Identity,
                trace: trace_cfg,
            };
            let sys = dudetm::DudeTm::create_stm(nvm, dude_bench::systems::checked(config));
            let w = dude_bench::workloads::build_workload(workload, &env);
            dude_workloads::driver::load_workload(&sys, w.as_ref());
            let stats = dude_workloads::driver::run_fixed_ops(
                &sys,
                w.as_ref(),
                RunConfig {
                    threads: env.threads,
                    seed: env.seed,
                    latency: env.latency_mode,
                },
                env.ops_per_thread(),
            );
            sys.quiesce();
            // The lag surface: after quiesce the three watermarks coincide and
            // the snapshot shows what the run put through each stage.
            println!(
                "  pipeline [{threads} persist threads]: {}",
                sys.stats_snapshot().summary()
            );
            let mut row = vec![threads.to_string(), fmt_tps(stats.throughput)];
            row.extend(latency_cols(sys.trace()));
            if trace_cfg.enabled {
                last_trace_json = Some(sys.trace().to_json());
            }
            table.push(row);
        }
        table.print();
        table.save_csv("bench_results");
    }

    // 3. Checkpoint cadence.
    if run_section(3) {
        let mut headers = vec!["checkpoint every (txns)", "throughput"];
        headers.extend(LATENCY_HEADERS);
        let mut table = Table::new(
            "Ablation — reproduce checkpoint cadence (TPC-C hash, DudeTM)",
            &headers,
        );
        for &every in if quick {
            &[8u64, 512][..]
        } else {
            &[1u64, 8, 64, 512][..]
        } {
            use dude_workloads::driver::RunConfig;
            let env = base;
            let nvm = std::sync::Arc::new(dude_nvm::Nvm::new(dude_nvm::NvmConfig::for_benchmark(
                env.device_bytes(),
                dude_nvm::TimingConfig::paper_default(),
            )));
            let config = dudetm::DudeTmConfig {
                heap_bytes: env.heap_bytes,
                plog_bytes_per_thread: env.plog_bytes,
                max_threads: env.threads + 4,
                durability: env.durability,
                persist_threads: 1,
                persist_group: 1,
                persist_flush_workers: 1,
                compress_groups: false,
                checkpoint_every: every,
                reproduce_threads: 1,
                shadow: dudetm::ShadowConfig::Identity,
                trace: trace_cfg,
            };
            let sys = dudetm::DudeTm::create_stm(nvm, dude_bench::systems::checked(config));
            let w = dude_bench::workloads::build_workload(workload, &env);
            dude_workloads::driver::load_workload(&sys, w.as_ref());
            let stats = dude_workloads::driver::run_fixed_ops(
                &sys,
                w.as_ref(),
                RunConfig {
                    threads: env.threads,
                    seed: env.seed,
                    latency: env.latency_mode,
                },
                env.ops_per_thread(),
            );
            sys.quiesce();
            let mut row = vec![every.to_string(), fmt_tps(stats.throughput)];
            row.extend(latency_cols(sys.trace()));
            if trace_cfg.enabled {
                last_trace_json = Some(sys.trace().to_json());
            }
            table.push(row);
        }
        table.print();
        table.save_csv("bench_results");
    }

    // 4. Reproduce shard workers: drain throughput of a write-heavy
    // backlog. Perform runs ahead with an unbounded buffer while Reproduce
    // lags (its scattered replay pays a full cache line per word, where
    // Persist streams contiguous log bytes); the measurement clocks how
    // fast each shard count drains the backlog left at the end of the
    // commit burst. Shard workers wait out modeled NVM delays in parallel
    // wall-clock windows, so the drain rate scales with N until the
    // Persist stage becomes the ceiling.
    if run_section(4) {
        let mut headers = vec!["reproduce threads", "drain throughput", "speedup"];
        headers.extend(LATENCY_HEADERS);
        let mut table = Table::new(
            "Ablation — reproduce shard workers (write-heavy drain, DudeTM-Inf)",
            &headers,
        );
        let ops: u64 = if quick { 1_500 } else { 6_000 };
        let mut serial_rate = None;
        for &rt in if quick {
            &[1usize, 4][..]
        } else {
            &[1usize, 2, 4, 8][..]
        } {
            use dude_txapi::{PAddr, TxnSystem, TxnThread};
            let env = base;
            // Write-heavy: replay bandwidth, not barrier latency, must gate the
            // drain — model a quarter of the paper's bandwidth so the backlog
            // builds even in quick mode.
            let timing = dude_nvm::TimingConfig {
                bandwidth_bytes_per_sec: 256 << 20,
                ..dude_nvm::TimingConfig::paper_default()
            };
            let nvm = std::sync::Arc::new(dude_nvm::Nvm::new(dude_nvm::NvmConfig::for_benchmark(
                env.device_bytes(),
                timing,
            )));
            let config = dudetm::DudeTmConfig {
                heap_bytes: env.heap_bytes,
                plog_bytes_per_thread: env.plog_bytes,
                max_threads: env.threads + 4,
                durability: dudetm::DurabilityMode::AsyncUnbounded,
                persist_threads: 1,
                persist_group: 1,
                persist_flush_workers: 1,
                compress_groups: false,
                checkpoint_every: 64,
                reproduce_threads: rt,
                shadow: dudetm::ShadowConfig::Identity,
                trace: trace_cfg,
            };
            let sys = dudetm::DudeTm::create_stm(nvm, dude_bench::systems::checked(config));
            let lines = env.heap_bytes / 64;
            {
                let mut t = sys.register_thread();
                let mut x = env.seed | 1;
                for _ in 0..ops {
                    t.run(&mut |tx| {
                        // 32 scattered words, one per cache line.
                        for _ in 0..32 {
                            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                            let line = (x >> 17) % lines;
                            tx.write_word(PAddr::from_word_index(line * 8), x)?;
                        }
                        Ok(())
                    });
                }
            }
            let committed = sys.stats_snapshot().committed;
            let backlog_from = sys.reproduced_id();
            let start = std::time::Instant::now();
            sys.quiesce();
            let secs = start.elapsed().as_secs_f64().max(1e-9);
            let drained = committed - backlog_from;
            let rate = drained as f64 / secs;
            let speedup = match serial_rate {
                None => {
                    serial_rate = Some(rate);
                    "1.00x".to_string()
                }
                Some(base_rate) => format!("{:.2}x", rate / base_rate),
            };
            println!(
                "  drain [{rt} reproduce threads]: backlog {drained} txns in {:.1} ms; {}",
                secs * 1e3,
                sys.stats_snapshot().summary()
            );
            let mut row = vec![rt.to_string(), fmt_tps(rate), speedup];
            row.extend(latency_cols(sys.trace()));
            if trace_cfg.enabled {
                last_trace_json = Some(sys.trace().to_json());
            }
            table.push(row);
        }
        table.print();
        table.save_csv("bench_results");
    }

    // 5. Persist flush workers: drain throughput of the parallel grouped
    // Persist stage on a write-heavy backlog. Group size 8 with PCM-class
    // barrier latency (3500 cycles, §5.1) and bandwidth scaled further
    // down than section 4 (64 MB/s) so the modeled medium — not this
    // container's core — gates the drain: each group's write+fence
    // barrier costs real modeled wall time. One flush worker pays those
    // barriers back-to-back; N workers overlap them while the publication
    // gate keeps durability in dense TID order. Reproduce runs 4 shards
    // so the drain ceiling is Persist's. The clock covers the quiesce
    // drain of the backlog the commit burst left behind (a faster Persist
    // also lags less during the burst, so its backlog is smaller — the
    // rate, not the absolute time, is the comparable number). The
    // observability layer is always on here (uniform overhead across
    // rows) to report the per-group barrier percentiles that explain the
    // throughput column.
    if run_section(5) {
        use dude_txapi::{PAddr, TxnSystem, TxnThread};
        let mut table = Table::new(
            "Ablation — persist flush workers (write-heavy drain, group=8, DudeTM-Inf, PCM latency)",
            &[
                "flush workers",
                "compress",
                "throughput",
                "speedup",
                "barrier p50 (us)",
                "barrier p95 (us)",
                "barrier p99 (us)",
            ],
        );
        let section_trace = TraceConfig::enabled(64 * 1024);
        let ops: u64 = if quick { 2_000 } else { 8_000 };
        let workers: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4] };
        let compress_axis: &[bool] = if quick { &[false] } else { &[false, true] };
        let repeats: usize = if quick { 1 } else { 3 };
        for &compress in compress_axis {
            let mut serial_rate = None;
            for &fw in workers {
                // Median of `repeats` runs: a single shared core makes any
                // one drain noisy, and this cell is the section's claim.
                let mut runs: Vec<(f64, u64, u64, u64)> = Vec::new();
                for rep in 0..repeats {
                    let env = base;
                    let timing = dude_nvm::TimingConfig {
                        bandwidth_bytes_per_sec: 64 << 20,
                        ..dude_nvm::TimingConfig::paper_default().with_latency_cycles(3500)
                    };
                    let nvm = std::sync::Arc::new(dude_nvm::Nvm::new(
                        dude_nvm::NvmConfig::for_benchmark(env.device_bytes(), timing),
                    ));
                    let config = dudetm::DudeTmConfig {
                        heap_bytes: env.heap_bytes,
                        plog_bytes_per_thread: env.plog_bytes,
                        max_threads: env.threads + 4,
                        durability: dudetm::DurabilityMode::AsyncUnbounded,
                        persist_threads: 1,
                        persist_group: 8,
                        persist_flush_workers: fw,
                        compress_groups: compress,
                        checkpoint_every: 64,
                        reproduce_threads: 4,
                        shadow: dudetm::ShadowConfig::Identity,
                        trace: section_trace,
                    };
                    let sys = dudetm::DudeTm::create_stm(nvm, dude_bench::systems::checked(config));
                    let lines = env.heap_bytes / 64;
                    // Four Perform threads: the volatile burst outruns every
                    // Persist configuration, so each row's drain starts from
                    // a near-identical backlog and the rates are comparable.
                    std::thread::scope(|scope| {
                        for p in 0..4u64 {
                            let sys = &sys;
                            scope.spawn(move || {
                                let mut t = sys.register_thread();
                                let mut x =
                                    (env.seed | 1) ^ (p + rep as u64).wrapping_mul(0x9E37_79B9);
                                for _ in 0..ops / 4 {
                                    t.run(&mut |tx| {
                                        // 32 scattered words, one per cache line.
                                        for _ in 0..32 {
                                            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                                            let line = (x >> 17) % lines;
                                            tx.write_word(PAddr::from_word_index(line * 8), x)?;
                                        }
                                        Ok(())
                                    });
                                }
                            });
                        }
                    });
                    let committed = sys.stats_snapshot().committed;
                    let backlog = committed - sys.reproduced_id();
                    let start = std::time::Instant::now();
                    sys.quiesce();
                    let secs = start.elapsed().as_secs_f64().max(1e-9);
                    let rate = backlog as f64 / secs;
                    println!(
                        "  drain [{fw} flush workers, lz={compress}, rep {rep}]: {backlog} of \
                         {committed} txns backlogged at burst end, drained in {:.1} ms; {}",
                        secs * 1e3,
                        sys.stats_snapshot().summary()
                    );
                    let b = sys.trace().persist_barrier_ns.snapshot();
                    runs.push((rate, b.p50(), b.p95(), b.p99()));
                    if trace_cfg.enabled {
                        last_trace_json = Some(sys.trace().to_json());
                    }
                }
                runs.sort_by(|a, b| a.0.total_cmp(&b.0));
                let (rate, p50, p95, p99) = runs[runs.len() / 2];
                let speedup = match serial_rate {
                    None => {
                        serial_rate = Some(rate);
                        "1.00x".to_string()
                    }
                    Some(base_rate) => format!("{:.2}x", rate / base_rate),
                };
                let us = |v: u64| format!("{:.2}", v as f64 / 1000.0);
                table.push(vec![
                    fw.to_string(),
                    if compress { "lz" } else { "off" }.to_string(),
                    fmt_tps(rate),
                    speedup,
                    us(p50),
                    us(p95),
                    us(p99),
                ]);
            }
        }
        table.print();
        table.save_csv("bench_results");
    }

    if let Some(path) = trace_out {
        match last_trace_json {
            Some(json) => match std::fs::write(&path, json) {
                Ok(()) => println!("[trace] chrome://tracing JSON written to {path}"),
                Err(e) => eprintln!("[trace] failed to write {path}: {e}"),
            },
            None => eprintln!("[trace] no traced run produced output"),
        }
    }
}
