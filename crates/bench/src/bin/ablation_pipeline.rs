//! Ablation study of the decoupled pipeline's design knobs (extension —
//! the per-knob sensitivity behind the paper's design choices):
//!
//! * **volatile log buffer size** — the paper argues Perform "rarely
//!   blocks" (Finding 2); shrinking the buffer should show when that stops
//!   being true;
//! * **number of Persist threads** — the paper claims "typically one is
//!   enough" (§3.3);
//! * **Reproduce checkpoint cadence** — recycling frequency trades fences
//!   against log-space pressure;
//! * **Reproduce shard workers** — drain throughput of the
//!   conflict-sharded Reproduce stage on a write-heavy backlog, the knob
//!   that lifts the pipeline's single-threaded drain ceiling.

use dude_bench::report::fmt_tps;
use dude_bench::{
    quick_flag, run_combo, trace_out_flag, BenchEnv, SystemKind, Table, WorkloadKind,
};
use dudetm::{DurabilityMode, TraceConfig};

/// Extra columns for sections 2–4: commit-latency and persist-barrier
/// percentiles in microseconds, or dashes when the layer is off (so the
/// CSV schema is stable across traced and untraced runs).
const LATENCY_HEADERS: [&str; 6] = [
    "commit p50 (us)",
    "commit p95 (us)",
    "commit p99 (us)",
    "barrier p50 (us)",
    "barrier p95 (us)",
    "barrier p99 (us)",
];

fn latency_cols(trace: &dudetm::Trace) -> Vec<String> {
    if !trace.enabled() {
        return vec!["-".to_string(); 6];
    }
    let us = |v: u64| format!("{:.2}", v as f64 / 1000.0);
    let c = trace.commit_latency_ns.snapshot();
    let b = trace.persist_barrier_ns.snapshot();
    vec![
        us(c.p50()),
        us(c.p95()),
        us(c.p99()),
        us(b.p50()),
        us(b.p95()),
        us(b.p99()),
    ]
}

fn main() {
    let quick = quick_flag();
    let base = BenchEnv::from_quick(quick);
    let workload = WorkloadKind::TpccHash;
    let trace_out = trace_out_flag();
    // 64 Ki records is enough to keep the tail of a quick run; overflow is
    // reported in the export rather than silently truncated.
    let trace_cfg = if trace_out.is_some() {
        TraceConfig::enabled(64 * 1024)
    } else {
        TraceConfig::disabled()
    };
    // The traced run whose JSON export lands in `--trace-out` (the last
    // traced run of the binary — the largest shard-drain configuration).
    let mut last_trace_json: Option<String> = None;

    // 1. Volatile log buffer size.
    let mut table = Table::new(
        "Ablation — volatile log buffer size (TPC-C hash, DudeTM)",
        &["buffer (txns/thread)", "throughput"],
    );
    let sizes: &[usize] = if quick {
        &[16, 16_384]
    } else {
        &[4, 64, 1_024, 16_384]
    };
    for &buffer in sizes {
        let mut env = base;
        env.durability = DurabilityMode::Async {
            buffer_txns: buffer,
        };
        let cell = run_combo(SystemKind::Dude, workload, &env);
        table.push(vec![buffer.to_string(), fmt_tps(cell.run.throughput)]);
    }
    table.print();
    table.save_csv("bench_results");

    // 2. Persist thread count. (On this single-CPU host, more persist
    // threads can only add scheduling overhead — the interesting direction
    // is that one thread does NOT become a bottleneck.)
    let mut headers = vec!["persist threads", "throughput"];
    headers.extend(LATENCY_HEADERS);
    let mut table = Table::new("Ablation — persist threads (TPC-C hash, DudeTM)", &headers);
    // `BenchEnv` pins one persist thread; emulate the sweep via config by
    // reusing run_combo with modified env is not wired for this knob, so
    // construct directly.
    for &threads in if quick {
        &[1usize, 2][..]
    } else {
        &[1usize, 2, 4][..]
    } {
        use dude_workloads::driver::RunConfig;
        let env = base;
        let nvm = std::sync::Arc::new(dude_nvm::Nvm::new(dude_nvm::NvmConfig::for_benchmark(
            env.device_bytes(),
            dude_nvm::TimingConfig::paper_default(),
        )));
        let config = dudetm::DudeTmConfig {
            heap_bytes: env.heap_bytes,
            plog_bytes_per_thread: env.plog_bytes,
            max_threads: env.threads + 4,
            durability: env.durability,
            persist_threads: threads,
            persist_group: 1,
            compress_groups: false,
            checkpoint_every: 64,
            reproduce_threads: 1,
            shadow: dudetm::ShadowConfig::Identity,
            trace: trace_cfg,
        };
        let sys = dudetm::DudeTm::create_stm(nvm, dude_bench::systems::checked(config));
        let w = dude_bench::workloads::build_workload(workload, &env);
        dude_workloads::driver::load_workload(&sys, w.as_ref());
        let stats = dude_workloads::driver::run_fixed_ops(
            &sys,
            w.as_ref(),
            RunConfig {
                threads: env.threads,
                seed: env.seed,
                latency: env.latency_mode,
            },
            env.ops_per_thread(),
        );
        sys.quiesce();
        // The lag surface: after quiesce the three watermarks coincide and
        // the snapshot shows what the run put through each stage.
        println!(
            "  pipeline [{threads} persist threads]: {}",
            sys.stats_snapshot().summary()
        );
        let mut row = vec![threads.to_string(), fmt_tps(stats.throughput)];
        row.extend(latency_cols(sys.trace()));
        if trace_cfg.enabled {
            last_trace_json = Some(sys.trace().to_json());
        }
        table.push(row);
    }
    table.print();
    table.save_csv("bench_results");

    // 3. Checkpoint cadence.
    let mut headers = vec!["checkpoint every (txns)", "throughput"];
    headers.extend(LATENCY_HEADERS);
    let mut table = Table::new(
        "Ablation — reproduce checkpoint cadence (TPC-C hash, DudeTM)",
        &headers,
    );
    for &every in if quick {
        &[8u64, 512][..]
    } else {
        &[1u64, 8, 64, 512][..]
    } {
        use dude_workloads::driver::RunConfig;
        let env = base;
        let nvm = std::sync::Arc::new(dude_nvm::Nvm::new(dude_nvm::NvmConfig::for_benchmark(
            env.device_bytes(),
            dude_nvm::TimingConfig::paper_default(),
        )));
        let config = dudetm::DudeTmConfig {
            heap_bytes: env.heap_bytes,
            plog_bytes_per_thread: env.plog_bytes,
            max_threads: env.threads + 4,
            durability: env.durability,
            persist_threads: 1,
            persist_group: 1,
            compress_groups: false,
            checkpoint_every: every,
            reproduce_threads: 1,
            shadow: dudetm::ShadowConfig::Identity,
            trace: trace_cfg,
        };
        let sys = dudetm::DudeTm::create_stm(nvm, dude_bench::systems::checked(config));
        let w = dude_bench::workloads::build_workload(workload, &env);
        dude_workloads::driver::load_workload(&sys, w.as_ref());
        let stats = dude_workloads::driver::run_fixed_ops(
            &sys,
            w.as_ref(),
            RunConfig {
                threads: env.threads,
                seed: env.seed,
                latency: env.latency_mode,
            },
            env.ops_per_thread(),
        );
        sys.quiesce();
        let mut row = vec![every.to_string(), fmt_tps(stats.throughput)];
        row.extend(latency_cols(sys.trace()));
        if trace_cfg.enabled {
            last_trace_json = Some(sys.trace().to_json());
        }
        table.push(row);
    }
    table.print();
    table.save_csv("bench_results");

    // 4. Reproduce shard workers: drain throughput of a write-heavy
    // backlog. Perform runs ahead with an unbounded buffer while Reproduce
    // lags (its scattered replay pays a full cache line per word, where
    // Persist streams contiguous log bytes); the measurement clocks how
    // fast each shard count drains the backlog left at the end of the
    // commit burst. Shard workers wait out modeled NVM delays in parallel
    // wall-clock windows, so the drain rate scales with N until the
    // Persist stage becomes the ceiling.
    let mut headers = vec!["reproduce threads", "drain throughput", "speedup"];
    headers.extend(LATENCY_HEADERS);
    let mut table = Table::new(
        "Ablation — reproduce shard workers (write-heavy drain, DudeTM-Inf)",
        &headers,
    );
    let ops: u64 = if quick { 1_500 } else { 6_000 };
    let mut serial_rate = None;
    for &rt in if quick {
        &[1usize, 4][..]
    } else {
        &[1usize, 2, 4, 8][..]
    } {
        use dude_txapi::{PAddr, TxnSystem, TxnThread};
        let env = base;
        // Write-heavy: replay bandwidth, not barrier latency, must gate the
        // drain — model a quarter of the paper's bandwidth so the backlog
        // builds even in quick mode.
        let timing = dude_nvm::TimingConfig {
            bandwidth_bytes_per_sec: 256 << 20,
            ..dude_nvm::TimingConfig::paper_default()
        };
        let nvm = std::sync::Arc::new(dude_nvm::Nvm::new(dude_nvm::NvmConfig::for_benchmark(
            env.device_bytes(),
            timing,
        )));
        let config = dudetm::DudeTmConfig {
            heap_bytes: env.heap_bytes,
            plog_bytes_per_thread: env.plog_bytes,
            max_threads: env.threads + 4,
            durability: dudetm::DurabilityMode::AsyncUnbounded,
            persist_threads: 1,
            persist_group: 1,
            compress_groups: false,
            checkpoint_every: 64,
            reproduce_threads: rt,
            shadow: dudetm::ShadowConfig::Identity,
            trace: trace_cfg,
        };
        let sys = dudetm::DudeTm::create_stm(nvm, dude_bench::systems::checked(config));
        let lines = env.heap_bytes / 64;
        {
            let mut t = sys.register_thread();
            let mut x = env.seed | 1;
            for _ in 0..ops {
                t.run(&mut |tx| {
                    // 32 scattered words, one per cache line.
                    for _ in 0..32 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let line = (x >> 17) % lines;
                        tx.write_word(PAddr::from_word_index(line * 8), x)?;
                    }
                    Ok(())
                });
            }
        }
        let committed = sys.stats_snapshot().committed;
        let backlog_from = sys.reproduced_id();
        let start = std::time::Instant::now();
        sys.quiesce();
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        let drained = committed - backlog_from;
        let rate = drained as f64 / secs;
        let speedup = match serial_rate {
            None => {
                serial_rate = Some(rate);
                "1.00x".to_string()
            }
            Some(base_rate) => format!("{:.2}x", rate / base_rate),
        };
        println!(
            "  drain [{rt} reproduce threads]: backlog {drained} txns in {:.1} ms; {}",
            secs * 1e3,
            sys.stats_snapshot().summary()
        );
        let mut row = vec![rt.to_string(), fmt_tps(rate), speedup];
        row.extend(latency_cols(sys.trace()));
        if trace_cfg.enabled {
            last_trace_json = Some(sys.trace().to_json());
        }
        table.push(row);
    }
    table.print();
    table.save_csv("bench_results");

    if let Some(path) = trace_out {
        match last_trace_json {
            Some(json) => match std::fs::write(&path, json) {
                Ok(()) => println!("[trace] chrome://tracing JSON written to {path}"),
                Err(e) => eprintln!("[trace] failed to write {path}: {e}"),
            },
            None => eprintln!("[trace] no traced run produced output"),
        }
    }
}
