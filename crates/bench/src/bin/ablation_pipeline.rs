//! Legacy shim: runs the five ablation specs from the experiment registry.
//!
//! `--section <n>` maps to one spec (1 = `ablation_vlog`,
//! 2 = `ablation_persist_threads`, 3 = `ablation_checkpoint_cadence`,
//! 4 = `ablation_reproduce_shards`, 5 = `ablation_flush_workers`); the
//! default runs all five. `--quick` and `--trace-out` keep their old
//! meaning. The experiments themselves live in `dude_bench::registry` and
//! are driven by `dude-bench run <spec>`.

fn main() {
    dude_bench::runner::legacy_main("ablation_pipeline");
}
