//! Figure 3: NVM writes saved by cross-transaction log combination and log
//! compression, as a function of the persist group size.
//!
//! Workload: YCSB session store (B+-tree KV, 10 K records, 50/50
//! read/update, Zipfian 0.99), per §5.4. Expected shape: combination saves
//! a few percent at group size 10 and grows steeply with group size (the
//! paper reaches 93 % at 100 000-transaction groups); compression achieves
//! a stable ~69 % payload reduction even for small groups.

use dude_bench::report::fmt_pct;
use dude_bench::{quick_flag, run_combo, BenchEnv, SystemKind, Table, WorkloadKind};

fn main() {
    let quick = quick_flag();
    let base = BenchEnv::from_quick(quick);
    let groups: &[usize] = if quick {
        &[10, 100, 1_000]
    } else {
        &[10, 100, 1_000, 10_000]
    };
    let workload = WorkloadKind::Ycsb { theta: 0.99 };

    let mut table = Table::new(
        "Figure 3 — log optimization vs group size (YCSB, zipf 0.99)",
        &[
            "group size",
            "entries saved by combination",
            "payload saved by compression",
            "total NVM log bytes saved",
            "throughput impact vs group=1",
        ],
    );

    // Baseline: no grouping.
    let baseline = run_combo(SystemKind::Dude, workload, &base);
    let base_tps = baseline.run.throughput;

    for &group in groups {
        let mut env = base;
        env.persist_group = group;
        env.compress = true;
        // Make sure enough transactions flow to fill groups.
        if env.ops < group as u64 * 20 {
            env.ops = group as u64 * 20;
        }
        let cell = run_combo(SystemKind::Dude, workload, &env);
        let stats = cell.pipeline.expect("pipeline stats");
        let combine = stats.combine_savings();
        let compress = stats.compression_savings();
        // Total savings: entries dropped by combination, then bytes dropped
        // by compression of what remains.
        let total = 1.0 - (1.0 - combine) * (1.0 - compress);
        table.push(vec![
            group.to_string(),
            fmt_pct(combine),
            fmt_pct(compress),
            fmt_pct(total),
            format!("{:+.1}%", (cell.run.throughput / base_tps - 1.0) * 100.0),
        ]);
    }
    table.print();
    table.save_csv("bench_results");
}
