//! Legacy shim: runs the `fig3` spec from the experiment registry.
//!
//! Kept so existing invocations (`cargo run --bin fig3_logopt [--quick]`)
//! keep working; the experiment itself lives in
//! `dude_bench::registry` and is driven by `dude-bench run fig3`.

fn main() {
    dude_bench::runner::legacy_main("fig3_logopt");
}
