//! Legacy shim: runs the `table1` spec from the experiment registry.
//!
//! Kept so existing invocations (`cargo run --bin table1_writes [--quick]`)
//! keep working; the experiment itself lives in
//! `dude_bench::registry` and is driven by `dude-bench run table1`.

fn main() {
    dude_bench::runner::legacy_main("table1_writes");
}
