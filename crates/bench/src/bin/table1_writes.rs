//! Table 1: memory-write statistics per benchmark on DudeTM
//! (1 GB/s NVM, 1000-cycle latency, 4 threads).
//!
//! "# writes" counts the transactional writes that become redo-log entries;
//! "# writes per tx" divides by committed transactions. Paper values for
//! the shape check: B+-tree ≈ 15.8 writes/tx, TPC-C (B+-tree) ≈ 183.5,
//! TATP = 1.0, HashTable = 3.0, TPC-C (hash) ≈ 156.5.

use dude_bench::report::fmt_tps;
use dude_bench::{quick_flag, run_combo, BenchEnv, SystemKind, Table, WorkloadKind};

fn main() {
    let env = BenchEnv::from_quick(quick_flag());
    let workloads = [
        WorkloadKind::BTree,
        WorkloadKind::TpccBTree,
        WorkloadKind::TatpBTree,
        WorkloadKind::HashTable,
        WorkloadKind::TpccHash,
        WorkloadKind::TatpHash,
    ];
    let mut table = Table::new(
        "Table 1 — memory writes (DudeTM, 1 GB/s, 1000 cycles, 4 threads)",
        &[
            "benchmark",
            "# writes/s",
            "throughput",
            "# writes per tx",
            "paper writes/tx",
        ],
    );
    let paper = ["15.8", "183.5", "1.0", "3.0", "156.5", "1.0"];
    for (workload, paper_wtx) in workloads.into_iter().zip(paper) {
        let cell = run_combo(SystemKind::Dude, workload, &env);
        let stats = cell.pipeline.expect("DudeTM exposes pipeline stats");
        let writes_per_sec = stats.entries_logged as f64 / cell.run.elapsed.as_secs_f64();
        let writes_per_tx = stats.entries_logged as f64 / stats.commits.max(1) as f64;
        table.push(vec![
            workload.label(),
            format!("{:.1} M/s", writes_per_sec / 1e6),
            fmt_tps(cell.run.throughput),
            format!("{writes_per_tx:.1}"),
            paper_wtx.to_string(),
        ]);
    }
    table.print();
    table.save_csv("bench_results");
}
