//! Legacy shim: runs the `endurance` spec from the experiment registry.
//!
//! Kept so existing invocations (`cargo run --bin endurance_wear [--quick]`)
//! keep working; the experiment itself lives in
//! `dude_bench::registry` and is driven by `dude-bench run endurance`.

fn main() {
    dude_bench::runner::legacy_main("endurance_wear");
}
