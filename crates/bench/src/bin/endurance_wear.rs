//! Endurance study (extension): NVM cell wear with and without log
//! combination.
//!
//! The paper motivates log combination with NVM's limited write endurance
//! (§1, §3.3: "significantly reduce the amount of writes to persistent
//! memory, whose endurance is much lower than DRAM"), but only reports
//! write *volume*. This experiment measures the wear metric that actually
//! kills devices — flushes of the **hottest cache line** — under the
//! skewed YCSB workload, with combination off and at increasing group
//! sizes.
//!
//! Expected shape: combination collapses repeated writes of hot addresses
//! into one flush per group, so the hottest *data-region* line's wear drops
//! roughly in proportion to the combination savings, while the log region's
//! wear is spread by the ring structure.

use std::sync::Arc;

use dude_bench::{quick_flag, BenchEnv, Table, WorkloadKind};
use dude_nvm::{Nvm, NvmConfig, TimingConfig};
use dude_workloads::driver::{load_workload, run_fixed_ops, RunConfig};
use dudetm::{DudeTm, DudeTmConfig};

fn main() {
    let quick = quick_flag();
    let env = BenchEnv::from_quick(quick);
    let groups: &[usize] = if quick {
        &[1, 100]
    } else {
        &[1, 10, 100, 1_000]
    };

    let mut table = Table::new(
        "Endurance — line wear vs log combination (YCSB, zipf 0.99)",
        &[
            "group size",
            "max line wear",
            "total line flushes",
            "lines touched",
            "throughput",
        ],
    );
    for &group in groups {
        let timing = TimingConfig {
            latency_ns: TimingConfig::cycles_to_ns(env.latency_cycles),
            bandwidth_bytes_per_sec: env.bandwidth_gb << 30,
            enabled: true,
        };
        let nvm = Arc::new(Nvm::new(
            NvmConfig::for_benchmark(env.device_bytes(), timing).with_wear_tracking(),
        ));
        let config = DudeTmConfig {
            heap_bytes: env.heap_bytes,
            plog_bytes_per_thread: env.plog_bytes,
            max_threads: env.threads + 4,
            durability: env.durability,
            persist_threads: 1,
            persist_group: group,
            persist_flush_workers: 1,
            compress_groups: group > 1,
            checkpoint_every: 64,
            reproduce_threads: 1,
            shadow: dudetm::ShadowConfig::Identity,
            trace: dudetm::TraceConfig::disabled(),
        };
        let sys = DudeTm::create_stm(Arc::clone(&nvm), dude_bench::systems::checked(config));
        let w = dude_bench::workloads::build_workload(WorkloadKind::Ycsb { theta: 0.99 }, &env);
        load_workload(&sys, w.as_ref());
        nvm.wear_reset();
        let stats = run_fixed_ops(
            &sys,
            w.as_ref(),
            RunConfig {
                threads: env.threads,
                seed: env.seed,
                latency: env.latency_mode,
            },
            env.ops_per_thread(),
        );
        sys.quiesce();
        let wear = nvm.wear_summary().expect("wear enabled");
        table.push(vec![
            if group == 1 {
                "1 (off)".into()
            } else {
                group.to_string()
            },
            wear.max_line_writes.to_string(),
            wear.total_line_writes.to_string(),
            wear.lines_touched.to_string(),
            dude_bench::report::fmt_tps(stats.throughput),
        ]);
    }
    table.print();
    table.save_csv("bench_results");
}
