//! The report renderer: regenerates the result tables in `EXPERIMENTS.md`
//! from recorded `BENCH_*.json` files.
//!
//! The document owns its prose; the renderer owns the numbers. Every
//! generated region is delimited by marker comments:
//!
//! ```markdown
//! <!-- bench:table2 -->
//! ...replaced by the renderer...
//! <!-- /bench:table2 -->
//! ```
//!
//! A marker names a spec (`bench:table2` — renders all of its tables) or
//! one table of a multi-table spec (`bench:fig2:tatp_hash`). Rendering is
//! a pure function of the JSON records: no timestamps, no git SHA — two
//! renders from the same records are byte-identical, which is what the CI
//! `docs-freshness` check and the determinism test rely on.

use std::collections::BTreeMap;
use std::fmt;

use crate::record::Record;

/// A renderer failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RenderError {
    /// A marker names a spec with no loaded record.
    MissingRecord {
        /// Spec name.
        spec: String,
    },
    /// A marker names a table slug the record does not contain.
    UnknownSlug {
        /// Spec name.
        spec: String,
        /// Slug name.
        slug: String,
    },
    /// An opening marker has no matching closing marker.
    UnclosedMarker {
        /// The marker key (`spec` or `spec:slug`).
        key: String,
        /// 1-indexed line of the opening marker.
        line: usize,
    },
}

impl fmt::Display for RenderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RenderError::MissingRecord { spec } => {
                write!(
                    f,
                    "no BENCH_{spec}.json record loaded for marker 'bench:{spec}'"
                )
            }
            RenderError::UnknownSlug { spec, slug } => {
                write!(f, "record for '{spec}' has no table slug '{slug}'")
            }
            RenderError::UnclosedMarker { key, line } => {
                write!(
                    f,
                    "marker 'bench:{key}' opened on line {line} is never closed"
                )
            }
        }
    }
}

impl std::error::Error for RenderError {}

/// The deterministic provenance line for a rendered block (no SHA, no
/// date — only facts that are stable across re-renders of the same data).
fn provenance(record: &Record, slug: Option<&str>) -> String {
    let which = match slug {
        Some(s) => format!("`{}:{s}`", record.spec),
        None => format!("`{}`", record.spec),
    };
    format!(
        "*{which} — rendered by `dude-bench render` from `{}` ({} tier, seed {}{}{}).*",
        record.file_name(),
        record.tier.name(),
        record.seed,
        if record.deterministic {
            ", deterministic"
        } else {
            ""
        },
        if record.env.source == "run" {
            String::new()
        } else {
            format!(", source {}", record.env.source)
        },
    )
}

/// Renders the replacement content for one marker (without the marker
/// lines themselves).
///
/// # Errors
///
/// [`RenderError::MissingRecord`] / [`RenderError::UnknownSlug`].
pub fn render_block(
    records: &BTreeMap<String, Record>,
    spec: &str,
    slug: Option<&str>,
) -> Result<String, RenderError> {
    let record = records
        .get(spec)
        .ok_or_else(|| RenderError::MissingRecord {
            spec: spec.to_string(),
        })?;
    let mut out = String::new();
    out.push_str(&provenance(record, slug));
    out.push('\n');
    match slug {
        Some(s) => {
            let t = record.table(s).ok_or_else(|| RenderError::UnknownSlug {
                spec: spec.to_string(),
                slug: s.to_string(),
            })?;
            out.push('\n');
            out.push_str(&t.table.to_markdown());
        }
        None => {
            let many = record.tables.len() > 1;
            for t in &record.tables {
                out.push('\n');
                if many {
                    out.push_str(&format!("**{}**\n\n", t.table.title));
                }
                out.push_str(&t.table.to_markdown());
            }
            for note in &record.notes {
                out.push('\n');
                out.push_str(&format!("*({note})*\n"));
            }
        }
    }
    Ok(out)
}

/// Parses `<!-- bench:KEY -->` / `<!-- /bench:KEY -->` from a line,
/// returning `(key, is_close)`.
fn parse_marker(line: &str) -> Option<(&str, bool)> {
    let t = line.trim();
    let inner = t.strip_prefix("<!--")?.strip_suffix("-->")?.trim();
    if let Some(key) = inner.strip_prefix("/bench:") {
        Some((key.trim(), true))
    } else if let Some(key) = inner.strip_prefix("bench:") {
        Some((key.trim(), false))
    } else {
        None
    }
}

/// Rewrites every marker block in `doc`, returning the new text and the
/// number of blocks rendered.
///
/// # Errors
///
/// Any [`RenderError`] from a malformed marker or missing data.
pub fn render_doc(
    doc: &str,
    records: &BTreeMap<String, Record>,
) -> Result<(String, usize), RenderError> {
    let lines: Vec<&str> = doc.split_inclusive('\n').collect();
    let mut out = String::with_capacity(doc.len());
    let mut rendered = 0;
    let mut i = 0;
    while i < lines.len() {
        let line = lines[i];
        match parse_marker(line) {
            Some((key, false)) => {
                // Find the matching close marker.
                let close = (i + 1..lines.len())
                    .find(|&j| parse_marker(lines[j]) == Some((key, true)))
                    .ok_or_else(|| RenderError::UnclosedMarker {
                        key: key.to_string(),
                        line: i + 1,
                    })?;
                let (spec, slug) = match key.split_once(':') {
                    Some((s, g)) => (s, Some(g)),
                    None => (key, None),
                };
                out.push_str(line);
                out.push_str(&render_block(records, spec, slug)?);
                out.push_str(lines[close]);
                rendered += 1;
                i = close + 1;
            }
            _ => {
                out.push_str(line);
                i += 1;
            }
        }
    }
    Ok((out, rendered))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::EnvMeta;
    use crate::report::Table;
    use crate::spec::{SpecTable, Tier};

    fn records() -> BTreeMap<String, Record> {
        let mut t1 = Table::new("Alpha", &["k", "v"]);
        t1.push(vec!["a".into(), "1".into()]);
        let mut t2 = Table::new("Beta", &["k", "v"]);
        t2.push(vec!["b".into(), "2".into()]);
        let rec = Record {
            spec: "demo".into(),
            title: "Demo".into(),
            paper_ref: "none".into(),
            tier: Tier::Quick,
            deterministic: false,
            seed: 42,
            env: EnvMeta {
                os: "linux".into(),
                arch: "x86_64".into(),
                cpus: 1,
                git_sha: "abc".into(),
                source: "run".into(),
            },
            metrics: vec![],
            tables: vec![
                SpecTable {
                    slug: "alpha".into(),
                    table: t1,
                },
                SpecTable {
                    slug: "beta".into(),
                    table: t2,
                },
            ],
            notes: vec!["hello".into()],
        };
        let mut m = BTreeMap::new();
        m.insert("demo".to_string(), rec);
        m
    }

    #[test]
    fn replaces_block_content() {
        let doc = "intro\n<!-- bench:demo:alpha -->\nSTALE\n<!-- /bench:demo:alpha -->\ntail\n";
        let (out, n) = render_doc(doc, &records()).unwrap();
        assert_eq!(n, 1);
        assert!(!out.contains("STALE"));
        assert!(out.contains("| a | 1 |"));
        assert!(!out.contains("| b | 2 |"));
        assert!(out.starts_with("intro\n"));
        assert!(out.ends_with("tail\n"));
        // Idempotent: rendering the output again changes nothing.
        let (again, _) = render_doc(&out, &records()).unwrap();
        assert_eq!(again, out);
    }

    #[test]
    fn spec_level_marker_renders_all_tables_and_notes() {
        let doc = "<!-- bench:demo -->\n<!-- /bench:demo -->\n";
        let (out, _) = render_doc(doc, &records()).unwrap();
        assert!(out.contains("**Alpha**"));
        assert!(out.contains("| b | 2 |"));
        assert!(out.contains("*(hello)*"));
        assert!(out.contains("quick tier, seed 42"));
    }

    #[test]
    fn errors_are_typed() {
        let recs = records();
        let unknown = "<!-- bench:nope -->\n<!-- /bench:nope -->\n";
        assert_eq!(
            render_doc(unknown, &recs).unwrap_err(),
            RenderError::MissingRecord {
                spec: "nope".into()
            }
        );
        let bad_slug = "<!-- bench:demo:nope -->\n<!-- /bench:demo:nope -->\n";
        assert!(matches!(
            render_doc(bad_slug, &recs).unwrap_err(),
            RenderError::UnknownSlug { .. }
        ));
        let unclosed = "<!-- bench:demo -->\nno close\n";
        assert_eq!(
            render_doc(unclosed, &recs).unwrap_err(),
            RenderError::UnclosedMarker {
                key: "demo".into(),
                line: 1
            }
        );
    }

    #[test]
    fn non_marker_comments_pass_through() {
        let doc = "<!-- a normal comment -->\ntext\n";
        let (out, n) = render_doc(doc, &records()).unwrap();
        assert_eq!(out, doc);
        assert_eq!(n, 0);
    }
}
