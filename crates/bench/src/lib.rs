//! Benchmark harness regenerating every table and figure of the DudeTM
//! paper's evaluation (§5).
//!
//! One binary per experiment lives in `src/bin/`:
//!
//! | Binary | Paper content |
//! |---|---|
//! | `fig2_throughput` | Figure 2 — throughput vs NVM bandwidth, 4 systems × 6 benchmarks |
//! | `table1_writes` | Table 1 — NVM write statistics per benchmark |
//! | `table2_systems` | Table 2 — DudeTM vs DudeTM-Sync vs Mnemosyne vs NVML |
//! | `table3_latency` | Table 3 — durable-latency percentiles, hash-based TPC-C |
//! | `fig3_logopt` | Figure 3 — log combination & compression savings vs group size |
//! | `fig4_swap` | Figure 4 — paging overhead vs shadow size, software vs hardware |
//! | `fig5_scalability` | Figure 5 — thread scaling, TPC-C (B+-tree), plus low-conflict variant |
//! | `table4_htm` | Table 4 — STM- vs HTM-based DudeTM |
//!
//! Each binary accepts `--quick` for a fast smoke run and prints markdown
//! tables (also written as CSV under `bench_results/`). Scale-downs
//! relative to the paper (single-CPU container, smaller heaps) are
//! documented in `EXPERIMENTS.md`.

pub mod env;
pub mod report;
pub mod systems;
pub mod workloads;

pub use env::BenchEnv;
pub use report::Table;
pub use systems::{run_combo, run_combo_median, SystemKind};
pub use workloads::WorkloadKind;

/// Returns `true` if `--quick` was passed on the command line.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Returns the section number given with `--section <n>`, if any.
/// Multi-section binaries (the ablations) run only that section when set —
/// CI uses it to smoke-test a new section without paying for the rest.
pub fn section_flag() -> Option<u32> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--section" {
            return Some(
                args.next()
                    .and_then(|n| n.parse().ok())
                    .expect("--section takes a number"),
            );
        }
    }
    None
}

/// Returns the path given with `--trace-out <path>`, if any. Binaries that
/// support it enable the observability layer and write the final traced
/// run's chrome://tracing-compatible JSON there.
pub fn trace_out_flag() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--trace-out" {
            return args.next();
        }
    }
    None
}
