//! Benchmark harness regenerating every table and figure of the DudeTM
//! paper's evaluation (§5).
//!
//! Every experiment — each paper table/figure plus the repo's ablations
//! and endurance extension — is a declarative [`spec::Spec`] in
//! [`registry::SPECS`]: a name, the paper reference, the tables it
//! declares, and a runner `fn(&SpecCtx) -> SpecOutput`. The `dude-bench`
//! binary ([`cli`]) owns the whole measurement loop on top of it:
//!
//! | Subcommand | Module | What it does |
//! |---|---|---|
//! | `list` | [`registry`] | enumerate specs, their tables and paper refs |
//! | `run` | [`runner`] | execute specs at `--quick`/`--full` tier, write `<spec>__<slug>.csv` + `BENCH_<spec>.json` ([`record`]) |
//! | `diff` | [`diff`] | gate a run against a baseline bundle at a tolerance; typed errors, nonzero exit on regression |
//! | `render` | [`render`] | regenerate the `<!-- bench:... -->` blocks of `EXPERIMENTS.md` from records (`--check` for CI) |
//! | `baseline` | [`diff`] | bundle a run's records into `bench_results/baseline.json` |
//! | `manifest` | [`manifest`] | regenerate `bench_results/MANIFEST.md` mapping specs to artifacts |
//! | `import-legacy` | [`import`] | one-shot migration of pre-registry CSV artifacts to canonical names + records |
//!
//! The pre-registry per-experiment binaries (`fig2_throughput`,
//! `table1_writes`, …, `ablation_pipeline`, `endurance_wear`) remain in
//! `src/bin/` as thin shims over [`runner::legacy_main`] and keep their
//! old flags (`--quick`, `--section`, `--trace-out`).
//!
//! Records are hand-rolled JSON ([`json`]) — no serde, byte-stable
//! pretty-printing so deterministic runs diff clean. Scale-downs relative
//! to the paper (single-CPU container, smaller heaps) are documented in
//! `EXPERIMENTS.md`; `DESIGN.md §13` describes the methodology.

#![warn(missing_docs)]

pub mod cli;
pub mod diff;
pub mod env;
pub mod import;
pub mod json;
pub mod manifest;
pub mod metrics_out;
pub mod record;
pub mod registry;
pub mod render;
pub mod report;
pub mod runner;
pub mod spec;
pub mod systems;
pub mod workloads;

pub use env::BenchEnv;
pub use report::Table;
pub use spec::{Spec, SpecCtx, SpecOutput, Tier};
pub use systems::{run_combo, run_combo_median, SystemKind};
pub use workloads::WorkloadKind;

/// Returns `true` if `--quick` was passed on the command line.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Returns the section number given with `--section <n>`, if any.
/// Multi-section binaries (the ablations) run only that section when set —
/// CI uses it to smoke-test a new section without paying for the rest.
pub fn section_flag() -> Option<u32> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--section" {
            return Some(
                args.next()
                    .and_then(|n| n.parse().ok())
                    .expect("--section takes a number"),
            );
        }
    }
    None
}

/// Returns the path given with `--trace-out <path>`, if any. Binaries that
/// support it enable the observability layer and write the final traced
/// run's chrome://tracing-compatible JSON there.
pub fn trace_out_flag() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--trace-out" {
            return args.next();
        }
    }
    None
}
