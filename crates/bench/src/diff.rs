//! The regression gate: `dude-bench diff` compares a current set of
//! `BENCH_*.json` records against a committed baseline and fails on
//! regression.
//!
//! Only metrics marked `gated` participate by default — wall-clock numbers
//! vary across hosts far more than any useful tolerance, so the gate runs
//! on structural metrics (writes/tx, committed counts) and the operator
//! opts walltime metrics in with `--include-walltime` for same-machine
//! baselines.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use crate::record::Record;
use crate::spec::Better;

/// A typed gate failure (usage/setup error, as opposed to a measured
/// regression, which is reported in the [`DiffReport`]).
#[derive(Debug, Clone, PartialEq)]
pub enum DiffError {
    /// The baseline names a spec the current run did not produce.
    MissingSpec {
        /// Spec name.
        spec: String,
    },
    /// A gated baseline metric is absent from the current record.
    MissingMetric {
        /// Spec name.
        spec: String,
        /// Metric name.
        metric: String,
    },
    /// Baseline and current records are not comparable.
    EnvMismatch {
        /// Spec name.
        spec: String,
        /// Which environment field disagrees (`"tier"`, `"unit"`...).
        field: String,
        /// Baseline value.
        baseline: String,
        /// Current value.
        current: String,
    },
    /// The tolerance argument did not parse.
    BadTolerance(
        /// The offending argument.
        String,
    ),
    /// Reading or parsing a record file failed.
    Io(
        /// Path-qualified message.
        String,
    ),
}

impl fmt::Display for DiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffError::MissingSpec { spec } => {
                write!(f, "baseline spec '{spec}' missing from current results")
            }
            DiffError::MissingMetric { spec, metric } => {
                write!(
                    f,
                    "spec '{spec}': gated metric '{metric}' missing from current record"
                )
            }
            DiffError::EnvMismatch {
                spec,
                field,
                baseline,
                current,
            } => write!(
                f,
                "spec '{spec}': {field} mismatch (baseline {baseline}, current {current}) — \
                 records are not comparable"
            ),
            DiffError::BadTolerance(s) => {
                write!(f, "bad tolerance '{s}' (expected e.g. '15%' or '0.15')")
            }
            DiffError::Io(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for DiffError {}

/// Parses a tolerance given as `"15%"` or `"0.15"` into a fraction.
///
/// # Errors
///
/// [`DiffError::BadTolerance`] for anything unparsable or negative.
pub fn parse_tolerance(s: &str) -> Result<f64, DiffError> {
    let bad = || DiffError::BadTolerance(s.to_string());
    let v = if let Some(pct) = s.strip_suffix('%') {
        pct.trim().parse::<f64>().map_err(|_| bad())? / 100.0
    } else {
        s.trim().parse::<f64>().map_err(|_| bad())?
    };
    if v.is_finite() && v >= 0.0 {
        Ok(v)
    } else {
        Err(bad())
    }
}

/// One metric whose current value moved beyond tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Spec name.
    pub spec: String,
    /// Metric name.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Relative change, `(current - baseline) / |baseline|`.
    pub change: f64,
    /// The metric's regression direction.
    pub better: Better,
}

/// The gate's outcome.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Gated metrics compared.
    pub checked: usize,
    /// Metrics beyond tolerance in the regressing direction.
    pub regressions: Vec<Regression>,
    /// Metrics beyond tolerance in the *improving* direction (reported,
    /// never failing — a big unexplained improvement is worth a look but
    /// must not block).
    pub improvements: Vec<Regression>,
}

impl DiffReport {
    /// `true` when no gated metric regressed.
    #[must_use]
    pub fn pass(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// `true` if moving from `base` to `cur` is a regression at `tol`:
/// strictly beyond the `base * (1 ∓ tol)` boundary in the bad direction
/// (landing exactly on the boundary passes).
fn regressed(base: f64, cur: f64, tol: f64, better: Better) -> bool {
    if base == 0.0 {
        return cur != 0.0;
    }
    let lo = base - base.abs() * tol;
    let hi = base + base.abs() * tol;
    match better {
        Better::Higher => cur < lo,
        Better::Lower => cur > hi,
        Better::TwoSided => cur < lo || cur > hi,
    }
}

/// Compares `current` records against `baseline` records.
///
/// Every baseline spec must be present in `current` with a matching tier;
/// every gated baseline metric (plus walltime metrics when
/// `include_walltime`) must be present with a matching unit and within
/// `tolerance` of its baseline value.
///
/// # Errors
///
/// Typed [`DiffError`]s for missing specs/metrics and incomparable
/// environments. Measured regressions are *not* errors — they land in the
/// report.
pub fn diff_records(
    baseline: &[Record],
    current: &[Record],
    tolerance: f64,
    include_walltime: bool,
) -> Result<DiffReport, DiffError> {
    let cur_by_name: BTreeMap<&str, &Record> =
        current.iter().map(|r| (r.spec.as_str(), r)).collect();
    let mut report = DiffReport::default();
    for base in baseline {
        let cur = cur_by_name
            .get(base.spec.as_str())
            .ok_or_else(|| DiffError::MissingSpec {
                spec: base.spec.clone(),
            })?;
        if base.tier != cur.tier {
            return Err(DiffError::EnvMismatch {
                spec: base.spec.clone(),
                field: "tier".into(),
                baseline: base.tier.name().into(),
                current: cur.tier.name().into(),
            });
        }
        for bm in &base.metrics {
            if !(bm.gated || (include_walltime && bm.walltime)) {
                continue;
            }
            let cm = cur
                .metric(&bm.name)
                .ok_or_else(|| DiffError::MissingMetric {
                    spec: base.spec.clone(),
                    metric: bm.name.clone(),
                })?;
            if bm.unit != cm.unit {
                return Err(DiffError::EnvMismatch {
                    spec: base.spec.clone(),
                    field: format!("unit of '{}'", bm.name),
                    baseline: bm.unit.into(),
                    current: cm.unit.into(),
                });
            }
            report.checked += 1;
            let change = if bm.value == 0.0 {
                if cm.value == 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                (cm.value - bm.value) / bm.value.abs()
            };
            let entry = Regression {
                spec: base.spec.clone(),
                metric: bm.name.clone(),
                baseline: bm.value,
                current: cm.value,
                change,
                better: bm.better,
            };
            if regressed(bm.value, cm.value, tolerance, bm.better) {
                report.regressions.push(entry);
            } else {
                // Out-of-band improvements (beyond tolerance in the good
                // direction) are surfaced but never fail the gate.
                let improved = match bm.better {
                    Better::Higher => {
                        bm.value != 0.0 && cm.value > bm.value + bm.value.abs() * tolerance
                    }
                    Better::Lower => {
                        bm.value != 0.0 && cm.value < bm.value - bm.value.abs() * tolerance
                    }
                    Better::TwoSided => false,
                };
                if improved {
                    report.improvements.push(entry);
                }
            }
        }
    }
    Ok(report)
}

/// Loads every `BENCH_*.json` under `dir` (sorted by file name).
///
/// # Errors
///
/// [`DiffError::Io`] on unreadable directories or malformed records.
pub fn load_records(dir: &Path) -> Result<Vec<Record>, DiffError> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| DiffError::Io(format!("{}: {e}", dir.display())))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| Record::load(&p).map_err(DiffError::Io))
        .collect()
}

/// Loads a baseline: a directory of `BENCH_*.json` files, a single record
/// file, or a bundle file (`{"records": [...]}` as written by
/// `dude-bench baseline`).
///
/// # Errors
///
/// [`DiffError::Io`] on unreadable paths or malformed records.
pub fn load_baseline(path: &Path) -> Result<Vec<Record>, DiffError> {
    if path.is_dir() {
        return load_records(path);
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| DiffError::Io(format!("{}: {e}", path.display())))?;
    let doc =
        crate::json::parse(&text).map_err(|e| DiffError::Io(format!("{}: {e}", path.display())))?;
    if let Some(records) = doc.get("records").and_then(crate::json::Json::as_arr) {
        records
            .iter()
            .map(|r| {
                Record::from_json(r).map_err(|e| DiffError::Io(format!("{}: {e}", path.display())))
            })
            .collect()
    } else {
        Ok(vec![Record::from_json(&doc).map_err(|e| {
            DiffError::Io(format!("{}: {e}", path.display()))
        })?])
    }
}

/// Serializes records into a baseline bundle document.
#[must_use]
pub fn baseline_bundle(records: &[Record]) -> crate::json::Json {
    crate::json::Json::Obj(vec![
        ("schema".into(), crate::json::Json::num(1.0)),
        (
            "records".into(),
            crate::json::Json::Arr(records.iter().map(Record::to_json).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_parsing() {
        assert_eq!(parse_tolerance("15%").unwrap(), 0.15);
        assert_eq!(parse_tolerance("0.15").unwrap(), 0.15);
        assert_eq!(parse_tolerance("25 %").unwrap(), 0.25);
        assert!(parse_tolerance("nope").is_err());
        assert!(parse_tolerance("-5%").is_err());
    }

    #[test]
    fn boundary_semantics() {
        // Exactly at the boundary passes; strictly beyond fails.
        assert!(!regressed(100.0, 85.0, 0.15, Better::Higher));
        assert!(regressed(100.0, 84.999, 0.15, Better::Higher));
        assert!(!regressed(100.0, 115.0, 0.15, Better::Lower));
        assert!(regressed(100.0, 115.001, 0.15, Better::Lower));
        assert!(regressed(100.0, 115.001, 0.15, Better::TwoSided));
        assert!(regressed(100.0, 84.999, 0.15, Better::TwoSided));
        assert!(!regressed(100.0, 100.0, 0.0, Better::TwoSided));
        // Improvements never regress the one-sided directions.
        assert!(!regressed(100.0, 1000.0, 0.15, Better::Higher));
        assert!(!regressed(100.0, 1.0, 0.15, Better::Lower));
        // Zero baseline: any drift is a regression.
        assert!(regressed(0.0, 0.1, 0.15, Better::TwoSided));
        assert!(!regressed(0.0, 0.0, 0.15, Better::TwoSided));
    }
}
