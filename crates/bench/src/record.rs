//! The canonical on-disk experiment record: `BENCH_<spec>.json`.
//!
//! One record per spec per run, carrying the rendered tables (what the
//! report renderer consumes), the named metrics with raw samples and
//! median/p95 (what the regression gate consumes), and enough environment
//! metadata (tier, seed, git SHA, host shape) to judge whether two
//! records are comparable.

use crate::json::{parse, Json, ParseError};
use crate::report::Table;
use crate::spec::{p95, Better, Metric, Spec, SpecCtx, SpecOutput, SpecTable, Tier};

/// Record schema version (bumped on incompatible layout changes).
pub const SCHEMA_VERSION: f64 = 1.0;

/// Environment metadata stamped into every record.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvMeta {
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// Available parallelism at run time.
    pub cpus: u64,
    /// Git commit (short SHA) of the tree that produced the record, or
    /// `"unknown"` outside a git checkout.
    pub git_sha: String,
    /// `"run"` for records produced by `dude-bench run`,
    /// `"imported-legacy-csv"` for records bootstrapped from the
    /// pre-harness CSV artifacts (tables only, no metrics).
    pub source: String,
}

impl EnvMeta {
    /// Captures the current host (source `"run"`).
    #[must_use]
    pub fn capture() -> EnvMeta {
        EnvMeta {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
            git_sha: git_short_sha(),
            source: "run".to_string(),
        }
    }
}

/// Best-effort short git SHA of the working tree.
#[must_use]
pub fn git_short_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map_or_else(|| "unknown".to_string(), |s| s.trim().to_string())
}

/// One complete experiment record.
#[derive(Debug, Clone)]
pub struct Record {
    /// Spec name (`table2`, ...).
    pub spec: String,
    /// Human title.
    pub title: String,
    /// Paper reference.
    pub paper_ref: String,
    /// Tier the record was produced at.
    pub tier: Tier,
    /// Whether wall-clock cells were masked (deterministic mode).
    pub deterministic: bool,
    /// RNG seed.
    pub seed: u64,
    /// Environment metadata.
    pub env: EnvMeta,
    /// Named metrics.
    pub metrics: Vec<Metric>,
    /// Rendered tables.
    pub tables: Vec<SpecTable>,
    /// Free-form notes.
    pub notes: Vec<String>,
}

impl Record {
    /// Builds a record from a spec's output.
    ///
    /// In deterministic mode wall-clock metric values are masked to `0`
    /// (their table cells are already `-`), so the whole JSON record —
    /// not just the rendered tables — is byte-stable under pinned seeds.
    #[must_use]
    pub fn from_output(spec: &Spec, ctx: &SpecCtx, mut out: SpecOutput, env: EnvMeta) -> Record {
        if ctx.deterministic {
            for m in &mut out.metrics {
                if m.walltime {
                    m.value = 0.0;
                    m.samples.clear();
                }
            }
        }
        Record {
            spec: spec.name.to_string(),
            title: spec.title.to_string(),
            paper_ref: spec.paper_ref.to_string(),
            tier: ctx.tier(),
            deterministic: ctx.deterministic,
            seed: ctx.seed,
            env,
            metrics: out.metrics,
            tables: out.tables,
            notes: out.notes,
        }
    }

    /// The record's canonical file name.
    #[must_use]
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.spec)
    }

    /// Looks up a metric by name.
    #[must_use]
    pub fn metric(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Looks up a table by slug.
    #[must_use]
    pub fn table(&self, slug: &str) -> Option<&SpecTable> {
        self.tables.iter().find(|t| t.slug == slug)
    }

    /// Serializes to the canonical JSON form (byte-stable for identical
    /// content).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let metrics = self
            .metrics
            .iter()
            .map(|m| {
                Json::Obj(vec![
                    ("name".into(), Json::str(&m.name)),
                    ("unit".into(), Json::str(m.unit.to_string())),
                    ("value".into(), Json::num(m.value)),
                    ("p95".into(), Json::num(p95(&m.samples))),
                    ("gated".into(), Json::Bool(m.gated)),
                    ("better".into(), Json::str(m.better.name())),
                    ("walltime".into(), Json::Bool(m.walltime)),
                    (
                        "samples".into(),
                        Json::Arr(m.samples.iter().map(|&v| Json::num(v)).collect()),
                    ),
                ])
            })
            .collect();
        let tables = self
            .tables
            .iter()
            .map(|t| {
                Json::Obj(vec![
                    ("slug".into(), Json::str(&t.slug)),
                    ("title".into(), Json::str(&t.table.title)),
                    (
                        "headers".into(),
                        Json::Arr(t.table.headers.iter().map(Json::str).collect()),
                    ),
                    (
                        "rows".into(),
                        Json::Arr(
                            t.table
                                .rows
                                .iter()
                                .map(|r| Json::Arr(r.iter().map(Json::str).collect()))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::num(SCHEMA_VERSION)),
            ("spec".into(), Json::str(&self.spec)),
            ("title".into(), Json::str(&self.title)),
            ("paper_ref".into(), Json::str(&self.paper_ref)),
            ("tier".into(), Json::str(self.tier.name())),
            ("deterministic".into(), Json::Bool(self.deterministic)),
            ("seed".into(), Json::num(self.seed as f64)),
            (
                "environment".into(),
                Json::Obj(vec![
                    ("os".into(), Json::str(&self.env.os)),
                    ("arch".into(), Json::str(&self.env.arch)),
                    ("cpus".into(), Json::num(self.env.cpus as f64)),
                    ("git_sha".into(), Json::str(&self.env.git_sha)),
                    ("source".into(), Json::str(&self.env.source)),
                ]),
            ),
            ("metrics".into(), Json::Arr(metrics)),
            ("tables".into(), Json::Arr(tables)),
            (
                "notes".into(),
                Json::Arr(self.notes.iter().map(Json::str).collect()),
            ),
        ])
    }

    /// Parses a record from its JSON text.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed JSON or a missing /
    /// mistyped required field.
    pub fn from_json_text(text: &str) -> Result<Record, String> {
        let doc = parse(text).map_err(|e: ParseError| e.to_string())?;
        Record::from_json(&doc)
    }

    /// Parses a record from an already-parsed JSON document.
    ///
    /// # Errors
    ///
    /// As [`Record::from_json_text`].
    pub fn from_json(doc: &Json) -> Result<Record, String> {
        let req_str = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field '{key}'"))
        };
        let tier_name = req_str("tier")?;
        let tier =
            Tier::from_name(&tier_name).ok_or_else(|| format!("unknown tier '{tier_name}'"))?;
        let env_doc = doc
            .get("environment")
            .ok_or_else(|| "missing 'environment'".to_string())?;
        let env_str = |key: &str| {
            env_doc
                .get(key)
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string()
        };
        let env = EnvMeta {
            os: env_str("os"),
            arch: env_str("arch"),
            cpus: env_doc.get("cpus").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            git_sha: env_str("git_sha"),
            source: env_str("source"),
        };
        let mut metrics = Vec::new();
        for m in doc
            .get("metrics")
            .and_then(Json::as_arr)
            .unwrap_or_default()
        {
            let name = m
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| "metric without 'name'".to_string())?
                .to_string();
            let better = m
                .get("better")
                .and_then(Json::as_str)
                .and_then(Better::from_name)
                .ok_or_else(|| format!("metric '{name}' has bad 'better'"))?;
            let samples: Vec<f64> = m
                .get("samples")
                .and_then(Json::as_arr)
                .unwrap_or_default()
                .iter()
                .filter_map(Json::as_f64)
                .collect();
            metrics.push(Metric {
                name,
                unit: leak_unit(m.get("unit").and_then(Json::as_str).unwrap_or("")),
                value: m
                    .get("value")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| "metric without 'value'".to_string())?,
                samples,
                gated: m.get("gated").and_then(Json::as_bool).unwrap_or(false),
                better,
                walltime: m.get("walltime").and_then(Json::as_bool).unwrap_or(false),
            });
        }
        let mut tables = Vec::new();
        for t in doc.get("tables").and_then(Json::as_arr).unwrap_or_default() {
            let slug = t
                .get("slug")
                .and_then(Json::as_str)
                .ok_or_else(|| "table without 'slug'".to_string())?
                .to_string();
            let title = t
                .get("title")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string();
            let headers: Vec<String> = t
                .get("headers")
                .and_then(Json::as_arr)
                .unwrap_or_default()
                .iter()
                .filter_map(Json::as_str)
                .map(str::to_string)
                .collect();
            let rows: Vec<Vec<String>> = t
                .get("rows")
                .and_then(Json::as_arr)
                .unwrap_or_default()
                .iter()
                .map(|row| {
                    row.as_arr()
                        .unwrap_or_default()
                        .iter()
                        .filter_map(Json::as_str)
                        .map(str::to_string)
                        .collect()
                })
                .collect();
            tables.push(SpecTable {
                slug,
                table: Table {
                    title,
                    headers,
                    rows,
                },
            });
        }
        let notes = doc
            .get("notes")
            .and_then(Json::as_arr)
            .unwrap_or_default()
            .iter()
            .filter_map(Json::as_str)
            .map(str::to_string)
            .collect();
        Ok(Record {
            spec: req_str("spec")?,
            title: req_str("title")?,
            paper_ref: req_str("paper_ref")?,
            tier,
            deterministic: doc
                .get("deterministic")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            seed: doc.get("seed").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            env,
            metrics,
            tables,
            notes,
        })
    }

    /// Reads and parses a record file.
    ///
    /// # Errors
    ///
    /// I/O failure or malformed content, with the path in the message.
    pub fn load(path: &std::path::Path) -> Result<Record, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Record::from_json_text(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Units are `&'static str` in [`Metric`] (spec runners use literals); a
/// parsed record leaks its handful of short unit strings, which is bounded
/// by the metric vocabulary and only happens in the CLI's read paths.
fn leak_unit(s: &str) -> &'static str {
    match s {
        "tps" => "tps",
        "txns" => "txns",
        "writes/tx" => "writes/tx",
        "fraction" => "fraction",
        "count" => "count",
        "ratio" => "ratio",
        "us" => "us",
        "" => "",
        other => Box::leak(other.to_string().into_boxed_str()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> Record {
        let mut table = Table::new("Demo", &["a", "b"]);
        table.push(vec!["1".into(), "x".into()]);
        Record {
            spec: "demo".into(),
            title: "Demo".into(),
            paper_ref: "Table 0".into(),
            tier: Tier::Quick,
            deterministic: true,
            seed: 42,
            env: EnvMeta {
                os: "linux".into(),
                arch: "x86_64".into(),
                cpus: 1,
                git_sha: "abc123".into(),
                source: "run".into(),
            },
            metrics: vec![Metric {
                name: "writes_per_tx/Bank".into(),
                unit: "writes/tx",
                value: 2.0,
                samples: vec![2.0],
                gated: true,
                better: Better::TwoSided,
                walltime: false,
            }],
            tables: vec![SpecTable {
                slug: "main".into(),
                table,
            }],
            notes: vec!["a note".into()],
        }
    }

    #[test]
    fn json_round_trip() {
        let rec = sample_record();
        let text = rec.to_json().pretty();
        let back = Record::from_json_text(&text).expect("parse");
        assert_eq!(back.spec, "demo");
        assert_eq!(back.tier, Tier::Quick);
        assert!(back.deterministic);
        assert_eq!(back.seed, 42);
        assert_eq!(back.env.git_sha, "abc123");
        assert_eq!(back.metrics, rec.metrics);
        assert_eq!(back.tables[0].slug, "main");
        assert_eq!(back.tables[0].table.rows, rec.tables[0].table.rows);
        assert_eq!(back.notes, rec.notes);
        // Byte stability: re-serialization is identical.
        assert_eq!(back.to_json().pretty(), text);
    }

    #[test]
    fn missing_fields_are_reported() {
        assert!(Record::from_json_text("{}").unwrap_err().contains("tier"));
        assert!(Record::from_json_text("not json").is_err());
    }

    #[test]
    fn file_name_is_canonical() {
        assert_eq!(sample_record().file_name(), "BENCH_demo.json");
    }
}
